#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite.
#
#   scripts/check.sh           # everything
#   scripts/check.sh --quick   # skip the release build
#
# All steps run offline against the committed Cargo.lock.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$quick" -eq 0 ]]; then
  echo "==> tier-1: cargo build --release"
  cargo build --release
fi

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> public-API gate (facade surface snapshot)"
scripts/api_gate.sh

echo "==> serve protocol + report schema"
cargo test -q --test serve_proto --test report_schema
cargo test -q -p lalrcex-cli --test cli

echo "==> yacc frontend differential (committed twins) + build-script example"
cargo test -q --release --test yacc_differential
cargo run -q --release --example build_script > /dev/null

echo "==> panic gate (engine non-test code)"
scripts/panic_gate.sh

echo "==> unsafe gate (forbid everywhere; scoped allows in cli sigint + core cache)"
scripts/unsafe_gate.sh

echo "==> rustdoc (no warnings, no broken intra-doc links)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --lib -q

echo "==> chaos suite (deterministic fault injection)"
cargo test -q --features failpoints --test chaos

echo "==> overload/chaos soak (seeded storms, wall-clock capped)"
timeout 600 cargo test -q -p lalrcex-cli --features failpoints --test soak

if [[ "$quick" -eq 0 ]]; then
  echo "==> search-throughput bench (smoke: tiny budget, 1 sample)"
  LALRCEX_BENCH_SMOKE=1 cargo bench -q -p lalrcex-bench --bench conflicts -- search_throughput
fi

echo "==> corpus lint snapshot"
cargo run -q --release -p lalrcex-lint --bin lint-snapshot -- --check

echo "OK"
