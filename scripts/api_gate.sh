#!/usr/bin/env bash
# Public-API gate for the `lalrcex` facade crate.
#
# The deliberate public surface (src/lib.rs, src/api/*, src/service.rs,
# src/build.rs, src/prng.rs) is snapshotted, one declaration per line, into
# snapshots/public_api.txt. Any drift — a new `pub` item, a changed
# signature line, a removed re-export — fails the gate until the snapshot
# is regenerated and the diff reviewed in the same change:
#
#   scripts/api_gate.sh            # compare against the snapshot (CI)
#   scripts/api_gate.sh --update   # regenerate the snapshot
#
# The extractor is textual (first line of every `pub` declaration, doc
# attributes like #[doc(hidden)] carried when adjacent), so it is a
# tripwire for *undeclared* surface changes, not a full semver checker:
# continuation lines of multi-line signatures are not tracked.
set -euo pipefail
cd "$(dirname "$0")/.."

SNAPSHOT=snapshots/public_api.txt
FILES=(src/lib.rs src/api/mod.rs src/api/source.rs src/api/json.rs src/api/report_json.rs src/service.rs src/build.rs src/prng.rs)

extract() {
  for f in "${FILES[@]}"; do
    echo "## $f"
    # One line per `pub` declaration (items and inherent/impl methods),
    # with #[doc(hidden)] markers folded onto the following declaration;
    # trailing bodies, `where` clauses, and semicolons stripped.
    awk '
      /^[[:space:]]*#\[doc\(hidden\)\]/ { hidden = 1; next }
      /^[[:space:]]*pub([[:space:]]|\()/ {
        line = $0
        sub(/;[[:space:]]*$/, "", line)
        # Re-export lists keep their braces (the names ARE the surface);
        # everything else drops the body opener.
        if (line !~ /pub use/) sub(/[[:space:]]*\{.*$/, "", line)
        sub(/[[:space:]]*where .*$/, "", line)
        sub(/[[:space:]]+$/, "", line)
        gsub(/^[[:space:]]+/, "", line)
        if (hidden) line = "#[doc(hidden)] " line
        print "  " line
      }
      { hidden = 0 }
    ' "$f"
  done
}

if [[ "${1:-}" == "--update" ]]; then
  mkdir -p snapshots
  extract > "$SNAPSHOT"
  echo "api_gate: wrote $SNAPSHOT ($(grep -c '^  ' "$SNAPSHOT") declarations)"
  exit 0
fi

if [[ ! -f "$SNAPSHOT" ]]; then
  echo "api_gate: $SNAPSHOT is missing; run scripts/api_gate.sh --update" >&2
  exit 1
fi

if ! diff -u "$SNAPSHOT" <(extract) > /tmp/api_gate.diff; then
  echo "api_gate: the facade's public surface drifted from $SNAPSHOT:" >&2
  cat /tmp/api_gate.diff >&2
  echo >&2
  echo "api_gate: if the change is deliberate, regenerate with" >&2
  echo "api_gate:   scripts/api_gate.sh --update" >&2
  echo "api_gate: and review the snapshot diff in the same change." >&2
  exit 1
fi
echo "api_gate: public surface matches $SNAPSHOT"
