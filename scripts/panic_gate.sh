#!/usr/bin/env bash
# Gate: no new `panic!(`, `.unwrap()`, `.expect(`, `unreachable!(`, or
# `todo!(` in the engine crates' non-test code (crates/grammar, crates/lr,
# crates/core). The engine's containment boundaries turn panics into
# structured `EngineError`s, but the cheapest contained panic is the one
# never written: internal failures should be `EngineError` values
# (crates/core/src/error.rs) or `GrammarError`s, and fallible lookups
# should return `Option`/`Result`.
#
# Test modules (everything from the first `#[cfg(test)]` to EOF, the
# repo's convention) are exempt. Genuinely intended occurrences — the
# fault-injection probes whose entire job is to panic, and `.expect`s
# documenting structural invariants whose violation *is* the bug a
# containment boundary should catch loudly — are listed in
# scripts/panic_allowlist.txt as `file|substring` lines, each with a
# justification comment.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist="scripts/panic_allowlist.txt"
found="$(mktemp)"
trap 'rm -f "$found"' EXIT

for f in crates/grammar/src/*.rs crates/lr/src/*.rs crates/core/src/*.rs; do
  awk -v file="$f" '
    /^#\[cfg\(test\)\]/ || /^#\[cfg\(all\(test/ { exit }
    $0 !~ /^[[:space:]]*\/\// && \
      (/panic!\(/ || /\.unwrap\(\)/ || /\.expect\(/ || /unreachable!\(/ || /todo!\(/) {
      printf "%s:%d: %s\n", file, FNR, $0
    }' "$f" >> "$found"
done

bad=0
while IFS= read -r hit; do
  file="${hit%%:*}"
  ok=0
  while IFS='|' read -r afile apat; do
    [[ -z "$afile" || "$afile" == \#* ]] && continue
    if [[ "$file" == "$afile" && "$hit" == *"$apat"* ]]; then
      ok=1
      break
    fi
  done < "$allowlist"
  if [[ "$ok" -eq 0 ]]; then
    echo "panic-gate: forbidden panic!/unwrap()/expect()/unreachable!/todo! in engine non-test code:" >&2
    echo "  $hit" >&2
    bad=1
  fi
done < "$found"

if [[ "$bad" -ne 0 ]]; then
  echo "panic-gate: return a structured EngineError (crates/core/src/error.rs)" >&2
  echo "or GrammarError instead, or add a \`file|substring\` line with a" >&2
  echo "justification comment to $allowlist if the occurrence is genuinely" >&2
  echo "intended (a fault-injection probe, or an invariant whose violation" >&2
  echo "should trip a containment boundary loudly)." >&2
  exit 1
fi
echo "panic-gate: OK ($(grep -c . "$found" || true) allowlisted occurrences)"
