#!/usr/bin/env bash
# Gate: no new `panic!(` or `.unwrap()` in the conflict engine's non-test
# code (crates/core/src). The engine's containment boundaries turn panics
# into structured `EngineError`s, but the cheapest contained panic is the
# one never written: internal failures should be `EngineError` values
# (crates/core/src/error.rs), and fallible lookups should return
# `Option`/`Result`. Documented invariants may use `.expect("why")`.
#
# Test modules (everything from the first `#[cfg(test)]` to EOF, the
# repo's convention) are exempt. Genuinely intended occurrences — the
# fault-injection probes whose entire job is to panic — are listed in
# scripts/panic_allowlist.txt as `file|substring` lines.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist="scripts/panic_allowlist.txt"
found="$(mktemp)"
trap 'rm -f "$found"' EXIT

for f in crates/core/src/*.rs; do
  awk -v file="$f" '
    /^#\[cfg\(test\)\]/ || /^#\[cfg\(all\(test/ { exit }
    $0 !~ /^[[:space:]]*\/\// && /panic!\(|\.unwrap\(\)/ {
      printf "%s:%d: %s\n", file, FNR, $0
    }' "$f" >> "$found"
done

bad=0
while IFS= read -r hit; do
  file="${hit%%:*}"
  ok=0
  while IFS='|' read -r afile apat; do
    [[ -z "$afile" || "$afile" == \#* ]] && continue
    if [[ "$file" == "$afile" && "$hit" == *"$apat"* ]]; then
      ok=1
      break
    fi
  done < "$allowlist"
  if [[ "$ok" -eq 0 ]]; then
    echo "panic-gate: forbidden panic!/unwrap() in engine non-test code:" >&2
    echo "  $hit" >&2
    bad=1
  fi
done < "$found"

if [[ "$bad" -ne 0 ]]; then
  echo "panic-gate: return a structured EngineError (crates/core/src/error.rs)" >&2
  echo "instead, or add a \`file|substring\` line to $allowlist if the panic" >&2
  echo "is genuinely intended (e.g. a fault-injection probe)." >&2
  exit 1
fi
echo "panic-gate: OK ($(grep -c . "$found" || true) allowlisted occurrences)"
