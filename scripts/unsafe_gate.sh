#!/usr/bin/env bash
# Unsafe-code gate: every crate root must carry `#![forbid(unsafe_code)]`,
# except the two documented exceptions which carry `#![deny(unsafe_code)]`
# plus a single scoped `#[allow(unsafe_code)]`:
#
#   * crates/cli/src/main.rs — the SIGINT handler (libc signal plumbing)
#   * crates/core/src/lib.rs — the engine cache's self-referential
#     grammar/engine pairing (cache.rs)
#
# No other file may contain an `unsafe` block, fn, impl, or trait.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Crate roots that must forbid unsafe code outright.
forbid_roots=(
  src/lib.rs
  crates/baselines/src/lib.rs
  crates/bench/src/lib.rs
  crates/corpus/src/lib.rs
  crates/earley/src/lib.rs
  crates/grammar/src/lib.rs
  crates/lint/src/lib.rs
  crates/lr/src/lib.rs
  crates/bench/src/bin/figures.rs
  crates/bench/src/bin/ppg_compare.rs
  crates/bench/src/bin/table1.rs
  crates/lint/src/bin/lint_snapshot.rs
)
for f in "${forbid_roots[@]}"; do
  if ! grep -q '^#!\[forbid(unsafe_code)\]' "$f"; then
    echo "unsafe-gate: $f lacks #![forbid(unsafe_code)]"
    fail=1
  fi
done

# The two documented exceptions deny (not forbid) so one scoped allow works.
deny_roots=(
  crates/cli/src/main.rs
  crates/core/src/lib.rs
)
for f in "${deny_roots[@]}"; do
  if ! grep -q '^#!\[deny(unsafe_code)\]' "$f"; then
    echo "unsafe-gate: $f lacks #![deny(unsafe_code)]"
    fail=1
  fi
done

# Actual unsafe code may only appear in the two excepted files.
allowed='^(crates/cli/src/main\.rs|crates/core/src/cache\.rs):'
hits=$(grep -rnE 'unsafe (\{|fn|impl|trait)' --include='*.rs' src crates tests 2>/dev/null |
  grep -vE "$allowed" || true)
if [[ -n "$hits" ]]; then
  echo "unsafe-gate: unsafe code outside the documented exceptions:"
  echo "$hits"
  fail=1
fi

if [[ "$fail" -ne 0 ]]; then
  echo "unsafe-gate: FAILED"
  exit 1
fi
echo "unsafe-gate: OK"
