//! Budget-exhaustion edge cases (§6 graceful cutoff, ISSUE 3 satellite):
//! zeroed budgets — `time_limit == 0`, `max_configs == 0`, `max_cost == 0`,
//! a cumulative deadline already in the past — must degrade into complete,
//! deterministic reports (`TimedOut` / `NonunifyingSkipped` with the cheap
//! nonunifying fallback intact), never hang, panic, or lose a conflict.
//! Both the engine path and the lint masking-probe path are covered.

use std::time::{Duration, Instant};

use lalrcex_core::engine::ResolutionProbe;
use lalrcex_core::{
    unifying_search_metered, Analyzer, CexConfig, Engine, ExampleKind, SearchConfig, SearchMetrics,
    SearchOutcome,
};
use lalrcex_grammar::Grammar;

fn figure1() -> Grammar {
    Grammar::parse(
        "%start stmt
         %%
         stmt : 'if' expr 'then' stmt 'else' stmt
              | 'if' expr 'then' stmt
              | expr '?' stmt stmt
              | 'arr' '[' expr ']' ':=' expr
              ;
         expr : num | expr '+' expr ;
         num  : digit | num digit ;",
    )
    .unwrap()
}

/// Runs the bare unifying search on figure1's first conflict under `cfg`.
fn search_outcome(cfg: &SearchConfig) -> (SearchOutcome, SearchMetrics) {
    let g = figure1();
    let engine = Engine::new(&g);
    let conflict = engine.tables().conflicts()[0];
    let (spine, _) = engine.spine(&conflict);
    let mut m = SearchMetrics::default();
    let out = unifying_search_metered(
        &g,
        engine.automaton(),
        engine.graph(),
        &conflict,
        &spine.states,
        cfg,
        &mut m,
    );
    (out, m)
}

#[test]
fn zero_time_limit_times_out_before_exploring() {
    let cfg = SearchConfig {
        time_limit: Duration::ZERO,
        ..SearchConfig::default()
    };
    let (out, m) = search_outcome(&cfg);
    assert!(matches!(out, SearchOutcome::TimedOut));
    assert_eq!(m.explored, 0, "a zero budget must not start the search");
}

#[test]
fn zero_max_configs_times_out_deterministically() {
    let cfg = SearchConfig {
        time_limit: Duration::from_secs(3600),
        max_configs: 0,
        ..SearchConfig::default()
    };
    let (out, m) = search_outcome(&cfg);
    assert!(matches!(out, SearchOutcome::TimedOut));
    // Run twice: the explored count under a node budget is deterministic.
    let (_, m2) = search_outcome(&cfg);
    assert_eq!(m.explored, m2.explored);
}

#[test]
fn zero_max_cost_prunes_every_successor() {
    let cfg = SearchConfig {
        time_limit: Duration::from_secs(3600),
        max_cost: 0,
        ..SearchConfig::default()
    };
    let (out, _) = search_outcome(&cfg);
    // Every successor costs at least 1, so nothing survives the cap; the
    // pruned search must report TimedOut (cut off), not Exhausted (proven).
    assert!(matches!(out, SearchOutcome::TimedOut));
}

#[test]
fn zero_time_limit_reports_stay_complete() {
    let g = figure1();
    let cfg = CexConfig {
        search: SearchConfig {
            time_limit: Duration::ZERO,
            ..SearchConfig::default()
        },
        ..CexConfig::default()
    };
    let mut analyzer = Analyzer::new(&g);
    let report = analyzer.analyze_all(&cfg);
    assert_eq!(report.reports.len(), 3, "one report per conflict");
    for r in &report.reports {
        assert_eq!(r.kind(), Some(ExampleKind::NonunifyingTimeout));
        assert!(r.nonunifying.is_some(), "fallback survives a zero budget");
        assert!(!r.is_internal());
    }
}

#[test]
fn past_deadline_skips_search_but_keeps_fallback() {
    let g = figure1();
    let engine = Engine::new(&g);
    let cfg = CexConfig::default();
    let past = Instant::now() - Duration::from_secs(1);
    for c in engine.tables().conflicts() {
        let r = engine.analyze_conflict_with_deadline(c, &cfg, past);
        assert_eq!(r.kind(), Some(ExampleKind::NonunifyingSkipped));
        assert!(r.nonunifying.is_some());
        assert_eq!(r.stats.search.explored, 0, "search must not start");
    }
}

#[test]
fn zero_cumulative_budget_across_worker_counts() {
    let g = figure1();
    for workers in [1usize, 4] {
        let cfg = CexConfig {
            cumulative_limit: Duration::ZERO,
            workers,
            ..CexConfig::default()
        };
        let report = Engine::new(&g).analyze_all(&cfg);
        assert_eq!(report.reports.len(), 3);
        for r in &report.reports {
            assert_eq!(r.kind(), Some(ExampleKind::NonunifyingSkipped));
            assert!(r.nonunifying.is_some());
        }
        assert_eq!(report.stats.search.explored, 0);
    }
}

/// The lint masking probe under a zero node budget: deterministic
/// `BudgetExhausted`, never a hang or a panic, and the same engine still
/// completes an unconstrained probe afterwards.
#[test]
fn lint_probe_zero_budget_is_exhausted_not_stuck() {
    let g = Grammar::parse("%left '+' %% e : e '+' e | NUM ;").unwrap();
    let engine = Engine::new(&g);
    let res = engine.tables().resolutions()[0];
    match engine.probe_resolution(&res, 0) {
        ResolutionProbe::BudgetExhausted => {}
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    match engine.probe_resolution(&res, 1 << 16) {
        ResolutionProbe::Ambiguous(_) => {}
        other => panic!("expected Ambiguous on the healthy retry, got {other:?}"),
    }
}
