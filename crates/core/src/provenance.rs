//! Lookahead provenance and conflict classification.
//!
//! The counterexample engine shows *that* a conflict is real; this module
//! explains *why* the offending lookahead terminal reaches the conflicted
//! state at all. It recomputes the LALR(1) lookahead sets from first
//! principles with the DeRemer–Pennello relations over the goto graph —
//!
//! * `DR(p, A)` — terminals shifted directly out of `goto(p, A)`;
//! * `(p, A) reads (r, C)` — `goto(p, A) = r` and `r` has a transition on
//!   a *nullable* nonterminal `C`, so whatever follows `C` can follow `A`;
//! * `(p, A) includes (p', B)` — some production `B -> β A γ` with
//!   `γ =>* ε` lets `A`'s context inherit `B`'s context, where `p'`
//!   reaches `p` spelling `β`;
//! * `(q, A -> ω) lookback (p, A)` — `p` reaches `q` spelling `ω`, so the
//!   reduction's lookahead in `q` is `Follow(p, A)`
//!
//! — and keeps the *edges* of those relations, not just the fixpoint sets.
//! That is what lets it answer provenance queries: for a conflict on
//! terminal `t`, a breadth-first walk over the kept edges produces the
//! shortest concrete chain of `lookback`/`includes`/`reads` steps that
//! propagated `t` into the conflicted item's lookahead — rendered as a
//! spanned, deterministic explanation.
//!
//! On top of the relations sits a three-way classification of every
//! conflict (and every precedence-silenced resolution):
//!
//! * [`Classification::TrueAmbiguityCandidate`] — the conflict survives in
//!   canonical LR(1): splitting states cannot fix it, only rewriting the
//!   grammar (or proving it ambiguous — the §5 unifying search corroborates
//!   this classification when it finds an example). Every shift/reduce
//!   conflict is in this class: merging LR(1) states with equal cores can
//!   never introduce a shift/reduce conflict, so one present in the LALR
//!   tables was already present in canonical LR(1).
//! * [`Classification::MergeArtifact`] — a reduce/reduce conflict that
//!   exists only because LALR merged distinguishable LR(1) cores. The
//!   evidence reports the merged canonical variants: the item-sets whose
//!   lookaheads *do* distinguish the two reductions.
//! * [`Classification::PrecedenceResolved`] — the conflict was silenced by
//!   a precedence declaration before it reached the conflict table
//!   (cross-linked with lint L009, which probes whether the silencing hid
//!   a genuine ambiguity).
//!
//! The reduce/reduce check builds the canonical LR(1) state space under a
//! deterministic state budget; a grammar that exhausts it falls back to
//! the conservative `TrueAmbiguityCandidate` with
//! [`ConflictProvenance::lr1_checked`] `false`. Everything here is pure
//! precomputation over [`crate::Facts`]: no clocks are consulted, no
//! randomness exists, and the output is byte-identical at any worker
//! count. The engine runs it under containment (phase
//! `"provenance.compute"`) with a fault-injection probe of the same name.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use lalrcex_grammar::{Analysis, Grammar, ProdId, SymbolId, SymbolKind, TerminalSet};
use lalrcex_lr::{Automaton, Conflict, ConflictKind, Item, Resolution, StateId, Tables};

use crate::contain::contain;
use crate::error::EngineError;

/// Deterministic budget on canonical LR(1) states explored by the
/// merge-artifact check. Exhausting it degrades reduce/reduce conflicts to
/// the conservative [`Classification::TrueAmbiguityCandidate`] with
/// `lr1_checked = false`; it never fails the analysis.
pub const LR1_STATE_BUDGET: usize = 20_000;

/// Cap on canonical variants kept as [`MergeEvidence`] per conflict (the
/// check itself always examines every variant).
const MAX_EVIDENCE_VARIANTS: usize = 8;

/// The three-way verdict on a conflict (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Classification {
    /// The conflict survives in canonical LR(1): state splitting cannot
    /// remove it.
    TrueAmbiguityCandidate,
    /// The conflict exists only because LALR merged distinguishable LR(1)
    /// cores; splitting states (an IELR/canonical generator) fixes it
    /// without touching the grammar.
    MergeArtifact,
    /// A precedence declaration silenced the conflict before it was
    /// reported (see lint L009 for whether that hid a real ambiguity).
    PrecedenceResolved,
}

impl Classification {
    /// The stable kebab-case label used by every renderer and the JSON
    /// schema.
    pub fn label(self) -> &'static str {
        match self {
            Classification::TrueAmbiguityCandidate => "true-ambiguity-candidate",
            Classification::MergeArtifact => "merge-artifact",
            Classification::PrecedenceResolved => "precedence-resolved",
        }
    }
}

/// One step of a provenance chain — a concrete edge of the
/// DeRemer–Pennello relations that carried the conflict terminal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainStep {
    /// `(conflict_state, prod) lookback (goto_state, nonterminal)`: the
    /// reduction pops back to `goto_state`, whose goto on `nonterminal`
    /// supplies the lookahead.
    Lookback {
        /// The state the reduction happens in.
        conflict_state: StateId,
        /// The production being reduced.
        prod: ProdId,
        /// The state the reduction returns to.
        goto_state: StateId,
        /// The left-hand side whose goto context is consulted.
        nonterminal: SymbolId,
    },
    /// `Follow(from) ⊇ Follow(to)` because `via_prod` is `B -> β A γ` with
    /// `γ` nullable: `A`'s context inherits `B`'s.
    Includes {
        /// Goto whose Follow receives (`(state, A)`).
        from_state: StateId,
        /// The inner nonterminal `A`.
        from_nt: SymbolId,
        /// Goto whose Follow supplies (`(state, B)`).
        to_state: StateId,
        /// The enclosing nonterminal `B`.
        to_nt: SymbolId,
        /// The production `B -> β A γ` witnessing the edge.
        via_prod: ProdId,
    },
    /// `Read(from) ⊇ Read(to)` because `goto(from_state, from_nt)` lands
    /// in `via_state`, which can read the nullable `nullable_nt`.
    Reads {
        /// Source goto state.
        from_state: StateId,
        /// Source goto nonterminal.
        from_nt: SymbolId,
        /// The state reached by the source goto (where the nullable read
        /// happens).
        via_state: StateId,
        /// The nullable nonterminal that can vanish.
        nullable_nt: SymbolId,
    },
    /// `terminal ∈ DR(state, nonterminal)`: the state reached by the goto
    /// shifts the terminal directly.
    DirectRead {
        /// Goto source state.
        state: StateId,
        /// Goto nonterminal.
        nonterminal: SymbolId,
        /// The goto target state performing the shift.
        shift_state: StateId,
        /// The terminal being shifted.
        terminal: SymbolId,
    },
}

/// One canonical LR(1) variant of a merged LALR state: the lookaheads the
/// two conflicting reductions carry there. For a merge artifact, no
/// variant has the conflict terminal in both.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MergeVariant {
    /// Dense terminal indices (sorted) in the first reduction's lookahead.
    pub reduce_lookahead: Vec<usize>,
    /// Dense terminal indices (sorted) in the second reduction's lookahead.
    pub other_lookahead: Vec<usize>,
}

/// Why a reduce/reduce conflict is an LALR merge artifact: the canonical
/// LR(1) item-set variants that LALR merged into one state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MergeEvidence {
    /// The LALR state that merged the variants.
    pub merged_state: StateId,
    /// Total canonical variants of this core.
    pub variant_count: usize,
    /// Up to `MAX_EVIDENCE_VARIANTS` variants, in canonical discovery
    /// order.
    pub variants: Vec<MergeVariant>,
}

/// The full provenance verdict for one conflict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConflictProvenance {
    /// The conflict being explained.
    pub conflict: Conflict,
    /// The three-way verdict.
    pub classification: Classification,
    /// Whether the canonical LR(1) check completed within its budget
    /// (`true` also for shift/reduce conflicts, where the verdict needs no
    /// exploration).
    pub lr1_checked: bool,
    /// The concrete relation edges that carried the conflict terminal into
    /// the reduce item's lookahead, ending in the direct read.
    pub chain: Vec<ChainStep>,
    /// Merge evidence — `Some` exactly for [`Classification::MergeArtifact`].
    pub merge: Option<MergeEvidence>,
}

/// A provenance slot: classified, or faulted (contained at the
/// per-conflict boundary, so the other slots are unaffected).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProvenanceOutcome {
    /// Classification succeeded.
    Classified(ConflictProvenance),
    /// The per-conflict classification faulted; the fault was contained.
    Internal(EngineError),
}

impl ProvenanceOutcome {
    /// The classification, when the slot did not fault.
    pub fn classification(&self) -> Option<Classification> {
        match self {
            ProvenanceOutcome::Classified(p) => Some(p.classification),
            ProvenanceOutcome::Internal(_) => None,
        }
    }

    /// The provenance record, when the slot did not fault.
    pub fn provenance(&self) -> Option<&ConflictProvenance> {
        match self {
            ProvenanceOutcome::Classified(p) => Some(p),
            ProvenanceOutcome::Internal(_) => None,
        }
    }
}

/// Provenance for a precedence-silenced resolution: always
/// [`Classification::PrecedenceResolved`], with the chain explaining how
/// the silenced terminal reached the reduction's lookahead.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResolutionProvenance {
    /// The silenced resolution.
    pub resolution: Resolution,
    /// Always [`Classification::PrecedenceResolved`].
    pub classification: Classification,
    /// The relation edges that carried the silenced terminal.
    pub chain: Vec<ChainStep>,
}

/// Per-grammar classification tallies (feeds `--stats` and Table 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassificationCounts {
    /// Conflicts classified [`Classification::TrueAmbiguityCandidate`].
    pub true_candidates: u64,
    /// Conflicts classified [`Classification::MergeArtifact`].
    pub merge_artifacts: u64,
    /// Silenced resolutions ([`Classification::PrecedenceResolved`]).
    pub precedence_resolved: u64,
    /// Conflict slots whose classification faulted (contained).
    pub internal: u64,
}

/// Everything the provenance analysis produced for one grammar: one slot
/// per conflict (table order), one per silenced resolution, and the
/// canonical-LR(1) exploration counters.
#[derive(Debug)]
pub struct GrammarProvenance {
    /// One outcome per [`Tables::conflicts`] slot, same order.
    pub conflicts: Vec<ProvenanceOutcome>,
    /// One record per [`Tables::resolutions`] slot, same order.
    pub resolutions: Vec<ResolutionProvenance>,
    /// Canonical LR(1) states explored by the merge check (`0` when no
    /// reduce/reduce conflict needed it).
    pub lr1_states: usize,
    /// Whether the canonical exploration hit [`LR1_STATE_BUDGET`].
    pub lr1_budget_exhausted: bool,
    /// Wall time spent (observability only — excluded from the engine's
    /// determinism guarantee, like every other duration).
    pub compute_time: Duration,
    /// Estimated resident bytes of the retained provenance data.
    bytes: usize,
}

impl GrammarProvenance {
    /// Per-grammar classification tallies.
    pub fn counts(&self) -> ClassificationCounts {
        let mut c = ClassificationCounts {
            precedence_resolved: self.resolutions.len() as u64,
            ..ClassificationCounts::default()
        };
        for o in &self.conflicts {
            match o.classification() {
                Some(Classification::TrueAmbiguityCandidate) => c.true_candidates += 1,
                Some(Classification::MergeArtifact) => c.merge_artifacts += 1,
                Some(Classification::PrecedenceResolved) => c.precedence_resolved += 1,
                None => c.internal += 1,
            }
        }
        c
    }

    /// Estimated resident bytes (feeds [`crate::Engine::estimated_bytes`]
    /// so the engine cache's byte budget sees the new tables).
    pub fn estimated_bytes(&self) -> usize {
        self.bytes
    }
}

// ---------------------------------------------------------------------------
// The DeRemer–Pennello tables.
// ---------------------------------------------------------------------------

/// The relation tables: one row per nonterminal (goto) transition, with
/// the `reads`/`includes` edges kept for provenance queries.
pub struct ProvenanceTables {
    nterm: usize,
    /// Every goto transition `(p, A)`, sorted by `(p, A)`.
    gotos: Vec<(StateId, SymbolId)>,
    /// `(state index, symbol index) -> goto row`.
    lookup: HashMap<(u32, u32), u32>,
    /// `DR(p, A)` — terminals shifted directly out of `goto(p, A)`.
    direct_read: Vec<TerminalSet>,
    /// `Read(p, A)` — `DR` closed over `reads`.
    read: Vec<TerminalSet>,
    /// `Follow(p, A)` — `Read` closed over `includes`.
    follow: Vec<TerminalSet>,
    /// `reads` successors per row (sorted, deduplicated).
    reads: Vec<Vec<u32>>,
    /// `includes` successors per row (sorted, deduplicated), with one
    /// witness production each.
    includes: Vec<Vec<(u32, ProdId)>>,
}

/// Walks `from` along `seq` in the automaton; `None` if a transition is
/// missing (cannot happen for viable prefixes, but the analysis degrades
/// instead of panicking).
fn walk(auto: &Automaton, from: StateId, seq: &[SymbolId]) -> Option<StateId> {
    let mut cur = from;
    for &s in seq {
        cur = auto.state(cur).transition(s)?;
    }
    Some(cur)
}

impl ProvenanceTables {
    /// Builds every relation table for `g`'s automaton. Pure and
    /// deterministic; cost is a small fixpoint over the goto graph.
    pub fn build(g: &Grammar, auto: &Automaton) -> ProvenanceTables {
        let analysis = auto.analysis();
        let nterm = g.terminal_count();

        let mut gotos: Vec<(StateId, SymbolId)> = Vec::new();
        for sid in auto.state_ids() {
            for &(sym, _) in auto.state(sid).transitions() {
                if g.is_nonterminal(sym) {
                    gotos.push((sid, sym));
                }
            }
        }
        let lookup: HashMap<(u32, u32), u32> = gotos
            .iter()
            .enumerate()
            .map(|(i, &(p, a))| ((p.index() as u32, a.index() as u32), i as u32))
            .collect();

        // DR and reads: look one step past each goto target.
        let mut direct_read = vec![TerminalSet::empty(nterm); gotos.len()];
        let mut reads: Vec<Vec<u32>> = vec![Vec::new(); gotos.len()];
        for (i, &(p, a)) in gotos.iter().enumerate() {
            let Some(r) = auto.state(p).transition(a) else {
                continue;
            };
            for &(sym, _) in auto.state(r).transitions() {
                match g.kind(sym) {
                    SymbolKind::Terminal => {
                        direct_read[i].insert(g.tindex(sym));
                    }
                    SymbolKind::Nonterminal => {
                        if analysis.nullable(sym) {
                            if let Some(&j) = lookup.get(&(r.index() as u32, sym.index() as u32)) {
                                reads[i].push(j);
                            }
                        }
                    }
                }
            }
            reads[i].sort_unstable();
            reads[i].dedup();
        }

        // Read = DR closed over reads.
        let mut read = direct_read.clone();
        loop {
            let mut changed = false;
            for i in 0..gotos.len() {
                for &j in &reads[i] {
                    let snap = read[j as usize].clone();
                    changed |= read[i].union_with(&snap);
                }
            }
            if !changed {
                break;
            }
        }

        // includes: for each goto (p', B) and production B -> β A γ with γ
        // nullable, (state-at-β, A) includes (p', B).
        let mut includes: Vec<Vec<(u32, ProdId)>> = vec![Vec::new(); gotos.len()];
        for (j, &(p_outer, b)) in gotos.iter().enumerate() {
            for &pid in g.prods_of(b) {
                let rhs = g.prod(pid).rhs();
                let mut cur = p_outer;
                for (k, &sym) in rhs.iter().enumerate() {
                    if g.is_nonterminal(sym) {
                        let tail_nullable = rhs[k + 1..].iter().all(|&s| analysis.nullable(s));
                        if tail_nullable {
                            if let Some(&i) = lookup.get(&(cur.index() as u32, sym.index() as u32))
                            {
                                includes[i as usize].push((j as u32, pid));
                            }
                        }
                    }
                    match auto.state(cur).transition(sym) {
                        Some(next) => cur = next,
                        None => break,
                    }
                }
            }
        }
        for row in &mut includes {
            row.sort_unstable();
            row.dedup_by_key(|&mut (j, _)| j);
        }

        // Follow = Read closed over includes.
        let mut follow = read.clone();
        loop {
            let mut changed = false;
            for i in 0..gotos.len() {
                for &(j, _) in &includes[i] {
                    let snap = follow[j as usize].clone();
                    changed |= follow[i].union_with(&snap);
                }
            }
            if !changed {
                break;
            }
        }

        ProvenanceTables {
            nterm,
            gotos,
            lookup,
            direct_read,
            read,
            follow,
            reads,
            includes,
        }
    }

    /// Number of goto transitions (rows).
    pub fn goto_count(&self) -> usize {
        self.gotos.len()
    }

    /// The row index of goto `(p, a)`, if `p` has a transition on `a`.
    pub fn row(&self, p: StateId, a: SymbolId) -> Option<usize> {
        self.lookup
            .get(&(p.index() as u32, a.index() as u32))
            .map(|&i| i as usize)
    }

    /// `Follow(p, A)` for a row.
    pub fn follow_of(&self, row: usize) -> &TerminalSet {
        &self.follow[row]
    }

    /// The `lookback` sources of reduction `(q, prod)`: every goto row
    /// `(p, lhs(prod))` with `p` reaching `q` spelling `rhs(prod)`, in row
    /// order.
    pub fn lookback(&self, g: &Grammar, auto: &Automaton, q: StateId, prod: ProdId) -> Vec<usize> {
        let lhs = g.prod(prod).lhs();
        let rhs = g.prod(prod).rhs();
        self.gotos
            .iter()
            .enumerate()
            .filter(|&(_, &(p, a))| a == lhs && walk(auto, p, rhs) == Some(q))
            .map(|(i, _)| i)
            .collect()
    }

    /// The LALR(1) lookahead of reduction `(q, prod)` recomputed from the
    /// relations: the union of `Follow` over the `lookback` sources. Used
    /// by the self-check tests against the automaton's propagation-based
    /// sets.
    pub fn lookahead(
        &self,
        g: &Grammar,
        auto: &Automaton,
        q: StateId,
        prod: ProdId,
    ) -> TerminalSet {
        let mut la = TerminalSet::empty(self.nterm);
        for row in self.lookback(g, auto, q, prod) {
            la.union_with(&self.follow[row]);
        }
        la
    }

    /// The shortest chain of relation edges that carried dense terminal
    /// `tindex` into the lookahead of reduction `(q, prod)` — `lookback`,
    /// then `includes*`, then `reads*`, ending in the direct read. Empty
    /// when the terminal is not in the recomputed lookahead (callers treat
    /// that as "no chain").
    pub fn chain(
        &self,
        g: &Grammar,
        auto: &Automaton,
        q: StateId,
        prod: ProdId,
        tindex: usize,
    ) -> Vec<ChainStep> {
        let Some(&start) = self
            .lookback(g, auto, q, prod)
            .iter()
            .find(|&&row| self.follow[row].contains(tindex))
        else {
            return Vec::new();
        };

        // BFS over the kept edges, in two modes: `Follow` may take
        // `includes` or `reads` edges; once a `reads` edge is taken only
        // further `reads` edges are valid. Edge guards (`contains`) keep
        // the walk on productive rows, so the BFS always terminates at a
        // direct read. Expansion order is deterministic (row order).
        const MODE_FOLLOW: usize = 0;
        const MODE_READ: usize = 1;
        let n = self.gotos.len();
        let mut parent: Vec<Option<(usize, ChainStep)>> = vec![None; 2 * n];
        let mut queue = std::collections::VecDeque::new();
        let enc = |mode: usize, row: usize| mode * n + row;
        queue.push_back(enc(MODE_FOLLOW, start));
        let mut goal: Option<usize> = None;
        let mut seen = vec![false; 2 * n];
        seen[enc(MODE_FOLLOW, start)] = true;

        while let Some(node) = queue.pop_front() {
            let (mode, row) = (node / n, node % n);
            if self.direct_read[row].contains(tindex) {
                goal = Some(node);
                break;
            }
            let (p, a) = self.gotos[row];
            for &j in &self.reads[row] {
                let next = enc(MODE_READ, j as usize);
                if !seen[next] && self.read[j as usize].contains(tindex) {
                    seen[next] = true;
                    let (_, c) = self.gotos[j as usize];
                    let via_state = auto.state(p).transition(a).unwrap_or(p);
                    parent[next] = Some((
                        node,
                        ChainStep::Reads {
                            from_state: p,
                            from_nt: a,
                            via_state,
                            nullable_nt: c,
                        },
                    ));
                    queue.push_back(next);
                }
            }
            if mode == MODE_FOLLOW {
                for &(j, via_prod) in &self.includes[row] {
                    let next = enc(MODE_FOLLOW, j as usize);
                    if !seen[next] && self.follow[j as usize].contains(tindex) {
                        seen[next] = true;
                        let (tp, tb) = self.gotos[j as usize];
                        parent[next] = Some((
                            node,
                            ChainStep::Includes {
                                from_state: p,
                                from_nt: a,
                                to_state: tp,
                                to_nt: tb,
                                via_prod,
                            },
                        ));
                        queue.push_back(next);
                    }
                }
            }
        }

        let Some(goal) = goal else {
            // Unreachable for a terminal the fixpoint placed in Follow, but
            // degrade to "no chain" rather than trusting that invariant.
            return Vec::new();
        };

        let mut steps = Vec::new();
        let goal_row = goal % n;
        let (gp, ga) = self.gotos[goal_row];
        steps.push(ChainStep::DirectRead {
            state: gp,
            nonterminal: ga,
            shift_state: auto.state(gp).transition(ga).unwrap_or(gp),
            terminal: g.terminal(tindex),
        });
        let mut cur = goal;
        while let Some((prev, step)) = parent[cur] {
            steps.push(step);
            cur = prev;
        }
        let (sp, sa) = self.gotos[start];
        steps.push(ChainStep::Lookback {
            conflict_state: q,
            prod,
            goto_state: sp,
            nonterminal: sa,
        });
        steps.reverse();
        steps
    }

    /// Estimated resident bytes of the tables.
    pub fn estimated_bytes(&self) -> usize {
        let tset = self.nterm.div_ceil(64) * 8 + 16;
        let rows = self.gotos.len();
        let edges: usize = self.reads.iter().map(Vec::len).sum::<usize>()
            + self.includes.iter().map(Vec::len).sum::<usize>() * 2;
        rows * (8 + 3 * tset + 2 * 24) + edges * 4 + rows * 16
    }
}

// ---------------------------------------------------------------------------
// Canonical LR(1) merge-artifact check.
// ---------------------------------------------------------------------------

/// Canonical LR(1) closure of `kernel` (items with lookahead sets),
/// returned sorted by item. Same fixpoint shape as the automaton's
/// per-state closure, but on canonical (per-context) lookaheads.
fn lr1_closure(
    g: &Grammar,
    analysis: &Analysis,
    kernel: &[(Item, TerminalSet)],
) -> Vec<(Item, TerminalSet)> {
    let nterm = g.terminal_count();
    let mut items: Vec<Item> = kernel.iter().map(|&(it, _)| it).collect();
    let mut las: Vec<TerminalSet> = kernel.iter().map(|(_, la)| la.clone()).collect();
    let mut pos: HashMap<Item, usize> = items.iter().enumerate().map(|(i, &it)| (it, i)).collect();
    let mut idx = 0;
    while idx < items.len() {
        let it = items[idx];
        idx += 1;
        if let Some(next) = it.next_symbol(g) {
            if g.kind(next) == SymbolKind::Nonterminal {
                for &pid in g.prods_of(next) {
                    let start = Item::start(pid);
                    if let std::collections::hash_map::Entry::Vacant(e) = pos.entry(start) {
                        e.insert(items.len());
                        items.push(start);
                        las.push(TerminalSet::empty(nterm));
                    }
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for i in 0..items.len() {
            let it = items[i];
            let Some(next) = it.next_symbol(g) else {
                continue;
            };
            if g.kind(next) != SymbolKind::Nonterminal {
                continue;
            }
            let beta = &it.tail(g)[1..];
            let mut add = analysis.first_of_seq(g, beta, &TerminalSet::empty(nterm));
            if analysis.seq_nullable(g, beta) {
                let snap = las[i].clone();
                add.union_with(&snap);
            }
            for &pid in g.prods_of(next) {
                let j = pos[&Item::start(pid)];
                changed |= las[j].union_with(&add);
            }
        }
        if !changed {
            break;
        }
    }
    let mut out: Vec<(Item, TerminalSet)> = items.into_iter().zip(las).collect();
    out.sort_by_key(|&(it, _)| it);
    out
}

/// The reduce items (item, lookahead) of one canonical variant of an
/// interesting core — all the merge check needs per variant.
type VariantReduces = Vec<(Item, TerminalSet)>;

/// What the canonical LR(1) exploration produced.
struct Lr1Exploration {
    /// Canonical variants (their reduce items + lookaheads) keyed by the
    /// interesting core they merge into, in discovery order.
    variants: HashMap<Vec<Item>, Vec<VariantReduces>>,
    /// Canonical states explored.
    states: usize,
    /// Whether the budget stopped the exploration (variants incomplete).
    exhausted: bool,
}

/// Explores the canonical LR(1) state space breadth-first under
/// [`LR1_STATE_BUDGET`], collecting the reduce-item lookaheads of every
/// canonical state whose LR(0) core is in `interesting`.
fn explore_lr1(
    g: &Grammar,
    analysis: &Analysis,
    interesting: &[Vec<Item>],
    budget: usize,
) -> Lr1Exploration {
    let nterm = g.terminal_count();
    let mut variants: HashMap<Vec<Item>, Vec<VariantReduces>> = interesting
        .iter()
        .map(|core| (core.clone(), Vec::new()))
        .collect();

    let mut seen: HashMap<Vec<(Item, TerminalSet)>, ()> = HashMap::new();
    let mut queue: std::collections::VecDeque<Vec<(Item, TerminalSet)>> =
        std::collections::VecDeque::new();
    let start_kernel = vec![(
        Item::start(g.accept_prod()),
        TerminalSet::singleton(nterm, g.tindex(SymbolId::EOF)),
    )];
    seen.insert(start_kernel.clone(), ());
    queue.push_back(start_kernel);
    let mut states = 0usize;
    let mut exhausted = false;

    while let Some(kernel) = queue.pop_front() {
        if states >= budget {
            exhausted = true;
            break;
        }
        states += 1;
        let closure = lr1_closure(g, analysis, &kernel);

        // Record this variant if its LR(0) core is interesting.
        let mut core: Vec<Item> = closure
            .iter()
            .map(|&(it, _)| it)
            .filter(|it| it.dot() > 0 || it.prod() == g.accept_prod())
            .collect();
        core.sort_unstable();
        if let Some(slot) = variants.get_mut(&core) {
            slot.push(
                closure
                    .iter()
                    .filter(|(it, _)| it.is_reduce(g))
                    .cloned()
                    .collect(),
            );
        }

        // Successors, grouped by next symbol in sorted-symbol order.
        let mut by_symbol: Vec<(SymbolId, Vec<(Item, TerminalSet)>)> = Vec::new();
        for (it, la) in &closure {
            let Some(next) = it.next_symbol(g) else {
                continue;
            };
            let adv = (it.advance(g), la.clone());
            match by_symbol.iter_mut().find(|(s, _)| *s == next) {
                Some((_, v)) => v.push(adv),
                None => by_symbol.push((next, vec![adv])),
            }
        }
        by_symbol.sort_by_key(|&(s, _)| s);
        for (_, mut kernel) in by_symbol {
            kernel.sort_by_key(|a| a.0);
            // Merge equal items' lookaheads.
            let mut merged: Vec<(Item, TerminalSet)> = Vec::with_capacity(kernel.len());
            for (it, la) in kernel {
                match merged.last_mut() {
                    Some((last, acc)) if *last == it => {
                        acc.union_with(&la);
                    }
                    _ => merged.push((it, la)),
                }
            }
            if !seen.contains_key(&merged) {
                seen.insert(merged.clone(), ());
                queue.push_back(merged);
            }
        }
    }

    Lr1Exploration {
        variants,
        states,
        exhausted,
    }
}

/// The sorted LR(0) core (kernel items) of an LALR state.
fn lalr_core(auto: &Automaton, q: StateId) -> Vec<Item> {
    let st = auto.state(q);
    let mut core: Vec<Item> = st.items()[..st.kernel_len()].to_vec();
    core.sort_unstable();
    core
}

// ---------------------------------------------------------------------------
// Classification.
// ---------------------------------------------------------------------------

/// Classifies one conflict against the (already explored) canonical
/// variants of its core.
fn classify_conflict(
    g: &Grammar,
    auto: &Automaton,
    tables: &ProvenanceTables,
    lr1: Option<&Lr1Exploration>,
    conflict: &Conflict,
) -> ConflictProvenance {
    let tindex = g.tindex(conflict.terminal);
    let chain = tables.chain(g, auto, conflict.state, conflict.reduce_prod, tindex);

    let (classification, lr1_checked, merge) = match conflict.kind {
        // Merging equal-core LR(1) states never introduces a shift/reduce
        // conflict (the shift is core-determined and the reduce lookahead
        // is a union over the merged variants, one of which already
        // carried the terminal alongside the same shift), so a
        // shift/reduce conflict in the LALR tables exists in canonical
        // LR(1) too.
        ConflictKind::ShiftReduce { .. } => (Classification::TrueAmbiguityCandidate, true, None),
        ConflictKind::ReduceReduce { other_prod } => {
            let core = lalr_core(auto, conflict.state);
            let reduce_item = conflict.reduce_item(g);
            let other_item = Item::new(other_prod, g.prod(other_prod).rhs().len());
            let variants = lr1
                .filter(|e| !e.exhausted)
                .and_then(|e| e.variants.get(&core));
            match variants {
                Some(vs) => {
                    let la_of = |v: &VariantReduces, item: Item| -> Option<TerminalSet> {
                        v.iter()
                            .find(|&&(it, _)| it == item)
                            .map(|(_, la)| la.clone())
                    };
                    let survives = vs.iter().any(|v| {
                        matches!(
                            (la_of(v, reduce_item), la_of(v, other_item)),
                            (Some(a), Some(b)) if a.contains(tindex) && b.contains(tindex)
                        )
                    });
                    if survives {
                        (Classification::TrueAmbiguityCandidate, true, None)
                    } else {
                        let evidence: Vec<MergeVariant> = vs
                            .iter()
                            .take(MAX_EVIDENCE_VARIANTS)
                            .map(|v| MergeVariant {
                                reduce_lookahead: la_of(v, reduce_item)
                                    .map(|s| s.iter().collect())
                                    .unwrap_or_default(),
                                other_lookahead: la_of(v, other_item)
                                    .map(|s| s.iter().collect())
                                    .unwrap_or_default(),
                            })
                            .collect();
                        (
                            Classification::MergeArtifact,
                            true,
                            Some(MergeEvidence {
                                merged_state: conflict.state,
                                variant_count: vs.len(),
                                variants: evidence,
                            }),
                        )
                    }
                }
                // Budget exhausted (or exploration unavailable): the
                // conservative verdict — splitting is not *proven* to help.
                None => (Classification::TrueAmbiguityCandidate, false, None),
            }
        }
    };

    ConflictProvenance {
        conflict: *conflict,
        classification,
        lr1_checked,
        chain,
        merge,
    }
}

/// Runs the full provenance analysis for a grammar: builds the relation
/// tables, explores canonical LR(1) when a reduce/reduce conflict needs
/// the merge check, and classifies every conflict and resolution.
///
/// Each conflict slot is classified inside its own containment boundary
/// (phase `"provenance.compute"`, probe of the same name, scoped by the
/// slot index like the engine's per-conflict fan-out), so a fault in one
/// slot leaves every other slot byte-identical.
pub(crate) fn compute(g: &Grammar, auto: &Automaton, tables: &Tables) -> GrammarProvenance {
    let started = Instant::now();
    let prov = ProvenanceTables::build(g, auto);

    let conflicts = tables.conflicts();
    let rr_cores: Vec<Vec<Item>> = {
        let mut cores: Vec<Vec<Item>> = conflicts
            .iter()
            .filter(|c| matches!(c.kind, ConflictKind::ReduceReduce { .. }))
            .map(|c| lalr_core(auto, c.state))
            .collect();
        cores.sort();
        cores.dedup();
        cores
    };
    let lr1 = if rr_cores.is_empty() {
        None
    } else {
        Some(explore_lr1(g, auto.analysis(), &rr_cores, LR1_STATE_BUDGET))
    };

    let mut slots: Vec<ProvenanceOutcome> = Vec::with_capacity(conflicts.len());
    for (i, c) in conflicts.iter().enumerate() {
        let outcome = crate::faultpoint::with_scope(i as u64, || {
            contain("provenance.compute", || {
                crate::fail_point!("provenance.compute");
                classify_conflict(g, auto, &prov, lr1.as_ref(), c)
            })
        });
        slots.push(match outcome {
            Ok(p) => ProvenanceOutcome::Classified(p),
            Err(e) => ProvenanceOutcome::Internal(e),
        });
    }

    let resolutions: Vec<ResolutionProvenance> = tables
        .resolutions()
        .iter()
        .map(|r| ResolutionProvenance {
            resolution: *r,
            classification: Classification::PrecedenceResolved,
            chain: prov.chain(g, auto, r.state, r.reduce_prod, g.tindex(r.terminal)),
        })
        .collect();

    let bytes = prov.estimated_bytes()
        + slots
            .iter()
            .map(|s| {
                64 + s.provenance().map_or(0, |p| {
                    p.chain.len() * std::mem::size_of::<ChainStep>()
                        + p.merge.as_ref().map_or(0, |m| {
                            m.variants
                                .iter()
                                .map(|v| {
                                    32 + (v.reduce_lookahead.len() + v.other_lookahead.len()) * 8
                                })
                                .sum::<usize>()
                        })
                })
            })
            .sum::<usize>()
        + resolutions
            .iter()
            .map(|r| 64 + r.chain.len() * std::mem::size_of::<ChainStep>())
            .sum::<usize>();

    GrammarProvenance {
        conflicts: slots,
        resolutions,
        lr1_states: lr1.as_ref().map_or(0, |e| e.states),
        lr1_budget_exhausted: lr1.as_ref().is_some_and(|e| e.exhausted),
        compute_time: started.elapsed(),
        bytes,
    }
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

/// A `(line N)` suffix for a production's source line, when known.
fn prod_loc(g: &Grammar, pid: ProdId) -> String {
    g.prod(pid)
        .line()
        .map_or_else(String::new, |l| format!(" (line {l})"))
}

/// A `(declared line N)` suffix for a symbol, when known.
fn sym_loc(g: &Grammar, sym: SymbolId) -> String {
    g.decl_line(sym)
        .map_or_else(String::new, |l| format!(" (declared line {l})"))
}

/// Renders one chain step as a deterministic, spanned line (no leading
/// indentation; callers prefix as needed).
pub fn render_chain_step(g: &Grammar, step: &ChainStep) -> String {
    match *step {
        ChainStep::Lookback {
            conflict_state,
            prod,
            goto_state,
            nonterminal,
        } => format!(
            "reducing `{}`{} in state {} pops back to state {}, whose goto on `{}` supplies the lookahead",
            g.format_prod(prod),
            prod_loc(g, prod),
            conflict_state.index(),
            goto_state.index(),
            g.display_name(nonterminal),
        ),
        ChainStep::Includes {
            from_state,
            from_nt,
            to_state,
            to_nt,
            via_prod,
        } => format!(
            "follow(state {}, `{}`) inherits follow(state {}, `{}`) through `{}`{} (nullable tail)",
            from_state.index(),
            g.display_name(from_nt),
            to_state.index(),
            g.display_name(to_nt),
            g.format_prod(via_prod),
            prod_loc(g, via_prod),
        ),
        ChainStep::Reads {
            from_state,
            from_nt,
            via_state,
            nullable_nt,
        } => format!(
            "after goto(state {}, `{}`), state {} can read the nullable `{}` — it can vanish, exposing what follows",
            from_state.index(),
            g.display_name(from_nt),
            via_state.index(),
            g.display_name(nullable_nt),
        ),
        ChainStep::DirectRead {
            state,
            nonterminal,
            shift_state,
            terminal,
        } => format!(
            "after goto(state {}, `{}`), state {} shifts `{}`{} directly",
            state.index(),
            g.display_name(nonterminal),
            shift_state.index(),
            g.display_name(terminal),
            sym_loc(g, terminal),
        ),
    }
}

/// Renders a full provenance record as the multi-line text block used by
/// `lalrcex explain` (deterministic; byte-identical at any worker count).
pub fn format_provenance(g: &Grammar, p: &ConflictProvenance) -> String {
    let c = &p.conflict;
    let mut out = format!(
        "Classification: {}{}\n",
        p.classification.label(),
        if p.lr1_checked {
            ""
        } else {
            " (canonical LR(1) budget exhausted; merge check skipped)"
        },
    );
    match p.classification {
        Classification::TrueAmbiguityCandidate => out.push_str(
            "  The conflict survives in canonical LR(1): splitting states cannot remove it;\n  \
             the grammar itself admits the competing parses.\n",
        ),
        Classification::MergeArtifact => out.push_str(
            "  The conflict exists only because LALR merged distinguishable LR(1) cores:\n  \
             splitting states fixes this, rewriting the grammar does not.\n",
        ),
        Classification::PrecedenceResolved => out.push_str(
            "  A precedence declaration silenced this conflict (see lint L009 for whether\n  \
             the silenced conflict hides a genuine ambiguity).\n",
        ),
    }
    if let Some(m) = &p.merge {
        out.push_str(&format!(
            "  State {} merges {} canonical variant{}:\n",
            m.merged_state.index(),
            m.variant_count,
            if m.variant_count == 1 { "" } else { "s" },
        ));
        for (i, v) in m.variants.iter().enumerate() {
            let names = |ts: &[usize]| -> String {
                ts.iter()
                    .map(|&t| g.display_name(g.terminal(t)))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!(
                "    variant {}: lookahead({}) = {{{}}}, lookahead({}) = {{{}}}\n",
                i + 1,
                crate::report::display_item_cup(g, c.reduce_item(g)),
                names(&v.reduce_lookahead),
                crate::report::display_item_cup(g, c.other_item(g)),
                names(&v.other_lookahead),
            ));
        }
    }
    if p.chain.is_empty() {
        out.push_str(&format!(
            "  (no provenance chain: `{}` is not derivable from the relation tables)\n",
            g.display_name(c.terminal),
        ));
    } else {
        out.push_str(&format!(
            "  Why `{}` is in the lookahead of {}:\n",
            g.display_name(c.terminal),
            crate::report::display_item_cup(g, c.reduce_item(g)),
        ));
        for step in &p.chain {
            out.push_str("    - ");
            out.push_str(&render_chain_step(g, step));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> Grammar {
        Grammar::parse(
            "%start stmt
             %%
             stmt : 'if' expr 'then' stmt 'else' stmt
                  | 'if' expr 'then' stmt
                  | expr '?' stmt stmt
                  | 'arr' '[' expr ']' ':=' expr
                  ;
             expr : num | expr '+' expr ;
             num  : digit | num digit ;",
        )
        .unwrap()
    }

    /// The textbook LALR-but-not-LR(1) grammar: canonical LR(1) separates
    /// the contexts after `a` and `b`; LALR merges them into one state
    /// with a reduce/reduce conflict.
    fn merge_artifact_grammar() -> Grammar {
        Grammar::parse(
            "%% s : 'a' x 'd' | 'b' y 'd' | 'a' y 'e' | 'b' x 'e' ;
             x : 'c' ;
             y : 'c' ;",
        )
        .unwrap()
    }

    /// Dense wrapper: classification outcomes for all conflicts.
    fn classify(g: &Grammar) -> GrammarProvenance {
        let auto = Automaton::build(g);
        let tables = auto.tables(g);
        compute(g, &auto, &tables)
    }

    #[test]
    fn dp_lookaheads_match_automaton_sets() {
        for text in [
            "%start stmt %% stmt : 'if' expr 'then' stmt 'else' stmt | 'if' expr 'then' stmt | expr '?' stmt stmt ; expr : NUM ;",
            "%% S : T | S T ; T : X | Y ; X : 'a' ; Y : 'a' 'a' 'b' ;",
            "%% s : a b 'z' ; a : 'x' | ; b : 'y' | ;",
            "%% e : e '+' e | NUM ;",
        ] {
            let g = Grammar::parse(text).unwrap();
            let auto = Automaton::build(&g);
            let prov = ProvenanceTables::build(&g, &auto);
            for sid in auto.state_ids() {
                let st = auto.state(sid);
                for (i, &it) in st.items().iter().enumerate() {
                    if !it.is_reduce(&g) || it.prod() == g.accept_prod() {
                        continue;
                    }
                    let dp = prov.lookahead(&g, &auto, sid, it.prod());
                    let auto_la = st.lookahead(i);
                    for t in 0..g.terminal_count() {
                        assert_eq!(
                            dp.contains(t),
                            auto_la.contains(t),
                            "grammar {text:?} state {sid:?} item {} terminal {}",
                            it.display(&g),
                            g.display_name(g.terminal(t)),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dangling_else_chain_ends_in_direct_read_of_else() {
        let g = figure1();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let prov = ProvenanceTables::build(&g, &auto);
        let c = tables
            .conflicts()
            .iter()
            .find(|c| g.display_name(c.terminal) == "else")
            .expect("dangling else conflict");
        let chain = prov.chain(&g, &auto, c.state, c.reduce_prod, g.tindex(c.terminal));
        assert!(!chain.is_empty());
        assert!(matches!(chain[0], ChainStep::Lookback { .. }));
        match chain.last().unwrap() {
            ChainStep::DirectRead { terminal, .. } => {
                assert_eq!(g.display_name(*terminal), "else");
            }
            other => panic!("chain must end in a direct read, got {other:?}"),
        }
        // The explanation renders deterministically with spans.
        let two = prov.chain(&g, &auto, c.state, c.reduce_prod, g.tindex(c.terminal));
        assert_eq!(chain, two, "chain is deterministic");
    }

    #[test]
    fn shift_reduce_conflicts_are_true_candidates() {
        let gp = classify(&figure1());
        assert!(!gp.conflicts.is_empty());
        for o in &gp.conflicts {
            let p = o.provenance().expect("no faults");
            assert_eq!(p.classification, Classification::TrueAmbiguityCandidate);
            assert!(p.lr1_checked);
            assert!(p.merge.is_none());
            assert!(!p.chain.is_empty());
        }
        assert_eq!(gp.lr1_states, 0, "no reduce/reduce: no LR(1) exploration");
    }

    #[test]
    fn lalr_merge_is_classified_merge_artifact() {
        let g = merge_artifact_grammar();
        let gp = classify(&g);
        let rr: Vec<_> = gp
            .conflicts
            .iter()
            .filter_map(ProvenanceOutcome::provenance)
            .filter(|p| matches!(p.conflict.kind, ConflictKind::ReduceReduce { .. }))
            .collect();
        assert!(!rr.is_empty(), "grammar has a reduce/reduce conflict");
        for p in &rr {
            assert_eq!(p.classification, Classification::MergeArtifact);
            assert!(p.lr1_checked);
            let m = p.merge.as_ref().expect("merge evidence");
            assert_eq!(m.variant_count, 2, "two canonical contexts merged");
            let ti = g.tindex(p.conflict.terminal);
            for v in &m.variants {
                assert!(
                    !(v.reduce_lookahead.contains(&ti) && v.other_lookahead.contains(&ti)),
                    "no canonical variant carries the conflict terminal in both lookaheads"
                );
            }
            let text = format_provenance(&g, p);
            assert!(text.contains("merge-artifact"));
            assert!(text.contains("splitting states fixes this"));
        }
        assert!(gp.lr1_states > 0);
        assert!(!gp.lr1_budget_exhausted);
    }

    #[test]
    fn genuinely_ambiguous_reduce_reduce_is_true_candidate() {
        // Two nonterminals deriving the same terminal with the same
        // follow: the conflict survives any amount of state splitting.
        let g = Grammar::parse("%% s : a X | b X ; a : T ; b : T ;").unwrap();
        let gp = classify(&g);
        let p = gp.conflicts[0].provenance().expect("classified");
        assert!(matches!(p.conflict.kind, ConflictKind::ReduceReduce { .. }));
        assert_eq!(p.classification, Classification::TrueAmbiguityCandidate);
        assert!(p.lr1_checked, "LR(1) check completed and confirmed");
    }

    #[test]
    fn resolutions_are_precedence_resolved_with_chains() {
        let g = Grammar::parse("%left '+' %% e : e '+' e | NUM ;").unwrap();
        let gp = classify(&g);
        assert!(gp.conflicts.is_empty());
        assert!(!gp.resolutions.is_empty());
        for r in &gp.resolutions {
            assert_eq!(r.classification, Classification::PrecedenceResolved);
            assert!(!r.chain.is_empty(), "silenced terminal has a chain too");
        }
        let counts = gp.counts();
        assert_eq!(counts.precedence_resolved, gp.resolutions.len() as u64);
        assert_eq!(counts.true_candidates + counts.merge_artifacts, 0);
    }

    #[test]
    fn counts_tally_by_classification() {
        let gp = classify(&merge_artifact_grammar());
        let counts = gp.counts();
        assert!(counts.merge_artifacts >= 1);
        assert_eq!(counts.internal, 0);
        assert_eq!(
            counts.true_candidates + counts.merge_artifacts,
            gp.conflicts.len() as u64
        );
    }

    #[test]
    fn compute_is_deterministic() {
        for text in [
            "%% s : 'a' x 'd' | 'b' y 'd' | 'a' y 'e' | 'b' x 'e' ; x : 'c' ; y : 'c' ;",
            "%% e : e '+' e | NUM ;",
        ] {
            let g = Grammar::parse(text).unwrap();
            let a = classify(&g);
            let b = classify(&g);
            assert_eq!(a.conflicts, b.conflicts, "{text}");
            assert_eq!(a.resolutions, b.resolutions, "{text}");
            let ga = &g;
            let rendered: Vec<String> = a
                .conflicts
                .iter()
                .filter_map(ProvenanceOutcome::provenance)
                .map(|p| format_provenance(ga, p))
                .collect();
            let rendered2: Vec<String> = b
                .conflicts
                .iter()
                .filter_map(ProvenanceOutcome::provenance)
                .map(|p| format_provenance(ga, p))
                .collect();
            assert_eq!(rendered, rendered2);
        }
    }

    #[test]
    fn estimated_bytes_are_nonzero() {
        let gp = classify(&figure1());
        assert!(gp.estimated_bytes() > 0);
    }

    #[test]
    fn tiny_budget_degrades_to_unchecked_candidate() {
        let g = merge_artifact_grammar();
        let auto = Automaton::build(&g);
        let prov = ProvenanceTables::build(&g, &auto);
        let tables = auto.tables(&g);
        let c = tables.conflicts()[0];
        let core = lalr_core(&auto, c.state);
        let lr1 = explore_lr1(&g, auto.analysis(), std::slice::from_ref(&core), 1);
        assert!(lr1.exhausted);
        let p = classify_conflict(&g, &auto, &prov, Some(&lr1), &c);
        assert_eq!(p.classification, Classification::TrueAmbiguityCandidate);
        assert!(!p.lr1_checked);
    }
}
