//! The product-parser outward search for unifying counterexamples (§5).
//!
//! Two copies of the parser are simulated in parallel, starting *at the
//! conflict* (Figure 8): one is forced to take the conflict reduction, the
//! other the conflict shift (or second reduction). Configurations hold one
//! item sequence and one partial-derivation list per parser; successor
//! configurations implement the eight actions of Figure 10 — transitions,
//! production steps, reverse transitions, reverse production steps, and
//! reductions, each on either parser. The search is ordered by a cost that
//! penalises production steps and repeated items (§5.4), and terminates
//! when both parsers have derived the same nonterminal with structurally
//! distinct derivations — a proof of ambiguity.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::{Duration, Instant};

use lalrcex_grammar::{Derivation, Grammar, SymbolId, SymbolKind, TerminalSet};
use lalrcex_lr::{Automaton, Conflict, ConflictKind, StateId};

use crate::cancel::{CancelToken, GovernorLease, MemoryGovernor, SearchSession};
use crate::error::EngineError;
use crate::state_graph::{StateGraph, StateItemId};
use crate::stats::SearchMetrics;

/// Rough per-configuration live-memory estimate (arena slot, core vectors,
/// derivations, visited-set key) used for the soft memory governor's
/// frontier accounting.
///
/// An estimate, not allocator truth — the governor is a *soft* limit.
const APPROX_CONFIG_BYTES: usize = 384;

/// Cost of a joint transition.
const TRANSITION_COST: u32 = 1;
/// Cost of a production step (penalised relative to transitions, §5.4).
const PRODUCTION_COST: u32 = 2;
/// Cost of a reverse transition (prepends to both parsers).
const REVERSE_TRANSITION_COST: u32 = 1;
/// Cost of a reverse production step.
const REVERSE_PRODUCTION_COST: u32 = 2;
/// Cost of a reduction.
const REDUCE_COST: u32 = 1;
/// Extra cost when a production step revisits a state-item already in the
/// sequence — §5.4: "the search algorithm must postpone such an expansion
/// until other configurations have been considered".
const DUPLICATE_PENALTY: u32 = 8;

/// Tunable knobs for the unifying search.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Per-conflict time limit (the paper's implementation uses 5 s).
    pub time_limit: Duration,
    /// Disable the shortest-path restriction on reverse transitions
    /// (the paper's `-extendedsearch` flag, §6).
    pub extended: bool,
    /// Hard cap on explored configurations (memory guard).
    pub max_configs: usize,
    /// Hard cap on a configuration's accumulated cost. Every search step
    /// costs at least 1, so this also bounds the depth and size of the
    /// derivations a configuration carries — successors beyond the cap are
    /// pruned, turning runaway searches on pathological grammars into a
    /// deterministic [`SearchOutcome::TimedOut`]. The default (`u32::MAX`)
    /// disables the cap; clock-free callers (the lint masking probe) set
    /// it so their worst case is bounded without consulting the clock.
    pub max_cost: u32,
    /// How many configuration pops between cancellation polls. Each poll
    /// is one relaxed atomic load on the shared [`CancelToken`], one
    /// `Instant::now()` against the deadline, and one memory-governor
    /// lease update — strided so the hot loop doesn't pay a clock syscall
    /// per node (the `cancel_stride` bench group quantifies the overhead).
    /// Rounded up to a power of two; `1` polls on every pop.
    pub cancel_stride: u32,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            time_limit: Duration::from_secs(5),
            extended: false,
            max_configs: 1 << 21,
            max_cost: u32::MAX,
            cancel_stride: 256,
        }
    }
}

/// A unifying counterexample: one string, two derivations.
#[derive(Clone, Debug)]
pub struct UnifyingExample {
    /// The ambiguous nonterminal (§5.4: the innermost nonterminal whose
    /// derivations unify).
    pub nonterminal: SymbolId,
    /// Derivation taking the conflict reduction.
    pub derivation1: Derivation,
    /// Derivation taking the conflict shift (or second reduction).
    pub derivation2: Derivation,
}

impl UnifyingExample {
    /// The counterexample string (leaves of either derivation).
    pub fn sentential_form(&self) -> Vec<SymbolId> {
        self.derivation1.leaves()
    }
}

/// Result of the unifying search for one conflict.
#[derive(Clone, Debug)]
pub enum SearchOutcome {
    /// A unifying counterexample was found — the grammar is ambiguous.
    Unifying(Box<UnifyingExample>),
    /// The configuration space was exhausted without finding one (under the
    /// shortest-path restriction unless `extended` was set).
    Exhausted,
    /// The time or memory budget ran out.
    TimedOut,
}

/// The dedup key of a configuration: everything that determines its future.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Core {
    items: [Vec<StateItemId>; 2],
    pending: [Option<TerminalSet>; 2],
    reduced: [bool; 2],
}

#[derive(Clone)]
struct Config {
    core: Core,
    derivs: [Vec<Derivation>; 2],
    cost: u32,
}

struct Search<'a> {
    g: &'a Grammar,
    auto: &'a Automaton,
    graph: &'a StateGraph,
    /// Dense terminal index of the conflict terminal.
    t_idx: usize,
    /// Reduce/reduce conflict? (Both parsers start on reduce items.)
    rr: bool,
    /// States allowed as reverse-transition targets (`None` = extended).
    allowed: Option<HashSet<StateId>>,
}

impl Search<'_> {
    fn item(&self, si: StateItemId) -> lalrcex_lr::Item {
        self.graph.item(si)
    }

    fn lookahead(&self, si: StateItemId) -> &TerminalSet {
        self.graph.lookahead(self.auto, si)
    }

    fn successors(&self, c: &Config, out: &mut Vec<Config>) {
        let red = [
            self.item(*c.core.items[0].last().expect("nonempty"))
                .is_reduce(self.g),
            self.item(*c.core.items[1].last().expect("nonempty"))
                .is_reduce(self.g),
        ];
        for (p, &is_red) in red.iter().enumerate() {
            if is_red {
                self.reduce_or_prep(c, p, out);
            }
        }
        if !red[0] && !red[1] {
            self.forward(c, out);
        }
    }

    fn reduce_or_prep(&self, c: &Config, p: usize, out: &mut Vec<Config>) {
        let items = &c.core.items[p];
        let m = items.len();
        let it = self.item(*items.last().expect("nonempty"));
        let l = self.g.prod(it.prod()).rhs().len();
        if m >= l + 2 {
            self.reduce(c, p, out);
        } else if m == l + 1 {
            // Figure 10(d): reverse production step on parser p.
            debug_assert_eq!(self.item(items[0]).dot(), 0);
            for &pre in self.graph.reverse_production_steps(items[0]) {
                let mut n = c.clone();
                n.core.items[p].insert(0, pre);
                n.cost += REVERSE_PRODUCTION_COST
                    + if c.core.items[p].contains(&pre) {
                        DUPLICATE_PENALTY
                    } else {
                        0
                    };
                out.push(n);
            }
        } else {
            // m < l+1: parser p's first item has dot > 0.
            debug_assert!(self.item(items[0]).dot() > 0);
            let q = 1 - p;
            if self.item(c.core.items[q][0]).dot() == 0 {
                // Figure 10(e): reverse production step on the other parser.
                for &pre in self.graph.reverse_production_steps(c.core.items[q][0]) {
                    let mut n = c.clone();
                    n.core.items[q].insert(0, pre);
                    n.cost += REVERSE_PRODUCTION_COST
                        + if c.core.items[q].contains(&pre) {
                            DUPLICATE_PENALTY
                        } else {
                            0
                        };
                    out.push(n);
                }
            } else {
                self.reverse_transitions(c, out);
            }
        }
    }

    /// Figure 10(c): prepend matching predecessors to both parsers.
    fn reverse_transitions(&self, c: &Config, out: &mut Vec<Config>) {
        let h = [c.core.items[0][0], c.core.items[1][0]];
        let sym = self
            .item(h[0])
            .prev_symbol(self.g)
            .expect("reverse transition requires dot > 0");
        for &p0 in self.graph.reverse_transitions(h[0]) {
            let state = self.graph.state(p0);
            if let Some(allowed) = &self.allowed {
                if !allowed.contains(&state) {
                    continue;
                }
            }
            // §5.3: the item prepended to the first parser must keep the
            // conflict terminal viable until Stage 1 completes.
            if !c.core.reduced[0] && !self.lookahead(p0).contains(self.t_idx) {
                continue;
            }
            for &p1 in self.graph.reverse_transitions(h[1]) {
                if self.graph.state(p1) != state {
                    continue;
                }
                if self.rr && !c.core.reduced[1] && !self.lookahead(p1).contains(self.t_idx) {
                    continue;
                }
                let mut n = c.clone();
                n.core.items[0].insert(0, p0);
                n.core.items[1].insert(0, p1);
                n.derivs[0].insert(0, Derivation::Leaf(sym));
                n.derivs[1].insert(0, Derivation::Leaf(sym));
                n.cost += REVERSE_TRANSITION_COST;
                out.push(n);
            }
        }
    }

    /// Figure 10(f): reduction on parser p (which has enough items).
    fn reduce(&self, c: &Config, p: usize, out: &mut Vec<Config>) {
        let items = &c.core.items[p];
        let m = items.len();
        let last = *items.last().expect("nonempty");
        let it = self.item(last);
        let prod = it.prod();
        let l = self.g.prod(prod).rhs().len();
        let lhs = self.g.prod(prod).lhs();

        let pred = items[m - l - 2];
        debug_assert_eq!(self.item(pred).next_symbol(self.g), Some(lhs));
        let Some(goto_si) = self.graph.transition(pred) else {
            return;
        };

        // Lookahead viability: intersect the pending constraint with the
        // reduce item's lookahead set.
        let la = self.lookahead(last);
        let pending = match &c.core.pending[p] {
            Some(pn) => {
                let mut x = pn.clone();
                x.intersect_with(la);
                x
            }
            None => la.clone(),
        };
        if pending.is_empty() {
            return;
        }

        // Wrap the last `l` symbol derivations (keeping dot markers inline).
        let mut derivs = c.derivs[p].clone();
        let mut popped = Vec::new();
        if l == 0 && !c.core.reduced[p] {
            // An ε-reduction at the conflict point keeps the dot inside.
            if matches!(derivs.last(), Some(Derivation::Dot)) {
                popped.push(derivs.pop().expect("just checked"));
            }
        }
        let mut need = l;
        while need > 0 {
            let d = derivs.pop().expect("derivations match transitions");
            if !matches!(d, Derivation::Dot) {
                need -= 1;
            }
            popped.push(d);
        }
        popped.reverse();
        derivs.push(Derivation::Node(lhs, popped));

        let mut n = c.clone();
        n.core.items[p].truncate(m - l - 1);
        n.core.items[p].push(goto_si);
        n.core.pending[p] = Some(pending);
        n.core.reduced[p] = true;
        n.derivs[p] = derivs;
        n.cost += REDUCE_COST;
        out.push(n);
    }

    /// Joint transitions and forward production steps (Figure 10(a), (b)).
    fn forward(&self, c: &Config, out: &mut Vec<Config>) {
        let last = [
            *c.core.items[0].last().expect("nonempty"),
            *c.core.items[1].last().expect("nonempty"),
        ];
        let next = [
            self.item(last[0]).next_symbol(self.g),
            self.item(last[1]).next_symbol(self.g),
        ];
        if next[0] == next[1] {
            if let (Some(sym), Some(t0), Some(t1)) = (
                next[0],
                self.graph.transition(last[0]),
                self.graph.transition(last[1]),
            ) {
                let p0 = self.pending_after(&c.core.pending[0], sym);
                let p1 = self.pending_after(&c.core.pending[1], sym);
                if let (Some(p0), Some(p1)) = (p0, p1) {
                    let mut n = c.clone();
                    n.core.items[0].push(t0);
                    n.core.items[1].push(t1);
                    n.core.pending = [p0, p1];
                    n.derivs[0].push(Derivation::Leaf(sym));
                    n.derivs[1].push(Derivation::Leaf(sym));
                    n.cost += TRANSITION_COST;
                    out.push(n);
                }
            }
        }
        for p in 0..2 {
            let Some(sym) = next[p] else { continue };
            if self.g.kind(sym) != SymbolKind::Nonterminal {
                continue;
            }
            for &tgt in self.graph.production_steps(last[p]) {
                let mut n = c.clone();
                n.core.items[p].push(tgt);
                n.cost += PRODUCTION_COST
                    + if c.core.items[p].contains(&tgt) {
                        DUPLICATE_PENALTY
                    } else {
                        0
                    };
                out.push(n);
            }
        }
    }

    /// Outcome of shifting `sym` against a pending lookahead constraint:
    /// `None` = forbidden, `Some(p)` = allowed with new pending `p`.
    #[allow(clippy::option_option)]
    fn pending_after(
        &self,
        pending: &Option<TerminalSet>,
        sym: SymbolId,
    ) -> Option<Option<TerminalSet>> {
        let Some(p) = pending else {
            return Some(None);
        };
        match self.g.kind(sym) {
            SymbolKind::Terminal => {
                if p.contains(self.g.tindex(sym)) {
                    Some(None)
                } else {
                    None
                }
            }
            SymbolKind::Nonterminal => {
                if self.auto.analysis().first(sym).intersects(p) {
                    Some(None)
                } else if self.auto.analysis().nullable(sym) {
                    // The constraint survives a nullable nonterminal.
                    Some(Some(p.clone()))
                } else {
                    None
                }
            }
        }
    }

    /// §5.4 completion: both item sequences have the shape
    /// `[? -> α · A β, ? -> α A · β]` over the same nonterminal `A`, with
    /// structurally distinct derivations of `A`.
    fn completed(&self, c: &Config) -> Option<UnifyingExample> {
        if c.core.items[0].len() != 2 || c.core.items[1].len() != 2 {
            return None;
        }
        let mut nts = [None, None];
        for (p, nt) in nts.iter_mut().enumerate() {
            let head = c.core.items[p][0];
            if self.graph.transition(head) != Some(c.core.items[p][1]) {
                return None;
            }
            *nt = self.item(head).next_symbol(self.g);
        }
        let a = nts[0]?;
        if nts[1] != Some(a) || self.g.kind(a) != SymbolKind::Nonterminal {
            return None;
        }
        let d0 = single_derivation(&c.derivs[0])?;
        let d1 = single_derivation(&c.derivs[1])?;
        if d0.strip_dots() == d1.strip_dots() {
            return None;
        }
        Some(UnifyingExample {
            nonterminal: a,
            derivation1: d0.clone(),
            derivation2: d1.clone(),
        })
    }
}

/// The unique non-dot derivation in a list, if there is exactly one.
fn single_derivation(derivs: &[Derivation]) -> Option<&Derivation> {
    let mut found = None;
    for d in derivs {
        if matches!(d, Derivation::Dot) {
            continue;
        }
        if found.is_some() {
            return None;
        }
        found = Some(d);
    }
    found
}

/// Runs the unifying search for one conflict.
///
/// `slsp_states` is the set of states on the shortest lookahead-sensitive
/// path; reverse transitions are restricted to it unless
/// [`SearchConfig::extended`] is set (§6).
pub fn unifying_search(
    g: &Grammar,
    auto: &Automaton,
    graph: &StateGraph,
    conflict: &Conflict,
    slsp_states: &[StateId],
    cfg: &SearchConfig,
) -> SearchOutcome {
    let mut metrics = SearchMetrics::default();
    unifying_search_metered(g, auto, graph, conflict, slsp_states, cfg, &mut metrics)
}

/// [`unifying_search`] with observability: fills `metrics` with the
/// explored/enqueued/deduped configuration counts and the frontier
/// high-water mark. The counters are deterministic for a given conflict
/// and configuration (the search itself is sequential and ordered).
#[allow(clippy::too_many_arguments)]
pub fn unifying_search_metered(
    g: &Grammar,
    auto: &Automaton,
    graph: &StateGraph,
    conflict: &Conflict,
    slsp_states: &[StateId],
    cfg: &SearchConfig,
    metrics: &mut SearchMetrics,
) -> SearchOutcome {
    let cancel = CancelToken::new();
    let governor = MemoryGovernor::unlimited();
    let session = SearchSession {
        cancel: &cancel,
        governor: &governor,
    };
    unifying_search_session(
        g,
        auto,
        graph,
        conflict,
        slsp_states,
        cfg,
        &session,
        metrics,
    )
}

/// Looks up the unresolved conflict on terminal `term` in a conflict
/// table, as a structured error instead of a panic: precedence
/// declarations legitimately resolve conflicts out of the table, so a
/// missing conflict is a *reachable* state, not an invariant violation.
pub fn conflict_on<'a>(
    g: &Grammar,
    conflicts: &'a [Conflict],
    term: &str,
) -> Result<&'a Conflict, EngineError> {
    conflicts
        .iter()
        .find(|c| g.display_name(c.terminal) == term)
        .ok_or_else(|| EngineError::no_conflict_on(term))
}

/// [`unifying_search_metered`] under a shared [`SearchSession`]: the
/// search polls `session.cancel` (plus its own wall-clock deadline) every
/// [`SearchConfig::cancel_stride`] pops, and reports its estimated live
/// frontier bytes to `session.governor`, *shedding* — tightening its cost
/// cap to the cost of the configuration it just popped so the frontier
/// drains — when the grammar-wide soft memory limit is exceeded.
///
/// Cancellation and shedding both surface as [`SearchOutcome::TimedOut`]:
/// the caller falls back to the nonunifying construction exactly as for a
/// per-conflict time limit (§6 graceful cutoff).
#[allow(clippy::too_many_arguments)]
pub fn unifying_search_session(
    g: &Grammar,
    auto: &Automaton,
    graph: &StateGraph,
    conflict: &Conflict,
    slsp_states: &[StateId],
    cfg: &SearchConfig,
    session: &SearchSession<'_>,
    metrics: &mut SearchMetrics,
) -> SearchOutcome {
    // Zero budget or an already-cancelled token never starts the search:
    // the `time_limit == 0` edge must degrade identically whether or not
    // the first stride poll would have been reached.
    if cfg.time_limit.is_zero() || session.cancel.is_cancelled() {
        return SearchOutcome::TimedOut;
    }
    let rr = matches!(conflict.kind, ConflictKind::ReduceReduce { .. });
    let t = conflict.terminal;
    let search = Search {
        g,
        auto,
        graph,
        t_idx: g.tindex(t),
        rr,
        allowed: if cfg.extended {
            None
        } else {
            Some(slsp_states.iter().copied().collect())
        },
    };

    let item1 = graph.node(conflict.state, conflict.reduce_item(g));
    let item2 = graph.node(conflict.state, conflict.other_item(g));
    let t_set = TerminalSet::singleton(g.terminal_count(), g.tindex(t));
    let init = Config {
        core: Core {
            items: [vec![item1], vec![item2]],
            pending: [Some(t_set.clone()), if rr { Some(t_set) } else { None }],
            reduced: [false, !rr],
        },
        derivs: [vec![Derivation::Dot], vec![Derivation::Dot]],
        cost: 0,
    };

    let deadline = Instant::now() + cfg.time_limit;
    let mut heap: BinaryHeap<Reverse<(u32, u64)>> = BinaryHeap::new();
    let mut arena: Vec<Config> = Vec::new();
    let mut visited: HashSet<Core> = HashSet::new();
    visited.insert(init.core.clone());
    arena.push(init);
    heap.push(Reverse((0, 0)));

    metrics.enqueued += 1;
    // Stride mask: poll when `pops & mask == 0`. Rounded up to a power of
    // two so the check is one AND instead of a division.
    let mask = cfg.cancel_stride.max(1).next_power_of_two() - 1;
    let mut lease = GovernorLease::new(session.governor);
    let mut effective_max_cost = cfg.max_cost;
    let mut scratch = Vec::new();
    let mut pops: u32 = 0;
    let mut cost_pruned = false;
    while let Some(Reverse((cost, idx))) = heap.pop() {
        pops += 1;
        metrics.explored += 1;
        if pops & mask == 0 {
            if session.cancel.is_cancelled() || Instant::now() > deadline {
                return SearchOutcome::TimedOut;
            }
            // Report this search's estimated frontier footprint, then shed
            // if the grammar-wide total is over the soft limit: no deeper
            // successors get enqueued, so the frontier drains
            // deterministically into `TimedOut` instead of growing.
            let est = arena.len().saturating_mul(APPROX_CONFIG_BYTES);
            lease.set(est);
            metrics.live_bytes_peak = metrics.live_bytes_peak.max(est as u64);
            if session.governor.over_limit() && effective_max_cost > cost {
                effective_max_cost = cost;
                cost_pruned = true;
                metrics.sheds += 1;
                session.governor.note_shed();
            }
        }
        #[cfg(feature = "failpoints")]
        if let Some(action) = crate::faultpoint::hit("unify.expand") {
            match action {
                crate::faultpoint::FaultAction::Panic => {
                    panic!("failpoint `unify.expand` injected panic")
                }
                crate::faultpoint::FaultAction::BudgetZero
                | crate::faultpoint::FaultAction::ClockJump => return SearchOutcome::TimedOut,
            }
        }
        if arena.len() > cfg.max_configs {
            return SearchOutcome::TimedOut;
        }
        let c = arena[idx as usize].clone();
        if let Some(ex) = search.completed(&c) {
            return SearchOutcome::Unifying(Box::new(ex));
        }
        scratch.clear();
        search.successors(&c, &mut scratch);
        for n in scratch.drain(..) {
            if n.cost > effective_max_cost {
                cost_pruned = true;
                continue;
            }
            if visited.insert(n.core.clone()) {
                let key = (n.cost, arena.len() as u64);
                arena.push(n);
                heap.push(Reverse(key));
                metrics.enqueued += 1;
            } else {
                metrics.deduped += 1;
            }
        }
        metrics.frontier_peak = metrics.frontier_peak.max(heap.len() as u64);
    }
    // A drained queue only proves exhaustion if nothing was cost-pruned.
    if cost_pruned {
        SearchOutcome::TimedOut
    } else {
        SearchOutcome::Exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lssi;
    use crate::report::ExampleKind;
    use crate::report::{analyze, Analyzer, CexConfig};
    use crate::state_graph::StateGraph;
    use crate::validate::unifying_consistent;

    fn figure1() -> Grammar {
        Grammar::parse(
            "%start stmt
             %%
             stmt : 'if' expr 'then' stmt 'else' stmt
                  | 'if' expr 'then' stmt
                  | expr '?' stmt stmt
                  | 'arr' '[' expr ']' ':=' expr
                  ;
             expr : num | expr '+' expr ;
             num  : digit | num digit ;",
        )
        .unwrap()
    }

    fn run_conflict(g: &Grammar, term: &str, cfg: &SearchConfig) -> SearchOutcome {
        let auto = Automaton::build(g);
        let graph = StateGraph::build(g, &auto);
        let tables = auto.tables(g);
        let c = match conflict_on(g, tables.conflicts(), term) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        };
        let target = graph.node(c.state, c.reduce_item(g));
        let path = lssi::shortest_path(g, &auto, &graph, target, g.tindex(c.terminal)).unwrap();
        let states = lssi::states_of_path(&graph, &path);
        unifying_search(g, &auto, &graph, c, &states, cfg)
    }

    #[test]
    fn dangling_else_unifying_example() {
        let g = figure1();
        let out = run_conflict(&g, "else", &SearchConfig::default());
        let SearchOutcome::Unifying(ex) = out else {
            panic!("expected unifying example, got {out:?}");
        };
        assert_eq!(g.display_name(ex.nonterminal), "stmt");
        assert_eq!(
            ex.derivation1.flat(&g),
            "if expr then if expr then stmt \u{2022} else stmt"
        );
        assert!(unifying_consistent(&g, &ex));
    }

    #[test]
    fn expression_plus_conflict() {
        // §2.4: expr + expr · + expr, a derivation of expr (not of stmt).
        let g = figure1();
        let out = run_conflict(&g, "+", &SearchConfig::default());
        let SearchOutcome::Unifying(ex) = out else {
            panic!("expected unifying example, got {out:?}");
        };
        assert_eq!(g.display_name(ex.nonterminal), "expr");
        assert_eq!(ex.derivation1.flat(&g), "expr + expr \u{2022} + expr");
        assert!(unifying_consistent(&g, &ex));
    }

    #[test]
    fn challenging_conflict_digit() {
        // §3.1: the hard one. The unifying counterexample is
        // `expr ? arr [ expr ] := num · digit digit ? stmt stmt` (or an
        // equivalent form), a derivation of stmt.
        let g = figure1();
        let out = run_conflict(&g, "digit", &SearchConfig::default());
        let SearchOutcome::Unifying(ex) = out else {
            panic!("expected unifying example, got {out:?}");
        };
        assert_eq!(g.display_name(ex.nonterminal), "stmt");
        assert!(unifying_consistent(&g, &ex));
        let s = ex.derivation1.flat(&g);
        assert!(
            s.starts_with("expr ? arr [ expr ] := num \u{2022} digit"),
            "example: {s}"
        );
    }

    #[test]
    fn figure3_search_exhausts() {
        // Figure 3 is unambiguous (LR(2)); the search must terminate with
        // no unifying counterexample.
        let g = Grammar::parse("%% S : T | S T ; T : X | Y ; X : 'a' ; Y : 'a' 'a' 'b' ;").unwrap();
        let out = run_conflict(&g, "a", &SearchConfig::default());
        assert!(matches!(out, SearchOutcome::Exhausted), "{out:?}");
    }

    #[test]
    fn figure7_finds_unifying_examples() {
        // Figure 7: shortest-path prefix is incompatible with the second
        // shift item, so the outward search must reconstruct `n n a · b d c`.
        let g = Grammar::parse(
            "%% S : N | N 'c' ;
                N : 'n' N 'd' | 'n' N 'c' | 'n' A 'b' | 'n' B ;
                A : 'a' ;
                B : 'a' 'b' 'c' | 'a' 'b' 'd' ;",
        )
        .unwrap();
        let report = analyze(&g);
        assert_eq!(report.reports.len(), 2, "Table 1 row figure7: 2 conflicts");
        for r in &report.reports {
            assert_eq!(r.kind(), Some(ExampleKind::Unifying), "{:?}", r.conflict);
            let ex = r.unifying.as_ref().unwrap();
            assert!(unifying_consistent(&g, ex));
        }
    }

    #[test]
    fn reduce_reduce_unifying() {
        // Ambiguous r/r: two nonterminals derive the same string with the
        // same continuation.
        let g = Grammar::parse("%% s : a X | b X ; a : T ; b : T ;").unwrap();
        let report = analyze(&g);
        assert_eq!(report.reports.len(), 1);
        let r = &report.reports[0];
        assert_eq!(r.kind(), Some(ExampleKind::Unifying));
        let ex = r.unifying.as_ref().unwrap();
        assert_eq!(g.display_name(ex.nonterminal), "s");
        assert_eq!(ex.derivation1.flat(&g), "T \u{2022} X");
        assert!(unifying_consistent(&g, ex));
    }

    #[test]
    fn epsilon_production_conflict() {
        // Nullable production in conflict: s : A s | A | ε-ish shape.
        let g = Grammar::parse("%% s : 'a' s | o ; o : | 'a' ;").unwrap();
        let report = analyze(&g);
        assert!(!report.reports.is_empty());
        for r in &report.reports {
            if let Some(ex) = &r.unifying {
                assert!(unifying_consistent(&g, ex), "{:?}", ex);
            }
        }
        assert!(report.unifying_count() >= 1, "grammar is ambiguous");
    }

    #[test]
    fn timeout_is_respected() {
        let g = figure1();
        let cfg = SearchConfig {
            time_limit: Duration::ZERO,
            ..SearchConfig::default()
        };
        let out = run_conflict(&g, "else", &cfg);
        assert!(matches!(out, SearchOutcome::TimedOut), "{out:?}");
    }

    #[test]
    fn conflict_on_missing_is_structured_error() {
        // A lookup miss is a reachable state (precedence resolution), so it
        // is a structured `EngineError`, not a panic.
        let g = figure1();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let err = conflict_on(&g, tables.conflicts(), "nosuch").unwrap_err();
        assert_eq!(err.phase, "lookup");
        assert!(err.message.contains("`nosuch`"));
        assert!(err.message.contains("precedence"));
    }

    fn run_conflict_session(
        g: &Grammar,
        term: &str,
        cfg: &SearchConfig,
        session: &SearchSession<'_>,
        metrics: &mut SearchMetrics,
    ) -> SearchOutcome {
        let auto = Automaton::build(g);
        let graph = StateGraph::build(g, &auto);
        let tables = auto.tables(g);
        let c = match conflict_on(g, tables.conflicts(), term) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        };
        let target = graph.node(c.state, c.reduce_item(g));
        let path = lssi::shortest_path(g, &auto, &graph, target, g.tindex(c.terminal)).unwrap();
        let states = lssi::states_of_path(&graph, &path);
        unifying_search_session(g, &auto, &graph, c, &states, cfg, session, metrics)
    }

    #[test]
    fn precancelled_token_stops_before_searching() {
        let g = figure1();
        let cancel = CancelToken::new();
        cancel.cancel(crate::cancel::CancelReason::Signal);
        let governor = MemoryGovernor::unlimited();
        let session = SearchSession {
            cancel: &cancel,
            governor: &governor,
        };
        let mut m = SearchMetrics::default();
        let out = run_conflict_session(&g, "else", &SearchConfig::default(), &session, &mut m);
        assert!(matches!(out, SearchOutcome::TimedOut), "{out:?}");
        assert_eq!(m.explored, 0, "cancelled before the first pop");
    }

    #[test]
    fn over_limit_governor_sheds_and_drains() {
        let g = figure1();
        let cancel = CancelToken::new();
        let governor = MemoryGovernor::with_limit_bytes(1);
        let session = SearchSession {
            cancel: &cancel,
            governor: &governor,
        };
        let cfg = SearchConfig {
            cancel_stride: 1, // poll every pop so the shed fires immediately
            ..SearchConfig::default()
        };
        let mut m = SearchMetrics::default();
        let out = run_conflict_session(&g, "digit", &cfg, &session, &mut m);
        assert!(matches!(out, SearchOutcome::TimedOut), "{out:?}");
        assert!(m.sheds >= 1, "search shed at least once");
        assert!(governor.sheds() >= 1, "shed recorded grammar-wide");
        assert_eq!(governor.live_bytes(), 0, "lease released on return");
    }

    #[test]
    fn stride_does_not_change_search_counters() {
        // The stride only changes *when* the clock is consulted, never the
        // order of expansion: counters are identical for stride 1 and 256.
        let g = figure1();
        let governor = MemoryGovernor::unlimited();
        let mut counters = Vec::new();
        for stride in [1u32, 256] {
            let cancel = CancelToken::new();
            let session = SearchSession {
                cancel: &cancel,
                governor: &governor,
            };
            let cfg = SearchConfig {
                cancel_stride: stride,
                ..SearchConfig::default()
            };
            let mut m = SearchMetrics::default();
            let out = run_conflict_session(&g, "digit", &cfg, &session, &mut m);
            assert!(matches!(out, SearchOutcome::Unifying(_)), "{out:?}");
            counters.push((m.explored, m.enqueued, m.deduped, m.frontier_peak));
        }
        assert_eq!(counters[0], counters[1]);
    }

    #[test]
    fn analyzer_reports_all_figure1_conflicts_unifying() {
        // Table 1 row figure1: 3 conflicts, 3 unifying.
        let g = figure1();
        let mut an = Analyzer::new(&g);
        let report = an.analyze_all(&CexConfig::default());
        assert_eq!(report.reports.len(), 3);
        assert_eq!(report.unifying_count(), 3);
        assert_eq!(report.exhausted_count(), 0);
        assert_eq!(report.timeout_count(), 0);
    }

    #[test]
    fn cumulative_budget_skips_search() {
        let g = figure1();
        let mut an = Analyzer::new(&g);
        let cfg = CexConfig {
            cumulative_limit: Duration::ZERO,
            ..CexConfig::default()
        };
        let report = an.analyze_all(&cfg);
        assert_eq!(report.unifying_count(), 0);
        assert!(report
            .reports
            .iter()
            .all(|r| r.kind() == Some(ExampleKind::NonunifyingSkipped)));
        // Nonunifying fallbacks are still produced.
        assert!(report.reports.iter().all(|r| r.nonunifying.is_some()));
    }
}
