//! The product-parser outward search for unifying counterexamples (§5).
//!
//! Two copies of the parser are simulated in parallel, starting *at the
//! conflict* (Figure 8): one is forced to take the conflict reduction, the
//! other the conflict shift (or second reduction). Configurations hold one
//! item sequence and one partial-derivation list per parser; successor
//! configurations implement the eight actions of Figure 10 — transitions,
//! production steps, reverse transitions, reverse production steps, and
//! reductions, each on either parser. The search is ordered by a cost that
//! penalises production steps and repeated items (§5.4), and terminates
//! when both parsers have derived the same nonterminal with structurally
//! distinct derivations — a proof of ambiguity.
//!
//! # Data-oriented core
//!
//! Configurations are struct-of-arrays records (see [`crate::soa`]): item
//! sequences and derivation lists are persistent double-ended sequences
//! ([`Seq`]) sharing immutable cons cells in arena storage, derivations
//! are DAG nodes whose child lists are spans in a word pool, pending
//! lookahead constraints are interned set ids, the cost queue is a
//! radix-by-cost bucket ring with *explicit* FIFO order within a cost, and
//! the visited set is an open-addressing table that never copies keys.
//!
//! Every Figure 10 action edits a sequence at one end, so a successor
//! costs O(edit): a couple of cons cells plus an incremental update of the
//! positional sequence hash (appends multiply, prepends add at weight
//! `SEQ_X^len`, reduction pops divide — see [`crate::soa::SEQ_X`]). This
//! matters beyond constant factors: the former representations (owned
//! vectors per configuration, then flat span copies) were *quadratic* in
//! search depth, and the Stack Overflow grammars drive deep, narrow
//! frontiers whose item sequences grow to thousands of entries — flat
//! copies turned a 200k-configuration search into gigabytes of memcpy and
//! page faults.
//!
//! The frontier is processed one cost *bucket* at a time: every action
//! costs at least 1, so the current bucket can never receive new entries
//! while it is being expanded. Bucket expansion is side-effect-free and is
//! chunked across any extra workers the engine's [`ShardBudget`](crate::cancel::ShardBudget) lends
//! (intra-conflict frontier sharding); the results are then merged into the
//! arenas in canonical batch order, so the search's outcome *and* all of
//! its deterministic counters are byte-identical at any worker count.

use std::time::{Duration, Instant};

use lalrcex_grammar::{Grammar, SymbolId, SymbolKind, TerminalSet};
use lalrcex_lr::{Automaton, Conflict, ConflictKind, StateId};

use crate::cancel::{CancelToken, GovernorLease, MemoryGovernor, SearchSession};
use crate::error::EngineError;
use crate::soa::{
    itemh, mix, wpow, BucketQueue, CellArena, DerivArena, FactMap, Pool, Seq, SetInterner, Visited,
    DOT, NIL, NO_PENDING, SEQ_X, SEQ_XINV,
};
use crate::state_graph::{NodeSet, StateGraph, StateItemId};
use crate::stats::SearchMetrics;

/// Cost of a joint transition.
const TRANSITION_COST: u32 = 1;
/// Cost of a production step (penalised relative to transitions, §5.4).
const PRODUCTION_COST: u32 = 2;
/// Cost of a reverse transition (prepends to both parsers).
const REVERSE_TRANSITION_COST: u32 = 1;
/// Cost of a reverse production step.
const REVERSE_PRODUCTION_COST: u32 = 2;
/// Cost of a reduction.
const REDUCE_COST: u32 = 1;
/// Extra cost when a production step revisits a state-item already in the
/// sequence — §5.4: "the search algorithm must postpone such an expansion
/// until other configurations have been considered".
const DUPLICATE_PENALTY: u32 = 8;
/// Hard ceiling on extra workers one frontier batch will recruit.
const MAX_SHARDS: usize = 15;

/// Tunable knobs for the unifying search.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Per-conflict time limit (the paper's implementation uses 5 s).
    pub time_limit: Duration,
    /// Disable the shortest-path restriction on reverse transitions
    /// (the paper's `-extendedsearch` flag, §6).
    pub extended: bool,
    /// Hard cap on explored configurations (memory guard).
    pub max_configs: usize,
    /// Hard cap on a configuration's accumulated cost. Every search step
    /// costs at least 1, so this also bounds the depth and size of the
    /// derivations a configuration carries — successors beyond the cap are
    /// pruned, turning runaway searches on pathological grammars into a
    /// deterministic [`SearchOutcome::TimedOut`]. The default (`u32::MAX`)
    /// disables the cap; clock-free callers (the lint masking probe) set
    /// it so their worst case is bounded without consulting the clock.
    pub max_cost: u32,
    /// How many configuration pops between cancellation polls. Each poll
    /// is one relaxed atomic load on the shared [`CancelToken`], one
    /// `Instant::now()` against the deadline, and one memory-governor
    /// lease update — strided so the hot loop doesn't pay a clock syscall
    /// per node (the `cancel_stride` bench group quantifies the overhead).
    /// Rounded up to a power of two; `1` polls on every pop.
    pub cancel_stride: u32,
    /// Smallest frontier batch worth sharding across extra workers from
    /// the session's [`ShardBudget`](crate::cancel::ShardBudget) — below it the per-batch thread-spawn
    /// overhead dominates. Sharding never changes results or deterministic
    /// counters, only wall-clock, so this is purely a throughput knob
    /// (tests pin determinism with `1` to force sharding on tiny batches).
    pub shard_min: u32,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            time_limit: Duration::from_secs(5),
            extended: false,
            max_configs: 1 << 21,
            max_cost: u32::MAX,
            cancel_stride: 256,
            shard_min: 256,
        }
    }
}

/// A unifying counterexample: one string, two derivations.
#[derive(Clone, Debug)]
pub struct UnifyingExample {
    /// The ambiguous nonterminal (§5.4: the innermost nonterminal whose
    /// derivations unify).
    pub nonterminal: SymbolId,
    /// Derivation taking the conflict reduction.
    pub derivation1: lalrcex_grammar::Derivation,
    /// Derivation taking the conflict shift (or second reduction).
    pub derivation2: lalrcex_grammar::Derivation,
}

impl UnifyingExample {
    /// The counterexample string (leaves of either derivation).
    pub fn sentential_form(&self) -> Vec<SymbolId> {
        self.derivation1.leaves()
    }
}

/// Result of the unifying search for one conflict.
#[derive(Clone, Debug)]
pub enum SearchOutcome {
    /// A unifying counterexample was found — the grammar is ambiguous.
    Unifying(Box<UnifyingExample>),
    /// The configuration space was exhausted without finding one (under the
    /// shortest-path restriction unless `extended` was set).
    Exhausted,
    /// The time or memory budget ran out.
    TimedOut,
}

/// All search-owned storage: the configuration arenas plus their shared
/// pools. Cells are only allocated at initialization and during the
/// sequential merge phase, so everything here grows deterministically with
/// the (worker-invariant) insertion sequence — the governor lease derived
/// from actual capacities is reproducible across runs and worker counts.
struct Mem {
    /// Item-sequence cons cells.
    icell: CellArena,
    /// Derivation-list cons cells.
    dcell: CellArena,
    /// Materialized child spans of reduction nodes.
    kids: Pool,
    /// Derivation DAG nodes.
    nodes: DerivArena,
    /// Interned pending lookahead constraints.
    sets: SetInterner,
    // --- configuration record columns ---
    cost: Vec<u32>,
    /// Bit 0: parser 0 has reduced; bit 1: parser 1 has reduced.
    flags: Vec<u8>,
    pend: Vec<[u32; 2]>,
    /// Per-parser item sequences.
    iseq: Vec<[Seq; 2]>,
    /// Cached first item per parser (only prepends change it — a
    /// reduction always keeps at least one item).
    ifirst: Vec<[u32; 2]>,
    /// Positional hash of each parser's item sequence.
    ihash: Vec<[u64; 2]>,
    /// Per-parser derivation lists.
    dseq: Vec<[Seq; 2]>,
}

impl Mem {
    fn new(symbols: usize) -> Mem {
        Mem {
            icell: CellArena::new(),
            dcell: CellArena::new(),
            kids: Pool::new(),
            nodes: DerivArena::new(symbols),
            sets: SetInterner::new(),
            cost: Vec::new(),
            flags: Vec::new(),
            pend: Vec::new(),
            iseq: Vec::new(),
            ifirst: Vec::new(),
            ihash: Vec::new(),
            dseq: Vec::new(),
        }
    }

    /// Configurations stored.
    fn len(&self) -> usize {
        self.cost.len()
    }

    /// Both sequence lengths of configuration `idx`.
    fn ilen(&self, idx: usize) -> [u32; 2] {
        [self.iseq[idx][0].len(), self.iseq[idx][1].len()]
    }

    /// Estimated allocated bytes, derived from actual capacities (feeds
    /// the memory governor's lease).
    fn approx_bytes(&self, terminal_count: usize, visited: &Visited, queue: &BucketQueue) -> usize {
        self.icell.capacity_bytes()
            + self.dcell.capacity_bytes()
            + self.kids.capacity() * 4
            + self.nodes.capacity_bytes()
            + self.sets.capacity_bytes(terminal_count)
            + self.cost.capacity() * 4
            + self.flags.capacity()
            + self.pend.capacity() * 8
            + self.iseq.capacity() * std::mem::size_of::<[Seq; 2]>()
            + self.ifirst.capacity() * 8
            + self.ihash.capacity() * 16
            + self.dseq.capacity() * std::mem::size_of::<[Seq; 2]>()
            + visited.capacity_bytes()
            + queue.capacity_bytes()
    }
}

/// Appends item `v` to a positional sequence hash.
#[inline]
fn h_append(h: u64, v: u32) -> u64 {
    h.wrapping_mul(SEQ_X).wrapping_add(itemh(v))
}

/// Prepends item `v` to the hash of a length-`len` sequence.
#[inline]
fn h_prepend(h: u64, v: u32, len: u32) -> u64 {
    h.wrapping_add(itemh(v).wrapping_mul(wpow(SEQ_X, len as u64)))
}

/// Removes the trailing items whose values are given last-first.
fn h_pop_back(h: u64, vals: &[u32]) -> u64 {
    let mut sub = 0u64;
    let mut pw = 1u64;
    for &v in vals {
        sub = sub.wrapping_add(itemh(v).wrapping_mul(pw));
        pw = pw.wrapping_mul(SEQ_X);
    }
    h.wrapping_sub(sub)
        .wrapping_mul(wpow(SEQ_XINV, vals.len() as u64))
}

/// The dedup hash of a configuration, before pending ids are mixed in.
fn cand_hash(len: [u32; 2], flags: u8, h: [u64; 2]) -> u64 {
    let seed = mix(mix(mix(0x5EED, len[0] as u64), len[1] as u64), flags as u64);
    mix(mix(seed, h[0]), h[1])
}

/// How a successor's pending constraint derives from its parent's.
#[derive(Clone, Copy)]
enum PendRef {
    /// Same id as the parent.
    Keep,
    /// An explicit id ([`NO_PENDING`] or an already-interned id).
    Id(u32),
    /// A freshly built set, stored in the expansion buffer; interned at
    /// merge time so ids stay in canonical insertion order.
    New(u32),
}

/// How a successor's item sequence derives from its parent's.
#[derive(Clone, Copy)]
enum ItemOp {
    /// Share the parent's sequence.
    Keep,
    /// `[item] ++ parent` (reverse transition / reverse production step).
    Prepend(u32),
    /// `parent ++ [item]` (joint transition / production step).
    Append(u32),
    /// Pop the last `pops` items and append the goto item.
    Reduce { pops: u32, goto_item: u32 },
}

/// How a successor's derivation list derives from its parent's.
#[derive(Clone, Copy)]
enum DerivDesc {
    /// Share the parent's list (pure item-sequence actions).
    Keep,
    /// `[leaf] ++ parent` (reverse transition).
    Prepend(u32),
    /// `parent ++ [leaf]` (joint transition).
    Append(u32),
    /// Reduction: pop the last `pops` entries (dot markers included), wrap
    /// them in a new node of `lhs`, and append that node.
    Reduce { pops: u32, lhs: SymbolId },
}

/// A successor candidate produced by (possibly parallel) expansion; merge
/// resolves it against the visited set and commits it to the arenas.
/// Candidates are pure *edit descriptors* — expansion allocates no cells,
/// so it can run sharded without touching shared state.
struct Cand {
    parent: u32,
    cost: u32,
    flags: u8,
    pend: [PendRef; 2],
    /// Per-parser item-sequence edit.
    op: [ItemOp; 2],
    /// Resulting item-sequence lengths.
    len: [u32; 2],
    /// Resulting positional item-sequence hashes.
    h: [u64; 2],
    /// Hash over lengths, flags, and items; pending ids are mixed in at
    /// merge time (after interning).
    hash: u64,
    dd: [DerivDesc; 2],
}

/// Per-worker expansion output; cleared per batch, so its transient
/// capacity is deliberately *excluded* from the governor lease. The
/// membership memo is excluded for a second reason: each worker grows its
/// own, so its size is the one piece of state that *does* vary with the
/// worker count — leasing it would move the governor's shed point.
#[derive(Default)]
struct ExpandBuf {
    cands: Vec<Cand>,
    new_sets: Vec<TerminalSet>,
    /// Transient back-read values (reduction predecessors).
    vals: Vec<u32>,
    /// Transient cell-walk scratch.
    scratch: Vec<u32>,
    /// Memoized §5.4 duplicate-check facts; persists across batches
    /// (cells are immutable, so facts never go stale).
    memo: FactMap,
}

impl ExpandBuf {
    fn clear(&mut self) {
        self.cands.clear();
        self.new_sets.clear();
    }
}

#[inline]
fn si(w: u32) -> StateItemId {
    StateItemId::from_index(w as usize)
}

struct Search<'a> {
    g: &'a Grammar,
    auto: &'a Automaton,
    graph: &'a StateGraph,
    /// Dense terminal index of the conflict terminal.
    t_idx: usize,
    /// Reduce/reduce conflict? (Both parsers start on reduce items.)
    rr: bool,
    /// States allowed as reverse-transition targets (`None` = extended).
    allowed: Option<NodeSet>,
}

impl Search<'_> {
    fn item(&self, w: u32) -> lalrcex_lr::Item {
        self.graph.item(si(w))
    }

    fn lookahead(&self, id: StateItemId) -> &TerminalSet {
        self.graph.lookahead(self.auto, id)
    }

    /// Finalizes a candidate from its edit descriptors.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        buf: &mut ExpandBuf,
        parent: u32,
        cost: u32,
        flags: u8,
        pend: [PendRef; 2],
        op: [ItemOp; 2],
        len: [u32; 2],
        h: [u64; 2],
        dd: [DerivDesc; 2],
    ) {
        let hash = cand_hash(len, flags, h);
        buf.cands.push(Cand {
            parent,
            cost,
            flags,
            pend,
            op,
            len,
            h,
            hash,
            dd,
        });
    }

    /// Emits all Figure 10 successors of configuration `idx`.
    fn successors(&self, mem: &Mem, idx: u32, buf: &mut ExpandBuf) {
        let i = idx as usize;
        let red = [
            self.item(mem.iseq[i][0].last(&mem.icell)).is_reduce(self.g),
            self.item(mem.iseq[i][1].last(&mem.icell)).is_reduce(self.g),
        ];
        for (p, &is_red) in red.iter().enumerate() {
            if is_red {
                self.reduce_or_prep(mem, idx, p, buf);
            }
        }
        if !red[0] && !red[1] {
            self.forward(mem, idx, buf);
        }
    }

    fn reduce_or_prep(&self, mem: &Mem, idx: u32, p: usize, buf: &mut ExpandBuf) {
        let i = idx as usize;
        let m = mem.iseq[i][p].len() as usize;
        let it = self.item(mem.iseq[i][p].last(&mem.icell));
        let l = self.g.prod(it.prod()).rhs().len();
        if m >= l + 2 {
            self.reduce(mem, idx, p, buf);
        } else if m == l + 1 {
            // Figure 10(d): reverse production step on parser p.
            debug_assert_eq!(self.item(mem.ifirst[i][p]).dot(), 0);
            self.rev_prod_steps(mem, idx, p, buf);
        } else {
            // m < l+1: parser p's first item has dot > 0.
            debug_assert!(self.item(mem.ifirst[i][p]).dot() > 0);
            let q = 1 - p;
            if self.item(mem.ifirst[i][q]).dot() == 0 {
                // Figure 10(e): reverse production step on the other parser.
                self.rev_prod_steps(mem, idx, q, buf);
            } else {
                self.reverse_transitions(mem, idx, buf);
            }
        }
    }

    /// Reverse production steps prepending to parser `p` (Figure 10(d,e)).
    fn rev_prod_steps(&self, mem: &Mem, idx: u32, p: usize, buf: &mut ExpandBuf) {
        let i = idx as usize;
        let cost = mem.cost[i];
        let flags = mem.flags[i];
        let oldlen = mem.iseq[i][p].len();
        for &pre in self.graph.reverse_production_steps(si(mem.ifirst[i][p])) {
            let pre = pre.index() as u32;
            let dup = mem.iseq[i][p].contains_memo(&mem.icell, pre, false, &mut buf.memo);
            let mut op = [ItemOp::Keep, ItemOp::Keep];
            op[p] = ItemOp::Prepend(pre);
            let mut len = mem.ilen(i);
            len[p] += 1;
            let mut h = mem.ihash[i];
            h[p] = h_prepend(h[p], pre, oldlen);
            self.emit(
                buf,
                idx,
                cost + REVERSE_PRODUCTION_COST + if dup { DUPLICATE_PENALTY } else { 0 },
                flags,
                [PendRef::Keep, PendRef::Keep],
                op,
                len,
                h,
                [DerivDesc::Keep, DerivDesc::Keep],
            );
        }
    }

    /// Figure 10(c): prepend matching predecessors to both parsers.
    fn reverse_transitions(&self, mem: &Mem, idx: u32, buf: &mut ExpandBuf) {
        let i = idx as usize;
        let [f0, f1] = mem.ifirst[i];
        let flags = mem.flags[i];
        let cost = mem.cost[i] + REVERSE_TRANSITION_COST;
        let lens = mem.ilen(i);
        let sym = self
            .item(f0)
            .prev_symbol(self.g)
            .expect("reverse transition requires dot > 0");
        let leaf = mem.nodes.leaf(sym);
        for &p0 in self.graph.reverse_transitions(si(f0)) {
            let state = self.graph.state(p0);
            if let Some(allowed) = &self.allowed {
                if !allowed.contains(state.index()) {
                    continue;
                }
            }
            // §5.3: the item prepended to the first parser must keep the
            // conflict terminal viable until Stage 1 completes.
            if flags & 1 == 0 && !self.lookahead(p0).contains(self.t_idx) {
                continue;
            }
            for &p1 in self.graph.reverse_transitions(si(f1)) {
                if self.graph.state(p1) != state {
                    continue;
                }
                if self.rr && flags & 2 == 0 && !self.lookahead(p1).contains(self.t_idx) {
                    continue;
                }
                let w0 = p0.index() as u32;
                let w1 = p1.index() as u32;
                let h = [
                    h_prepend(mem.ihash[i][0], w0, lens[0]),
                    h_prepend(mem.ihash[i][1], w1, lens[1]),
                ];
                self.emit(
                    buf,
                    idx,
                    cost,
                    flags,
                    [PendRef::Keep, PendRef::Keep],
                    [ItemOp::Prepend(w0), ItemOp::Prepend(w1)],
                    [lens[0] + 1, lens[1] + 1],
                    h,
                    [DerivDesc::Prepend(leaf), DerivDesc::Prepend(leaf)],
                );
            }
        }
    }

    /// Figure 10(f): reduction on parser p (which has enough items).
    fn reduce(&self, mem: &Mem, idx: u32, p: usize, buf: &mut ExpandBuf) {
        let i = idx as usize;
        let seq = mem.iseq[i][p];
        let m = seq.len() as usize;
        let last_w = seq.last(&mem.icell);
        let it = self.item(last_w);
        let prod = it.prod();
        let l = self.g.prod(prod).rhs().len();
        let lhs = self.g.prod(prod).lhs();

        // The last `l+2` item words, last first (valid since `m >= l+2`):
        // the goto predecessor sits just before the reduced span.
        seq.read_back(&mem.icell, (l + 2) as u32, &mut buf.vals, &mut buf.scratch);
        let pred = si(buf.vals[l + 1]);
        debug_assert_eq!(self.graph.item(pred).next_symbol(self.g), Some(lhs));
        let Some(goto_si) = self.graph.transition(pred) else {
            return;
        };

        // Lookahead viability: intersect the pending constraint with the
        // reduce item's lookahead set.
        let la = self.lookahead(si(last_w));
        let pid = mem.pend[i][p];
        let pend_p = if pid == NO_PENDING {
            let slot = buf.new_sets.len() as u32;
            buf.new_sets.push(la.clone());
            PendRef::New(slot)
        } else {
            let pn = mem.sets.get(pid);
            let mut x = pn.clone();
            x.intersect_with(la);
            if x.is_empty() {
                return;
            }
            if &x == pn {
                PendRef::Keep
            } else {
                let slot = buf.new_sets.len() as u32;
                buf.new_sets.push(x);
                PendRef::New(slot)
            }
        };

        let flags = mem.flags[i];
        let dpops = dlist_pops(mem, i, p, l, flags, &mut buf.scratch);

        let goto_w = goto_si.index() as u32;
        let mut op = [ItemOp::Keep, ItemOp::Keep];
        op[p] = ItemOp::Reduce {
            pops: (l + 1) as u32,
            goto_item: goto_w,
        };
        let mut len = mem.ilen(i);
        len[p] = (m - l - 1) as u32 + 1;
        let mut h = mem.ihash[i];
        h[p] = h_append(h_pop_back(h[p], &buf.vals[..=l]), goto_w);
        let mut pend = [PendRef::Keep, PendRef::Keep];
        pend[p] = pend_p;
        let mut dd = [DerivDesc::Keep, DerivDesc::Keep];
        dd[p] = DerivDesc::Reduce { pops: dpops, lhs };
        self.emit(
            buf,
            idx,
            mem.cost[i] + REDUCE_COST,
            flags | (1 << p),
            pend,
            op,
            len,
            h,
            dd,
        );
    }

    /// Joint transitions and forward production steps (Figure 10(a), (b)).
    fn forward(&self, mem: &Mem, idx: u32, buf: &mut ExpandBuf) {
        let i = idx as usize;
        let lens = mem.ilen(i);
        let last = [
            si(mem.iseq[i][0].last(&mem.icell)),
            si(mem.iseq[i][1].last(&mem.icell)),
        ];
        let next = [
            self.graph.item(last[0]).next_symbol(self.g),
            self.graph.item(last[1]).next_symbol(self.g),
        ];
        if next[0] == next[1] {
            if let (Some(sym), Some(t0), Some(t1)) = (
                next[0],
                self.graph.transition(last[0]),
                self.graph.transition(last[1]),
            ) {
                let p0 = self.pending_after(mem, mem.pend[i][0], sym);
                let p1 = self.pending_after(mem, mem.pend[i][1], sym);
                if let (Some(p0), Some(p1)) = (p0, p1) {
                    let w0 = t0.index() as u32;
                    let w1 = t1.index() as u32;
                    let leaf = mem.nodes.leaf(sym);
                    let h = [h_append(mem.ihash[i][0], w0), h_append(mem.ihash[i][1], w1)];
                    self.emit(
                        buf,
                        idx,
                        mem.cost[i] + TRANSITION_COST,
                        mem.flags[i],
                        [PendRef::Id(p0), PendRef::Id(p1)],
                        [ItemOp::Append(w0), ItemOp::Append(w1)],
                        [lens[0] + 1, lens[1] + 1],
                        h,
                        [DerivDesc::Append(leaf), DerivDesc::Append(leaf)],
                    );
                }
            }
        }
        for p in 0..2 {
            let Some(sym) = next[p] else { continue };
            if self.g.kind(sym) != SymbolKind::Nonterminal {
                continue;
            }
            for &tgt in self.graph.production_steps(last[p]) {
                let tgt = tgt.index() as u32;
                let dup = mem.iseq[i][p].contains_memo(&mem.icell, tgt, true, &mut buf.memo);
                let mut op = [ItemOp::Keep, ItemOp::Keep];
                op[p] = ItemOp::Append(tgt);
                let mut len = lens;
                len[p] += 1;
                let mut h = mem.ihash[i];
                h[p] = h_append(h[p], tgt);
                self.emit(
                    buf,
                    idx,
                    mem.cost[i] + PRODUCTION_COST + if dup { DUPLICATE_PENALTY } else { 0 },
                    mem.flags[i],
                    [PendRef::Keep, PendRef::Keep],
                    op,
                    len,
                    h,
                    [DerivDesc::Keep, DerivDesc::Keep],
                );
            }
        }
    }

    /// Outcome of shifting `sym` against a pending lookahead constraint:
    /// `None` = forbidden, `Some(id)` = allowed with new pending `id`.
    fn pending_after(&self, mem: &Mem, pid: u32, sym: SymbolId) -> Option<u32> {
        if pid == NO_PENDING {
            return Some(NO_PENDING);
        }
        let p = mem.sets.get(pid);
        match self.g.kind(sym) {
            SymbolKind::Terminal => {
                if p.contains(self.g.tindex(sym)) {
                    Some(NO_PENDING)
                } else {
                    None
                }
            }
            SymbolKind::Nonterminal => {
                if self.auto.analysis().first(sym).intersects(p) {
                    Some(NO_PENDING)
                } else if self.auto.analysis().nullable(sym) {
                    // The constraint survives a nullable nonterminal.
                    Some(pid)
                } else {
                    None
                }
            }
        }
    }

    /// §5.4 completion: both item sequences have the shape
    /// `[? -> α · A β, ? -> α A · β]` over the same nonterminal `A`, with
    /// structurally distinct derivations of `A`.
    fn completed(&self, mem: &Mem, idx: usize) -> Option<UnifyingExample> {
        if mem.ilen(idx) != [2, 2] {
            return None;
        }
        let mut nts = [None, None];
        for (p, nt) in nts.iter_mut().enumerate() {
            let head = si(mem.ifirst[idx][p]);
            if self.graph.transition(head).map(StateItemId::index)
                != Some(mem.iseq[idx][p].last(&mem.icell) as usize)
            {
                return None;
            }
            *nt = self.graph.item(head).next_symbol(self.g);
        }
        let a = nts[0]?;
        if nts[1] != Some(a) || self.g.kind(a) != SymbolKind::Nonterminal {
            return None;
        }
        // Past the cheap rejects; materializing the two (tiny) derivation
        // lists off the hot path is fine.
        let mut scratch = Vec::new();
        let mut list0 = Vec::new();
        let mut list1 = Vec::new();
        mem.dseq[idx][0].materialize(&mem.dcell, &mut list0, &mut scratch);
        mem.dseq[idx][1].materialize(&mem.dcell, &mut list1, &mut scratch);
        let d0 = single_derivation(&list0)?;
        let d1 = single_derivation(&list1)?;
        if mem.nodes.strip_eq(&mem.kids, d0, d1) {
            return None;
        }
        Some(UnifyingExample {
            nonterminal: a,
            derivation1: mem.nodes.materialize(&mem.kids, d0),
            derivation2: mem.nodes.materialize(&mem.kids, d1),
        })
    }
}

/// How many trailing derivation-list entries (dot markers included) a
/// reduction of `l` symbols on parser `p` wraps into its new node: the
/// children are exactly a suffix of the parent's list, found by counting
/// entries back from the end until `l` non-dots have been seen.
fn dlist_pops(mem: &Mem, i: usize, p: usize, l: usize, flags: u8, scratch: &mut Vec<u32>) -> u32 {
    let ds = mem.dseq[i][p];
    if l == 0 {
        // An ε-reduction at the conflict point keeps the dot inside.
        return if flags & (1 << p) == 0 && ds.last(&mem.dcell) == DOT {
            1
        } else {
            0
        };
    }
    let mut need = l;
    let mut pops = 0u32;
    let mut cell = ds.back;
    for _ in 0..ds.blen {
        if need == 0 {
            return pops;
        }
        pops += 1;
        if mem.dcell.val(cell) != DOT {
            need -= 1;
        }
        cell = mem.dcell.next(cell);
    }
    if need == 0 {
        return pops;
    }
    // The walk spills past the back stack: materialize the front (in
    // sequence order) and keep counting from its end.
    scratch.clear();
    let mut cell = ds.front;
    for _ in 0..ds.flen {
        scratch.push(mem.dcell.val(cell));
        cell = mem.dcell.next(cell);
    }
    let mut k = scratch.len();
    while need > 0 {
        assert!(k > 0, "derivations match transitions");
        k -= 1;
        pops += 1;
        if scratch[k] != DOT {
            need -= 1;
        }
    }
    pops
}

/// Full-content check behind the merge's fingerprint equality (debug
/// builds only): rebuild the candidate's item sequences (parent plus edit)
/// and compare against configuration `o` cell by cell. The local
/// allocations are irrelevant off the release path.
fn cand_items_eq(mem: &Mem, cand: &Cand, o: usize) -> bool {
    let mut scratch = Vec::new();
    let mut a = Vec::new();
    let mut b = Vec::new();
    for p in 0..2 {
        a.clear();
        mem.iseq[cand.parent as usize][p].materialize(&mem.icell, &mut a, &mut scratch);
        match cand.op[p] {
            ItemOp::Keep => {}
            ItemOp::Prepend(v) => a.insert(0, v),
            ItemOp::Append(v) => a.push(v),
            ItemOp::Reduce { pops, goto_item } => {
                a.truncate(a.len() - pops as usize);
                a.push(goto_item);
            }
        }
        b.clear();
        mem.iseq[o][p].materialize(&mem.icell, &mut b, &mut scratch);
        if a != b {
            return false;
        }
    }
    true
}

/// The unique non-dot derivation in a list, if there is exactly one.
fn single_derivation(list: &[u32]) -> Option<u32> {
    let mut found = None;
    for &d in list {
        if d == DOT {
            continue;
        }
        if found.is_some() {
            return None;
        }
        found = Some(d);
    }
    found
}

/// Runs the unifying search for one conflict.
///
/// `slsp_states` is the set of states on the shortest lookahead-sensitive
/// path; reverse transitions are restricted to it unless
/// [`SearchConfig::extended`] is set (§6).
pub fn unifying_search(
    g: &Grammar,
    auto: &Automaton,
    graph: &StateGraph,
    conflict: &Conflict,
    slsp_states: &[StateId],
    cfg: &SearchConfig,
) -> SearchOutcome {
    let mut metrics = SearchMetrics::default();
    unifying_search_metered(g, auto, graph, conflict, slsp_states, cfg, &mut metrics)
}

/// [`unifying_search`] with observability: fills `metrics` with the
/// explored/enqueued/deduped configuration counts and the frontier
/// high-water mark. The counters count *arena records* (configurations
/// accepted into the frontier) and are deterministic for a given conflict
/// and configuration at any worker count — expansion is merged in
/// canonical batch order however it was sharded.
#[allow(clippy::too_many_arguments)]
pub fn unifying_search_metered(
    g: &Grammar,
    auto: &Automaton,
    graph: &StateGraph,
    conflict: &Conflict,
    slsp_states: &[StateId],
    cfg: &SearchConfig,
    metrics: &mut SearchMetrics,
) -> SearchOutcome {
    let cancel = CancelToken::new();
    let governor = MemoryGovernor::unlimited();
    let session = SearchSession {
        cancel: &cancel,
        governor: &governor,
        shards: None,
    };
    unifying_search_session(
        g,
        auto,
        graph,
        conflict,
        slsp_states,
        cfg,
        &session,
        metrics,
    )
}

/// Looks up the unresolved conflict on terminal `term` in a conflict
/// table, as a structured error instead of a panic: precedence
/// declarations legitimately resolve conflicts out of the table, so a
/// missing conflict is a *reachable* state, not an invariant violation.
pub fn conflict_on<'a>(
    g: &Grammar,
    conflicts: &'a [Conflict],
    term: &str,
) -> Result<&'a Conflict, EngineError> {
    conflicts
        .iter()
        .find(|c| g.display_name(c.terminal) == term)
        .ok_or_else(|| EngineError::no_conflict_on(term))
}

/// [`unifying_search_metered`] under a shared [`SearchSession`]: the
/// search polls `session.cancel` (plus its own wall-clock deadline) every
/// [`SearchConfig::cancel_stride`] pops, reports its live frontier bytes
/// (derived from actual arena capacities) to `session.governor`, *shedding*
/// — tightening its cost cap to the cost of the bucket it is draining so
/// the frontier empties — when the grammar-wide soft memory limit is
/// exceeded, and recruits extra expansion workers from `session.shards`
/// for heavy frontier batches.
///
/// Cancellation and shedding both surface as [`SearchOutcome::TimedOut`]:
/// the caller falls back to the nonunifying construction exactly as for a
/// per-conflict time limit (§6 graceful cutoff).
#[allow(clippy::too_many_arguments)]
pub fn unifying_search_session(
    g: &Grammar,
    auto: &Automaton,
    graph: &StateGraph,
    conflict: &Conflict,
    slsp_states: &[StateId],
    cfg: &SearchConfig,
    session: &SearchSession<'_>,
    metrics: &mut SearchMetrics,
) -> SearchOutcome {
    // Zero budget or an already-cancelled token never starts the search:
    // the `time_limit == 0` edge must degrade identically whether or not
    // the first stride poll would have been reached.
    if cfg.time_limit.is_zero() || session.cancel.is_cancelled() {
        return SearchOutcome::TimedOut;
    }
    let rr = matches!(conflict.kind, ConflictKind::ReduceReduce { .. });
    let t = conflict.terminal;
    let search = Search {
        g,
        auto,
        graph,
        t_idx: g.tindex(t),
        rr,
        allowed: if cfg.extended {
            None
        } else {
            let mut set = NodeSet::new(auto.state_count());
            for s in slsp_states {
                set.insert(s.index());
            }
            Some(set)
        },
    };
    let mut mem = Mem::new(g.symbol_count());
    let outcome = search_loop(&search, &mut mem, conflict, cfg, session, metrics);
    metrics.arena_cells += (mem.icell.len() + mem.dcell.len()) as u64;
    outcome
}

/// The bucket-at-a-time main loop; see the module docs for the phase
/// structure (walk → expand → merge).
fn search_loop(
    search: &Search<'_>,
    mem: &mut Mem,
    conflict: &Conflict,
    cfg: &SearchConfig,
    session: &SearchSession<'_>,
    metrics: &mut SearchMetrics,
) -> SearchOutcome {
    let g = search.g;
    let graph = search.graph;
    let item1 = graph.node(conflict.state, conflict.reduce_item(g));
    let item2 = graph.node(conflict.state, conflict.other_item(g));
    let t_set = TerminalSet::singleton(g.terminal_count(), g.tindex(conflict.terminal));
    let pid = mem.sets.intern(t_set);

    // The initial configuration (Figure 8). Both derivation lists share
    // one dot cell.
    let i1 = item1.index() as u32;
    let i2 = item2.index() as u32;
    let iseq0 = [
        Seq::singleton(&mut mem.icell, i1),
        Seq::singleton(&mut mem.icell, i2),
    ];
    let dot = mem.dcell.cons(DOT, NIL);
    let dseq0 = [Seq {
        front: NIL,
        back: dot,
        flen: 0,
        blen: 1,
    }; 2];
    mem.cost.push(0);
    mem.flags.push(if search.rr { 0 } else { 2 });
    mem.pend
        .push([pid, if search.rr { pid } else { NO_PENDING }]);
    mem.iseq.push(iseq0);
    mem.ifirst.push([i1, i2]);
    mem.ihash.push([itemh(i1), itemh(i2)]);
    mem.dseq.push(dseq0);

    let mut visited = Visited::new();
    let mut queue = BucketQueue::new();
    {
        let h = cand_hash([1, 1], mem.flags[0], mem.ihash[0]);
        let h = mix(mix(h, mem.pend[0][0] as u64), mem.pend[0][1] as u64);
        visited.insert_with(h, 0, |_| false);
    }
    queue.push(0, 0);
    metrics.enqueued += 1;

    let deadline = Instant::now() + cfg.time_limit;
    // Stride mask: poll when `pops & mask == 0`. Rounded up to a power of
    // two so the check is one AND instead of a division.
    let mask = cfg.cancel_stride.max(1).next_power_of_two() - 1;
    let shard_min = cfg.shard_min.max(1) as usize;
    let mut lease = GovernorLease::new(session.governor);
    let mut effective_max_cost = cfg.max_cost;
    let mut pops: u32 = 0;
    let mut cost_pruned = false;
    let mut batch: Vec<u32> = Vec::new();
    let mut bufs: Vec<ExpandBuf> = vec![ExpandBuf::default()];
    // Merge-phase scratch (cell walks and popped derivation children).
    let mut scratch: Vec<u32> = Vec::new();
    let mut popped: Vec<u32> = Vec::new();

    while let Some(cost) = queue.pop_bucket(&mut batch) {
        // Walk phase: canonical FIFO order over the drained bucket. Every
        // action costs at least 1, so nothing merged later this iteration
        // could have belonged to this bucket.
        for &idx in &batch {
            pops += 1;
            metrics.explored += 1;
            if pops & mask == 0 {
                if session.cancel.is_cancelled() || Instant::now() > deadline {
                    return SearchOutcome::TimedOut;
                }
                // Report this search's frontier footprint (actual arena
                // capacities), then shed if the grammar-wide total is over
                // the soft limit: no deeper successors get enqueued, so
                // the frontier drains deterministically into `TimedOut`
                // instead of growing.
                let est = mem.approx_bytes(g.terminal_count(), &visited, &queue);
                lease.set(est);
                metrics.live_bytes_peak = metrics.live_bytes_peak.max(est as u64);
                if session.governor.over_limit() && effective_max_cost > cost {
                    effective_max_cost = cost;
                    cost_pruned = true;
                    metrics.sheds += 1;
                    session.governor.note_shed();
                }
            }
            #[cfg(feature = "failpoints")]
            if let Some(action) = crate::faultpoint::hit("unify.expand") {
                match action {
                    crate::faultpoint::FaultAction::Panic => {
                        panic!("failpoint `unify.expand` injected panic")
                    }
                    crate::faultpoint::FaultAction::BudgetZero
                    | crate::faultpoint::FaultAction::ClockJump => return SearchOutcome::TimedOut,
                }
            }
            if mem.len() > cfg.max_configs {
                return SearchOutcome::TimedOut;
            }
            if let Some(ex) = search.completed(mem, idx as usize) {
                return SearchOutcome::Unifying(Box::new(ex));
            }
        }

        // Expand phase: side-effect-free, chunked across this batch's
        // claimed shard workers. Chunking only changes wall-clock — the
        // merge below consumes candidates in canonical batch order.
        let claimed = match session.shards {
            Some(b) if batch.len() >= shard_min => {
                b.try_claim((batch.len() / shard_min).min(MAX_SHARDS))
            }
            _ => 0,
        };
        while bufs.len() < claimed + 1 {
            bufs.push(ExpandBuf::default());
        }
        for buf in &mut bufs {
            buf.clear();
        }
        if claimed == 0 {
            let buf = &mut bufs[0];
            for &idx in &batch {
                search.successors(mem, idx, buf);
            }
        } else {
            let chunk = batch.len().div_ceil(claimed + 1);
            let mem_ref: &Mem = mem;
            std::thread::scope(|scope| {
                let mut work = batch.chunks(chunk).zip(bufs.iter_mut());
                let first = work.next();
                for (part, buf) in work {
                    scope.spawn(move || {
                        for &idx in part {
                            search.successors(mem_ref, idx, buf);
                        }
                    });
                }
                if let Some((part, buf)) = first {
                    for &idx in part {
                        search.successors(mem_ref, idx, buf);
                    }
                }
            });
            if let Some(b) = session.shards {
                b.release(claimed);
            }
            metrics.shard_batches += 1;
        }

        // Merge phase: sequential, canonical order — dedup, intern, and
        // commit accepted candidates to the arenas.
        for buf in &bufs {
            for cand in &buf.cands {
                if cand.cost > effective_max_cost {
                    cost_pruned = true;
                    continue;
                }
                let parent = cand.parent as usize;
                let mut pend = [0u32; 2];
                for (p, out) in pend.iter_mut().enumerate() {
                    *out = match cand.pend[p] {
                        PendRef::Keep => mem.pend[parent][p],
                        PendRef::Id(x) => x,
                        PendRef::New(slot) => mem.sets.intern_ref(&buf.new_sets[slot as usize]),
                    };
                }
                let h = mix(mix(cand.hash, pend[0] as u64), pend[1] as u64);
                let new_idx = mem.len() as u32;
                let (flags, len) = (cand.flags, cand.len);
                // Dedup identity: flags, pending ids, and lengths compare
                // exactly; item content compares by the two per-parser
                // 64-bit positional hashes (a 128-bit fingerprint — for a
                // false merge one parser's polynomial hash must collide at
                // equal length, ~2^-64 per pair). Debug builds verify the
                // fingerprint against the actual cells.
                let inserted = visited.insert_with(h, new_idx, |other| {
                    let o = other as usize;
                    let eq = mem.flags[o] == flags
                        && mem.pend[o] == pend
                        && mem.ilen(o) == len
                        && mem.ihash[o] == cand.h;
                    debug_assert!(
                        !eq || cand_items_eq(mem, cand, o),
                        "positional-hash fingerprint collision"
                    );
                    eq
                });
                if !inserted {
                    metrics.deduped += 1;
                    continue;
                }
                // Commit: copy the parent's persistent sequences and apply
                // the edits — the only point where cells are allocated, so
                // cell ids follow the canonical merge order.
                let mut iseq = mem.iseq[parent];
                let mut ifirst = mem.ifirst[parent];
                for p in 0..2 {
                    match cand.op[p] {
                        ItemOp::Keep => {}
                        ItemOp::Prepend(v) => {
                            iseq[p] = iseq[p].prepend(&mut mem.icell, v);
                            ifirst[p] = v;
                        }
                        ItemOp::Append(v) => {
                            iseq[p] = iseq[p].append(&mut mem.icell, v);
                        }
                        ItemOp::Reduce { pops, goto_item } => {
                            iseq[p] = iseq[p]
                                .pop_back(&mut mem.icell, pops, &mut scratch)
                                .append(&mut mem.icell, goto_item);
                        }
                    }
                }
                let mut dseq = mem.dseq[parent];
                for (p, d) in dseq.iter_mut().enumerate() {
                    match cand.dd[p] {
                        DerivDesc::Keep => {}
                        DerivDesc::Prepend(leaf) => {
                            *d = d.prepend(&mut mem.dcell, leaf);
                        }
                        DerivDesc::Append(leaf) => {
                            *d = d.append(&mut mem.dcell, leaf);
                        }
                        DerivDesc::Reduce { pops, lhs } => {
                            d.read_back(&mem.dcell, pops, &mut popped, &mut scratch);
                            popped.reverse();
                            let off = mem.kids.extend(&popped);
                            let node = mem.nodes.push_node(lhs, off, pops);
                            *d = d
                                .pop_back(&mut mem.dcell, pops, &mut scratch)
                                .append(&mut mem.dcell, node);
                        }
                    }
                }
                mem.cost.push(cand.cost);
                mem.flags.push(flags);
                mem.pend.push(pend);
                mem.iseq.push(iseq);
                mem.ifirst.push(ifirst);
                mem.ihash.push(cand.h);
                mem.dseq.push(dseq);
                queue.push(cand.cost, new_idx);
                metrics.enqueued += 1;
            }
        }
        metrics.frontier_peak = metrics.frontier_peak.max(queue.len() as u64);
    }
    // A drained queue only proves exhaustion if nothing was cost-pruned.
    if cost_pruned {
        SearchOutcome::TimedOut
    } else {
        SearchOutcome::Exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::ShardBudget;
    use crate::lssi;
    use crate::report::ExampleKind;
    use crate::report::{analyze, Analyzer, CexConfig};
    use crate::state_graph::StateGraph;
    use crate::validate::unifying_consistent;

    fn figure1() -> Grammar {
        Grammar::parse(
            "%start stmt
             %%
             stmt : 'if' expr 'then' stmt 'else' stmt
                  | 'if' expr 'then' stmt
                  | expr '?' stmt stmt
                  | 'arr' '[' expr ']' ':=' expr
                  ;
             expr : num | expr '+' expr ;
             num  : digit | num digit ;",
        )
        .unwrap()
    }

    fn run_conflict(g: &Grammar, term: &str, cfg: &SearchConfig) -> SearchOutcome {
        let auto = Automaton::build(g);
        let graph = StateGraph::build(g, &auto);
        let tables = auto.tables(g);
        let c = match conflict_on(g, tables.conflicts(), term) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        };
        let target = graph.node(c.state, c.reduce_item(g));
        let path = lssi::shortest_path(g, &auto, &graph, target, g.tindex(c.terminal)).unwrap();
        let states = lssi::states_of_path(&graph, &path);
        unifying_search(g, &auto, &graph, c, &states, cfg)
    }

    #[test]
    fn dangling_else_unifying_example() {
        let g = figure1();
        let out = run_conflict(&g, "else", &SearchConfig::default());
        let SearchOutcome::Unifying(ex) = out else {
            panic!("expected unifying example, got {out:?}");
        };
        assert_eq!(g.display_name(ex.nonterminal), "stmt");
        assert_eq!(
            ex.derivation1.flat(&g),
            "if expr then if expr then stmt \u{2022} else stmt"
        );
        assert!(unifying_consistent(&g, &ex));
    }

    #[test]
    fn expression_plus_conflict() {
        // §2.4: expr + expr · + expr, a derivation of expr (not of stmt).
        let g = figure1();
        let out = run_conflict(&g, "+", &SearchConfig::default());
        let SearchOutcome::Unifying(ex) = out else {
            panic!("expected unifying example, got {out:?}");
        };
        assert_eq!(g.display_name(ex.nonterminal), "expr");
        assert_eq!(ex.derivation1.flat(&g), "expr + expr \u{2022} + expr");
        assert!(unifying_consistent(&g, &ex));
    }

    #[test]
    fn challenging_conflict_digit() {
        // §3.1: the hard one. The unifying counterexample is
        // `expr ? arr [ expr ] := num · digit digit ? stmt stmt` (or an
        // equivalent form), a derivation of stmt.
        let g = figure1();
        let out = run_conflict(&g, "digit", &SearchConfig::default());
        let SearchOutcome::Unifying(ex) = out else {
            panic!("expected unifying example, got {out:?}");
        };
        assert_eq!(g.display_name(ex.nonterminal), "stmt");
        assert!(unifying_consistent(&g, &ex));
        let s = ex.derivation1.flat(&g);
        assert!(
            s.starts_with("expr ? arr [ expr ] := num \u{2022} digit"),
            "example: {s}"
        );
    }

    #[test]
    fn figure3_search_exhausts() {
        // Figure 3 is unambiguous (LR(2)); the search must terminate with
        // no unifying counterexample.
        let g = Grammar::parse("%% S : T | S T ; T : X | Y ; X : 'a' ; Y : 'a' 'a' 'b' ;").unwrap();
        let out = run_conflict(&g, "a", &SearchConfig::default());
        assert!(matches!(out, SearchOutcome::Exhausted), "{out:?}");
    }

    #[test]
    fn figure7_finds_unifying_examples() {
        // Figure 7: shortest-path prefix is incompatible with the second
        // shift item, so the outward search must reconstruct `n n a · b d c`.
        let g = Grammar::parse(
            "%% S : N | N 'c' ;
                N : 'n' N 'd' | 'n' N 'c' | 'n' A 'b' | 'n' B ;
                A : 'a' ;
                B : 'a' 'b' 'c' | 'a' 'b' 'd' ;",
        )
        .unwrap();
        let report = analyze(&g);
        assert_eq!(report.reports.len(), 2, "Table 1 row figure7: 2 conflicts");
        for r in &report.reports {
            assert_eq!(r.kind(), Some(ExampleKind::Unifying), "{:?}", r.conflict);
            let ex = r.unifying.as_ref().unwrap();
            assert!(unifying_consistent(&g, ex));
        }
    }

    #[test]
    fn reduce_reduce_unifying() {
        // Ambiguous r/r: two nonterminals derive the same string with the
        // same continuation.
        let g = Grammar::parse("%% s : a X | b X ; a : T ; b : T ;").unwrap();
        let report = analyze(&g);
        assert_eq!(report.reports.len(), 1);
        let r = &report.reports[0];
        assert_eq!(r.kind(), Some(ExampleKind::Unifying));
        let ex = r.unifying.as_ref().unwrap();
        assert_eq!(g.display_name(ex.nonterminal), "s");
        assert_eq!(ex.derivation1.flat(&g), "T \u{2022} X");
        assert!(unifying_consistent(&g, ex));
    }

    #[test]
    fn epsilon_production_conflict() {
        // Nullable production in conflict: s : A s | A | ε-ish shape.
        let g = Grammar::parse("%% s : 'a' s | o ; o : | 'a' ;").unwrap();
        let report = analyze(&g);
        assert!(!report.reports.is_empty());
        for r in &report.reports {
            if let Some(ex) = &r.unifying {
                assert!(unifying_consistent(&g, ex), "{:?}", ex);
            }
        }
        assert!(report.unifying_count() >= 1, "grammar is ambiguous");
    }

    #[test]
    fn timeout_is_respected() {
        let g = figure1();
        let cfg = SearchConfig {
            time_limit: Duration::ZERO,
            ..SearchConfig::default()
        };
        let out = run_conflict(&g, "else", &cfg);
        assert!(matches!(out, SearchOutcome::TimedOut), "{out:?}");
    }

    #[test]
    fn conflict_on_missing_is_structured_error() {
        // A lookup miss is a reachable state (precedence resolution), so it
        // is a structured `EngineError`, not a panic.
        let g = figure1();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let err = conflict_on(&g, tables.conflicts(), "nosuch").unwrap_err();
        assert_eq!(err.phase, "lookup");
        assert!(err.message.contains("`nosuch`"));
        assert!(err.message.contains("precedence"));
    }

    fn run_conflict_session(
        g: &Grammar,
        term: &str,
        cfg: &SearchConfig,
        session: &SearchSession<'_>,
        metrics: &mut SearchMetrics,
    ) -> SearchOutcome {
        let auto = Automaton::build(g);
        let graph = StateGraph::build(g, &auto);
        let tables = auto.tables(g);
        let c = match conflict_on(g, tables.conflicts(), term) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        };
        let target = graph.node(c.state, c.reduce_item(g));
        let path = lssi::shortest_path(g, &auto, &graph, target, g.tindex(c.terminal)).unwrap();
        let states = lssi::states_of_path(&graph, &path);
        unifying_search_session(g, &auto, &graph, c, &states, cfg, session, metrics)
    }

    #[test]
    fn precancelled_token_stops_before_searching() {
        let g = figure1();
        let cancel = CancelToken::new();
        cancel.cancel(crate::cancel::CancelReason::Signal);
        let governor = MemoryGovernor::unlimited();
        let session = SearchSession {
            cancel: &cancel,
            governor: &governor,
            shards: None,
        };
        let mut m = SearchMetrics::default();
        let out = run_conflict_session(&g, "else", &SearchConfig::default(), &session, &mut m);
        assert!(matches!(out, SearchOutcome::TimedOut), "{out:?}");
        assert_eq!(m.explored, 0, "cancelled before the first pop");
    }

    #[test]
    fn over_limit_governor_sheds_and_drains() {
        let g = figure1();
        let cancel = CancelToken::new();
        let governor = MemoryGovernor::with_limit_bytes(1);
        let session = SearchSession {
            cancel: &cancel,
            governor: &governor,
            shards: None,
        };
        let cfg = SearchConfig {
            cancel_stride: 1, // poll every pop so the shed fires immediately
            ..SearchConfig::default()
        };
        let mut m = SearchMetrics::default();
        let out = run_conflict_session(&g, "digit", &cfg, &session, &mut m);
        assert!(matches!(out, SearchOutcome::TimedOut), "{out:?}");
        assert!(m.sheds >= 1, "search shed at least once");
        assert!(governor.sheds() >= 1, "shed recorded grammar-wide");
        assert_eq!(governor.live_bytes(), 0, "lease released on return");
    }

    #[test]
    fn stride_does_not_change_search_counters() {
        // The stride only changes *when* the clock is consulted, never the
        // order of expansion: counters are identical for stride 1 and 256.
        let g = figure1();
        let governor = MemoryGovernor::unlimited();
        let mut counters = Vec::new();
        for stride in [1u32, 256] {
            let cancel = CancelToken::new();
            let session = SearchSession {
                cancel: &cancel,
                governor: &governor,
                shards: None,
            };
            let cfg = SearchConfig {
                cancel_stride: stride,
                ..SearchConfig::default()
            };
            let mut m = SearchMetrics::default();
            let out = run_conflict_session(&g, "digit", &cfg, &session, &mut m);
            assert!(matches!(out, SearchOutcome::Unifying(_)), "{out:?}");
            counters.push((m.explored, m.enqueued, m.deduped, m.frontier_peak));
        }
        assert_eq!(counters[0], counters[1]);
    }

    #[test]
    fn sharded_expansion_matches_sequential() {
        // Intra-conflict sharding must not change the outcome or any
        // deterministic counter: force sharding with `shard_min: 1` and
        // compare against the unsharded run, for several permit counts.
        let g = figure1();
        let governor = MemoryGovernor::unlimited();
        let mut results = Vec::new();
        for permits in [0usize, 1, 3] {
            let cancel = CancelToken::new();
            let budget = ShardBudget::new(permits);
            let session = SearchSession {
                cancel: &cancel,
                governor: &governor,
                shards: if permits == 0 { None } else { Some(&budget) },
            };
            let cfg = SearchConfig {
                shard_min: 1,
                ..SearchConfig::default()
            };
            let mut m = SearchMetrics::default();
            let out = run_conflict_session(&g, "digit", &cfg, &session, &mut m);
            let SearchOutcome::Unifying(ex) = out else {
                panic!("expected unifying example, got {out:?}");
            };
            results.push((
                ex.derivation1.flat(&g),
                ex.derivation2.flat(&g),
                m.explored,
                m.enqueued,
                m.deduped,
                m.frontier_peak,
                m.arena_cells,
            ));
            if permits > 0 {
                assert!(m.shard_batches > 0, "sharding did engage at {permits}");
                assert_eq!(budget.available(), permits, "permits returned");
            }
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn analyzer_reports_all_figure1_conflicts_unifying() {
        // Table 1 row figure1: 3 conflicts, 3 unifying.
        let g = figure1();
        let mut an = Analyzer::new(&g);
        let report = an.analyze_all(&CexConfig::default());
        assert_eq!(report.reports.len(), 3);
        assert_eq!(report.unifying_count(), 3);
        assert_eq!(report.exhausted_count(), 0);
        assert_eq!(report.timeout_count(), 0);
    }

    #[test]
    fn cumulative_budget_skips_search() {
        let g = figure1();
        let mut an = Analyzer::new(&g);
        let cfg = CexConfig {
            cumulative_limit: Duration::ZERO,
            ..CexConfig::default()
        };
        let report = an.analyze_all(&cfg);
        assert_eq!(report.unifying_count(), 0);
        assert!(report
            .reports
            .iter()
            .all(|r| r.kind() == Some(ExampleKind::NonunifyingSkipped)));
        // Nonunifying fallbacks are still produced.
        assert!(report.reports.iter().all(|r| r.nonunifying.is_some()));
    }
}
