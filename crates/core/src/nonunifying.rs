//! Nonunifying counterexamples (§4 of the paper).
//!
//! A nonunifying counterexample is a *pair* of derivable sentential forms
//! sharing a common prefix up to the conflict point. The first derivation
//! follows the shortest lookahead-sensitive path to the conflict *reduce*
//! item and completes its productions, inserting the conflict terminal
//! right after the dot. The second re-walks the same state sequence
//! backward from the other conflict item (Figure 5(b)) and completes it the
//! same way.

use std::collections::{HashMap, HashSet};

use lalrcex_grammar::{
    derive_seq_starting_with, eps_derivation, Analysis, Derivation, Grammar, SymbolId,
};
use lalrcex_lr::{Automaton, Conflict, Item, StateId};

use crate::lssi::{EdgeKind, LsNode};
use crate::state_graph::{StateGraph, StateItemId};

/// A pair of derivations sharing a prefix up to the conflict point.
#[derive(Clone, Debug)]
pub struct NonunifyingExample {
    /// Derivation using the conflict reduce item (rooted at `$accept`).
    pub reduce_derivation: Derivation,
    /// Derivation using the other conflict item (shift item, or second
    /// reduce item), when one could be constructed along the same states.
    pub other_derivation: Option<Derivation>,
}

/// A production frame during derivation reconstruction: the item tracks how
/// far the production has progressed; children hold the derivations of the
/// symbols already consumed.
struct Frame {
    item: Item,
    children: Vec<Derivation>,
}

/// Replays a (state-item, edge) sequence into production frames.
fn build_frames(g: &Grammar, graph: &StateGraph, nodes: &[(StateItemId, EdgeKind)]) -> Vec<Frame> {
    let mut frames: Vec<Frame> = Vec::new();
    for &(si, edge) in nodes {
        match edge {
            EdgeKind::Start => frames.push(Frame {
                item: graph.item(si),
                children: Vec::new(),
            }),
            EdgeKind::Production => frames.push(Frame {
                item: graph.item(si),
                children: Vec::new(),
            }),
            EdgeKind::Transition(sym) => {
                let top = frames.last_mut().expect("transition needs a frame");
                top.children.push(Derivation::Leaf(sym));
                top.item = top.item.advance(g);
            }
        }
    }
    frames
}

/// Completes all open frames into one derivation, placing the dot at the
/// top frame's current position and arranging for the conflict terminal `t`
/// to appear immediately after it (§4: "since the conflict terminal is a
/// vital part of counterexamples, this terminal must immediately follow ·").
fn complete(g: &Grammar, a: &Analysis, mut frames: Vec<Frame>, t: SymbolId) -> Option<Derivation> {
    let mut need_t = true;
    frames.last_mut()?.children.push(Derivation::Dot);
    loop {
        crate::fail_point!("nonunify.complete");
        let top = frames.last_mut()?;
        let tail: Vec<SymbolId> = top.item.tail(g).to_vec();
        if !tail.is_empty() {
            if need_t {
                match derive_seq_starting_with(g, a, &tail, t) {
                    Some(ds) => {
                        top.children.extend(ds);
                        need_t = false;
                    }
                    None => {
                        // The conflict terminal comes from an outer
                        // production; this tail must vanish.
                        for &s in &tail {
                            top.children.push(eps_derivation(g, a, s)?);
                        }
                    }
                }
            } else {
                top.children
                    .extend(tail.iter().map(|&s| Derivation::Leaf(s)));
            }
        }
        let done = frames.pop()?;
        let lhs = g.prod(done.item.prod()).lhs();
        let node = Derivation::Node(lhs, done.children);
        match frames.last_mut() {
            Some(parent) => {
                parent.children.push(node);
                parent.item = parent.item.advance(g);
            }
            None => return Some(node),
        }
    }
}

/// States visited at each transition depth along the path.
fn states_by_depth(graph: &StateGraph, path: &[LsNode]) -> Vec<StateId> {
    let mut states = vec![graph.state(path[0].si)];
    for n in &path[1..] {
        if matches!(n.edge, EdgeKind::Transition(_)) {
            states.push(graph.state(n.si));
        }
    }
    states
}

/// Transition depth of each node along the path.
fn depths(path: &[LsNode]) -> Vec<usize> {
    let mut d = 0;
    path.iter()
        .map(|n| {
            if matches!(n.edge, EdgeKind::Transition(_)) {
                d += 1;
            }
            d
        })
        .collect()
}

/// Finds Figure 5(b) sequences: walks ending at `other` whose transitions
/// visit the same states (at the same depths) as `path`, spliced onto
/// `path` at a shared node. All discovered splice points are returned (up
/// to a cap) so the caller can pick the one producing the best derivation —
/// the paper's Figure 5(b) prefers a walk whose completed string matches
/// the reduce derivation's string exactly.
fn other_item_paths(
    g: &Grammar,
    graph: &StateGraph,
    path: &[LsNode],
    other: StateItemId,
) -> Vec<Vec<(StateItemId, EdgeKind)>> {
    let states = states_by_depth(graph, path);
    let path_depths = depths(path);
    let on_path: HashMap<(StateItemId, usize), usize> = path
        .iter()
        .enumerate()
        .map(|(i, n)| ((n.si, path_depths[i]), i))
        .collect();

    let top_depth = states.len() - 1;
    type Node = (StateItemId, usize);
    let goal: Node = (other, top_depth);

    // Phase 1: explore the constrained reverse graph, recording every
    // forward link (predecessor -> successor) so that alternate chains
    // through shared nodes are not lost.
    let mut fwd: HashMap<Node, Vec<(Node, EdgeKind)>> = HashMap::new();
    let mut seen: HashSet<Node> = HashSet::new();
    seen.insert(goal);
    let mut stack = vec![goal];
    while let Some((si, depth)) = stack.pop() {
        let item = graph.item(si);
        if item.dot() > 0 {
            if depth == 0 {
                continue;
            }
            let sym = item.prev_symbol(g).expect("dot > 0");
            for &p in graph.reverse_transitions(si) {
                if graph.state(p) == states[depth - 1] {
                    let pn = (p, depth - 1);
                    fwd.entry(pn)
                        .or_default()
                        .push(((si, depth), EdgeKind::Transition(sym)));
                    if seen.insert(pn) {
                        stack.push(pn);
                    }
                }
            }
        } else {
            for &p in graph.reverse_production_steps(si) {
                let pn = (p, depth);
                fwd.entry(pn)
                    .or_default()
                    .push(((si, depth), EdgeKind::Production));
                if seen.insert(pn) {
                    stack.push(pn);
                }
            }
        }
    }

    // Phase 2: from every splice point (an explored node that lies on the
    // reduce path), enumerate forward walks to the other conflict item.
    const MAX_SPLICES: usize = 64;
    let mut splices: Vec<Vec<(StateItemId, EdgeKind)>> = Vec::new();
    let mut splice_points: Vec<(usize, Node)> = seen
        .iter()
        .filter_map(|&n| on_path.get(&n).map(|&k| (k, n)))
        .collect();
    // Earlier splice points first: they reconstruct more context and tend
    // to produce the Figure 5(b) walks whose string matches the reduce
    // derivation.
    splice_points.sort_by_key(|&(k, _)| k);

    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn dfs(
        fwd: &HashMap<(StateItemId, usize), Vec<((StateItemId, usize), EdgeKind)>>,
        goal: (StateItemId, usize),
        cur: (StateItemId, usize),
        chain: &mut Vec<(StateItemId, EdgeKind)>,
        on_stack: &mut HashSet<(StateItemId, usize)>,
        out: &mut Vec<Vec<(StateItemId, EdgeKind)>>,
        prefix: &[(StateItemId, EdgeKind)],
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if cur == goal {
            let mut walk = prefix.to_vec();
            walk.extend(chain.iter().copied());
            out.push(walk);
            return;
        }
        let Some(nexts) = fwd.get(&cur) else { return };
        for &(next, edge) in nexts {
            if !on_stack.insert(next) {
                continue; // same-depth production cycles
            }
            chain.push((next.0, edge));
            dfs(fwd, goal, next, chain, on_stack, out, prefix, cap);
            chain.pop();
            on_stack.remove(&next);
        }
    }

    for (k, node) in splice_points {
        if splices.len() >= MAX_SPLICES {
            break;
        }
        let prefix: Vec<(StateItemId, EdgeKind)> =
            path[..=k].iter().map(|n| (n.si, n.edge)).collect();
        let mut chain = Vec::new();
        let mut on_stack: HashSet<Node> = [node].into_iter().collect();
        dfs(
            &fwd,
            goal,
            node,
            &mut chain,
            &mut on_stack,
            &mut splices,
            &prefix,
            MAX_SPLICES,
        );
    }
    splices
}

/// Constructs a nonunifying counterexample for `conflict` from the shortest
/// lookahead-sensitive `path` to its reduce item. Returns `None` only for
/// internal inconsistencies (which would indicate a bug in the automaton).
pub fn nonunifying_example(
    g: &Grammar,
    auto: &Automaton,
    graph: &StateGraph,
    conflict: &Conflict,
    path: &[LsNode],
) -> Option<NonunifyingExample> {
    let a = auto.analysis();
    let t = conflict.terminal;

    let reduce_nodes: Vec<(StateItemId, EdgeKind)> = path.iter().map(|n| (n.si, n.edge)).collect();
    let reduce_derivation = complete(g, a, build_frames(g, graph, &reduce_nodes), t)?;
    let reduce_leaves = reduce_derivation.leaves();

    // Build every candidate walk for the other conflict item and prefer the
    // one whose completed string matches the reduce derivation's string
    // (the paper's Figure 5(b) has both lines spell the same sentence);
    // break ties toward shorter strings.
    let other = graph.node(conflict.state, conflict.other_item(g));
    let other_derivation = other_item_paths(g, graph, path, other)
        .into_iter()
        .filter_map(|nodes| complete(g, a, build_frames(g, graph, &nodes), t))
        .min_by_key(|d| {
            let leaves = d.leaves();
            (leaves != reduce_leaves, leaves.len())
        });

    Some(NonunifyingExample {
        reduce_derivation,
        other_derivation,
    })
}

/// Test-only wrapper for [`other_item_paths`].
#[doc(hidden)]
pub fn debug_other_item_paths(
    g: &Grammar,
    graph: &StateGraph,
    path: &[LsNode],
    other: StateItemId,
) -> Vec<Vec<(StateItemId, EdgeKind)>> {
    other_item_paths(g, graph, path, other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lssi::shortest_path;
    use lalrcex_grammar::Grammar;
    use lalrcex_lr::Automaton;

    struct Setup {
        g: Grammar,
        auto: Automaton,
    }

    fn figure1() -> Setup {
        let g = Grammar::parse(
            "%start stmt
             %%
             stmt : 'if' expr 'then' stmt 'else' stmt
                  | 'if' expr 'then' stmt
                  | expr '?' stmt stmt
                  | 'arr' '[' expr ']' ':=' expr
                  ;
             expr : num | expr '+' expr ;
             num  : digit | num digit ;",
        )
        .unwrap();
        let auto = Automaton::build(&g);
        Setup { g, auto }
    }

    fn example_for(setup: &Setup, term: &str) -> NonunifyingExample {
        let Setup { g, auto } = setup;
        let graph = StateGraph::build(g, auto);
        let tables = auto.tables(g);
        let c = match crate::search::conflict_on(g, tables.conflicts(), term) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        };
        let target = graph.node(c.state, c.reduce_item(g));
        let path = shortest_path(g, auto, &graph, target, g.tindex(c.terminal)).unwrap();
        nonunifying_example(g, auto, &graph, c, &path).unwrap()
    }

    fn flat(g: &Grammar, d: &Derivation) -> String {
        d.flat(g)
    }

    #[test]
    fn dangling_else_reduce_derivation() {
        let setup = figure1();
        let ex = example_for(&setup, "else");
        let s = flat(&setup.g, &ex.reduce_derivation);
        // §4: "if expr then if expr then stmt · else stmt" (plus $ from the
        // augmented production).
        assert_eq!(s, "if expr then if expr then stmt \u{2022} else stmt $");
        let o = flat(
            &setup.g,
            ex.other_derivation.as_ref().expect("shift derivation"),
        );
        assert_eq!(o, "if expr then if expr then stmt \u{2022} else stmt $");
    }

    #[test]
    fn dangling_else_derivations_differ_structurally() {
        let setup = figure1();
        let ex = example_for(&setup, "else");
        let other = ex.other_derivation.unwrap();
        assert_ne!(ex.reduce_derivation, other);
        // Both must derive the same string — that they do while differing
        // structurally is what makes the pair a counterexample.
        assert_eq!(ex.reduce_derivation.leaves(), other.leaves());
    }

    #[test]
    fn challenging_conflict_inserts_digit_after_dot() {
        let setup = figure1();
        let ex = example_for(&setup, "digit");
        let s = flat(&setup.g, &ex.reduce_derivation);
        // §4: "expr ? arr [ expr ] := num · digit ? stmt stmt".
        assert_eq!(s, "expr ? arr [ expr ] := num \u{2022} digit ? stmt stmt $");
        let o = flat(&setup.g, ex.other_derivation.as_ref().unwrap());
        // §3.2 shows the shift variant: `... num · digit stmt`.
        assert_eq!(o, "expr ? arr [ expr ] := num \u{2022} digit stmt $");
    }

    #[test]
    fn shared_prefix_up_to_conflict_point() {
        let setup = figure1();
        for term in ["else", "digit", "+"] {
            let ex = example_for(&setup, term);
            let Some(other) = &ex.other_derivation else {
                continue;
            };
            let a = flat(&setup.g, &ex.reduce_derivation);
            let b = flat(&setup.g, other);
            let pa = a.split('\u{2022}').next().unwrap();
            let pb = b.split('\u{2022}').next().unwrap();
            assert_eq!(pa, pb, "common prefix for {term}");
        }
    }

    #[test]
    fn figure3_unambiguous_conflict_gets_example() {
        let g = Grammar::parse("%% S : T | S T ; T : X | Y ; X : 'a' ; Y : 'a' 'a' 'b' ;").unwrap();
        let auto = Automaton::build(&g);
        let graph = StateGraph::build(&g, &auto);
        let tables = auto.tables(&g);
        let c = &tables.conflicts()[0];
        let target = graph.node(c.state, c.reduce_item(&g));
        let path = shortest_path(&g, &auto, &graph, target, g.tindex(c.terminal)).unwrap();
        let ex = nonunifying_example(&g, &auto, &graph, c, &path).unwrap();
        let s = ex.reduce_derivation.flat(&g);
        assert!(s.starts_with("a \u{2022} a"), "reduce example: {s}");
        let o = ex.other_derivation.unwrap().flat(&g);
        assert!(o.starts_with("a \u{2022} a b"), "shift example: {o}");
    }

    #[test]
    fn reduce_reduce_conflict_examples() {
        let g = Grammar::parse("%% s : a X | b X ; a : T ; b : T ;").unwrap();
        let auto = Automaton::build(&g);
        let graph = StateGraph::build(&g, &auto);
        let tables = auto.tables(&g);
        let c = tables
            .conflicts()
            .iter()
            .find(|c| matches!(c.kind, lalrcex_lr::ConflictKind::ReduceReduce { .. }))
            .unwrap();
        let target = graph.node(c.state, c.reduce_item(&g));
        let path = shortest_path(&g, &auto, &graph, target, g.tindex(c.terminal)).unwrap();
        let ex = nonunifying_example(&g, &auto, &graph, c, &path).unwrap();
        assert_eq!(ex.reduce_derivation.flat(&g), "T \u{2022} X $");
        assert_eq!(ex.other_derivation.unwrap().flat(&g), "T \u{2022} X $");
    }
}
