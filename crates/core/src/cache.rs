//! The grammar-keyed engine cache.
//!
//! The engine's precomputation — LALR automaton, resolved tables,
//! state-item graph, spine memo — is pure in the grammar text, so a
//! long-lived process (the `lalrcex serve` service, the `batch` driver, or
//! any embedder using [`crate::Engine`] repeatedly) can key built engines
//! by a content hash of the text and skip construction entirely when the
//! same grammar comes back: the interactive edit / re-run / read loop the
//! paper frames (§1), where a reverted edit or a repeated query would
//! otherwise pay the full automaton build again.
//!
//! [`EngineCache`] is an LRU keyed by a 64-bit FNV-1a hash of the grammar
//! text (entries also keep the text itself, so a hash collision is
//! detected and treated as an eviction, never a wrong answer). Eviction is
//! *byte-budget-aware*, riding the same estimated-live-bytes style of
//! accounting as the search memory governor: every entry is charged
//! [`Engine::estimated_bytes`] — re-sampled on each hit, because the spine
//! memo grows as conflicts are analyzed — and the least-recently-used
//! entries are dropped until the total fits the budget. The most recently
//! touched entry is never evicted, so one grammar larger than the whole
//! budget still caches (and simply pins the cache to itself).
//!
//! Concurrency: the cache's lock covers only lookup, insertion, and
//! accounting. Engines are handed out as `Arc<CachedEngine>`, so two
//! requests analyzing different grammars run fully in parallel, and an
//! entry evicted while another thread still holds it stays alive until the
//! last holder drops.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use lalrcex_grammar::{Grammar, GrammarError};

use crate::engine::Engine;
use crate::error::EngineError;

/// 64-bit FNV-1a over the grammar text: the cache key.
pub fn content_hash(text: &str) -> u64 {
    tagged_hash(0, text)
}

/// The cache key for a grammar behind a non-default frontend: FNV-1a with
/// the frontend tag folded in before the text. Tag `0` is the default
/// frontend and hashes identically to [`content_hash`], so existing keys
/// (and key-exposing surfaces like `entry_stats`) are unchanged; any other
/// tag salts the stream, keeping byte-identical texts parsed by different
/// frontends apart. A cross-tag hash collision is handled like any other:
/// entries are verified against (tag, full text) before being served.
pub fn tagged_hash(tag: u8, text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    if tag != 0 {
        h ^= u64::from(tag);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A grammar together with the engine built from it, as one owned,
/// shareable unit (the cache's value type).
///
/// [`Engine`] borrows its grammar, so an owned pairing is necessarily
/// self-referential: the grammar lives in a private `Box` that is never
/// moved, exposed mutably, or dropped while the engine field is alive.
pub struct CachedEngine {
    // Field order is load-bearing: fields drop in declaration order, so
    // the engine (which borrows `grammar`) is dropped first.
    engine: Engine<'static>,
    grammar: Box<Grammar>,
    text: Box<str>,
}

impl fmt::Debug for CachedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachedEngine")
            .field("text_bytes", &self.text.len())
            .field("states", &self.engine.automaton().state_count())
            .finish()
    }
}

impl CachedEngine {
    /// Parses `text` and builds the engine, with the precomputation
    /// contained (a panic while building reports as a structured
    /// [`EngineError`] instead of unwinding).
    // The crate denies `unsafe_code`; this is its single exception: a
    // self-referential owned pairing (the engine borrows the boxed grammar
    // beside it) has no safe spelling without an external crate.
    #[allow(unsafe_code)]
    pub fn build(text: &str) -> Result<CachedEngine, BuildError> {
        CachedEngine::build_with(text, Grammar::parse)
    }

    /// [`CachedEngine::build`] with a caller-chosen grammar frontend: any
    /// pure `text -> Grammar` parse (the yacc frontend, a test stub). The
    /// cache's purity argument only needs the *pairing* of text and engine
    /// to be consistent, which holding the parse output next to its input
    /// text preserves for any deterministic `parse`.
    #[allow(unsafe_code)]
    pub fn build_with(
        text: &str,
        parse: impl FnOnce(&str) -> Result<Grammar, GrammarError>,
    ) -> Result<CachedEngine, BuildError> {
        let grammar = Box::new(parse(text)?);
        // SAFETY: the referent is heap-allocated behind `grammar`, which is
        // private, never exposed mutably, never moved out of, and — by
        // field declaration order — outlives `engine` within this struct.
        let g: &'static Grammar = unsafe { &*std::ptr::from_ref::<Grammar>(&*grammar) };
        let engine = Engine::try_new(g)?;
        Ok(CachedEngine {
            engine,
            grammar,
            text: text.into(),
        })
    }

    /// The engine, with its lifetime narrowed to this borrow.
    pub fn engine(&self) -> &Engine<'_> {
        &self.engine
    }

    /// The parsed grammar.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The exact text this entry was built from.
    pub fn text(&self) -> &str {
        &self.text
    }
}

/// Why a cache lookup could not produce an engine.
#[derive(Debug)]
pub enum BuildError {
    /// The grammar text did not parse.
    Grammar(GrammarError),
    /// Building the engine faulted (contained).
    Engine(EngineError),
}

impl From<GrammarError> for BuildError {
    fn from(e: GrammarError) -> BuildError {
        BuildError::Grammar(e)
    }
}

impl From<EngineError> for BuildError {
    fn from(e: EngineError) -> BuildError {
        BuildError::Engine(e)
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Grammar(e) => write!(f, "{e}"),
            BuildError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A point-in-time snapshot of the cache's counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a cached engine.
    pub hits: u64,
    /// Lookups that had to build the engine.
    pub misses: u64,
    /// Entries dropped to fit the byte budget (or displaced by a hash
    /// collision).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated bytes charged to resident entries.
    pub live_bytes: usize,
    /// The configured byte budget (`usize::MAX` = unlimited).
    pub budget_bytes: usize,
}

/// A per-entry byte breakdown, re-sampled at snapshot time (see
/// [`EngineCache::entry_stats`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheEntryStats {
    /// The content hash keying the entry.
    pub key: u64,
    /// Bytes of grammar text the entry was built from.
    pub text_bytes: usize,
    /// The entry's total charge: [`Engine::estimated_bytes`], freshly
    /// re-sampled (spine memo *and* provenance tables grow after build).
    pub bytes: usize,
    /// The provenance-table share of `bytes` (`0` until the entry's first
    /// `explain`).
    pub provenance_bytes: usize,
}

struct Entry {
    engine: Arc<CachedEngine>,
    /// The frontend tag the entry was built under (0 = default/DSL):
    /// verified on every hit alongside the full text, so two frontends
    /// interpreting byte-identical text never serve each other's engines.
    tag: u8,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
    live_bytes: usize,
}

/// A grammar-content-hash-keyed LRU of built [`Engine`]s with
/// byte-budget-aware eviction. See the module docs for the policy.
pub struct EngineCache {
    budget: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl EngineCache {
    /// A cache that evicts past `budget` estimated bytes
    /// (`usize::MAX` = never evict).
    pub fn with_budget_bytes(budget: usize) -> EngineCache {
        EngineCache {
            budget,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                live_bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with a budget in mebibytes (`0` = unlimited).
    pub fn with_budget_mb(mb: usize) -> EngineCache {
        if mb == 0 {
            EngineCache::with_budget_bytes(usize::MAX)
        } else {
            EngineCache::with_budget_bytes(mb.saturating_mul(1 << 20))
        }
    }

    /// The engine for `text`: served from the cache when the same text was
    /// seen before, built (and inserted) otherwise. The boolean is `true`
    /// on a cache hit.
    pub fn get_or_build(&self, text: &str) -> Result<(Arc<CachedEngine>, bool), BuildError> {
        self.get_or_build_with(0, text, Grammar::parse)
    }

    /// [`EngineCache::get_or_build`] under a caller-chosen grammar
    /// frontend. `tag` names the frontend (0 = default/DSL; the facade
    /// assigns the others) and both salts the cache key and is verified on
    /// hits, so the cache stays correct even when two frontends could
    /// parse the same bytes differently. `parse` must be a pure function
    /// of `text` for the given tag — the same contract [`Grammar::parse`]
    /// already satisfies.
    pub fn get_or_build_with(
        &self,
        tag: u8,
        text: &str,
        parse: impl FnOnce(&str) -> Result<Grammar, GrammarError>,
    ) -> Result<(Arc<CachedEngine>, bool), BuildError> {
        let key = tagged_hash(tag, text);
        {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.map.get_mut(&key) {
                if e.tag == tag && e.engine.text() == text {
                    e.last_used = tick;
                    let engine = Arc::clone(&e.engine);
                    // The spine memo grows as conflicts are analyzed:
                    // re-sample the entry's charge so eviction decisions
                    // see the real footprint.
                    let bytes = engine.engine().estimated_bytes();
                    let old = e.bytes;
                    e.bytes = bytes;
                    inner.live_bytes = inner.live_bytes - old + bytes;
                    self.evict_over_budget(&mut inner, key);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((engine, true));
                }
                // Hash collision with different text: the newcomer wins the
                // slot (counted as an eviction); correctness is preserved
                // because entries are verified against the full text.
                let old = inner.map.remove(&key).map(|e| e.bytes).unwrap_or_default();
                inner.live_bytes -= old;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Build outside the lock: a slow automaton construction must not
        // serialize unrelated lookups. Two racing builders of the same text
        // duplicate work; whichever inserts last wins the slot (both
        // engines are valid, being pure functions of the text).
        let engine = Arc::new(CachedEngine::build_with(text, parse)?);
        let bytes = engine.engine().estimated_bytes();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(displaced) = inner.map.insert(
            key,
            Entry {
                engine: Arc::clone(&engine),
                tag,
                bytes,
                last_used: tick,
            },
        ) {
            inner.live_bytes -= displaced.bytes;
        }
        inner.live_bytes += bytes;
        self.evict_over_budget(&mut inner, key);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((engine, false))
    }

    /// Drops least-recently-used entries until the charged total fits the
    /// budget. `keep` (the entry just touched) is never evicted, so a
    /// single over-budget grammar still caches.
    fn evict_over_budget(&self, inner: &mut Inner, keep: u64) {
        while inner.live_bytes > self.budget && inner.map.len() > 1 {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(e) = inner.map.remove(&victim) {
                inner.live_bytes -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drops the entry for exactly `text`, if resident, counting it as
    /// an eviction. Returns `true` when an entry was dropped.
    ///
    /// This is the fault-retry supervision hook: when a contained fault
    /// hit an entry's precomputation or lazily built state, the entry may
    /// be poisoned, and evicting it guarantees the retry rebuilds from
    /// scratch instead of re-serving the same engine. Holders of the
    /// `Arc` keep the evicted engine alive until they drop, as with any
    /// eviction.
    pub fn evict_text(&self, text: &str) -> bool {
        self.evict_text_with(0, text)
    }

    /// [`EngineCache::evict_text`] under a frontend tag: only the entry
    /// built from exactly (`tag`, `text`) is dropped.
    pub fn evict_text_with(&self, tag: u8, text: &str) -> bool {
        let key = tagged_hash(tag, text);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match inner.map.get(&key) {
            Some(e) if e.tag == tag && e.engine.text() == text => {}
            _ => return false,
        }
        if let Some(e) = inner.map.remove(&key) {
            inner.live_bytes -= e.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// A point-in-time snapshot of the counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            live_bytes: inner.live_bytes,
            budget_bytes: self.budget,
        }
    }

    /// Per-entry byte breakdowns, most recently used first.
    ///
    /// Each entry's charge is re-sampled (the spine memo and the lazily
    /// built provenance tables both grow after construction), so the
    /// cache's accounting — and any later eviction decision — reflects the
    /// entries' real footprints, not their build-time estimates.
    pub fn entry_stats(&self) -> Vec<CacheEntryStats> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::with_capacity(inner.map.len());
        let mut live = inner.live_bytes;
        for (key, e) in &mut inner.map {
            let bytes = e.engine.engine().estimated_bytes();
            live = live - e.bytes + bytes;
            e.bytes = bytes;
            out.push((
                e.last_used,
                CacheEntryStats {
                    key: *key,
                    text_bytes: e.engine.text().len(),
                    bytes,
                    provenance_bytes: e.engine.engine().provenance_bytes(),
                },
            ));
        }
        inner.live_bytes = live;
        out.sort_by_key(|e| std::cmp::Reverse(e.0));
        out.into_iter().map(|(_, s)| s).collect()
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.map.clear();
        inner.live_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CexConfig;

    const FIG1: &str = "%start stmt
        %%
        stmt : 'if' expr 'then' stmt 'else' stmt
             | 'if' expr 'then' stmt
             ;
        expr : ID ;";
    const EXPR: &str = "%% e : e '+' e | NUM ;";
    const EXPR2: &str = "%% e : e '*' e | NUM ;";

    #[test]
    fn second_lookup_hits_and_shares_the_engine() {
        let cache = EngineCache::with_budget_mb(64);
        let (a, hit_a) = cache.get_or_build(FIG1).unwrap();
        let (b, hit_b) = cache.get_or_build(FIG1).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "one shared engine");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.live_bytes > 0);
    }

    #[test]
    fn cached_engine_analyzes_like_a_fresh_one() {
        let cache = EngineCache::with_budget_mb(64);
        let (cached, _) = cache.get_or_build(EXPR).unwrap();
        let warm = cached.engine().analyze_all(&CexConfig::default());
        let g = Grammar::parse(EXPR).unwrap();
        let cold = Engine::new(&g).analyze_all(&CexConfig::default());
        assert_eq!(warm.unifying_count(), cold.unifying_count());
        assert_eq!(warm.reports.len(), cold.reports.len());
    }

    #[test]
    fn parse_errors_surface_and_cache_nothing() {
        let cache = EngineCache::with_budget_mb(64);
        let err = cache.get_or_build("%% totally not a grammar").unwrap_err();
        assert!(matches!(err, BuildError::Grammar(_)));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 0, "failed builds are not misses");
    }

    #[test]
    fn tiny_budget_evicts_lru_but_keeps_newest() {
        // Budget of one byte: any second entry forces the first out.
        let cache = EngineCache::with_budget_bytes(1);
        cache.get_or_build(EXPR).unwrap();
        assert_eq!(cache.stats().entries, 1, "sole entry is never evicted");
        cache.get_or_build(EXPR2).unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 1);
        // The evicted grammar rebuilds: a miss, not a hit.
        let (_, hit) = cache.get_or_build(EXPR).unwrap();
        assert!(!hit);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let cache = EngineCache::with_budget_bytes(usize::MAX);
        cache.get_or_build(EXPR).unwrap();
        cache.get_or_build(EXPR2).unwrap();
        cache.get_or_build(EXPR).unwrap(); // EXPR is now more recent
        let fig_bytes = {
            let (e, _) = cache.get_or_build(FIG1).unwrap();
            e.engine().estimated_bytes()
        };
        // Shrink-wrap a fresh cache: budget fits all three minus one, so
        // inserting the third evicts exactly the stalest (EXPR2).
        let (a, _) = cache.get_or_build(EXPR).unwrap();
        let (b, _) = cache.get_or_build(EXPR2).unwrap();
        let budget = a.engine().estimated_bytes() + b.engine().estimated_bytes() + fig_bytes
            - b.engine().estimated_bytes() / 2;
        let tight = EngineCache::with_budget_bytes(budget);
        tight.get_or_build(EXPR).unwrap();
        tight.get_or_build(EXPR2).unwrap();
        tight.get_or_build(EXPR).unwrap();
        tight.get_or_build(FIG1).unwrap();
        let (_, expr_hit) = tight.get_or_build(EXPR).unwrap();
        assert!(expr_hit, "recently-used survives");
        let (_, expr2_hit) = tight.get_or_build(EXPR2).unwrap();
        assert!(!expr2_hit, "least-recently-used was evicted");
    }

    #[test]
    fn evicted_entry_stays_alive_for_holders() {
        let cache = EngineCache::with_budget_bytes(1);
        let (held, _) = cache.get_or_build(EXPR).unwrap();
        cache.get_or_build(EXPR2).unwrap(); // evicts EXPR
                                            // The Arc keeps the evicted engine (and its grammar) alive.
        assert_eq!(held.grammar().prod_count(), 3);
        assert!(held.engine().tables().conflicts().len() == 1);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = EngineCache::with_budget_mb(64);
        cache.get_or_build(EXPR).unwrap();
        cache.get_or_build(EXPR).unwrap();
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.live_bytes, 0);
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn evict_text_drops_exactly_one_entry() {
        let cache = EngineCache::with_budget_mb(64);
        cache.get_or_build(EXPR).unwrap();
        cache.get_or_build(EXPR2).unwrap();
        assert!(!cache.evict_text(FIG1), "absent text evicts nothing");
        assert!(cache.evict_text(EXPR));
        assert!(!cache.evict_text(EXPR), "already gone");
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.evictions, 1);
        // The survivor still hits; the evicted text rebuilds.
        let (_, hit2) = cache.get_or_build(EXPR2).unwrap();
        assert!(hit2);
        let (_, hit) = cache.get_or_build(EXPR).unwrap();
        assert!(!hit, "evicted entry rebuilds from scratch");
    }

    #[test]
    fn content_hash_is_stable_and_text_sensitive() {
        assert_eq!(content_hash("abc"), content_hash("abc"));
        assert_ne!(content_hash("abc"), content_hash("abd"));
    }

    #[test]
    fn tag_zero_hashes_identically_to_content_hash() {
        assert_eq!(tagged_hash(0, EXPR), content_hash(EXPR));
        assert_ne!(tagged_hash(1, EXPR), content_hash(EXPR));
        assert_ne!(tagged_hash(1, EXPR), tagged_hash(2, EXPR));
    }

    #[test]
    fn same_text_under_different_tags_coexists() {
        let cache = EngineCache::with_budget_mb(64);
        let (a, hit_a) = cache.get_or_build_with(0, EXPR, Grammar::parse).unwrap();
        let (b, hit_b) = cache.get_or_build_with(7, EXPR, Grammar::parse).unwrap();
        assert!(!hit_a && !hit_b, "different tags never share an entry");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 2);
        // Each tag hits its own entry on the way back.
        let (a2, hit_a2) = cache.get_or_build_with(0, EXPR, Grammar::parse).unwrap();
        let (b2, hit_b2) = cache.get_or_build_with(7, EXPR, Grammar::parse).unwrap();
        assert!(hit_a2 && hit_b2);
        assert!(Arc::ptr_eq(&a, &a2));
        assert!(Arc::ptr_eq(&b, &b2));
    }

    #[test]
    fn evict_by_tag_leaves_the_other_frontend_warm() {
        let cache = EngineCache::with_budget_mb(64);
        cache.get_or_build_with(0, EXPR, Grammar::parse).unwrap();
        cache.get_or_build_with(7, EXPR, Grammar::parse).unwrap();
        assert!(!cache.evict_text_with(3, EXPR), "absent tag evicts nothing");
        assert!(cache.evict_text_with(7, EXPR));
        let (_, dsl_hit) = cache.get_or_build_with(0, EXPR, Grammar::parse).unwrap();
        assert!(dsl_hit, "tag-0 entry untouched");
        let (_, yacc_hit) = cache.get_or_build_with(7, EXPR, Grammar::parse).unwrap();
        assert!(!yacc_hit, "tagged entry rebuilds after its eviction");
    }

    #[test]
    fn build_with_uses_the_caller_frontend() {
        // A stub frontend that ignores the text entirely: the cache must
        // pair the engine with the *stub's* output, not `Grammar::parse`.
        let stub = |_: &str| Grammar::parse(FIG1);
        let cache = EngineCache::with_budget_mb(64);
        let (e, _) = cache.get_or_build_with(9, "unparseable ! @", stub).unwrap();
        assert!(e.grammar().symbol_named("stmt").is_some());
        assert_eq!(e.text(), "unparseable ! @");
    }
}
