//! Shortest lookahead-sensitive paths (§4 of the paper).
//!
//! A lookahead-sensitive path tracks, along with the (state, item) node,
//! the *precise* set of terminals that can follow the current production.
//! The shortest such path from the start item to the conflict reduce item
//! — with the conflict terminal in the final precise set — is the spine of
//! every nonunifying counterexample and the pruning set for the unifying
//! search (§6).

use std::collections::HashSet;
use std::collections::VecDeque;

use lalrcex_grammar::{Grammar, SymbolId, TerminalSet};
use lalrcex_lr::{Automaton, Item, StateId};

use crate::state_graph::{StateGraph, StateItemId};

/// How a node of a lookahead-sensitive path was reached.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// The first node.
    Start,
    /// A transition consuming the symbol.
    Transition(SymbolId),
    /// A production step (Figure 4(b)).
    Production,
}

/// One node of a lookahead-sensitive path.
#[derive(Clone, Debug)]
pub struct LsNode {
    /// The (state, item) node.
    pub si: StateItemId,
    /// The precise lookahead set at this node.
    pub lookahead: TerminalSet,
    /// The edge used to reach this node from its predecessor.
    pub edge: EdgeKind,
}

/// The paper's `followL` (§4): the precise set of terminals that can follow
/// the nonterminal being stepped into by a production step from `item`
/// under precise lookahead `la`.
pub fn follow_l(g: &Grammar, auto: &Automaton, item: Item, la: &TerminalSet) -> TerminalSet {
    let beta = &item.tail(g)[1..];
    auto.analysis().first_of_seq(g, beta, la)
}

/// Finds the shortest lookahead-sensitive path from the start item (with
/// precise lookahead `{$end}`) to `target` with `conflict_term` in the
/// final precise lookahead set. Returns `None` only if no such path exists
/// (which for a genuine LALR conflict does not happen).
///
/// Search is restricted to nodes that can reach `target` in the state-item
/// graph (the §6 optimization).
pub fn shortest_path(
    g: &Grammar,
    auto: &Automaton,
    graph: &StateGraph,
    target: StateItemId,
    conflict_term: usize,
) -> Option<Vec<LsNode>> {
    shortest_path_metered(g, auto, graph, target, conflict_term).0
}

/// [`shortest_path`] with observability: also returns the number of
/// lookahead-sensitive nodes expanded by the breadth-first search.
pub fn shortest_path_metered(
    g: &Grammar,
    auto: &Automaton,
    graph: &StateGraph,
    target: StateItemId,
    conflict_term: usize,
) -> (Option<Vec<LsNode>>, u64) {
    let mut expanded: u64 = 0;
    let reach = graph.reaching_set(target);
    let start_si = graph.node(StateId::START, Item::start(g.accept_prod()));
    if !reach.contains(start_si.index()) {
        return (None, expanded);
    }

    struct Entry {
        si: StateItemId,
        la: TerminalSet,
        parent: usize,
        edge: EdgeKind,
    }

    let eof_set = TerminalSet::singleton(g.terminal_count(), g.tindex(SymbolId::EOF));
    let mut arena: Vec<Entry> = vec![Entry {
        si: start_si,
        la: eof_set.clone(),
        parent: usize::MAX,
        edge: EdgeKind::Start,
    }];
    let mut visited: HashSet<(StateItemId, TerminalSet)> = HashSet::new();
    visited.insert((start_si, eof_set));
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(idx) = queue.pop_front() {
        expanded += 1;
        crate::fail_point!("spine.expand");
        let (si, la) = (arena[idx].si, arena[idx].la.clone());
        if si == target && la.contains(conflict_term) {
            // Reconstruct.
            let mut path = Vec::new();
            let mut cur = idx;
            while cur != usize::MAX {
                path.push(LsNode {
                    si: arena[cur].si,
                    lookahead: arena[cur].la.clone(),
                    edge: arena[cur].edge,
                });
                cur = arena[cur].parent;
            }
            path.reverse();
            return (Some(path), expanded);
        }
        // Transition successor: same lookahead.
        if let Some(next) = graph.transition(si) {
            if reach.contains(next.index()) && visited.insert((next, la.clone())) {
                let sym = graph
                    .item(si)
                    .next_symbol(g)
                    .expect("transition implies next symbol");
                arena.push(Entry {
                    si: next,
                    la: la.clone(),
                    parent: idx,
                    edge: EdgeKind::Transition(sym),
                });
                queue.push_back(arena.len() - 1);
            }
        }
        // Production-step successors: precise follow set.
        let steps = graph.production_steps(si);
        if !steps.is_empty() {
            let follow = follow_l(g, auto, graph.item(si), &la);
            for &next in steps {
                if reach.contains(next.index()) && visited.insert((next, follow.clone())) {
                    arena.push(Entry {
                        si: next,
                        la: follow.clone(),
                        parent: idx,
                        edge: EdgeKind::Production,
                    });
                    queue.push_back(arena.len() - 1);
                }
            }
        }
    }
    (None, expanded)
}

/// The set of automaton states visited by a path (used to restrict reverse
/// transitions in the unifying search, §6).
pub fn states_of_path(graph: &StateGraph, path: &[LsNode]) -> Vec<StateId> {
    let mut states: Vec<StateId> = path.iter().map(|n| graph.state(n.si)).collect();
    states.sort_unstable();
    states.dedup();
    states
}

/// Renders a path in the style of the paper's Figure 5(a).
pub fn display_path(g: &Grammar, graph: &StateGraph, path: &[LsNode]) -> String {
    let mut out = String::new();
    for node in path {
        let arrow = match node.edge {
            EdgeKind::Start => String::new(),
            EdgeKind::Transition(sym) => format!("  --{}-->\n", g.display_name(sym)),
            EdgeKind::Production => "  --[prod]-->\n".to_owned(),
        };
        out.push_str(&arrow);
        let la: Vec<&str> = node
            .lookahead
            .iter()
            .map(|t| g.display_name(g.terminal(t)))
            .collect();
        out.push_str(&format!(
            "{}, {{{}}}\n",
            graph.display(g, node.si),
            la.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::Grammar;
    use lalrcex_lr::Automaton;

    fn figure1() -> Grammar {
        Grammar::parse(
            "%start stmt
             %%
             stmt : 'if' expr 'then' stmt 'else' stmt
                  | 'if' expr 'then' stmt
                  | expr '?' stmt stmt
                  | 'arr' '[' expr ']' ':=' expr
                  ;
             expr : num | expr '+' expr ;
             num  : digit | num digit ;",
        )
        .unwrap()
    }

    /// Locates the conflict reduce node for the dangling-else conflict.
    fn dangling_else_target(
        g: &Grammar,
        auto: &Automaton,
        graph: &StateGraph,
    ) -> (StateItemId, usize) {
        let tables = auto.tables(g);
        let c = tables
            .conflicts()
            .iter()
            .find(|c| g.display_name(c.terminal) == "else")
            .expect("dangling else conflict");
        (graph.node(c.state, c.reduce_item(g)), g.tindex(c.terminal))
    }

    #[test]
    fn finds_figure5a_path() {
        let g = figure1();
        let auto = Automaton::build(&g);
        let graph = StateGraph::build(&g, &auto);
        let (target, t) = dangling_else_target(&g, &auto, &graph);
        let path = shortest_path(&g, &auto, &graph, target, t).expect("path exists");
        // Figure 5(a): 10 nodes, with transitions spelling
        // `if expr then if expr then stmt`.
        assert_eq!(path.len(), 10, "{}", display_path(&g, &graph, &path));
        let spelled: Vec<String> = path
            .iter()
            .filter_map(|n| match n.edge {
                EdgeKind::Transition(s) => Some(g.display_name(s).to_owned()),
                _ => None,
            })
            .collect();
        assert_eq!(
            spelled,
            vec!["if", "expr", "then", "if", "expr", "then", "stmt"]
        );
        // Final precise lookahead is {else}, not the full LALR set.
        let last = path.last().unwrap();
        assert_eq!(last.lookahead.len(), 1);
        assert!(last.lookahead.contains(t));
        // Production steps: 2 on this path ($accept -> stmt is spelled by a
        // [prod] too, making 3 with the initial closure step).
        let prods = path
            .iter()
            .filter(|n| n.edge == EdgeKind::Production)
            .count();
        assert_eq!(prods, 2);
    }

    #[test]
    fn follow_l_cases() {
        // followL of `stmt -> if · expr then stmt` stepping into expr is
        // {then} (the terminal right after), regardless of L.
        let g = figure1();
        let auto = Automaton::build(&g);
        let stmt = g.symbol_named("stmt").unwrap();
        let short_if = g.prods_of(stmt)[1];
        let item = Item::new(short_if, 1);
        let l = TerminalSet::singleton(g.terminal_count(), g.tindex(SymbolId::EOF));
        let f = follow_l(&g, &auto, item, &l);
        assert_eq!(f.len(), 1);
        assert!(f.contains(g.tindex(g.symbol_named("then").unwrap())));
        // followL at the last position passes L through.
        let item_last = Item::new(short_if, 3);
        let f2 = follow_l(&g, &auto, item_last, &l);
        assert_eq!(f2, l);
    }

    #[test]
    fn follow_l_nullable_nonterminal() {
        let g = Grammar::parse("%% s : a opt X ; a : A ; opt : | Y ;").unwrap();
        let auto = Automaton::build(&g);
        let s = g.symbol_named("s").unwrap();
        let p = g.prods_of(s)[0];
        // Stepping into `a` from `s -> · a opt X`: follow is
        // FIRST(opt) ∪ FIRST(X) = {Y, X} because opt is nullable.
        let l = TerminalSet::singleton(g.terminal_count(), g.tindex(SymbolId::EOF));
        let f = follow_l(&g, &auto, Item::new(p, 0), &l);
        assert!(f.contains(g.tindex(g.symbol_named("Y").unwrap())));
        assert!(f.contains(g.tindex(g.symbol_named("X").unwrap())));
        assert!(!f.contains(g.tindex(SymbolId::EOF)));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn shortest_path_is_lookahead_sensitive_not_just_shortest() {
        // The shortest plain path to the dangling-else reduce item is
        // `if expr then stmt` (4 transitions), but it cannot carry `else`
        // in its precise lookahead; the LSSI path needs a nested if
        // (7 transitions).
        let g = figure1();
        let auto = Automaton::build(&g);
        let graph = StateGraph::build(&g, &auto);
        let (target, t) = dangling_else_target(&g, &auto, &graph);
        let path = shortest_path(&g, &auto, &graph, target, t).unwrap();
        let transitions = path
            .iter()
            .filter(|n| matches!(n.edge, EdgeKind::Transition(_)))
            .count();
        assert_eq!(transitions, 7);
    }

    #[test]
    fn path_for_challenging_conflict() {
        // §3.1: conflict between `num -> num · digit` and `expr -> num ·`
        // under digit. The LSSI prefix is `expr ? arr [ expr ] := num`.
        let g = figure1();
        let auto = Automaton::build(&g);
        let graph = StateGraph::build(&g, &auto);
        let tables = auto.tables(&g);
        let c = tables
            .conflicts()
            .iter()
            .find(|c| g.display_name(c.terminal) == "digit")
            .expect("challenging conflict");
        let target = graph.node(c.state, c.reduce_item(&g));
        let path = shortest_path(&g, &auto, &graph, target, g.tindex(c.terminal)).unwrap();
        let spelled: Vec<String> = path
            .iter()
            .filter_map(|n| match n.edge {
                EdgeKind::Transition(s) => Some(g.display_name(s).to_owned()),
                _ => None,
            })
            .collect();
        assert_eq!(
            spelled,
            vec!["expr", "?", "arr", "[", "expr", "]", ":=", "num"],
            "{}",
            display_path(&g, &graph, &path)
        );
    }
}
