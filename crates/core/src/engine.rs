//! The parallel shared-precomputation conflict engine.
//!
//! Everything conflict-*independent* is built exactly once per grammar —
//! the LALR automaton, the resolved parse tables, the state-item graph
//! with its reverse edges (§6 "Data structures") — and shared read-only
//! across all conflicts. On top of that sits a memo of §4 shortest
//! lookahead-sensitive spines keyed by `(reduce state-item, conflict
//! terminal)`: conflicts that share a reduce item under the same lookahead
//! (common in reduce/reduce clusters and the conflict storms of Java.2)
//! reuse one spine search for both the unifying-search pruning set and the
//! nonunifying construction.
//!
//! Per-conflict work — the product-parser unifying search (§5) and the
//! nonunifying construction — fans out across a [`std::thread::scope`]
//! worker pool. A deadline-aware scheduler enforces both limits of §6:
//! each conflict's search runs under `min(time_limit, remaining grammar
//! budget)`, and once the grammar-wide `cumulative_limit` is exhausted the
//! remaining conflicts skip the expensive search but still receive their
//! cheap nonunifying counterexamples. Reports are collected in conflict
//! table order, so for runs where no limit fires the output is
//! byte-identical whatever the worker count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use lalrcex_grammar::{Analysis, Grammar};
use lalrcex_lr::{Automaton, Conflict, ConflictKind, Resolution, StateId, Tables};

use crate::cancel::{CancelToken, MemoryGovernor, SearchSession, ShardBudget};
use crate::contain::contain;
use crate::error::EngineError;
use crate::lssi::{self, LsNode};
use crate::nonunifying::nonunifying_example;
use crate::provenance::{self, GrammarProvenance};
use crate::report::{CexConfig, ConflictOutcome, ConflictReport, ExampleKind, GrammarReport};
use crate::search::{unifying_search_session, SearchConfig, SearchOutcome, UnifyingExample};
use crate::state_graph::{StateGraph, StateItemId};
use crate::stats::{GrammarStats, SearchStats};

/// A memoized §4 spine: the shortest lookahead-sensitive path to a
/// conflict's reduce item, plus the derived state set that prunes the
/// unifying search (§6).
pub struct Spine {
    /// The path (`None` when no lookahead-sensitive path exists, which for
    /// genuine LALR conflicts does not happen).
    pub path: Option<Vec<LsNode>>,
    /// The automaton states visited by the path, sorted and deduplicated.
    pub states: Vec<StateId>,
    /// Lookahead-sensitive nodes expanded to find the path.
    pub nodes_expanded: u64,
}

/// The per-grammar engine: conflict-independent state built once, then
/// shared read-only by every per-conflict search (and every worker).
pub struct Engine<'g> {
    g: &'g Grammar,
    auto: Automaton,
    tables: Tables,
    graph: StateGraph,
    precompute: Duration,
    memo: Mutex<HashMap<(StateItemId, usize), Arc<Spine>>>,
    prov: Mutex<Option<Arc<GrammarProvenance>>>,
}

/// A read-only view of every conflict-independent fact the engine built for
/// a grammar — the *fact-sharing seam* between the conflict search and
/// other workloads (the `lalrcex-lint` static-analysis passes consume this
/// so nullable/FIRST/reachability/automaton are computed exactly once).
#[derive(Clone, Copy)]
pub struct Facts<'e> {
    /// The grammar the facts describe.
    pub grammar: &'e Grammar,
    /// Nullable / FIRST / FOLLOW / reachability / productivity tables.
    pub analysis: &'e Analysis,
    /// The LALR automaton with per-item lookahead sets.
    pub automaton: &'e Automaton,
    /// Resolved parse tables, surviving conflicts, precedence resolutions.
    pub tables: &'e Tables,
    /// The state-item graph with reverse edges.
    pub graph: &'e StateGraph,
}

/// The outcome of replaying a precedence-resolved conflict through the
/// unifying search (see [`Engine::probe_resolution`]).
#[derive(Debug)]
pub enum ResolutionProbe {
    /// The silenced conflict is a genuine ambiguity: here is the proof.
    Ambiguous(Box<UnifyingExample>),
    /// The bounded search exhausted its space without finding ambiguity —
    /// the precedence resolution was (as far as the search can tell) a
    /// harmless tie-break.
    NotProven,
    /// The deterministic node budget ran out before a verdict.
    BudgetExhausted,
    /// The resolution has no reconstructible conflict item pair (e.g. an
    /// accept-state edge case); nothing to probe.
    NotProbed,
    /// The probe faulted internally; the fault was contained at the probe
    /// boundary, so the remaining resolutions still get probed.
    Internal(EngineError),
}

/// The total worker-pool size implied by a configured worker count: `0`
/// means one per available CPU. Outer per-conflict workers and
/// intra-conflict shard workers are both drawn from this one pool.
pub fn hardware_workers(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Resolves a configured worker count to the number of *outer* per-conflict
/// workers: [`hardware_workers`] clamped to `[1, conflicts]`. Pool capacity
/// beyond the conflict count is lent to heavy searches as a [`ShardBudget`].
pub fn resolve_workers(configured: usize, conflicts: usize) -> usize {
    hardware_workers(configured).clamp(1, conflicts.max(1))
}

impl<'g> Engine<'g> {
    /// Builds all conflict-independent state for `g`: automaton, tables,
    /// state-item graph (with reverse edges), and an empty spine memo.
    pub fn new(g: &'g Grammar) -> Engine<'g> {
        let t0 = Instant::now();
        let auto = Automaton::build(g);
        let tables = auto.tables(g);
        let graph = StateGraph::build(g, &auto);
        Engine {
            g,
            auto,
            tables,
            graph,
            precompute: t0.elapsed(),
            memo: Mutex::new(HashMap::new()),
            prov: Mutex::new(None),
        }
    }

    /// [`Engine::new`] with the precomputation contained: a panic while
    /// building the automaton, tables, or state-item graph is caught at
    /// this boundary and reported as a structured [`EngineError`] (phase
    /// `"precompute"`) instead of unwinding into the caller.
    pub fn try_new(g: &'g Grammar) -> Result<Engine<'g>, EngineError> {
        contain("precompute", || Engine::new(g))
    }

    /// The grammar this engine was built for.
    pub fn grammar(&self) -> &'g Grammar {
        self.g
    }

    /// The LALR automaton.
    pub fn automaton(&self) -> &Automaton {
        &self.auto
    }

    /// The resolved parse tables (with the conflict list).
    pub fn tables(&self) -> &Tables {
        &self.tables
    }

    /// The state-item graph.
    pub fn graph(&self) -> &StateGraph {
        &self.graph
    }

    /// The grammar analyses (nullable / FIRST / FOLLOW / reachability /
    /// productivity), computed once as part of automaton construction.
    pub fn analysis(&self) -> &Analysis {
        self.auto.analysis()
    }

    /// Every conflict-independent fact in one read-only bundle — the
    /// sharing seam consumed by the lint passes (and any future workload
    /// that wants the precomputation without re-running it).
    pub fn facts(&self) -> Facts<'_> {
        Facts {
            grammar: self.g,
            analysis: self.auto.analysis(),
            automaton: &self.auto,
            tables: &self.tables,
            graph: &self.graph,
        }
    }

    /// Time spent building the conflict-independent state.
    pub fn precompute_time(&self) -> Duration {
        self.precompute
    }

    /// A rough estimate of this engine's resident bytes — automaton items
    /// and lookahead sets, state transitions, state-item graph nodes, and
    /// the current spine memo. Not an allocator truth: it feeds the
    /// [`crate::cache::EngineCache`] byte-budget eviction, the same style
    /// of estimated live-byte accounting the search memory governor uses.
    pub fn estimated_bytes(&self) -> usize {
        let tset_bytes = self.g.terminal_count().div_ceil(8) + 24;
        let mut items = 0usize;
        let mut transitions = 0usize;
        for id in self.auto.state_ids() {
            let st = self.auto.state(id);
            items += st.items().len();
            transitions += st.transitions().len();
        }
        let mut bytes =
            256 + items * (8 + tset_bytes) + transitions * 16 + self.graph.node_count() * 96;
        let memo = self.memo.lock().unwrap_or_else(PoisonError::into_inner);
        for spine in memo.values() {
            bytes += 64
                + std::mem::size_of_val(spine.states.as_slice())
                + spine.path.as_deref().map_or(0, std::mem::size_of_val);
        }
        drop(memo);
        let prov = self.prov.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(p) = prov.as_ref() {
            bytes += p.estimated_bytes();
        }
        bytes
    }

    /// The provenance-table share of [`Engine::estimated_bytes`]: `0` until
    /// the first successful [`Engine::provenance`] call builds the tables.
    pub fn provenance_bytes(&self) -> usize {
        self.prov
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map_or(0, |p| p.estimated_bytes())
    }

    /// The lookahead provenance analysis for this grammar: DeRemer–Pennello
    /// relation tables, per-conflict classification (true-ambiguity
    /// candidate / LALR merge artifact / precedence-resolved), and the
    /// provenance chains that carried each conflict terminal. Computed once
    /// per engine and memoized, like the spine memo; byte-deterministic at
    /// any worker count.
    ///
    /// The relation-table build runs under containment (phase
    /// `"provenance.compute"`, with a fault-injection probe of the same
    /// name); a fault there fails the whole query. Per-conflict
    /// classification faults are contained *inside* the analysis, one slot
    /// each, so they degrade only their own conflict. Errors are not
    /// memoized — a faulted build is retried on the next call.
    pub fn provenance(&self) -> Result<Arc<GrammarProvenance>, EngineError> {
        // Poison recovery as for the spine memo: entries are fully
        // constructed before insertion.
        if let Some(p) = self
            .prov
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            return Ok(Arc::clone(p));
        }
        // Compute outside the lock (racing workers duplicate deterministic
        // work rather than blocking; whichever insert wins is identical).
        let computed = contain("provenance.compute", || {
            crate::fail_point!("provenance.compute");
            provenance::compute(self.g, &self.auto, &self.tables)
        })
        .map(Arc::new)?;
        let mut slot = self.prov.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = slot.get_or_insert(computed);
        Ok(Arc::clone(entry))
    }

    /// Reconstructs the conflict a precedence [`Resolution`] silenced, when
    /// the conflict items still exist in the state (they always do for
    /// shift/reduce resolutions).
    pub fn resolved_conflict(&self, res: &Resolution) -> Option<Conflict> {
        let shift_item = self
            .auto
            .state(res.state)
            .items()
            .iter()
            .copied()
            .find(|it| it.next_symbol(self.g) == Some(res.terminal))?;
        Some(Conflict {
            state: res.state,
            terminal: res.terminal,
            reduce_prod: res.reduce_prod,
            kind: ConflictKind::ShiftReduce { shift_item },
        })
    }

    /// Replays a precedence-resolved conflict through the §5 unifying
    /// search under a *deterministic* node budget (`max_configs`; no time
    /// limit, so two runs give byte-identical answers on any machine).
    ///
    /// The spine comes from the same memo the real conflict searches use,
    /// so probing the resolutions of a grammar whose surviving conflicts
    /// were already analyzed is nearly free of precomputation.
    ///
    /// This powers the lint engine's *conflict-masking* pass: a resolution
    /// whose probe returns [`ResolutionProbe::Ambiguous`] silenced a
    /// conflict that a counterexample search proves genuinely ambiguous.
    pub fn probe_resolution(&self, res: &Resolution, max_configs: usize) -> ResolutionProbe {
        let Some(conflict) = self.resolved_conflict(res) else {
            return ResolutionProbe::NotProbed;
        };
        let probe = contain("lint.probe", || {
            crate::fail_point!("lint.probe");
            let (spine, _) = self.spine(&conflict);
            let cfg = SearchConfig {
                // Effectively infinite (a bounded search never gets anywhere
                // near this): determinism comes from the node budgets alone.
                time_limit: Duration::from_secs(3600),
                extended: false,
                max_configs,
                // Bounds derivation depth, and with it the per-configuration
                // clone cost: without it, an adversarial unambiguous grammar
                // can drive the search into configurations whose derivations
                // grow with every step (quadratic total work and stack-deep
                // recursive clones). Genuine masked ambiguities are found at
                // tiny costs; 512 leaves ample headroom.
                max_cost: 512,
                ..SearchConfig::default()
            };
            let cancel = CancelToken::new();
            let governor = MemoryGovernor::unlimited();
            // No shard budget: probe results feed lint snapshots, and a
            // single-threaded probe keeps its wall-clock profile flat.
            let session = SearchSession {
                cancel: &cancel,
                governor: &governor,
                shards: None,
            };
            let mut metrics = crate::stats::SearchMetrics::default();
            match unifying_search_session(
                self.g,
                &self.auto,
                &self.graph,
                &conflict,
                &spine.states,
                &cfg,
                &session,
                &mut metrics,
            ) {
                SearchOutcome::Unifying(ex) => ResolutionProbe::Ambiguous(ex),
                SearchOutcome::Exhausted => ResolutionProbe::NotProven,
                SearchOutcome::TimedOut => ResolutionProbe::BudgetExhausted,
            }
        });
        probe.unwrap_or_else(ResolutionProbe::Internal)
    }

    /// The spine for a conflict, served from the per-grammar memo when a
    /// previous conflict shared the same `(reduce state-item, terminal)`
    /// key. Returns the spine and whether it was a memo hit.
    pub fn spine(&self, conflict: &Conflict) -> (Arc<Spine>, bool) {
        let key = (
            self.graph
                .node(conflict.state, conflict.reduce_item(self.g)),
            self.g.tindex(conflict.terminal),
        );
        // Poison recovery: a panic contained elsewhere may have poisoned
        // the memo mutex; the map itself is append-only and every entry is
        // fully constructed before insertion, so the data is always valid.
        if let Some(s) = self
            .memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return (Arc::clone(s), true);
        }
        // Compute outside the lock: a racing worker may duplicate the work,
        // but the search is deterministic, so whichever insert wins the
        // entry is identical and nothing blocks behind a long search.
        let (path, nodes_expanded) =
            lssi::shortest_path_metered(self.g, &self.auto, &self.graph, key.0, key.1);
        let states = path
            .as_deref()
            .map(|p| lssi::states_of_path(&self.graph, p))
            .unwrap_or_default();
        let spine = Arc::new(Spine {
            path,
            states,
            nodes_expanded,
        });
        let entry = Arc::clone(
            self.memo
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key)
                .or_insert(spine),
        );
        (entry, false)
    }

    /// Diagnoses one conflict under a grammar-wide deadline: the unifying
    /// search gets `min(per-conflict time_limit, time until deadline)`; a
    /// deadline already in the past skips the search entirely but still
    /// constructs the cheap nonunifying counterexample.
    pub fn analyze_conflict_with_deadline(
        &self,
        conflict: &Conflict,
        cfg: &CexConfig,
        deadline: Instant,
    ) -> ConflictReport {
        let cancel = CancelToken::new();
        let governor = MemoryGovernor::with_limit_mb(cfg.max_live_mb);
        // A lone conflict gets the whole pool minus the thread running it.
        let shards = ShardBudget::new(hardware_workers(cfg.workers).saturating_sub(1));
        let session = SearchSession {
            cancel: &cancel,
            governor: &governor,
            shards: Some(&shards),
        };
        self.analyze_conflict_cancellable(conflict, cfg, deadline, &session)
    }

    /// [`Engine::analyze_conflict_with_deadline`] under a shared
    /// [`SearchSession`], with every phase contained at its boundary
    /// (DESIGN.md "Failure domains & degradation ladder"):
    ///
    /// * a panic in the **spine** phase faults the whole slot (nothing
    ///   downstream can run without the spine);
    /// * a panic in the **unifying** search still attempts the cheap
    ///   nonunifying construction, exactly like a timeout would;
    /// * a panic in the **nonunifying** construction keeps whatever the
    ///   earlier phases produced;
    /// * the first fault wins and the slot reports
    ///   [`ConflictOutcome::Internal`] with a stable diagnostic.
    ///
    /// A *hard* (signal) cancellation observed between phases skips the
    /// remaining phases; a *soft* one (budget, memory) only skips the
    /// expensive unifying search, preserving §6 graceful cutoff.
    pub fn analyze_conflict_cancellable(
        &self,
        conflict: &Conflict,
        cfg: &CexConfig,
        deadline: Instant,
        session: &SearchSession<'_>,
    ) -> ConflictReport {
        let started = Instant::now();
        let mut stats = SearchStats::default();

        let t0 = Instant::now();
        let spine_result = contain("spine", || {
            crate::fail_point!("engine.conflict");
            self.spine(conflict)
        });
        stats.time_spine = t0.elapsed();
        let (spine, memo_hit) = match spine_result {
            Ok(s) => s,
            Err(e) => {
                return ConflictReport {
                    conflict: *conflict,
                    outcome: ConflictOutcome::Internal(e),
                    unifying: None,
                    nonunifying: None,
                    elapsed: started.elapsed(),
                    stats,
                };
            }
        };
        stats.spine_memo_hit = memo_hit;
        if !memo_hit {
            stats.spine_nodes = spine.nodes_expanded;
        }

        let mut fault: Option<EngineError> = None;
        let remaining = deadline.saturating_duration_since(Instant::now());
        let (kind, unifying) = if session.cancel.is_hard_cancelled() {
            (ExampleKind::Cancelled, None)
        } else if remaining.is_zero() || session.cancel.is_cancelled() {
            // Budget (or soft cancel) exhausted before this conflict's
            // search started: skip it, keep the cheap phases (§6).
            (ExampleKind::NonunifyingSkipped, None)
        } else {
            let effective = SearchConfig {
                time_limit: cfg.search.time_limit.min(remaining),
                ..cfg.search
            };
            let t1 = Instant::now();
            let outcome = contain("unifying", || {
                unifying_search_session(
                    self.g,
                    &self.auto,
                    &self.graph,
                    conflict,
                    &spine.states,
                    &effective,
                    session,
                    &mut stats.search,
                )
            });
            stats.time_unifying = t1.elapsed();
            match outcome {
                Ok(SearchOutcome::Unifying(ex)) => (ExampleKind::Unifying, Some(*ex)),
                Ok(SearchOutcome::Exhausted) => (ExampleKind::NonunifyingExhausted, None),
                Ok(SearchOutcome::TimedOut) => (ExampleKind::NonunifyingTimeout, None),
                Err(e) => {
                    // A faulted unifying search degrades like a timeout:
                    // the nonunifying fallback below still runs.
                    fault = Some(e);
                    (ExampleKind::NonunifyingTimeout, None)
                }
            }
        };

        let t2 = Instant::now();
        let nonunifying = if session.cancel.is_hard_cancelled() {
            None
        } else {
            match contain("nonunifying", || {
                spine
                    .path
                    .as_deref()
                    .and_then(|p| nonunifying_example(self.g, &self.auto, &self.graph, conflict, p))
            }) {
                Ok(n) => n,
                Err(e) => {
                    fault.get_or_insert(e);
                    None
                }
            }
        };
        stats.time_nonunifying = t2.elapsed();

        let outcome = match fault {
            Some(e) => ConflictOutcome::Internal(e),
            None => ConflictOutcome::Completed(kind),
        };
        ConflictReport {
            conflict: *conflict,
            outcome,
            unifying,
            nonunifying,
            elapsed: started.elapsed(),
            stats,
        }
    }

    /// Analyzes every conflict with the full `cumulative_limit` budget.
    pub fn analyze_all(&self, cfg: &CexConfig) -> GrammarReport {
        self.analyze_all_budgeted(cfg, cfg.cumulative_limit)
    }

    /// [`Engine::analyze_all`] with an explicit remaining grammar budget
    /// (the [`crate::Analyzer`] wrapper passes what is left of its
    /// cumulative accounting).
    pub fn analyze_all_budgeted(&self, cfg: &CexConfig, budget: Duration) -> GrammarReport {
        let cancel = CancelToken::new();
        self.analyze_all_cancellable(cfg, budget, &cancel)
    }

    /// A stub report filling the slot of a conflict whose diagnosis never
    /// started because the run was hard-cancelled.
    fn cancelled_stub(conflict: &Conflict) -> ConflictReport {
        ConflictReport {
            conflict: *conflict,
            outcome: ConflictOutcome::Completed(ExampleKind::Cancelled),
            unifying: None,
            nonunifying: None,
            elapsed: Duration::ZERO,
            stats: SearchStats::default(),
        }
    }

    /// [`Engine::analyze_all_budgeted`] under an external [`CancelToken`]:
    /// a hard (signal) cancel stops every worker at its next check and
    /// stubs unstarted conflicts with [`ExampleKind::Cancelled`] reports,
    /// so the grammar report always has one entry per conflict. Per-conflict
    /// work is tagged with its conflict-slot scope for the deterministic
    /// fault-injection probes (`crate::faultpoint`).
    pub fn analyze_all_cancellable(
        &self,
        cfg: &CexConfig,
        budget: Duration,
        cancel: &CancelToken,
    ) -> GrammarReport {
        let started = Instant::now();
        let conflicts: Vec<Conflict> = self.tables.conflicts().to_vec();
        let n = conflicts.len();
        let deadline = started + budget;
        let workers = resolve_workers(cfg.workers, n);
        let governor = MemoryGovernor::with_limit_mb(cfg.max_live_mb);
        // Pool capacity not consumed by outer workers is lent to heavy
        // searches for intra-conflict frontier sharding; each outer worker
        // returns its own permit below when it runs out of conflicts, so a
        // late heavy search (the stackovf08/xi pattern) can recruit the
        // idle cores instead of waiting out its timeout alone.
        let shards = ShardBudget::new(hardware_workers(cfg.workers).saturating_sub(workers));
        let session = SearchSession {
            cancel,
            governor: &governor,
            shards: Some(&shards),
        };

        let mut slots: Vec<Option<ConflictReport>> = (0..n).map(|_| None).collect();
        if workers <= 1 || n <= 1 {
            for (i, c) in conflicts.iter().enumerate() {
                if cancel.is_hard_cancelled() {
                    break;
                }
                slots[i] = Some(crate::faultpoint::with_scope(i as u64, || {
                    self.analyze_conflict_cancellable(c, cfg, deadline, &session)
                }));
            }
        } else {
            // Work-stealing by atomic index: cheap, and conflict order is
            // restored by slot index on collection, so the report order is
            // deterministic regardless of scheduling.
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, ConflictReport)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let conflicts = &conflicts;
                    let shards = &shards;
                    scope.spawn(move || loop {
                        if session.cancel.is_hard_cancelled() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            // Out of conflicts: lend this worker to any
                            // still-running heavy search.
                            shards.release(1);
                            break;
                        }
                        let report = crate::faultpoint::with_scope(i as u64, || {
                            self.analyze_conflict_cancellable(
                                &conflicts[i],
                                cfg,
                                deadline,
                                &session,
                            )
                        });
                        if tx.send((i, report)).is_err() {
                            break;
                        }
                    });
                }
            });
            drop(tx);
            for (i, report) in rx {
                slots[i] = Some(report);
            }
        }
        // Hard cancellation may leave unstarted slots: stub them so the
        // report still carries one entry per conflict.
        let reports: Vec<ConflictReport> = slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| Self::cancelled_stub(&conflicts[i])))
            .collect();

        let mut stats = GrammarStats {
            precompute: self.precompute,
            workers,
            ..GrammarStats::default()
        };
        for r in &reports {
            stats.absorb(&r.stats);
        }
        GrammarReport {
            reports,
            total_time: started.elapsed(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::format_report;

    fn figure1() -> Grammar {
        Grammar::parse(
            "%start stmt
             %%
             stmt : 'if' expr 'then' stmt 'else' stmt
                  | 'if' expr 'then' stmt
                  | expr '?' stmt stmt
                  | 'arr' '[' expr ']' ':=' expr
                  ;
             expr : num | expr '+' expr ;
             num  : digit | num digit ;",
        )
        .unwrap()
    }

    #[test]
    fn resolve_workers_clamps() {
        assert_eq!(resolve_workers(4, 2), 2);
        assert_eq!(resolve_workers(1, 100), 1);
        assert_eq!(resolve_workers(8, 0), 1, "no conflicts still needs 1");
        assert!(resolve_workers(0, 100) >= 1, "auto resolves to >= 1");
    }

    #[test]
    fn spine_memo_hits_on_repeat() {
        let g = figure1();
        let engine = Engine::new(&g);
        let c = engine.tables().conflicts()[0];
        let (first, hit1) = engine.spine(&c);
        assert!(!hit1, "first lookup computes");
        assert!(first.nodes_expanded > 0);
        let (second, hit2) = engine.spine(&c);
        assert!(hit2, "second lookup is memoized");
        assert!(Arc::ptr_eq(&first, &second), "same spine shared");
    }

    #[test]
    fn parallel_reports_match_sequential() {
        let g = figure1();
        let engine = Engine::new(&g);
        let seq_cfg = CexConfig {
            workers: 1,
            ..CexConfig::default()
        };
        let par_cfg = CexConfig {
            workers: 3,
            ..CexConfig::default()
        };
        let seq = engine.analyze_all(&seq_cfg);
        let par = engine.analyze_all(&par_cfg);
        assert_eq!(seq.reports.len(), par.reports.len());
        for (a, b) in seq.reports.iter().zip(&par.reports) {
            assert_eq!(format_report(&g, a), format_report(&g, b));
        }
        assert_eq!(par.stats.workers, 3);
        assert!(par.stats.search.explored > 0);
    }

    #[test]
    fn exhausted_budget_still_builds_nonunifying() {
        let g = figure1();
        let engine = Engine::new(&g);
        let cfg = CexConfig {
            cumulative_limit: Duration::ZERO,
            workers: 2,
            ..CexConfig::default()
        };
        let report = engine.analyze_all(&cfg);
        assert_eq!(report.reports.len(), 3);
        for r in &report.reports {
            assert_eq!(r.kind(), Some(ExampleKind::NonunifyingSkipped));
            assert!(
                r.nonunifying.is_some(),
                "cheap nonunifying path must still run"
            );
        }
        assert_eq!(report.stats.search.explored, 0, "no search was run");
    }

    #[test]
    fn probe_resolution_flags_masked_ambiguity() {
        // `%left '+'` silences the classic `e + e · + e` ambiguity — the
        // probe must prove it is genuine.
        let g = Grammar::parse("%left '+' %% e : e '+' e | NUM ;").unwrap();
        let engine = Engine::new(&g);
        assert!(engine.tables().conflicts().is_empty());
        let res: Vec<_> = engine.tables().resolutions().to_vec();
        assert!(!res.is_empty());
        let probe = engine.probe_resolution(&res[0], 1 << 16);
        match probe {
            ResolutionProbe::Ambiguous(ex) => {
                assert_eq!(g.display_name(ex.nonterminal), "e");
            }
            other => panic!("expected Ambiguous, got {other:?}"),
        }
    }

    #[test]
    fn probe_resolution_budget_is_deterministic() {
        let g = Grammar::parse("%left '+' %% e : e '+' e | NUM ;").unwrap();
        let engine = Engine::new(&g);
        let res = engine.tables().resolutions()[0];
        // A tiny budget exhausts identically on every run.
        let a = format!("{:?}", engine.probe_resolution(&res, 2));
        let b = format!("{:?}", engine.probe_resolution(&res, 2));
        assert_eq!(a, b);
        assert!(
            matches!(
                engine.probe_resolution(&res, 2),
                ResolutionProbe::BudgetExhausted
            ),
            "2 configs cannot complete the search"
        );
    }

    #[test]
    fn facts_share_engine_precomputation() {
        let g = figure1();
        let engine = Engine::new(&g);
        let facts = engine.facts();
        assert!(std::ptr::eq(facts.grammar, engine.grammar()));
        assert!(std::ptr::eq(facts.analysis, engine.analysis()));
        assert!(std::ptr::eq(facts.tables, engine.tables()));
        assert!(std::ptr::eq(facts.automaton, engine.automaton()));
        let s = g.symbol_named("stmt").unwrap();
        assert!(facts.analysis.reachable(s));
    }

    #[test]
    fn stats_are_populated_on_normal_runs() {
        let g = figure1();
        let engine = Engine::new(&g);
        let report = engine.analyze_all(&CexConfig::default());
        assert_eq!(report.stats.conflicts, 3);
        assert!(report.stats.search.explored > 0);
        assert!(report.stats.search.enqueued >= report.stats.search.explored);
        assert!(report.stats.spine_nodes > 0);
        assert_eq!(
            report.stats.spine_memo_hits + report.stats.spine_memo_misses,
            3
        );
    }
}
