//! Structural validation of counterexamples.
//!
//! These checks are self-contained (no Earley oracle needed): they verify
//! that reported derivations really are derivations of the grammar and
//! that a unifying counterexample's two derivations share one string while
//! differing structurally. The integration tests additionally cross-check
//! ambiguity claims against the independent `lalrcex-earley` oracle.

use lalrcex_grammar::{Derivation, Grammar, SymbolKind};

use crate::nonunifying::NonunifyingExample;
use crate::search::UnifyingExample;

/// `true` if every expanded node of `d` applies an actual production of
/// the grammar (dot markers are ignored).
pub fn derivation_wellformed(g: &Grammar, d: &Derivation) -> bool {
    match d {
        Derivation::Leaf(_) | Derivation::Dot => true,
        Derivation::Node(sym, children) => {
            if g.kind(*sym) != SymbolKind::Nonterminal {
                return false;
            }
            let child_syms: Vec<_> = children.iter().filter_map(Derivation::symbol).collect();
            let matches_prod = g
                .prods_of(*sym)
                .iter()
                .any(|&pid| g.prod(pid).rhs() == child_syms.as_slice());
            matches_prod && children.iter().all(|c| derivation_wellformed(g, c))
        }
    }
}

/// `true` if a unifying example is internally consistent: both derivations
/// are wellformed, derive the same nonterminal, produce the same string,
/// and differ structurally (ignoring dots).
pub fn unifying_consistent(g: &Grammar, ex: &UnifyingExample) -> bool {
    let UnifyingExample {
        nonterminal,
        derivation1,
        derivation2,
    } = ex;
    derivation_wellformed(g, derivation1)
        && derivation_wellformed(g, derivation2)
        && derivation1.symbol() == Some(*nonterminal)
        && derivation2.symbol() == Some(*nonterminal)
        && derivation1.leaves() == derivation2.leaves()
        && derivation1.strip_dots() != derivation2.strip_dots()
}

/// `true` if a nonunifying example is internally consistent: derivations
/// are wellformed and share a common prefix up to the conflict point.
pub fn nonunifying_consistent(g: &Grammar, ex: &NonunifyingExample) -> bool {
    if !derivation_wellformed(g, &ex.reduce_derivation) {
        return false;
    }
    let Some(other) = &ex.other_derivation else {
        return true;
    };
    if !derivation_wellformed(g, other) {
        return false;
    }
    // Common prefix up to the dot.
    prefix_to_dot(g, &ex.reduce_derivation) == prefix_to_dot(g, other)
}

/// The leaf symbols before the (first) dot marker.
fn prefix_to_dot(g: &Grammar, d: &Derivation) -> Vec<String> {
    fn walk(d: &Derivation, g: &Grammar, out: &mut Vec<String>, stop: &mut bool) {
        if *stop {
            return;
        }
        match d {
            Derivation::Dot => *stop = true,
            Derivation::Leaf(s) => out.push(g.display_name(*s).to_owned()),
            Derivation::Node(_, children) => {
                for c in children {
                    walk(c, g, out, stop);
                }
            }
        }
    }
    let mut out = Vec::new();
    let mut stop = false;
    walk(d, g, &mut out, &mut stop);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::SymbolId;

    fn g() -> Grammar {
        Grammar::parse("%% e : e '+' e | N ;").unwrap()
    }

    #[test]
    fn wellformed_accepts_valid_tree() {
        let g = g();
        let e = g.symbol_named("e").unwrap();
        let n = g.symbol_named("N").unwrap();
        let plus = g.symbol_named("+").unwrap();
        let tree = Derivation::Node(
            e,
            vec![
                Derivation::Node(e, vec![Derivation::Leaf(n)]),
                Derivation::Leaf(plus),
                Derivation::Leaf(e),
            ],
        );
        assert!(derivation_wellformed(&g, &tree));
    }

    #[test]
    fn wellformed_rejects_wrong_rhs() {
        let g = g();
        let e = g.symbol_named("e").unwrap();
        let plus = g.symbol_named("+").unwrap();
        let bad = Derivation::Node(e, vec![Derivation::Leaf(plus)]);
        assert!(!derivation_wellformed(&g, &bad));
        let bad2 = Derivation::Node(plus, vec![]);
        assert!(!derivation_wellformed(&g, &bad2));
    }

    #[test]
    fn wellformed_ignores_dots() {
        let g = g();
        let e = g.symbol_named("e").unwrap();
        let n = g.symbol_named("N").unwrap();
        let tree = Derivation::Node(e, vec![Derivation::Leaf(n), Derivation::Dot]);
        assert!(derivation_wellformed(&g, &tree));
    }

    #[test]
    fn prefix_to_dot_extraction() {
        let g = g();
        let e = g.symbol_named("e").unwrap();
        let n = g.symbol_named("N").unwrap();
        let plus = g.symbol_named("+").unwrap();
        let tree = Derivation::Node(
            e,
            vec![
                Derivation::Leaf(n),
                Derivation::Leaf(plus),
                Derivation::Dot,
                Derivation::Leaf(e),
            ],
        );
        assert_eq!(prefix_to_dot(&g, &tree), vec!["N", "+"]);
        let _ = SymbolId::EOF;
    }
}
