//! Top-level driver: analyze a grammar's conflicts and format reports in
//! the style of the paper's Figure 11.

use std::time::{Duration, Instant};

use lalrcex_grammar::{Derivation, Grammar};
use lalrcex_lr::{Automaton, Conflict, ConflictKind, Item, Tables};

use crate::lssi::{self, LsNode};
use crate::nonunifying::{nonunifying_example, NonunifyingExample};
use crate::search::{unifying_search, SearchConfig, SearchOutcome, UnifyingExample};
use crate::state_graph::StateGraph;

/// Configuration for the whole counterexample run.
#[derive(Clone, Copy, Debug)]
pub struct CexConfig {
    /// Per-conflict unifying-search settings.
    pub search: SearchConfig,
    /// Cumulative budget for the unifying search across all conflicts of a
    /// grammar; once exceeded, only nonunifying counterexamples are built
    /// (§6: two minutes in the paper's implementation).
    pub cumulative_limit: Duration,
}

impl Default for CexConfig {
    fn default() -> CexConfig {
        CexConfig {
            search: SearchConfig::default(),
            cumulative_limit: Duration::from_secs(120),
        }
    }
}

/// What kind of counterexample a conflict ended up with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExampleKind {
    /// A unifying counterexample (ambiguity proven).
    Unifying,
    /// The search space was exhausted: no unifying counterexample exists
    /// under the search's restrictions; a nonunifying one is reported.
    NonunifyingExhausted,
    /// The per-conflict time limit was hit; a nonunifying one is reported.
    NonunifyingTimeout,
    /// The cumulative budget was already spent; the unifying search was
    /// skipped entirely.
    NonunifyingSkipped,
}

/// Everything the tool reports for one conflict.
#[derive(Clone, Debug)]
pub struct ConflictReport {
    /// The conflict being explained.
    pub conflict: Conflict,
    /// Which kind of example was produced.
    pub kind: ExampleKind,
    /// The unifying counterexample, when found.
    pub unifying: Option<UnifyingExample>,
    /// The nonunifying counterexample (always constructed as a fallback;
    /// also kept alongside a unifying one for the prefix display).
    pub nonunifying: Option<NonunifyingExample>,
    /// Time spent on this conflict.
    pub elapsed: Duration,
}

/// A full grammar analysis.
#[derive(Debug)]
pub struct GrammarReport {
    /// One report per conflict, in table order.
    pub reports: Vec<ConflictReport>,
    /// Total time across all conflicts.
    pub total_time: Duration,
}

impl GrammarReport {
    /// Number of conflicts with a unifying counterexample.
    pub fn unifying_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.kind == ExampleKind::Unifying)
            .count()
    }

    /// Number of conflicts where the search space was exhausted.
    pub fn exhausted_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.kind == ExampleKind::NonunifyingExhausted)
            .count()
    }

    /// Number of conflicts that timed out (or were skipped).
    pub fn timeout_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| {
                matches!(
                    r.kind,
                    ExampleKind::NonunifyingTimeout | ExampleKind::NonunifyingSkipped
                )
            })
            .count()
    }
}

/// Reusable per-grammar analysis state: automaton, tables, state-item
/// graph, and the cumulative time budget (§6).
pub struct Analyzer<'g> {
    g: &'g Grammar,
    auto: Automaton,
    tables: Tables,
    graph: StateGraph,
    spent: Duration,
}

impl<'g> Analyzer<'g> {
    /// Builds the automaton, tables, and lookup tables for `g`.
    pub fn new(g: &'g Grammar) -> Analyzer<'g> {
        let auto = Automaton::build(g);
        let tables = auto.tables(g);
        let graph = StateGraph::build(g, &auto);
        Analyzer {
            g,
            auto,
            tables,
            graph,
            spent: Duration::ZERO,
        }
    }

    /// The LALR automaton.
    pub fn automaton(&self) -> &Automaton {
        &self.auto
    }

    /// The resolved parse tables (with the conflict list).
    pub fn tables(&self) -> &Tables {
        &self.tables
    }

    /// The state-item graph.
    pub fn graph(&self) -> &StateGraph {
        &self.graph
    }

    /// The shortest lookahead-sensitive path for a conflict (also exposed
    /// for the Figure 5 reproduction).
    pub fn shortest_path(&self, conflict: &Conflict) -> Option<Vec<LsNode>> {
        let target = self.graph.node(conflict.state, conflict.reduce_item(self.g));
        lssi::shortest_path(
            self.g,
            &self.auto,
            &self.graph,
            target,
            self.g.tindex(conflict.terminal),
        )
    }

    /// Produces the counterexample report for one conflict.
    pub fn analyze_conflict(&mut self, conflict: &Conflict, cfg: &CexConfig) -> ConflictReport {
        let started = Instant::now();
        let path = self.shortest_path(conflict);

        let (kind, unifying) = if self.spent >= cfg.cumulative_limit {
            (ExampleKind::NonunifyingSkipped, None)
        } else {
            let slsp_states = path
                .as_deref()
                .map(|p| lssi::states_of_path(&self.graph, p))
                .unwrap_or_default();
            match unifying_search(
                self.g,
                &self.auto,
                &self.graph,
                conflict,
                &slsp_states,
                &cfg.search,
            ) {
                SearchOutcome::Unifying(ex) => (ExampleKind::Unifying, Some(*ex)),
                SearchOutcome::Exhausted => (ExampleKind::NonunifyingExhausted, None),
                SearchOutcome::TimedOut => (ExampleKind::NonunifyingTimeout, None),
            }
        };

        let nonunifying = path
            .as_deref()
            .and_then(|p| nonunifying_example(self.g, &self.auto, &self.graph, conflict, p));

        let elapsed = started.elapsed();
        self.spent += elapsed;
        ConflictReport {
            conflict: *conflict,
            kind,
            unifying,
            nonunifying,
            elapsed,
        }
    }

    /// Analyzes every conflict of the grammar.
    pub fn analyze_all(&mut self, cfg: &CexConfig) -> GrammarReport {
        let started = Instant::now();
        let conflicts: Vec<Conflict> = self.tables.conflicts().to_vec();
        let reports = conflicts
            .iter()
            .map(|c| self.analyze_conflict(c, cfg))
            .collect();
        GrammarReport {
            reports,
            total_time: started.elapsed(),
        }
    }
}

/// One-call convenience: analyze all conflicts of `g` with default limits.
///
/// # Example
///
/// ```
/// use lalrcex_grammar::Grammar;
/// use lalrcex_core::analyze;
///
/// let g = Grammar::parse("%% e : e '+' e | NUM ;")?;
/// let report = analyze(&g);
/// assert_eq!(report.reports.len(), 1);
/// assert_eq!(report.unifying_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze(g: &Grammar) -> GrammarReport {
    Analyzer::new(g).analyze_all(&CexConfig::default())
}

/// Formats an item in CUP's style: `expr ::= expr · PLUS expr`.
fn display_item_cup(g: &Grammar, item: Item) -> String {
    let p = g.prod(item.prod());
    let mut out = format!("{} ::=", g.display_name(p.lhs()));
    for (i, &s) in p.rhs().iter().enumerate() {
        if i == item.dot() {
            out.push_str(" \u{2022}");
        }
        out.push(' ');
        out.push_str(g.display_name(s));
    }
    if item.dot() == p.rhs().len() {
        out.push_str(" \u{2022}");
    }
    out
}

/// Renders a derivation for the report, hiding the `$accept` wrapper.
fn pretty_top(g: &Grammar, d: &Derivation) -> String {
    match d {
        Derivation::Node(sym, children) if *sym == g.accept() => children
            .iter()
            .map(|c| c.pretty(g))
            .collect::<Vec<_>>()
            .join(" "),
        other => other.pretty(g),
    }
}

/// Renders a derivation's sentential form, hiding the `$accept` wrapper's
/// trailing end-of-input marker.
fn flat_top(g: &Grammar, d: &Derivation) -> String {
    let s = d.flat(g);
    s.strip_suffix(" $").unwrap_or(&s).to_owned()
}

/// Formats a full conflict report in the style of the paper's Figure 11.
pub fn format_report(g: &Grammar, r: &ConflictReport) -> String {
    let c = &r.conflict;
    let (what, action2) = match c.kind {
        ConflictKind::ShiftReduce { shift_item } => {
            ("Shift/Reduce", format!("shift on {}", display_item_cup(g, shift_item)))
        }
        ConflictKind::ReduceReduce { other_prod } => (
            "Reduce/Reduce",
            format!(
                "reduction on {}",
                display_item_cup(g, Item::new(other_prod, g.prod(other_prod).rhs().len()))
            ),
        ),
    };
    let mut out = format!(
        "Warning : *** {} conflict found in state #{}\n  between reduction on {}\n  and {}\n  under symbol {}\n",
        what,
        c.state.index(),
        display_item_cup(g, c.reduce_item(g)),
        action2,
        g.display_name(c.terminal),
    );
    match (&r.unifying, &r.nonunifying) {
        (Some(u), _) => {
            out.push_str(&format!(
                "Ambiguity detected for nonterminal {}\nExample: {}\n",
                g.display_name(u.nonterminal),
                u.derivation1.flat(g),
            ));
            out.push_str(&format!(
                "Derivation using reduction:\n  {}\nDerivation using {}:\n  {}\n",
                u.derivation1.pretty(g),
                if matches!(c.kind, ConflictKind::ShiftReduce { .. }) {
                    "shift"
                } else {
                    "second reduction"
                },
                u.derivation2.pretty(g),
            ));
        }
        (None, Some(n)) => {
            let reason = match r.kind {
                ExampleKind::NonunifyingExhausted => "No ambiguity was detected for this conflict",
                ExampleKind::NonunifyingTimeout => {
                    "The search for a unifying counterexample timed out"
                }
                _ => "The unifying search was skipped (cumulative time budget spent)",
            };
            out.push_str(&format!("{reason}; reporting a nonunifying counterexample\n"));
            out.push_str(&format!(
                "Example using reduction: {}\nDerivation:\n  {}\n",
                flat_top(g, &n.reduce_derivation),
                pretty_top(g, &n.reduce_derivation),
            ));
            if let Some(o) = &n.other_derivation {
                out.push_str(&format!(
                    "Example using the other action: {}\nDerivation:\n  {}\n",
                    flat_top(g, o),
                    pretty_top(g, o),
                ));
            }
        }
        (None, None) => {
            out.push_str("No counterexample could be constructed (internal limitation)\n");
        }
    }
    out
}
