//! Top-level driver: analyze a grammar's conflicts and format reports in
//! the style of the paper's Figure 11.

use std::time::{Duration, Instant};

use lalrcex_grammar::{Derivation, Grammar};
use lalrcex_lr::{Automaton, Conflict, ConflictKind, Item, Tables};

use crate::engine::Engine;
use crate::error::EngineError;
use crate::lssi::LsNode;
use crate::nonunifying::NonunifyingExample;
use crate::search::{SearchConfig, UnifyingExample};
use crate::state_graph::StateGraph;
use crate::stats::{GrammarStats, SearchStats};

/// Configuration for the whole counterexample run.
#[derive(Clone, Copy, Debug)]
pub struct CexConfig {
    /// Per-conflict unifying-search settings.
    pub search: SearchConfig,
    /// Cumulative budget for the unifying search across all conflicts of a
    /// grammar; once exceeded, only nonunifying counterexamples are built
    /// (§6: two minutes in the paper's implementation).
    pub cumulative_limit: Duration,
    /// Worker threads for [`Analyzer::analyze_all`] / [`Engine::analyze_all`].
    /// `0` (the default) resolves to one worker per available CPU; the
    /// effective count is clamped to the number of conflicts.
    pub workers: usize,
    /// Soft limit, in mebibytes, on the estimated live frontier bytes
    /// across all in-flight unifying searches (the CLI's `--max-rss-mb`).
    /// Over the limit, searches *shed* — tighten their cost caps so their
    /// frontiers drain into `TimedOut` — instead of growing. `0` (the
    /// default) disables the governor.
    pub max_live_mb: usize,
}

impl Default for CexConfig {
    fn default() -> CexConfig {
        CexConfig {
            search: SearchConfig::default(),
            cumulative_limit: Duration::from_secs(120),
            workers: 0,
            max_live_mb: 0,
        }
    }
}

/// What kind of counterexample a conflict ended up with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExampleKind {
    /// A unifying counterexample (ambiguity proven).
    Unifying,
    /// The search space was exhausted: no unifying counterexample exists
    /// under the search's restrictions; a nonunifying one is reported.
    NonunifyingExhausted,
    /// The per-conflict time limit was hit; a nonunifying one is reported.
    NonunifyingTimeout,
    /// The cumulative budget was already spent; the unifying search was
    /// skipped entirely.
    NonunifyingSkipped,
    /// The run was hard-cancelled (Ctrl-C) before this conflict's
    /// diagnosis ran; a stub report fills its slot.
    Cancelled,
}

/// How one conflict's diagnosis ended: completed (possibly degraded — see
/// [`ExampleKind`]), or faulted internally. A fault is *contained*: the
/// slot renders a stable diagnostic and every other conflict still gets
/// its report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConflictOutcome {
    /// The diagnosis ran to completion.
    Completed(ExampleKind),
    /// A contained internal fault — a panic caught at a phase boundary, or
    /// a structured engine error.
    Internal(EngineError),
}

/// Everything the tool reports for one conflict.
#[derive(Clone, Debug)]
pub struct ConflictReport {
    /// The conflict being explained.
    pub conflict: Conflict,
    /// How the diagnosis ended.
    pub outcome: ConflictOutcome,
    /// The unifying counterexample, when found.
    pub unifying: Option<UnifyingExample>,
    /// The nonunifying counterexample (always constructed as a fallback;
    /// also kept alongside a unifying one for the prefix display).
    pub nonunifying: Option<NonunifyingExample>,
    /// Time spent on this conflict.
    pub elapsed: Duration,
    /// Observability counters for every phase of this conflict's diagnosis.
    pub stats: SearchStats,
}

impl ConflictReport {
    /// The example kind, when the diagnosis completed (`None` for a
    /// contained internal fault).
    pub fn kind(&self) -> Option<ExampleKind> {
        match &self.outcome {
            ConflictOutcome::Completed(k) => Some(*k),
            ConflictOutcome::Internal(_) => None,
        }
    }

    /// Did this conflict's diagnosis fault internally?
    pub fn is_internal(&self) -> bool {
        matches!(self.outcome, ConflictOutcome::Internal(_))
    }

    /// The contained fault, if any.
    pub fn error(&self) -> Option<&EngineError> {
        match &self.outcome {
            ConflictOutcome::Internal(e) => Some(e),
            ConflictOutcome::Completed(_) => None,
        }
    }
}

/// A full grammar analysis.
#[derive(Debug)]
pub struct GrammarReport {
    /// One report per conflict, in table order.
    pub reports: Vec<ConflictReport>,
    /// Total wall-clock time across all conflicts.
    pub total_time: Duration,
    /// Grammar-wide aggregate counters (feeds `--stats` and Table 1).
    pub stats: GrammarStats,
}

impl GrammarReport {
    /// Number of conflicts with a unifying counterexample.
    pub fn unifying_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.kind() == Some(ExampleKind::Unifying))
            .count()
    }

    /// Number of conflicts where the search space was exhausted.
    pub fn exhausted_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.kind() == Some(ExampleKind::NonunifyingExhausted))
            .count()
    }

    /// Number of conflicts that timed out (or were skipped).
    pub fn timeout_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| {
                matches!(
                    r.kind(),
                    Some(ExampleKind::NonunifyingTimeout | ExampleKind::NonunifyingSkipped)
                )
            })
            .count()
    }

    /// Number of conflicts whose diagnosis faulted internally (contained).
    pub fn internal_count(&self) -> usize {
        self.reports.iter().filter(|r| r.is_internal()).count()
    }

    /// Number of conflict slots stubbed out by a hard cancellation.
    pub fn cancelled_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.kind() == Some(ExampleKind::Cancelled))
            .count()
    }
}

/// Reusable per-grammar analysis state: a thin stateful wrapper over
/// [`Engine`] that tracks the cumulative time budget (§6) across repeated
/// `analyze_conflict` calls.
pub struct Analyzer<'g> {
    engine: Engine<'g>,
    spent: Duration,
}

impl<'g> Analyzer<'g> {
    /// Builds the automaton, tables, and lookup tables for `g`.
    pub fn new(g: &'g Grammar) -> Analyzer<'g> {
        Analyzer {
            engine: Engine::new(g),
            spent: Duration::ZERO,
        }
    }

    /// The underlying conflict-independent engine.
    pub fn engine(&self) -> &Engine<'g> {
        &self.engine
    }

    /// The LALR automaton.
    pub fn automaton(&self) -> &Automaton {
        self.engine.automaton()
    }

    /// The resolved parse tables (with the conflict list).
    pub fn tables(&self) -> &Tables {
        self.engine.tables()
    }

    /// The state-item graph.
    pub fn graph(&self) -> &StateGraph {
        self.engine.graph()
    }

    /// The shortest lookahead-sensitive path for a conflict (also exposed
    /// for the Figure 5 reproduction). Served from the engine's spine memo.
    pub fn shortest_path(&self, conflict: &Conflict) -> Option<Vec<LsNode>> {
        self.engine.spine(conflict).0.path.clone()
    }

    /// Produces the counterexample report for one conflict, charging the
    /// time spent against the cumulative budget.
    pub fn analyze_conflict(&mut self, conflict: &Conflict, cfg: &CexConfig) -> ConflictReport {
        let remaining = cfg.cumulative_limit.saturating_sub(self.spent);
        let deadline = Instant::now() + remaining;
        let r = self
            .engine
            .analyze_conflict_with_deadline(conflict, cfg, deadline);
        self.spent += r.elapsed;
        r
    }

    /// Analyzes every conflict of the grammar, fanning the per-conflict
    /// searches across `cfg.workers` threads (see [`Engine::analyze_all`]).
    pub fn analyze_all(&mut self, cfg: &CexConfig) -> GrammarReport {
        let cancel = crate::cancel::CancelToken::new();
        self.analyze_all_cancellable(cfg, &cancel)
    }

    /// [`Analyzer::analyze_all`] under an external
    /// [`CancelToken`](crate::cancel::CancelToken): a hard
    /// (signal) cancel stops in-flight searches at their next stride poll
    /// and stubs unstarted conflicts with [`ExampleKind::Cancelled`]
    /// reports, so the report still has one entry per conflict.
    pub fn analyze_all_cancellable(
        &mut self,
        cfg: &CexConfig,
        cancel: &crate::cancel::CancelToken,
    ) -> GrammarReport {
        let budget = cfg.cumulative_limit.saturating_sub(self.spent);
        let report = self.engine.analyze_all_cancellable(cfg, budget, cancel);
        self.spent += report.reports.iter().map(|r| r.elapsed).sum::<Duration>();
        report
    }
}

/// One-call convenience: analyze all conflicts of `g` with default limits.
///
/// # Example
///
/// ```
/// use lalrcex_grammar::Grammar;
/// use lalrcex_core::analyze;
///
/// let g = Grammar::parse("%% e : e '+' e | NUM ;")?;
/// let report = analyze(&g);
/// assert_eq!(report.reports.len(), 1);
/// assert_eq!(report.unifying_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze(g: &Grammar) -> GrammarReport {
    Analyzer::new(g).analyze_all(&CexConfig::default())
}

/// Formats an item in CUP's style: `expr ::= expr · PLUS expr` (also used
/// by the JSON report schema, so the same rendering appears in both).
pub fn display_item_cup(g: &Grammar, item: Item) -> String {
    let p = g.prod(item.prod());
    let mut out = format!("{} ::=", g.display_name(p.lhs()));
    for (i, &s) in p.rhs().iter().enumerate() {
        if i == item.dot() {
            out.push_str(" \u{2022}");
        }
        out.push(' ');
        out.push_str(g.display_name(s));
    }
    if item.dot() == p.rhs().len() {
        out.push_str(" \u{2022}");
    }
    out
}

/// Renders a derivation for the report, hiding the `$accept` wrapper.
fn pretty_top(g: &Grammar, d: &Derivation) -> String {
    match d {
        Derivation::Node(sym, children) if *sym == g.accept() => children
            .iter()
            .map(|c| c.pretty(g))
            .collect::<Vec<_>>()
            .join(" "),
        other => other.pretty(g),
    }
}

/// Renders a derivation's sentential form, hiding the `$accept` wrapper's
/// trailing end-of-input marker.
fn flat_top(g: &Grammar, d: &Derivation) -> String {
    let s = d.flat(g);
    s.strip_suffix(" $").unwrap_or(&s).to_owned()
}

/// Formats a full conflict report in the style of the paper's Figure 11.
pub fn format_report(g: &Grammar, r: &ConflictReport) -> String {
    let c = &r.conflict;
    let (what, action2) = match c.kind {
        ConflictKind::ShiftReduce { shift_item } => (
            "Shift/Reduce",
            format!("shift on {}", display_item_cup(g, shift_item)),
        ),
        ConflictKind::ReduceReduce { other_prod } => (
            "Reduce/Reduce",
            format!(
                "reduction on {}",
                display_item_cup(g, Item::new(other_prod, g.prod(other_prod).rhs().len()))
            ),
        ),
    };
    let mut out = format!(
        "Warning : *** {} conflict found in state #{}\n  between reduction on {}\n  and {}\n  under symbol {}\n",
        what,
        c.state.index(),
        display_item_cup(g, c.reduce_item(g)),
        action2,
        g.display_name(c.terminal),
    );
    if let ConflictOutcome::Internal(e) = &r.outcome {
        // A contained fault renders a stable diagnostic: the phase, the
        // message, and the panic site are deterministic, so a faulted slot
        // is byte-identical across runs and worker counts like any other.
        out.push_str(&format!(
            "Internal fault while diagnosing this conflict (contained): {e}\n\
             The remaining conflicts are unaffected; re-run with this grammar to reproduce.\n"
        ));
        return out;
    }
    match (&r.unifying, &r.nonunifying) {
        (Some(u), _) => {
            out.push_str(&format!(
                "Ambiguity detected for nonterminal {}\nExample: {}\n",
                g.display_name(u.nonterminal),
                u.derivation1.flat(g),
            ));
            out.push_str(&format!(
                "Derivation using reduction:\n  {}\nDerivation using {}:\n  {}\n",
                u.derivation1.pretty(g),
                if matches!(c.kind, ConflictKind::ShiftReduce { .. }) {
                    "shift"
                } else {
                    "second reduction"
                },
                u.derivation2.pretty(g),
            ));
        }
        (None, Some(n)) => {
            let reason = match r.kind() {
                Some(ExampleKind::NonunifyingExhausted) => {
                    "No ambiguity was detected for this conflict"
                }
                Some(ExampleKind::NonunifyingTimeout) => {
                    "The search for a unifying counterexample timed out"
                }
                Some(ExampleKind::Cancelled) => "The analysis was cancelled",
                _ => "The unifying search was skipped (cumulative time budget spent)",
            };
            out.push_str(&format!(
                "{reason}; reporting a nonunifying counterexample\n"
            ));
            out.push_str(&format!(
                "Example using reduction: {}\nDerivation:\n  {}\n",
                flat_top(g, &n.reduce_derivation),
                pretty_top(g, &n.reduce_derivation),
            ));
            if let Some(o) = &n.other_derivation {
                out.push_str(&format!(
                    "Example using the other action: {}\nDerivation:\n  {}\n",
                    flat_top(g, o),
                    pretty_top(g, o),
                ));
            }
        }
        (None, None) => {
            if r.kind() == Some(ExampleKind::Cancelled) {
                out.push_str("The analysis was cancelled before this conflict was diagnosed\n");
            } else {
                out.push_str("No counterexample could be constructed (internal limitation)\n");
            }
        }
    }
    out
}
