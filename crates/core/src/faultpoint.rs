//! Deterministic fault injection for the chaos suite.
//!
//! Named probe points — `fail_point!("spine.expand")` — are compiled into
//! the engine's hot paths. Without the `failpoints` cargo feature they
//! expand to nothing; with it, each probe consults the installed
//! `FaultPlan`, which fires a `FaultAction` at the Nth hit of a probe
//! *within a scope* (the conflict slot the engine tags around each
//! per-conflict unit of work).
//!
//! Scoping per conflict is what makes chaos runs reproducible across
//! worker counts: each conflict's diagnosis is single-threaded and
//! deterministic, so its probe hit counts are identical whether one worker
//! or eight are running — a plan that panics at hit 3 of `unify.expand` in
//! conflict 2 panics at exactly the same configuration pop either way.
//!
//! Plans are installed process-globally; `install` returns a guard that
//! holds a lock for the duration, serializing chaos tests against each
//! other, and clears the plan on drop.

#[cfg(feature = "failpoints")]
mod imp {
    use std::cell::Cell;
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// The scope value when no scope is set ("match any-scope triggers
    /// only").
    pub const NO_SCOPE: u64 = u64::MAX;

    /// What a fired probe does.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum FaultAction {
        /// Panic at the probe site (exercises containment).
        Panic,
        /// Zero out the remaining budget (the search ends `TimedOut`).
        BudgetZero,
        /// Jump the clock past the deadline (the search ends `TimedOut`).
        ClockJump,
    }

    impl FaultAction {
        fn parse(s: &str) -> Option<FaultAction> {
            match s {
                "panic" => Some(FaultAction::Panic),
                "budget" => Some(FaultAction::BudgetZero),
                "clock" => Some(FaultAction::ClockJump),
                _ => None,
            }
        }
    }

    /// One trigger: fire `action` at the `at`-th hit (1-based) of `probe`
    /// within `scope`.
    #[derive(Clone, Debug)]
    struct Trigger {
        scope: u64,
        probe: String,
        at: u64,
        action: FaultAction,
    }

    /// A deterministic fault schedule.
    #[derive(Clone, Debug, Default)]
    pub struct FaultPlan {
        triggers: Vec<Trigger>,
    }

    impl FaultPlan {
        /// An empty plan (no probe ever fires).
        pub fn new() -> FaultPlan {
            FaultPlan::default()
        }

        /// Adds a trigger: `action` at the `at`-th (1-based) hit of
        /// `probe` inside `scope` (the engine scopes per conflict slot).
        pub fn trigger(
            mut self,
            scope: u64,
            probe: &str,
            at: u64,
            action: FaultAction,
        ) -> FaultPlan {
            self.triggers.push(Trigger {
                scope,
                probe: probe.to_owned(),
                at: at.max(1),
                action,
            });
            self
        }

        /// A PRNG-seeded plan: picks one trigger over `scopes` conflict
        /// slots and the given probes, with a random action and hit index
        /// in `1..=max_hit`. Same seed, same plan — the chaos property
        /// suite sweeps seeds.
        pub fn seeded(seed: u64, scopes: u64, probes: &[&str], max_hit: u64) -> FaultPlan {
            let mut s = seed.wrapping_mul(2).wrapping_add(1); // nonzero
                                                              // xorshift64* — same generator as the repo's test PRNG.
            let mut next = move || {
                s ^= s >> 12;
                s ^= s << 25;
                s ^= s >> 27;
                s.wrapping_mul(0x2545_F491_4F6C_DD1D)
            };
            let scope = next() % scopes.max(1);
            let probe = probes[(next() % probes.len().max(1) as u64) as usize];
            let at = 1 + next() % max_hit.max(1);
            let action = match next() % 3 {
                0 => FaultAction::Panic,
                1 => FaultAction::BudgetZero,
                _ => FaultAction::ClockJump,
            };
            FaultPlan::new().trigger(scope, probe, at, action)
        }

        /// Parses a plan from the `SCOPE:PROBE:NTH:ACTION[;...]` format of
        /// the `LALRCEX_FAULT_PLAN` environment variable, where `ACTION`
        /// is `panic`, `budget`, or `clock` and `SCOPE` may be `*`.
        pub fn parse(spec: &str) -> Result<FaultPlan, String> {
            let mut plan = FaultPlan::new();
            for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
                let fields: Vec<&str> = part.trim().split(':').collect();
                let [scope, probe, nth, action] = fields[..] else {
                    return Err(format!(
                        "bad fault trigger `{part}`: want SCOPE:PROBE:NTH:ACTION"
                    ));
                };
                let scope = if scope == "*" {
                    NO_SCOPE
                } else {
                    scope
                        .parse::<u64>()
                        .map_err(|_| format!("bad fault scope `{scope}`"))?
                };
                let nth = nth
                    .parse::<u64>()
                    .map_err(|_| format!("bad fault hit index `{nth}`"))?;
                let action = FaultAction::parse(action)
                    .ok_or_else(|| format!("bad fault action `{action}` (panic|budget|clock)"))?;
                plan = plan.trigger(scope, probe, nth, action);
            }
            Ok(plan)
        }
    }

    struct Active {
        plan: FaultPlan,
        hits: HashMap<(u64, String), u64>,
    }

    fn active() -> &'static Mutex<Option<Active>> {
        static ACTIVE: OnceLock<Mutex<Option<Active>>> = OnceLock::new();
        ACTIVE.get_or_init(|| Mutex::new(None))
    }

    /// Serializes plan installations (two chaos tests can't overlap).
    fn install_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// Keeps a [`FaultPlan`] installed; uninstalls (and releases the
    /// serialization lock) on drop.
    pub struct FaultGuard {
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *active().lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
    }

    /// Installs `plan` process-globally, serializing against other
    /// installs. Hit counters start at zero.
    pub fn install(plan: FaultPlan) -> FaultGuard {
        let lock = install_lock()
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *active().lock().unwrap_or_else(PoisonError::into_inner) = Some(Active {
            plan,
            hits: HashMap::new(),
        });
        FaultGuard { _lock: lock }
    }

    /// Installs the plan described by `LALRCEX_FAULT_PLAN`, if set (the
    /// CLI calls this when built with `--features failpoints`). An
    /// unparsable plan aborts loudly — a chaos harness with a typo must
    /// not silently run clean.
    pub fn install_from_env() -> Option<FaultGuard> {
        let spec = std::env::var("LALRCEX_FAULT_PLAN").ok()?;
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(install(plan)),
            Err(e) => {
                eprintln!("lalrcex: LALRCEX_FAULT_PLAN: {e}");
                std::process::exit(2);
            }
        }
    }

    thread_local! {
        static SCOPE: Cell<u64> = const { Cell::new(NO_SCOPE) };
    }

    /// Runs `f` with the current thread's probe scope set to `scope` (the
    /// engine passes the conflict slot index).
    pub fn with_scope<T>(scope: u64, f: impl FnOnce() -> T) -> T {
        SCOPE.with(|s| {
            let prev = s.replace(scope);
            // Restore on unwind too: injected panics must not leak scope.
            struct Restore<'a>(&'a Cell<u64>, u64);
            impl Drop for Restore<'_> {
                fn drop(&mut self) {
                    self.0.set(self.1);
                }
            }
            let _restore = Restore(s, prev);
            f()
        })
    }

    /// The current thread's probe scope.
    pub fn current_scope() -> u64 {
        SCOPE.with(Cell::get)
    }

    /// Records a hit of `probe` in the current scope and returns the
    /// action to perform if a trigger fires on exactly this hit.
    pub fn hit(probe: &str) -> Option<FaultAction> {
        let scope = current_scope();
        let mut guard = active().lock().unwrap_or_else(PoisonError::into_inner);
        let state = guard.as_mut()?;
        let count = state
            .hits
            .entry((scope, probe.to_owned()))
            .and_modify(|c| *c += 1)
            .or_insert(1);
        let count = *count;
        state
            .plan
            .triggers
            .iter()
            .find(|t| {
                (t.scope == scope || t.scope == NO_SCOPE) && t.probe == probe && t.at == count
            })
            .map(|t| t.action)
    }

    /// [`hit`] that immediately panics on [`FaultAction::Panic`] — the
    /// body of the `fail_point!` macro. Non-panic actions are ignored at
    /// panic-only probe sites.
    pub fn panic_hit(probe: &str) {
        if hit(probe) == Some(FaultAction::Panic) {
            panic!("failpoint `{probe}` injected panic");
        }
    }
}

#[cfg(feature = "failpoints")]
pub use imp::*;

/// No-op scope wrapper when the `failpoints` feature is off: call sites
/// (the engine's per-conflict fan-out, the lint probe loop) tag scopes
/// unconditionally and pay nothing in production builds.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn with_scope<T>(_scope: u64, f: impl FnOnce() -> T) -> T {
    f()
}

/// A named fault-injection probe. Expands to nothing unless the
/// `failpoints` cargo feature is enabled; with it, consults the installed
/// `FaultPlan` and panics if a `Panic` trigger fires at this hit. Probe
/// sites that can honor non-panic actions (budget-zero, clock-jump) call
/// `crate::faultpoint::hit` directly.
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        #[cfg(feature = "failpoints")]
        $crate::faultpoint::panic_hit($name);
    };
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn nth_hit_fires_in_matching_scope_only() {
        let _guard = install(FaultPlan::new().trigger(7, "p", 2, FaultAction::Panic));
        assert_eq!(hit("p"), None, "unscoped hit 1");
        with_scope(7, || {
            assert_eq!(hit("p"), None, "scope-7 hit 1");
            assert_eq!(hit("p"), Some(FaultAction::Panic), "scope-7 hit 2 fires");
            assert_eq!(hit("p"), None, "fires exactly once");
        });
        assert_eq!(hit("q"), None, "other probes silent");
    }

    #[test]
    fn wildcard_scope_matches_everywhere() {
        let _guard = install(FaultPlan::new().trigger(NO_SCOPE, "w", 1, FaultAction::BudgetZero));
        with_scope(3, || assert_eq!(hit("w"), Some(FaultAction::BudgetZero)));
    }

    #[test]
    fn parse_round_trips_env_format() {
        let plan = FaultPlan::parse("1:unify.expand:3:panic; *:spine.expand:1:clock").unwrap();
        let _guard = install(plan);
        with_scope(1, || {
            assert_eq!(hit("unify.expand"), None);
            assert_eq!(hit("unify.expand"), None);
            assert_eq!(hit("unify.expand"), Some(FaultAction::Panic));
        });
        assert_eq!(hit("spine.expand"), Some(FaultAction::ClockJump));
        assert!(FaultPlan::parse("nope").is_err());
        assert!(FaultPlan::parse("1:p:x:panic").is_err());
        assert!(FaultPlan::parse("1:p:1:explode").is_err());
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let probes = ["a", "b"];
        let p1 = format!("{:?}", FaultPlan::seeded(42, 5, &probes, 10));
        let p2 = format!("{:?}", FaultPlan::seeded(42, 5, &probes, 10));
        assert_eq!(p1, p2);
    }

    #[test]
    fn scope_restored_on_unwind() {
        let _guard = install(FaultPlan::new().trigger(2, "boom", 1, FaultAction::Panic));
        let r = std::panic::catch_unwind(|| with_scope(2, || panic_hit("boom")));
        assert!(r.is_err());
        assert_eq!(current_scope(), NO_SCOPE);
    }
}
