//! Cooperative cancellation and the soft memory governor.
//!
//! Three failure domains cancel in-flight searches (DESIGN.md "Failure
//! domains & degradation ladder"):
//!
//! * **Signal** (Ctrl-C in the CLI) — a *hard* cancel: every phase stops at
//!   its next check and unstarted conflicts get stub `Cancelled` reports.
//! * **Budget** — the grammar-wide cumulative limit died: unifying searches
//!   stop, but the cheap spine + nonunifying phases keep running so every
//!   conflict still gets a counterexample (§6 graceful cutoff).
//! * **Memory** — the soft RSS governor is over its limit: searches *shed*
//!   by tightening their cost cap so frontiers drain instead of growing.
//!
//! Cancellation is *cooperative*: the search loop polls a shared
//! [`CancelToken`] (one relaxed atomic load) plus its wall-clock deadline
//! on a stride ([`SearchConfig::cancel_stride`](crate::SearchConfig)), so
//! the hot loop does not pay an `Instant::now()` syscall per node. The
//! stride bench in `crates/bench` quantifies the difference.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Why a run was cancelled. Ordered by severity: `Signal` is the only
/// *hard* reason (stops even the cheap degradation phases).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CancelReason {
    /// External interrupt (the CLI's Ctrl-C handler).
    Signal,
    /// Cumulative time budget exhausted.
    Budget,
    /// Soft memory limit exceeded.
    Memory,
}

impl CancelReason {
    fn from_u8(v: u8) -> Option<CancelReason> {
        match v {
            1 => Some(CancelReason::Signal),
            2 => Some(CancelReason::Budget),
            3 => Some(CancelReason::Memory),
            _ => None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            CancelReason::Signal => 1,
            CancelReason::Budget => 2,
            CancelReason::Memory => 3,
        }
    }
}

/// A shared, clonable cancellation flag. Cheap to poll (one relaxed atomic
/// load); the first `cancel` wins and records its reason.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Cancels the token. The first reason to arrive is kept.
    pub fn cancel(&self, reason: CancelReason) {
        let _ = self
            .state
            .compare_exchange(0, reason.as_u8(), Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Has any cancellation been requested?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Relaxed) != 0
    }

    /// Has a *hard* (signal) cancellation been requested? Hard cancels stop
    /// even the cheap degradation phases; soft cancels (budget, memory)
    /// only stop the expensive unifying searches.
    #[inline]
    pub fn is_hard_cancelled(&self) -> bool {
        self.state.load(Ordering::Relaxed) == CancelReason::Signal.as_u8()
    }

    /// The recorded cancellation reason, if any.
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_u8(self.state.load(Ordering::Relaxed))
    }
}

/// Grammar-wide soft memory accounting for the unifying searches.
///
/// Each in-flight search reports its estimated live frontier bytes through
/// a [`GovernorLease`]; when the shared total crosses the soft limit the
/// search *sheds* — it tightens its per-configuration cost cap to the cost
/// of the configuration it just popped, so no deeper successors are
/// enqueued and the frontier drains deterministically into a `TimedOut`
/// outcome instead of growing without bound.
#[derive(Debug)]
pub struct MemoryGovernor {
    soft_limit: usize,
    live: AtomicUsize,
    sheds: AtomicU64,
}

impl MemoryGovernor {
    /// A governor that never sheds.
    pub fn unlimited() -> MemoryGovernor {
        MemoryGovernor::with_limit_bytes(usize::MAX)
    }

    /// A governor with a soft limit in bytes (`usize::MAX` = unlimited).
    pub fn with_limit_bytes(bytes: usize) -> MemoryGovernor {
        MemoryGovernor {
            soft_limit: bytes,
            live: AtomicUsize::new(0),
            sheds: AtomicU64::new(0),
        }
    }

    /// A governor with a soft limit in mebibytes (`0` = unlimited).
    pub fn with_limit_mb(mb: usize) -> MemoryGovernor {
        if mb == 0 {
            MemoryGovernor::unlimited()
        } else {
            MemoryGovernor::with_limit_bytes(mb.saturating_mul(1 << 20))
        }
    }

    /// Estimated live bytes across all leases.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Is the shared total over the soft limit?
    #[inline]
    pub fn over_limit(&self) -> bool {
        self.live.load(Ordering::Relaxed) > self.soft_limit
    }

    /// Number of shed events recorded across all searches.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Records one shed event.
    pub fn note_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }
}

/// One search's slice of the governor's accounting. Dropping the lease
/// (including on unwind, so contained panics don't leak accounting)
/// releases whatever it last reported.
pub struct GovernorLease<'a> {
    governor: &'a MemoryGovernor,
    held: usize,
}

impl<'a> GovernorLease<'a> {
    /// A lease currently holding zero bytes.
    pub fn new(governor: &'a MemoryGovernor) -> GovernorLease<'a> {
        GovernorLease { governor, held: 0 }
    }

    /// Updates this lease's contribution to the shared total.
    pub fn set(&mut self, bytes: usize) {
        if bytes >= self.held {
            self.governor
                .live
                .fetch_add(bytes - self.held, Ordering::Relaxed);
        } else {
            self.governor
                .live
                .fetch_sub(self.held - bytes, Ordering::Relaxed);
        }
        self.held = bytes;
    }

    /// The governor this lease reports to.
    pub fn governor(&self) -> &'a MemoryGovernor {
        self.governor
    }
}

impl Drop for GovernorLease<'_> {
    fn drop(&mut self) {
        self.set(0);
    }
}

/// A pool of *extra* worker permits for intra-conflict frontier sharding.
///
/// The engine sizes it to `hardware workers − outer conflict workers` and
/// each outer worker returns its own permit when it runs out of conflicts,
/// so a late heavy conflict (the stackovf08/xi single-search pattern) can
/// recruit the idle cores. Claims are advisory: how many permits a search
/// gets only changes how a frontier batch is *chunked* for expansion, never
/// the canonical merge order, so results and counters stay byte-identical
/// at any permit count.
#[derive(Debug, Default)]
pub struct ShardBudget {
    permits: AtomicUsize,
}

impl ShardBudget {
    /// A budget holding `permits` extra workers.
    pub fn new(permits: usize) -> ShardBudget {
        ShardBudget {
            permits: AtomicUsize::new(permits),
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::Relaxed)
    }

    /// Claims up to `max` permits; returns how many were actually taken
    /// (possibly zero). The caller must [`ShardBudget::release`] them.
    pub fn try_claim(&self, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut cur = self.permits.load(Ordering::Relaxed);
        loop {
            let take = cur.min(max);
            if take == 0 {
                return 0;
            }
            match self.permits.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }

    /// Returns `n` permits to the pool.
    pub fn release(&self, n: usize) {
        if n > 0 {
            self.permits.fetch_add(n, Ordering::AcqRel);
        }
    }
}

/// The shared cancellation context threaded through a search: who can stop
/// it ([`CancelToken`]), who can make it shed ([`MemoryGovernor`]), and who
/// lends it extra expansion workers ([`ShardBudget`]).
#[derive(Clone, Copy)]
pub struct SearchSession<'a> {
    /// Cooperative stop flag, polled on the cancel stride.
    pub cancel: &'a CancelToken,
    /// Soft memory governor for frontier shedding.
    pub governor: &'a MemoryGovernor,
    /// Extra workers for intra-conflict frontier sharding (`None` = always
    /// expand single-threaded, e.g. the lint masking probes).
    pub shards: Option<&'a ShardBudget>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancel_reason_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel(CancelReason::Budget);
        t.cancel(CancelReason::Signal);
        assert!(t.is_cancelled());
        assert!(!t.is_hard_cancelled(), "budget arrived first");
        assert_eq!(t.reason(), Some(CancelReason::Budget));
    }

    #[test]
    fn hard_cancel_is_signal_only() {
        let t = CancelToken::new();
        t.cancel(CancelReason::Signal);
        assert!(t.is_hard_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Signal));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel(CancelReason::Memory);
        assert!(u.is_cancelled());
        assert_eq!(u.reason(), Some(CancelReason::Memory));
    }

    #[test]
    fn governor_accounting_and_limits() {
        let g = MemoryGovernor::with_limit_bytes(1000);
        {
            let mut a = GovernorLease::new(&g);
            let mut b = GovernorLease::new(&g);
            a.set(600);
            b.set(300);
            assert_eq!(g.live_bytes(), 900);
            assert!(!g.over_limit());
            b.set(500);
            assert!(g.over_limit());
            a.set(100);
            assert_eq!(g.live_bytes(), 600);
            assert!(!g.over_limit());
        }
        assert_eq!(g.live_bytes(), 0, "leases release on drop");
    }

    #[test]
    fn shard_budget_claims_and_releases() {
        let b = ShardBudget::new(3);
        assert_eq!(b.available(), 3);
        assert_eq!(b.try_claim(2), 2);
        assert_eq!(b.try_claim(5), 1, "claims are clamped to availability");
        assert_eq!(b.try_claim(1), 0, "empty pool claims nothing");
        b.release(3);
        assert_eq!(b.available(), 3);
        assert_eq!(ShardBudget::new(0).try_claim(4), 0);
    }

    #[test]
    fn limit_mb_zero_is_unlimited() {
        let g = MemoryGovernor::with_limit_mb(0);
        let mut l = GovernorLease::new(&g);
        l.set(usize::MAX / 2);
        assert!(!g.over_limit());
    }
}
