//! Data-oriented storage primitives for the unifying search (§5).
//!
//! The product-parser search expands millions of configurations on the big
//! Table 1 grammars; the former representation (one heap-allocated `Config`
//! per node with owned item vectors, owned derivation *trees*, and owned
//! lookahead sets, deep-cloned on every successor) spent almost all of its
//! time in `clone`/`drop`/`Vec::insert(0, …)`. This module provides the
//! flat replacements:
//!
//! * [`CellArena`] + [`Seq`] — item sequences and derivation *lists* as
//!   persistent double-ended sequences built from immutable cons cells.
//!   Every Figure 10 action edits a sequence at one end (prepend, append,
//!   or pop-a-suffix), so a successor shares its parent's cells and costs
//!   O(edit), not O(length). Flat per-configuration copies are quadratic
//!   on the deep, narrow frontiers of the Stack Overflow grammars (tens of
//!   gigabytes of memcpy for a 200k-configuration search); the cell
//!   representation keeps the whole search cache-resident.
//! * [`Pool`] — an append-only `u32` word pool with deterministic capacity
//!   growth, holding the materialized child spans of reduction nodes.
//! * [`DerivArena`] — derivations as a DAG of struct-of-arrays nodes.
//!   Node `0` is the conflict dot, nodes `1..=symbols` are interned leaves
//!   (one per grammar symbol, created once), and reductions append one node
//!   whose child list is a span in the [`Pool`] — building a reduction is
//!   O(children) in tree size where the old representation deep-cloned the
//!   whole tree.
//! * [`SetInterner`] — hash-consed [`TerminalSet`]s so pending-lookahead
//!   constraints compare and hash as `u32` ids.
//! * [`BucketQueue`] — a radix-by-cost ring replacing the binary heap.
//!   Every Figure 10 action costs between 1 and
//!   `PRODUCTION_COST + DUPLICATE_PENALTY = 10`, so a 16-bucket ring covers
//!   the reachable cost window. Within a bucket the order is *explicitly*
//!   FIFO by enqueue sequence (the bucket is a vector), which pins the
//!   equal-cost tie order the old `BinaryHeap<Reverse<(cost, seq)>>` got
//!   from its tuple key.
//! * [`Visited`] — an open-addressing dedup table storing `(hash, config
//!   index)` pairs; keys are *not* copied, equality is resolved against the
//!   arena by the caller's closure.
//!
//! Everything here grows deterministically as a function of the insertion
//! sequence, which is what lets the memory governor derive its lease from
//! actual capacities (not a per-config constant) while keeping the shed
//! point reproducible across runs and worker counts.

use std::collections::HashMap;

use lalrcex_grammar::{Derivation, SymbolId, TerminalSet};

/// Deterministic capacity growth: double from a fixed floor until `needed`
/// fits. `Vec`'s own amortized growth is also deterministic in practice,
/// but routing the big pools through one explicit policy makes the
/// governor's capacity-derived accounting auditable.
fn grow_to<T>(v: &mut Vec<T>, needed: usize) {
    if needed <= v.capacity() {
        return;
    }
    let mut cap = v.capacity().max(64);
    while cap < needed {
        cap *= 2;
    }
    v.reserve_exact(cap - v.len());
}

/// An append-only pool of `u32` words holding immutable spans.
#[derive(Default)]
pub struct Pool {
    data: Vec<u32>,
}

impl Pool {
    /// An empty pool.
    pub fn new() -> Pool {
        Pool::default()
    }

    /// Words currently stored.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Allocated capacity in words (feeds the governor's lease).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Appends a slice; returns the offset of its first word.
    pub fn extend(&mut self, words: &[u32]) -> usize {
        let off = self.data.len();
        grow_to(&mut self.data, off + words.len());
        self.data.extend_from_slice(words);
        off
    }

    /// The span starting at `off` with `len` words.
    pub fn slice(&self, off: usize, len: usize) -> &[u32] {
        &self.data[off..off + len]
    }
}

/// Sentinel id for an empty cons list.
pub const NIL: u32 = u32::MAX;

/// An append-only arena of immutable cons cells `(val, next)`.
///
/// Cells are only created at initialization and during the sequential
/// merge phase, so the arena's contents — and therefore the governor's
/// capacity-derived lease — are identical at any worker count.
#[derive(Default)]
pub struct CellArena {
    val: Vec<u32>,
    next: Vec<u32>,
}

impl CellArena {
    /// An empty arena.
    pub fn new() -> CellArena {
        CellArena::default()
    }

    /// Cells allocated.
    pub fn len(&self) -> usize {
        self.val.len()
    }

    /// Allocated bytes across both columns.
    pub fn capacity_bytes(&self) -> usize {
        self.val.capacity() * 4 + self.next.capacity() * 4
    }

    /// Allocates a new cell; `next` is an existing cell id or [`NIL`].
    pub fn cons(&mut self, val: u32, next: u32) -> u32 {
        let id = self.val.len() as u32;
        grow_to(&mut self.val, id as usize + 1);
        grow_to(&mut self.next, id as usize + 1);
        self.val.push(val);
        self.next.push(next);
        id
    }

    /// The value stored in cell `id`.
    pub fn val(&self, id: u32) -> u32 {
        self.val[id as usize]
    }

    /// The successor cell of `id` ([`NIL`] at the end of a list).
    pub fn next(&self, id: u32) -> u32 {
        self.next[id as usize]
    }
}

/// A persistent double-ended sequence over a [`CellArena`].
///
/// `front` lists the leading items *in sequence order* (its head is the
/// first item), `back` lists the remaining items *reversed* (its head is
/// the last item) — the classic two-stack deque, made persistent by
/// sharing cells. Prepend and append are O(1); popping `n` items off the
/// back is O(n) while the back stack lasts, plus one O(front) rotation
/// when it runs dry (the rotated cells then serve later pops).
///
/// Invariant maintained by the search: `back` is never empty at rest, so
/// [`Seq::last`] is O(1). The first item is cached by the caller (it only
/// changes on prepend).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Seq {
    /// Head cell of the in-order prefix ([`NIL`] if empty).
    pub front: u32,
    /// Head cell of the reversed suffix.
    pub back: u32,
    /// Items in `front`.
    pub flen: u32,
    /// Items in `back`.
    pub blen: u32,
}

impl Seq {
    /// A one-item sequence (the item goes to the back stack).
    pub fn singleton(ar: &mut CellArena, v: u32) -> Seq {
        Seq {
            front: NIL,
            back: ar.cons(v, NIL),
            flen: 0,
            blen: 1,
        }
    }

    /// Total items.
    pub fn len(self) -> u32 {
        self.flen + self.blen
    }

    /// The last item (O(1) by the nonempty-back invariant).
    pub fn last(self, ar: &CellArena) -> u32 {
        debug_assert!(self.blen > 0, "back stack empty");
        ar.val(self.back)
    }

    /// `[v] ++ self`.
    pub fn prepend(self, ar: &mut CellArena, v: u32) -> Seq {
        Seq {
            front: ar.cons(v, self.front),
            flen: self.flen + 1,
            ..self
        }
    }

    /// `self ++ [v]`.
    pub fn append(self, ar: &mut CellArena, v: u32) -> Seq {
        Seq {
            back: ar.cons(v, self.back),
            blen: self.blen + 1,
            ..self
        }
    }

    /// The sequence without its last `n` items. Pure suffix sharing while
    /// the back stack covers the pops; otherwise the kept prefix is rotated
    /// into a fresh back stack (leaving `front` empty) so subsequent pops
    /// are cheap again.
    pub fn pop_back(self, ar: &mut CellArena, n: u32, scratch: &mut Vec<u32>) -> Seq {
        debug_assert!(n <= self.len());
        if n == 0 {
            return self;
        }
        if self.blen > n {
            let mut id = self.back;
            for _ in 0..n {
                id = ar.next(id);
            }
            return Seq {
                back: id,
                blen: self.blen - n,
                ..self
            };
        }
        let keep = self.len() - n;
        debug_assert!(keep <= self.flen);
        scratch.clear();
        let mut id = self.front;
        while id != NIL {
            scratch.push(ar.val(id));
            id = ar.next(id);
        }
        let mut back = NIL;
        for &v in &scratch[..keep as usize] {
            back = ar.cons(v, back);
        }
        Seq {
            front: NIL,
            back,
            flen: 0,
            blen: keep,
        }
    }

    /// Fills `out` with the last `n` item values, last first (so
    /// `out[0]` is the final item). `scratch` is used when the walk spills
    /// past the back stack into the front.
    pub fn read_back(self, ar: &CellArena, n: u32, out: &mut Vec<u32>, scratch: &mut Vec<u32>) {
        debug_assert!(n <= self.len());
        out.clear();
        let mut id = self.back;
        for _ in 0..n.min(self.blen) {
            out.push(ar.val(id));
            id = ar.next(id);
        }
        let missing = (n - n.min(self.blen)) as usize;
        if missing > 0 {
            scratch.clear();
            let mut f = self.front;
            while f != NIL {
                scratch.push(ar.val(f));
                f = ar.next(f);
            }
            out.extend(scratch[scratch.len() - missing..].iter().rev());
        }
    }

    /// Membership test; `from_back` picks the scan order (pure early-exit
    /// tuning — duplicates cluster near the edited end).
    #[cfg(test)]
    pub fn contains(self, ar: &CellArena, v: u32, from_back: bool) -> bool {
        let lists = if from_back {
            [self.back, self.front]
        } else {
            [self.front, self.back]
        };
        for mut id in lists {
            while id != NIL {
                if ar.val(id) == v {
                    return true;
                }
                id = ar.next(id);
            }
        }
        false
    }

    /// Membership test through a [`FactMap`] memo. Cons cells are
    /// immutable, so "`v` occurs in the list headed by cell `c`" is a pure
    /// fact: each query stores its result keyed by `(head, v)`, and later
    /// walks stop at the nearest cell whose fact is already known. On deep,
    /// narrow chains consecutive configurations probe the same handful of
    /// values one cell apart, turning O(length) scans into O(1) lookups —
    /// without this the §5.4 duplicate checks dominate the whole search.
    /// Exactness is unaffected: the memo holds only true facts, so any
    /// subset of entries (per-worker memos included) yields identical
    /// answers.
    pub fn contains_memo(
        self,
        ar: &CellArena,
        v: u32,
        from_back: bool,
        memo: &mut FactMap,
    ) -> bool {
        let lists = if from_back {
            [self.back, self.front]
        } else {
            [self.front, self.back]
        };
        lists
            .into_iter()
            .any(|head| list_contains_memo(ar, head, v, memo))
    }

    /// Appends the sequence's items, in order, to `out` (not cleared).
    pub fn materialize(self, ar: &CellArena, out: &mut Vec<u32>, scratch: &mut Vec<u32>) {
        let mut id = self.front;
        while id != NIL {
            out.push(ar.val(id));
            id = ar.next(id);
        }
        scratch.clear();
        let mut id = self.back;
        while id != NIL {
            scratch.push(ar.val(id));
            id = ar.next(id);
        }
        out.extend(scratch.iter().rev());
    }
}

/// Memoized walk behind [`Seq::contains_memo`]: does `v` occur in the
/// cons list starting at `head`?
fn list_contains_memo(ar: &CellArena, head: u32, v: u32, memo: &mut FactMap) -> bool {
    if head == NIL {
        return false;
    }
    let key = |id: u32| ((id as u64) << 32) | v as u64;
    let mut id = head;
    let found = loop {
        if id == NIL {
            break false;
        }
        if let Some(r) = memo.get(key(id)) {
            break r;
        }
        if ar.val(id) == v {
            break true;
        }
        id = ar.next(id);
    };
    memo.insert(key(head), found);
    found
}

/// An insert-only open-addressing map from 64-bit keys to booleans,
/// recording immutable facts (memoized cons-list membership). Entries are
/// never deleted or changed, so probing needs no tombstones and a repeated
/// insert is a no-op.
#[derive(Default)]
pub struct FactMap {
    keys: Vec<u64>,
    /// Slot state: 0 = empty, 1 = fact is `false`, 2 = fact is `true`.
    vals: Vec<u8>,
    len: usize,
}

impl FactMap {
    /// The recorded fact for `k`, if any.
    pub fn get(&self, k: u64) -> Option<bool> {
        if self.vals.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = mix(0xFAC7, k) as usize & mask;
        loop {
            match self.vals[i] {
                0 => return None,
                s => {
                    if self.keys[i] == k {
                        return Some(s == 2);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Records the fact `k -> v` (a no-op if `k` is already present).
    pub fn insert(&mut self, k: u64, v: bool) {
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = mix(0xFAC7, k) as usize & mask;
        while self.vals[i] != 0 {
            if self.keys[i] == k {
                return;
            }
            i = (i + 1) & mask;
        }
        self.keys[i] = k;
        self.vals[i] = 1 + v as u8;
        self.len += 1;
    }

    fn grow(&mut self) {
        let cap = (self.keys.len() * 2).max(1024);
        let keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let vals = std::mem::replace(&mut self.vals, vec![0; cap]);
        let mask = cap - 1;
        for (k, s) in keys.into_iter().zip(vals) {
            if s != 0 {
                let mut i = mix(0xFAC7, k) as usize & mask;
                while self.vals[i] != 0 {
                    i = (i + 1) & mask;
                }
                self.keys[i] = k;
                self.vals[i] = s;
            }
        }
    }
}

/// Multiplier of the positional sequence hash
/// `H(s) = Σ itemh(s[i]) · SEQ_X^(len-1-i) mod 2^64`. The hash is a pure
/// function of the item values, so it is independent of a [`Seq`]'s
/// front/back split, and every sequence edit updates it incrementally:
/// append multiplies by `SEQ_X`, prepend adds at weight `SEQ_X^len`, and a
/// pop divides the stripped hash by `SEQ_X^n` — `SEQ_X` is odd, hence
/// invertible mod 2^64.
pub const SEQ_X: u64 = 0x9E37_79B9_7F4A_7C15;

/// Multiplicative inverse of [`SEQ_X`] mod 2^64.
pub const SEQ_XINV: u64 = mul_inv64(SEQ_X);

/// Inverse of an odd `a` mod 2^64 by Newton–Hensel lifting (each step
/// doubles the number of correct low bits; 6 steps cover 64).
const fn mul_inv64(a: u64) -> u64 {
    let mut x = a;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        i += 1;
    }
    x
}

/// `base^n` mod 2^64 by binary exponentiation.
pub fn wpow(base: u64, mut n: u64) -> u64 {
    let mut acc = 1u64;
    let mut b = base;
    while n > 0 {
        if n & 1 == 1 {
            acc = acc.wrapping_mul(b);
        }
        b = b.wrapping_mul(b);
        n >>= 1;
    }
    acc
}

/// Per-item scramble feeding the positional hash.
#[inline]
pub fn itemh(v: u32) -> u64 {
    mix(0x00C0_FFEE, v as u64)
}

/// Derivation id of the conflict-dot marker.
pub const DOT: u32 = 0;

/// Derivations as struct-of-arrays DAG nodes; see the module docs.
pub struct DerivArena {
    /// Symbol index per node (`u32::MAX` for the dot).
    sym: Vec<u32>,
    /// Child-list span offset into the derivation-list [`Pool`] (leaves and
    /// the dot have empty child lists).
    kids_off: Vec<usize>,
    /// Child-list span length.
    kids_len: Vec<u32>,
    /// Nodes `1..=symbols` are the interned leaves.
    symbols: usize,
}

impl DerivArena {
    /// An arena pre-seeded with the dot node and one leaf per grammar
    /// symbol (leaf of symbol `s` is node `1 + s.index()`).
    pub fn new(symbols: usize) -> DerivArena {
        let mut sym = Vec::with_capacity(symbols + 1);
        sym.push(u32::MAX);
        for s in 0..symbols {
            sym.push(s as u32);
        }
        DerivArena {
            sym,
            kids_off: vec![0; symbols + 1],
            kids_len: vec![0; symbols + 1],
            symbols,
        }
    }

    /// The interned leaf node for `sym`.
    pub fn leaf(&self, sym: SymbolId) -> u32 {
        debug_assert!(sym.index() < self.symbols);
        (1 + sym.index()) as u32
    }

    /// Appends an expanded node; `kids` is a span in the child-span
    /// [`Pool`] (spans are immutable).
    pub fn push_node(&mut self, sym: SymbolId, kids_off: usize, kids_len: u32) -> u32 {
        let id = self.sym.len() as u32;
        self.sym.push(sym.index() as u32);
        self.kids_off.push(kids_off);
        self.kids_len.push(kids_len);
        id
    }

    /// Total nodes (including the pre-seeded dot and leaves).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.sym.len()
    }

    /// Whether the arena holds only the pre-seeded nodes.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.sym.len() <= 1 + self.symbols
    }

    /// Allocated bytes across the node columns.
    pub fn capacity_bytes(&self) -> usize {
        self.sym.capacity() * 4 + self.kids_off.capacity() * 8 + self.kids_len.capacity() * 4
    }

    /// Is `id` an expanded (non-leaf, non-dot) node?
    fn is_node(&self, id: u32) -> bool {
        id as usize > self.symbols
    }

    /// Structural equality of two derivations *after stripping dots*, the
    /// §5.4 distinctness check, evaluated directly on the DAG. Shared
    /// subtrees (equal ids) short-circuit.
    pub fn strip_eq(&self, pool: &Pool, a: u32, b: u32) -> bool {
        if a == b {
            return true;
        }
        // Leaves are interned, so distinct leaf/dot ids are distinct
        // derivations; a leaf never equals an expanded node (strip_dots
        // keeps the `Node` variant even when all children are dots).
        if !self.is_node(a) || !self.is_node(b) {
            return false;
        }
        let (ai, bi) = (a as usize, b as usize);
        if self.sym[ai] != self.sym[bi] {
            return false;
        }
        let ka = pool.slice(self.kids_off[ai], self.kids_len[ai] as usize);
        let kb = pool.slice(self.kids_off[bi], self.kids_len[bi] as usize);
        let mut ia = ka.iter().copied().filter(|&k| k != DOT);
        let mut ib = kb.iter().copied().filter(|&k| k != DOT);
        loop {
            match (ia.next(), ib.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) => {
                    if !self.strip_eq(pool, x, y) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }

    /// Rebuilds the owned [`Derivation`] tree for `id` (only done once, for
    /// the winning configuration).
    pub fn materialize(&self, pool: &Pool, id: u32) -> Derivation {
        if id == DOT {
            return Derivation::Dot;
        }
        let i = id as usize;
        let sym = SymbolId::from_index(self.sym[i] as usize);
        if !self.is_node(id) {
            return Derivation::Leaf(sym);
        }
        let kids = pool.slice(self.kids_off[i], self.kids_len[i] as usize);
        let kids = kids.iter().map(|&k| self.materialize(pool, k)).collect();
        Derivation::Node(sym, kids)
    }
}

/// Pending-constraint id meaning "no constraint".
pub const NO_PENDING: u32 = u32::MAX;

/// Hash-consed [`TerminalSet`]s: ids are insertion order, so interning the
/// same sequence of sets always yields the same ids.
#[derive(Default)]
pub struct SetInterner {
    map: HashMap<TerminalSet, u32>,
    sets: Vec<TerminalSet>,
}

impl SetInterner {
    /// An empty interner.
    pub fn new() -> SetInterner {
        SetInterner::default()
    }

    /// Interns by reference, cloning only on first sight.
    pub fn intern_ref(&mut self, s: &TerminalSet) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        self.insert(s.clone())
    }

    /// Interns an owned set.
    pub fn intern(&mut self, s: TerminalSet) -> u32 {
        if let Some(&id) = self.map.get(&s) {
            return id;
        }
        self.insert(s)
    }

    fn insert(&mut self, s: TerminalSet) -> u32 {
        let id = self.sets.len() as u32;
        self.sets.push(s.clone());
        self.map.insert(s, id);
        id
    }

    /// The set behind an id.
    pub fn get(&self, id: u32) -> &TerminalSet {
        &self.sets[id as usize]
    }

    /// Number of distinct sets interned.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether nothing has been interned.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Rough allocated bytes (sets are stored twice: map key + table).
    pub fn capacity_bytes(&self, terminal_count: usize) -> usize {
        let set_bytes = terminal_count.div_ceil(64).max(1) * 8 + 16;
        self.sets.capacity() * set_bytes + self.map.capacity() * (set_bytes + 16)
    }
}

/// Ring size of the bucket queue; must exceed the maximum single-action
/// cost (`PRODUCTION_COST + DUPLICATE_PENALTY = 10`).
pub const COST_RING: usize = 16;

/// A radix-by-cost FIFO queue over configuration indices.
///
/// Because every search action costs at least 1, a popped bucket never
/// receives new entries while it is being processed: the search can take
/// the *entire* current-cost bucket as one batch, which is what makes the
/// intra-conflict frontier sharding deterministic (the batch is expanded in
/// canonical order regardless of how many workers help).
pub struct BucketQueue {
    buckets: Vec<Vec<u32>>,
    cur: u32,
    live: usize,
}

impl Default for BucketQueue {
    fn default() -> BucketQueue {
        BucketQueue::new()
    }
}

impl BucketQueue {
    /// An empty queue positioned at cost 0.
    pub fn new() -> BucketQueue {
        BucketQueue {
            buckets: (0..COST_RING).map(|_| Vec::new()).collect(),
            cur: 0,
            live: 0,
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the queue is empty.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Allocated bytes across the ring's buckets.
    pub fn capacity_bytes(&self) -> usize {
        self.buckets.iter().map(|b| b.capacity() * 4).sum()
    }

    /// Enqueues `idx` at `cost`. The cost must lie in the ring window
    /// `[current, current + COST_RING)`, which every Figure 10 action
    /// satisfies.
    pub fn push(&mut self, cost: u32, idx: u32) {
        debug_assert!(
            cost >= self.cur && cost < self.cur + COST_RING as u32,
            "cost {cost} outside ring window at {}",
            self.cur
        );
        let b = &mut self.buckets[cost as usize % COST_RING];
        grow_to(b, b.len() + 1);
        b.push(idx);
        self.live += 1;
    }

    /// Drains the lowest nonempty cost bucket into `out` (cleared first),
    /// preserving enqueue order, and returns that cost. `None` when empty.
    pub fn pop_bucket(&mut self, out: &mut Vec<u32>) -> Option<u32> {
        out.clear();
        if self.live == 0 {
            return None;
        }
        loop {
            let b = &mut self.buckets[self.cur as usize % COST_RING];
            if !b.is_empty() {
                self.live -= b.len();
                out.append(b);
                return Some(self.cur);
            }
            self.cur += 1;
        }
    }
}

/// Sentinel for an empty [`Visited`] slot.
const VACANT: u32 = u32::MAX;

/// Open-addressing dedup table over `(hash, config index)` pairs.
///
/// The table never stores keys: on a hash hit the caller's closure decides
/// equality against its arena, so accepted configurations pay no key copy
/// and rejected candidates allocate nothing.
pub struct Visited {
    hashes: Vec<u64>,
    idxs: Vec<u32>,
    mask: usize,
    len: usize,
}

impl Default for Visited {
    fn default() -> Visited {
        Visited::new()
    }
}

impl Visited {
    /// An empty table.
    pub fn new() -> Visited {
        let cap = 64;
        Visited {
            hashes: vec![0; cap],
            idxs: vec![VACANT; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Entries stored.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.hashes.capacity() * 8 + self.idxs.capacity() * 4
    }

    /// Inserts `(hash, idx)` unless an equal entry exists; returns `true`
    /// if inserted. `eq(other)` must answer whether the candidate equals
    /// the already-stored configuration `other`.
    pub fn insert_with(&mut self, hash: u64, idx: u32, mut eq: impl FnMut(u32) -> bool) -> bool {
        if (self.len + 1) * 4 >= (self.mask + 1) * 3 {
            self.grow();
        }
        let mut slot = hash as usize & self.mask;
        loop {
            let other = self.idxs[slot];
            if other == VACANT {
                self.hashes[slot] = hash;
                self.idxs[slot] = idx;
                self.len += 1;
                return true;
            }
            if self.hashes[slot] == hash && eq(other) {
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let cap = (self.mask + 1) * 2;
        let old_h = std::mem::replace(&mut self.hashes, vec![0; cap]);
        let old_i = std::mem::replace(&mut self.idxs, vec![VACANT; cap]);
        self.mask = cap - 1;
        for (h, i) in old_h.into_iter().zip(old_i) {
            if i == VACANT {
                continue;
            }
            let mut slot = h as usize & self.mask;
            while self.idxs[slot] != VACANT {
                slot = (slot + 1) & self.mask;
            }
            self.hashes[slot] = h;
            self.idxs[slot] = i;
        }
    }
}

/// Mixes one word into a running hash (splitmix-style).
#[inline]
pub fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// Hashes a word slice with a seed.
#[cfg(test)]
#[inline]
pub fn hash_words(seed: u64, words: &[u32]) -> u64 {
    let mut h = mix(seed, words.len() as u64);
    for &w in words {
        h = mix(h, w as u64);
    }
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spans_are_stable() {
        let mut p = Pool::new();
        let a = p.extend(&[1, 2, 3]);
        let b = p.extend(&[4, 5]);
        assert_eq!(p.slice(a, 3), &[1, 2, 3]);
        assert_eq!(p.slice(b, 2), &[4, 5]);
        assert_eq!(p.len(), 5);
        assert!(p.capacity() >= 64, "deterministic floor");
    }

    fn items(ar: &CellArena, s: Seq) -> Vec<u32> {
        let (mut out, mut sc) = (Vec::new(), Vec::new());
        s.materialize(ar, &mut out, &mut sc);
        out
    }

    #[test]
    fn seq_deque_ops_share_cells() {
        let mut ar = CellArena::new();
        let mut sc = Vec::new();
        let s = Seq::singleton(&mut ar, 5)
            .prepend(&mut ar, 4)
            .prepend(&mut ar, 3)
            .append(&mut ar, 6); // [3, 4, 5, 6]
        assert_eq!(items(&ar, s), [3, 4, 5, 6]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.last(&ar), 6);
        assert!(s.contains(&ar, 4, false));
        assert!(s.contains(&ar, 4, true));
        assert!(!s.contains(&ar, 9, false));

        let mut vals = Vec::new();
        s.read_back(&ar, 3, &mut vals, &mut sc);
        assert_eq!(vals, [6, 5, 4], "last first, spilling into the front");

        // Pop within the back stack: pure sharing, no new cells.
        let cells = ar.len();
        let t = s.pop_back(&mut ar, 1, &mut sc);
        assert_eq!(ar.len(), cells, "suffix pop allocates nothing");
        assert_eq!(items(&ar, t), [3, 4, 5]);

        // Pop past the back stack: the kept prefix rotates into the back.
        let r = s.pop_back(&mut ar, 2, &mut sc);
        assert_eq!(items(&ar, r), [3, 4]);
        assert_eq!(r.flen, 0, "rotation loads the back stack");
        assert_eq!(r.last(&ar), 4);

        // Persistence: the source sequence is untouched.
        assert_eq!(items(&ar, s), [3, 4, 5, 6]);
    }

    #[test]
    fn positional_hash_is_invertible_and_split_free() {
        assert_eq!(SEQ_X.wrapping_mul(SEQ_XINV), 1, "SEQ_X must be odd");
        assert_eq!(wpow(SEQ_X, 7).wrapping_mul(wpow(SEQ_XINV, 7)), 1);

        // H([a, b]) built by append equals H built by prepend.
        let (a, b) = (itemh(17), itemh(42));
        let by_append = a.wrapping_mul(SEQ_X).wrapping_add(b);
        let by_prepend = b.wrapping_add(a.wrapping_mul(wpow(SEQ_X, 1)));
        assert_eq!(by_append, by_prepend);

        // Popping the last item of [a, b] recovers H([a]).
        let popped = by_append.wrapping_sub(b).wrapping_mul(SEQ_XINV);
        assert_eq!(popped, a);
    }

    #[test]
    fn fact_map_memoized_membership_is_exact() {
        // Grow path: far past the 1024-slot floor, every fact survives.
        let mut m = FactMap::default();
        assert_eq!(m.get(7), None);
        for k in 0..5000u64 {
            m.insert(k, k % 3 == 0);
        }
        m.insert(0, false); // repeated insert is a no-op
        for k in 0..5000u64 {
            assert_eq!(m.get(k), Some(k % 3 == 0), "fact {k} lost");
        }
        assert_eq!(m.get(123_456), None);

        // contains_memo agrees with the plain walk on cell-sharing deques,
        // cold and warm, from either end.
        let ar = &mut CellArena::new();
        let s = Seq::singleton(ar, 8).prepend(ar, 7).append(ar, 9);
        let t = s.append(ar, 10); // shares s's cells
        let memo = &mut FactMap::default();
        for _ in 0..2 {
            for seq in [s, t] {
                for from_back in [false, true] {
                    for v in [7, 8, 9, 10, 99] {
                        assert_eq!(
                            seq.contains_memo(&*ar, v, from_back, memo),
                            seq.contains(&*ar, v, from_back),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bucket_queue_is_fifo_within_cost() {
        let mut q = BucketQueue::new();
        q.push(2, 10);
        q.push(1, 20);
        q.push(2, 30);
        q.push(1, 40);
        let mut out = Vec::new();
        assert_eq!(q.pop_bucket(&mut out), Some(1));
        assert_eq!(out, vec![20, 40], "enqueue order, not heap order");
        assert_eq!(q.pop_bucket(&mut out), Some(2));
        assert_eq!(out, vec![10, 30]);
        assert_eq!(q.pop_bucket(&mut out), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bucket_queue_ring_wraps() {
        let mut q = BucketQueue::new();
        let mut out = Vec::new();
        let mut cost = 0;
        for step in 0..100u32 {
            let pushed = cost + 1 + (step % 10);
            q.push(pushed, step);
            let got = q.pop_bucket(&mut out).unwrap();
            assert_eq!(got, pushed, "single live entry pops at its own cost");
            assert_eq!(out, vec![step]);
            cost = got;
        }
    }

    #[test]
    fn visited_dedups_by_closure_equality() {
        let mut v = Visited::new();
        assert!(v.is_empty());
        assert!(v.insert_with(7, 0, |_| false));
        // Same hash, closure says "different config": both kept.
        assert!(v.insert_with(7, 1, |_| false));
        // Same hash, closure recognizes an existing entry: rejected.
        assert!(!v.insert_with(7, 2, |o| o == 1));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn visited_survives_growth() {
        let mut v = Visited::new();
        for i in 0..1000u32 {
            assert!(v.insert_with(hash_words(1, &[i]), i, |o| o == i));
        }
        for i in 0..1000u32 {
            assert!(
                !v.insert_with(hash_words(1, &[i]), i + 1000, |o| o == i),
                "entry {i} lost in rehash"
            );
        }
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn interner_ids_follow_insertion_order() {
        let mut it = SetInterner::new();
        assert!(it.is_empty());
        let a = TerminalSet::singleton(10, 1);
        let b = TerminalSet::singleton(10, 2);
        assert_eq!(it.intern_ref(&a), 0);
        assert_eq!(it.intern_ref(&b), 1);
        assert_eq!(it.intern_ref(&a), 0, "re-interning is stable");
        assert_eq!(it.get(1), &b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn deriv_arena_leaves_and_strip_eq() {
        let mut pool = Pool::new();
        let mut ar = DerivArena::new(4);
        assert!(ar.is_empty(), "only pre-seeded nodes");
        assert_eq!(ar.len(), 5, "dot + one leaf per symbol");
        let s0 = SymbolId::from_index(0);
        let s1 = SymbolId::from_index(1);
        assert_ne!(ar.leaf(s0), ar.leaf(s1));
        assert!(ar.strip_eq(&pool, ar.leaf(s0), ar.leaf(s0)));
        assert!(!ar.strip_eq(&pool, ar.leaf(s0), ar.leaf(s1)));

        // Node(s1, [leaf0, Dot]) strip-equals Node(s1, [Dot, leaf0]) …
        let k1 = pool.extend(&[ar.leaf(s0), DOT]);
        let n1 = ar.push_node(s1, k1, 2);
        let k2 = pool.extend(&[DOT, ar.leaf(s0)]);
        let n2 = ar.push_node(s1, k2, 2);
        assert!(ar.strip_eq(&pool, n1, n2));
        // … but not a bare leaf of s1 (Node survives strip_dots).
        assert!(!ar.strip_eq(&pool, n1, ar.leaf(s1)));

        let d = ar.materialize(&pool, n1);
        assert_eq!(
            d,
            Derivation::Node(s1, vec![Derivation::Leaf(s0), Derivation::Dot])
        );
    }
}
