//! Panic containment at phase boundaries.
//!
//! [`contain`] runs one per-conflict unit of work (LSSI spine, unifying
//! search, nonunifying completion, lint masking probe) under
//! `std::panic::catch_unwind` and converts an escaped panic into a
//! structured [`EngineError`] carrying the phase name, the panic message,
//! and the `file:line:column` of the panic site.
//!
//! A process-global panic hook (installed once, wrapping whatever hook was
//! there before) records the message and location into a thread-local slot
//! *only while this thread is inside a `contain` call* — a depth counter
//! keeps nested containment correct — and suppresses the default
//! stderr backtrace for contained panics so a faulted conflict slot does
//! not spray noise over the grammar report. Panics on threads that are not
//! inside `contain` fall through to the previous hook unchanged.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::error::EngineError;

thread_local! {
    /// How many `contain` frames are live on this thread. While non-zero,
    /// the global hook captures instead of printing.
    static CAPTURE_DEPTH: Cell<u32> = const { Cell::new(0) };
    /// The most recent captured panic on this thread.
    static LAST_CAPTURE: RefCell<Option<Capture>> = const { RefCell::new(None) };
}

struct Capture {
    message: String,
    location: Option<String>,
}

static INSTALL_HOOK: Once = Once::new();

fn install_hook() {
    INSTALL_HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let capturing = CAPTURE_DEPTH.with(|d| d.get() > 0);
            if !capturing {
                previous(info);
                return;
            }
            let message = payload_message(info.payload());
            let location = info
                .location()
                .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
            LAST_CAPTURE.with(|slot| {
                *slot.borrow_mut() = Some(Capture { message, location });
            });
        }));
    });
}

/// Renders a panic payload as a message, for both the hook (`&dyn Any`)
/// and the `catch_unwind` payload (`Box<dyn Any>`).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, converting an escaped panic into an [`EngineError`] tagged
/// with `phase`. The panic does not reach stderr and does not unwind past
/// this frame; the worker thread survives.
pub fn contain<T>(phase: &'static str, f: impl FnOnce() -> T) -> Result<T, EngineError> {
    install_hook();
    CAPTURE_DEPTH.with(|d| d.set(d.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CAPTURE_DEPTH.with(|d| d.set(d.get() - 1));
    match result {
        Ok(v) => Ok(v),
        Err(payload) => {
            let capture = LAST_CAPTURE.with(|slot| slot.borrow_mut().take());
            let (message, location) = match capture {
                Some(c) => (c.message, c.location),
                None => (payload_message(payload.as_ref()), None),
            };
            let mut err = EngineError::new(phase, message);
            err.location = location;
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_value_passes_through() {
        assert_eq!(contain("unifying", || 42), Ok(42));
    }

    #[test]
    fn str_panic_is_captured_with_location() {
        let err = contain("spine", || -> u32 { panic!("boom") }).unwrap_err();
        assert_eq!(err.phase, "spine");
        assert_eq!(err.message, "boom");
        let loc = err.location.expect("hook captures the panic site");
        assert!(loc.contains("contain.rs"), "got {loc}");
    }

    #[test]
    fn formatted_panic_is_captured() {
        let err = contain("nonunifying", || -> () { panic!("x = {}", 7) }).unwrap_err();
        assert_eq!(err.message, "x = 7");
    }

    #[test]
    fn nested_containment_keeps_outer_alive() {
        let outer = contain("unifying", || {
            let inner = contain("spine", || -> u32 { panic!("inner") });
            assert_eq!(inner.unwrap_err().message, "inner");
            7u32
        });
        assert_eq!(outer, Ok(7));
    }

    #[test]
    fn errors_are_deterministic_across_runs() {
        fn boom() {
            panic!("same")
        }
        let a = contain("unifying", boom).unwrap_err();
        let b = contain("unifying", boom).unwrap_err();
        assert_eq!(a, b, "same panic site, same error");
        assert!(a.location.is_some());
    }
}
