//! Counterexample generation for LALR parsing conflicts.
//!
//! This crate implements the algorithm of *Finding Counterexamples from
//! Parsing Conflicts* (Isradisaikul & Myers, PLDI 2015) — the technique
//! behind the counterexample reports later adopted by Bison and Menhir.
//! For each shift/reduce or reduce/reduce conflict of an LALR(1) grammar it
//! produces:
//!
//! * a **unifying counterexample** — one string with two distinct
//!   derivations, proving the grammar ambiguous — found by an outward
//!   search over a *product parser* starting at the conflict (§5), or
//! * a **nonunifying counterexample** — two derivable strings sharing a
//!   prefix up to the conflict point — built from the *shortest
//!   lookahead-sensitive path* (§4) when no unifying counterexample exists
//!   or the search runs out of budget.
//!
//! # Quick start
//!
//! ```
//! use lalrcex_grammar::Grammar;
//! use lalrcex_core::{analyze, format_report};
//!
//! let g = Grammar::parse(
//!     "%% s : 'if' e 'then' s 'else' s | 'if' e 'then' s | OTHER ;
//!         e : ID ;",
//! )?;
//! let report = analyze(&g);
//! assert_eq!(report.unifying_count(), 1, "dangling else is ambiguous");
//! let text = format_report(&g, &report.reports[0]);
//! assert!(text.contains("Ambiguity detected for nonterminal s"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The pieces are exposed individually for tooling: the state-item graph
//! ([`StateGraph`]), lookahead-sensitive paths ([`lssi`]), the product
//! parser search ([`unifying_search`]), and nonunifying construction
//! ([`nonunifying_example`]).

// `deny` rather than `forbid`: the engine cache's self-referential
// grammar/engine pairing (cache.rs) needs one scoped, documented `allow`.
#![deny(unsafe_code)]

pub mod cache;
pub mod cancel;
mod contain;
pub mod engine;
mod error;
pub mod faultpoint;
pub mod lssi;
mod nonunifying;
pub mod provenance;
mod report;
mod search;
mod soa;
mod state_graph;
pub mod stats;
pub mod validate;

pub use cache::{content_hash, tagged_hash, BuildError, CacheStats, CachedEngine, EngineCache};
pub use cancel::{
    CancelReason, CancelToken, GovernorLease, MemoryGovernor, SearchSession, ShardBudget,
};
pub use contain::contain;
pub use engine::{hardware_workers, resolve_workers, Engine, Facts, ResolutionProbe, Spine};
pub use error::EngineError;
pub use nonunifying::{nonunifying_example, NonunifyingExample};
pub use provenance::{
    format_provenance, render_chain_step, ChainStep, Classification, ClassificationCounts,
    ConflictProvenance, GrammarProvenance, MergeEvidence, MergeVariant, ProvenanceOutcome,
    ProvenanceTables, ResolutionProvenance,
};
pub use report::{
    analyze, display_item_cup, format_report, Analyzer, CexConfig, ConflictOutcome, ConflictReport,
    ExampleKind, GrammarReport,
};
pub use search::{
    conflict_on, unifying_search, unifying_search_metered, unifying_search_session, SearchConfig,
    SearchOutcome, UnifyingExample,
};
pub use state_graph::{NodeSet, StateGraph, StateItemId};
pub use stats::{
    format_conflict_stats, format_grammar_stats, GrammarStats, SearchMetrics, SearchStats,
};

/// Test-only hook exposing the Figure 5(b) backward search candidates.
#[doc(hidden)]
pub fn debug_other_item_paths(
    g: &lalrcex_grammar::Grammar,
    graph: &StateGraph,
    path: &[lssi::LsNode],
    other: StateItemId,
) -> Vec<Vec<(StateItemId, lssi::EdgeKind)>> {
    nonunifying::debug_other_item_paths(g, graph, path, other)
}
