//! The state-item graph: nodes are (state, item) pairs, edges are the
//! transitions and production steps of the paper's lookahead-sensitive
//! graph (§4, Figure 4) with the lookahead component factored out, plus
//! precomputed reverse edges for the backward searches of §5.3 and §6.

use std::collections::HashMap;

use lalrcex_grammar::{Grammar, SymbolId, SymbolKind, TerminalSet};
use lalrcex_lr::{Automaton, Item, StateId};

/// Identifies a node of a [`StateGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateItemId(u32);

impl StateItemId {
    /// Dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The node with dense index `index`. Inverse of [`StateItemId::index`];
    /// only meaningful for indices below the owning graph's
    /// [`StateGraph::node_count`].
    pub fn from_index(index: usize) -> StateItemId {
        StateItemId(index as u32)
    }
}

impl std::fmt::Debug for StateItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "si#{}", self.0)
    }
}

/// A dense bitset over the nodes of a [`StateGraph`] (64× smaller than the
/// former `Vec<bool>` — reachability sets for the big Table 1 grammars
/// cover thousands of state-items and are built once per conflict spine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSet {
    bits: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// An empty set sized for `n` nodes.
    pub fn new(n: usize) -> NodeSet {
        NodeSet {
            bits: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    /// Inserts `i`; returns `true` if it was not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if self.bits[w] & b == 0 {
            self.bits[w] |= b;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The (state, item) graph over an LALR automaton.
///
/// Lookup tables are built once per grammar (the paper's §6 "Data
/// structures": "our implementation generates several lookup tables for
/// these actions" before working on the first conflict).
pub struct StateGraph {
    nodes: Vec<(StateId, Item)>,
    index: HashMap<(StateId, Item), StateItemId>,
    /// Forward transition (dot advance into the goto state), if any.
    trans: Vec<Option<StateItemId>>,
    /// Each node's item index within its state — makes [`Self::lookahead`]
    /// O(1) on the search hot path instead of a per-call linear scan of the
    /// state's item list.
    item_slot: Vec<u32>,
    /// Production steps: `(s, A -> α · B β)` to every `(s, B -> · γ)`.
    prods: Csr,
    /// Reverse transitions.
    rev_trans: Csr,
    /// Reverse production steps.
    rev_prods: Csr,
}

/// Compressed sparse rows: the per-node adjacency lists of a finished graph
/// packed into one offsets array plus one data array, so the search's inner
/// loops walk contiguous memory instead of a `Vec<Vec<_>>` of separate
/// allocations.
struct Csr {
    offs: Vec<u32>,
    data: Vec<StateItemId>,
}

impl Csr {
    fn build(rows: Vec<Vec<StateItemId>>) -> Csr {
        let mut offs = Vec::with_capacity(rows.len() + 1);
        let mut data = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        offs.push(0);
        for row in rows {
            data.extend_from_slice(&row);
            offs.push(data.len() as u32);
        }
        Csr { offs, data }
    }

    fn row(&self, i: usize) -> &[StateItemId] {
        &self.data[self.offs[i] as usize..self.offs[i + 1] as usize]
    }
}

impl StateGraph {
    /// Builds the graph and its reverse-edge tables.
    pub fn build(g: &Grammar, auto: &Automaton) -> StateGraph {
        let mut nodes = Vec::new();
        let mut index = HashMap::new();
        for sid in auto.state_ids() {
            for &it in auto.state(sid).items() {
                let id = StateItemId(nodes.len() as u32);
                nodes.push((sid, it));
                index.insert((sid, it), id);
            }
        }
        let n = nodes.len();
        let mut trans = vec![None; n];
        let mut prods = vec![Vec::new(); n];
        let mut rev_trans = vec![Vec::new(); n];
        let mut rev_prods = vec![Vec::new(); n];

        let mut item_slot = vec![0u32; n];
        for (i, &(sid, it)) in nodes.iter().enumerate() {
            let st = auto.state(sid);
            item_slot[i] = st.item_index(it).expect("node items exist in their state") as u32;
            if let Some(next) = it.next_symbol(g) {
                // Transition edge.
                let target_state = st
                    .transition(next)
                    .expect("state has transition for every item's next symbol");
                let target = index[&(target_state, it.advance(g))];
                trans[i] = Some(target);
                rev_trans[target.index()].push(StateItemId(i as u32));
                // Production-step edges.
                if g.kind(next) == SymbolKind::Nonterminal {
                    for &pid in g.prods_of(next) {
                        let target = index[&(sid, Item::start(pid))];
                        prods[i].push(target);
                        rev_prods[target.index()].push(StateItemId(i as u32));
                    }
                }
            }
        }

        StateGraph {
            nodes,
            index,
            trans,
            item_slot,
            prods: Csr::build(prods),
            rev_trans: Csr::build(rev_trans),
            rev_prods: Csr::build(rev_prods),
        }
    }

    /// Number of nodes (total items across all states).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node for `(state, item)`.
    ///
    /// # Panics
    ///
    /// Panics if the item is not part of the state.
    pub fn node(&self, state: StateId, item: Item) -> StateItemId {
        self.index[&(state, item)]
    }

    /// The node for `(state, item)`, or `None` if the item is not in the
    /// state.
    pub fn get_node(&self, state: StateId, item: Item) -> Option<StateItemId> {
        self.index.get(&(state, item)).copied()
    }

    /// The state of a node.
    pub fn state(&self, id: StateItemId) -> StateId {
        self.nodes[id.index()].0
    }

    /// The item of a node.
    pub fn item(&self, id: StateItemId) -> Item {
        self.nodes[id.index()].1
    }

    /// Forward transition (dot advance), if the item is not a reduce item.
    pub fn transition(&self, id: StateItemId) -> Option<StateItemId> {
        self.trans[id.index()]
    }

    /// Production-step successors.
    pub fn production_steps(&self, id: StateItemId) -> &[StateItemId] {
        self.prods.row(id.index())
    }

    /// Reverse transitions: every node whose transition leads here.
    pub fn reverse_transitions(&self, id: StateItemId) -> &[StateItemId] {
        self.rev_trans.row(id.index())
    }

    /// Reverse production steps: every node with a production step here.
    pub fn reverse_production_steps(&self, id: StateItemId) -> &[StateItemId] {
        self.rev_prods.row(id.index())
    }

    /// The LALR(1) lookahead set of a node's item.
    pub fn lookahead<'a>(&self, auto: &'a Automaton, id: StateItemId) -> &'a TerminalSet {
        let sid = self.nodes[id.index()].0;
        auto.state(sid)
            .lookahead(self.item_slot[id.index()] as usize)
    }

    /// Set of nodes that can reach `target` through reverse transitions and
    /// reverse production steps (the §6 pruning for the shortest
    /// lookahead-sensitive path search).
    pub fn reaching_set(&self, target: StateItemId) -> NodeSet {
        let mut seen = NodeSet::new(self.nodes.len());
        let mut stack = vec![target];
        seen.insert(target.index());
        while let Some(id) = stack.pop() {
            for &p in self
                .rev_trans
                .row(id.index())
                .iter()
                .chain(self.rev_prods.row(id.index()))
            {
                if seen.insert(p.index()) {
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// The symbol consumed by the transition *into* this node (the symbol
    /// before its dot). `None` for dot-at-start items.
    pub fn accessing_symbol(&self, g: &Grammar, id: StateItemId) -> Option<SymbolId> {
        self.item(id).prev_symbol(g)
    }

    /// Renders a node like `(7, stmt -> if expr · then stmt)`.
    pub fn display(&self, g: &Grammar, id: StateItemId) -> String {
        let (sid, it) = self.nodes[id.index()];
        format!("({}, {})", sid.index(), it.display(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::Grammar;
    use lalrcex_lr::Automaton;

    fn setup(src: &str) -> (Grammar, Automaton) {
        let g = Grammar::parse(src).unwrap();
        let auto = Automaton::build(&g);
        (g, auto)
    }

    #[test]
    fn node_count_is_total_items() {
        let (g, auto) = setup("%% s : A s | B ;");
        let graph = StateGraph::build(&g, &auto);
        let total: usize = auto
            .state_ids()
            .map(|id| auto.state(id).items().len())
            .sum();
        assert_eq!(graph.node_count(), total);
    }

    #[test]
    fn transitions_align_with_automaton() {
        let (g, auto) = setup("%% s : 'if' e 'then' s | X ; e : Y ;");
        let graph = StateGraph::build(&g, &auto);
        for i in 0..graph.node_count() {
            let id = StateItemId(i as u32);
            let (sid, it) = (graph.state(id), graph.item(id));
            match it.next_symbol(&g) {
                Some(sym) => {
                    let t = graph.transition(id).expect("has transition");
                    assert_eq!(graph.state(t), auto.state(sid).transition(sym).unwrap());
                    assert_eq!(graph.item(t), it.advance(&g));
                    // Reverse edge present.
                    assert!(graph.reverse_transitions(t).contains(&id));
                }
                None => assert!(graph.transition(id).is_none()),
            }
        }
    }

    #[test]
    fn production_steps_stay_in_state() {
        let (g, auto) = setup("%% s : e ';' ; e : e '+' N | N ;");
        let graph = StateGraph::build(&g, &auto);
        for i in 0..graph.node_count() {
            let id = StateItemId(i as u32);
            for &p in graph.production_steps(id) {
                assert_eq!(graph.state(p), graph.state(id), "prod step within state");
                assert_eq!(graph.item(p).dot(), 0);
                assert!(graph.reverse_production_steps(p).contains(&id));
            }
        }
    }

    #[test]
    fn reaching_set_contains_start_for_reachable_conflict() {
        let (g, auto) = setup("%% e : e '+' e | N ;");
        let graph = StateGraph::build(&g, &auto);
        // Find the reduce node for `e -> e + e ·`.
        let e = g.symbol_named("e").unwrap();
        let plus_prod = g.prods_of(e)[0];
        let reduce = Item::new(plus_prod, 3);
        let mut target = None;
        for sid in auto.state_ids() {
            if let Some(id) = graph.get_node(sid, reduce) {
                target = Some(id);
            }
        }
        let target = target.expect("reduce item exists somewhere");
        let reach = graph.reaching_set(target);
        let start = graph.node(StateId::START, Item::start(g.accept_prod()));
        assert!(
            reach.contains(start.index()),
            "start node reaches the conflict"
        );
        assert!(reach.len() < graph.node_count());
    }

    #[test]
    fn node_set_basics() {
        let mut s = NodeSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports already-present");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn lookahead_accessor_matches_state() {
        let (g, auto) = setup("%% s : A | ;");
        let graph = StateGraph::build(&g, &auto);
        let id = graph.node(StateId::START, Item::start(g.prods_of(g.start())[1]));
        let la = graph.lookahead(&auto, id);
        assert!(la.contains(g.tindex(SymbolId::EOF)));
    }
}
