//! Observability counters for the counterexample engine.
//!
//! Every phase of a conflict's diagnosis is metered: the shortest
//! lookahead-sensitive spine search (§4), the product-parser unifying
//! search (§5), and the nonunifying construction. The per-conflict
//! [`SearchStats`] ride on [`crate::ConflictReport`]; the grammar-wide
//! [`GrammarStats`] aggregate rides on [`crate::GrammarReport`] and feeds
//! the `--stats` output of the CLI and the explored-state columns of the
//! Table 1 harness.
//!
//! Counters are exact and deterministic for a given conflict; wall-clock
//! durations and memo hit/miss splits depend on scheduling and are
//! explicitly *excluded* from the engine's determinism guarantee.

use std::time::Duration;

/// Counters from one product-parser search (§5).
///
/// `explored`, `enqueued`, `deduped`, and `frontier_peak` count **arena
/// records** — configurations committed to the search's configuration
/// arena — not transient queue operations, so they are invariant under the
/// queue implementation and under intra-conflict expansion sharding.
/// `enqueued > explored` is a legitimate final state: a search that finds
/// its unifying example (or hits a cutoff) returns with a nonempty
/// frontier, whose members were enqueued but never explored (stackovf10 in
/// EXPERIMENTS.md Table 1 is the canonical instance).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchMetrics {
    /// Configurations taken off the frontier and expanded.
    pub explored: u64,
    /// Configurations accepted into the arena (including the initial
    /// configuration), i.e. survivors of the visited-set dedup.
    pub enqueued: u64,
    /// Successor configurations dropped because their core was already
    /// visited (the §5.2 dedup).
    pub deduped: u64,
    /// High-water mark of the frontier (pending arena records), sampled
    /// after each cost-bucket merge.
    pub frontier_peak: u64,
    /// High-water mark of this search's estimated live frontier bytes as
    /// reported to the [`crate::MemoryGovernor`]. Derived from actual
    /// arena/table capacities and sampled on the cancel stride — an
    /// estimate, but a deterministic one.
    pub live_bytes_peak: u64,
    /// Times this search *shed* — tightened its cost cap because the
    /// grammar-wide soft memory limit was exceeded. Depends on the shared
    /// governor state, so it is excluded from the determinism guarantee.
    pub sheds: u64,
    /// Total `u32` cells appended to the item-sequence and derivation-list
    /// pools — the arena footprint behind the record counts. Deterministic.
    pub arena_cells: u64,
    /// Frontier batches whose expansion was sharded across extra workers
    /// from the [`crate::ShardBudget`]. Depends on what the budget had
    /// available at the moment of the claim, so — like `sheds` — it is
    /// excluded from the determinism guarantee (the *results* of sharded
    /// batches are not: merge order is canonical).
    pub shard_batches: u64,
}

impl SearchMetrics {
    /// Accumulates another search's counters into this one (peaks are a
    /// max, everything else a sum).
    pub fn merge(&mut self, other: &SearchMetrics) {
        self.explored += other.explored;
        self.enqueued += other.enqueued;
        self.deduped += other.deduped;
        self.frontier_peak = self.frontier_peak.max(other.frontier_peak);
        self.live_bytes_peak = self.live_bytes_peak.max(other.live_bytes_peak);
        self.sheds += other.sheds;
        self.arena_cells += other.arena_cells;
        self.shard_batches += other.shard_batches;
    }
}

/// Everything metered while diagnosing one conflict.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Product-parser search counters.
    pub search: SearchMetrics,
    /// Nodes expanded by the shortest lookahead-sensitive path search
    /// (zero when the spine came from the per-grammar memo).
    pub spine_nodes: u64,
    /// Whether the spine was served from the per-grammar memo.
    pub spine_memo_hit: bool,
    /// Supervised re-runs of this conflict slot after a contained fault
    /// (the service layer's fault-retry supervision). Zero on first
    /// runs; filled by the supervisor, not by the engine.
    pub retries: u64,
    /// Time locating (or fetching) the spine.
    pub time_spine: Duration,
    /// Time in the unifying search.
    pub time_unifying: Duration,
    /// Time constructing the nonunifying example.
    pub time_nonunifying: Duration,
}

/// Grammar-wide aggregate over all conflicts of a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct GrammarStats {
    /// Time building the conflict-independent state shared by every
    /// conflict: LALR automaton, parse tables, state-item graph.
    pub precompute: Duration,
    /// Worker threads used by `analyze_all`.
    pub workers: usize,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Spine-memo hits across all conflicts.
    pub spine_memo_hits: u64,
    /// Spine-memo misses (spines actually computed).
    pub spine_memo_misses: u64,
    /// Aggregate product-parser search counters.
    pub search: SearchMetrics,
    /// Aggregate LSSI nodes expanded (misses only).
    pub spine_nodes: u64,
    /// CPU time summed across conflicts (≥ wall time when parallel).
    pub cpu_time: Duration,
    /// Engine-cache hits, cumulative for the session that produced this
    /// run. Zero when no [`crate::cache::EngineCache`] is in front of the
    /// engine (direct `Engine`/`Analyzer` runs). Filled by the session
    /// layer, not by `absorb`.
    pub cache_hits: u64,
    /// Engine-cache misses (engines actually built); see [`Self::cache_hits`].
    pub cache_misses: u64,
    /// Engine-cache evictions; see [`Self::cache_hits`].
    pub cache_evictions: u64,
    /// Conflicts classified true-ambiguity-candidate by the provenance
    /// analysis. Filled by [`Self::record_provenance`] when the caller ran
    /// it; all-zero classification counters mean provenance was not
    /// requested.
    pub class_true_candidates: u64,
    /// Conflicts classified merge-artifact; see [`Self::class_true_candidates`].
    pub class_merge_artifacts: u64,
    /// Precedence-resolved (silenced) conflicts; see
    /// [`Self::class_true_candidates`].
    pub class_precedence_resolved: u64,
    /// Conflict slots whose classification faulted (contained); see
    /// [`Self::class_true_candidates`].
    pub class_internal: u64,
    /// Conflict slots re-run by fault-retry supervision after a
    /// contained `Internal` fault. Filled by the session layer (like the
    /// cache counters), not by `absorb`.
    pub slot_retries: u64,
    /// Retried slots whose re-run completed (the fault was transient —
    /// e.g. a one-shot injected fault — and the slot recovered).
    pub slots_recovered: u64,
    /// Canonical LR(1) states explored by the merge-artifact check.
    pub lr1_states: u64,
    /// Time spent in the provenance analysis (zero on a memoized engine).
    pub provenance_time: Duration,
}

impl GrammarStats {
    /// Folds one conflict's stats into the aggregate.
    pub fn absorb(&mut self, s: &SearchStats) {
        self.conflicts += 1;
        if s.spine_memo_hit {
            self.spine_memo_hits += 1;
        } else {
            self.spine_memo_misses += 1;
        }
        self.search.merge(&s.search);
        self.spine_nodes += s.spine_nodes;
        self.cpu_time += s.time_spine + s.time_unifying + s.time_nonunifying;
    }

    /// Folds a grammar's provenance classification tallies into the
    /// aggregate (called by the layer that ran the provenance analysis).
    pub fn record_provenance(&mut self, p: &crate::provenance::GrammarProvenance) {
        let c = p.counts();
        self.class_true_candidates += c.true_candidates;
        self.class_merge_artifacts += c.merge_artifacts;
        self.class_precedence_resolved += c.precedence_resolved;
        self.class_internal += c.internal;
        self.lr1_states += p.lr1_states as u64;
        self.provenance_time += p.compute_time;
    }
}

/// One-line rendering of a conflict's counters for `--stats` output.
pub fn format_conflict_stats(s: &SearchStats) -> String {
    format!(
        "explored={} enqueued={} deduped={} frontier-peak={} spine={} spine-nodes={} t-spine={:.1}ms t-search={:.1}ms t-nonunif={:.1}ms",
        s.search.explored,
        s.search.enqueued,
        s.search.deduped,
        s.search.frontier_peak,
        if s.spine_memo_hit { "memo" } else { "computed" },
        s.spine_nodes,
        s.time_spine.as_secs_f64() * 1e3,
        s.time_unifying.as_secs_f64() * 1e3,
        s.time_nonunifying.as_secs_f64() * 1e3,
    )
}

/// Multi-line rendering of the grammar aggregate for `--stats` output.
pub fn format_grammar_stats(stats: &GrammarStats, wall: Duration) -> String {
    format!(
        "grammar stats: {} conflicts, {} workers, precompute {:.1}ms\n\
         \u{20} spine memo: {} hits / {} misses ({} LSSI nodes expanded)\n\
         \u{20} unifying search: {} explored, {} enqueued, {} deduped, frontier peak {}, {} arena cells\n\
         \u{20} memory: live-bytes peak {}, {} sheds, {} sharded batches\n\
         \u{20} supervision: {} slot retries / {} recovered\n\
         \u{20} engine cache: {} hits / {} misses / {} evictions\n\
         \u{20} provenance: {} true-ambiguity / {} merge-artifact / {} precedence-resolved / {} internal (lr1 states {}, {:.1}ms)\n\
         \u{20} time: {:.1}ms wall, {:.1}ms cpu across conflicts",
        stats.conflicts,
        stats.workers,
        stats.precompute.as_secs_f64() * 1e3,
        stats.spine_memo_hits,
        stats.spine_memo_misses,
        stats.spine_nodes,
        stats.search.explored,
        stats.search.enqueued,
        stats.search.deduped,
        stats.search.frontier_peak,
        stats.search.arena_cells,
        stats.search.live_bytes_peak,
        stats.search.sheds,
        stats.search.shard_batches,
        stats.slot_retries,
        stats.slots_recovered,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.class_true_candidates,
        stats.class_merge_artifacts,
        stats.class_precedence_resolved,
        stats.class_internal,
        stats.lr1_states,
        stats.provenance_time.as_secs_f64() * 1e3,
        wall.as_secs_f64() * 1e3,
        stats.cpu_time.as_secs_f64() * 1e3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = SearchMetrics {
            explored: 1,
            enqueued: 2,
            deduped: 3,
            frontier_peak: 10,
            live_bytes_peak: 100,
            sheds: 1,
            arena_cells: 7,
            shard_batches: 1,
        };
        let b = SearchMetrics {
            explored: 10,
            enqueued: 20,
            deduped: 30,
            frontier_peak: 4,
            live_bytes_peak: 400,
            sheds: 2,
            arena_cells: 70,
            shard_batches: 2,
        };
        a.merge(&b);
        assert_eq!(a.explored, 11);
        assert_eq!(a.enqueued, 22);
        assert_eq!(a.deduped, 33);
        assert_eq!(a.frontier_peak, 10);
        assert_eq!(a.live_bytes_peak, 400);
        assert_eq!(a.sheds, 3);
        assert_eq!(a.arena_cells, 77);
        assert_eq!(a.shard_batches, 3);
    }

    #[test]
    fn absorb_counts_memo_hits() {
        let mut g = GrammarStats::default();
        let mut s = SearchStats {
            spine_memo_hit: true,
            ..SearchStats::default()
        };
        g.absorb(&s);
        s.spine_memo_hit = false;
        g.absorb(&s);
        assert_eq!(g.conflicts, 2);
        assert_eq!(g.spine_memo_hits, 1);
        assert_eq!(g.spine_memo_misses, 1);
    }

    #[test]
    fn renderings_mention_key_counters() {
        let s = SearchStats::default();
        assert!(format_conflict_stats(&s).contains("explored=0"));
        let g = GrammarStats::default();
        let out = format_grammar_stats(&g, Duration::ZERO);
        assert!(out.contains("spine memo"));
        assert!(out.contains("unifying search"));
    }
}
