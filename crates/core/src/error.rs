//! Structured engine faults.
//!
//! A contained failure inside one conflict's diagnosis — a panic caught at
//! a phase boundary, or a reachable inconsistency that used to be an
//! internal `panic!` — is reported as an [`EngineError`] instead of
//! unwinding through the worker pool and killing the whole grammar report.
//! The error carries the *phase* it happened in (so the degradation ladder
//! of DESIGN.md is observable), the panic message (or structured
//! description), and the `file:line:column` of the panic site when the
//! scoped panic hook captured one.
//!
//! `EngineError` is deliberately `Eq` + deterministic to render: a faulted
//! conflict slot must produce byte-identical report text across runs and
//! worker counts, the same guarantee the healthy slots have.

use std::fmt;

/// A contained fault inside the conflict engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineError {
    /// The engine phase that failed: `"spine"`, `"unifying"`,
    /// `"nonunifying"`, `"lint.probe"`, `"precompute"`, or
    /// `"provenance.compute"`.
    pub phase: &'static str,
    /// The panic payload (when string-like) or a structured description.
    pub message: String,
    /// `file:line:column` of the panic site, when the scoped panic hook
    /// captured one. `None` for structured (non-panic) errors.
    pub location: Option<String>,
}

impl EngineError {
    /// A structured (non-panic) engine error.
    pub fn new(phase: &'static str, message: impl Into<String>) -> EngineError {
        EngineError {
            phase,
            message: message.into(),
            location: None,
        }
    }

    /// The error reported when a conflict lookup finds no conflict on the
    /// requested terminal — a *reachable* state (precedence declarations
    /// resolve conflicts out of the table), not an invariant violation.
    pub fn no_conflict_on(term: &str) -> EngineError {
        EngineError::new(
            "lookup",
            format!(
                "no unresolved conflict on `{term}` \
                 (a precedence declaration may have resolved it)"
            ),
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engine fault in phase `{}`: {}",
            self.phase, self.message
        )?;
        if let Some(loc) = &self.location {
            write!(f, " (at {loc})")?;
        }
        Ok(())
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_message_and_location() {
        let mut e = EngineError::new("unifying", "boom");
        assert_eq!(e.to_string(), "engine fault in phase `unifying`: boom");
        e.location = Some("src/x.rs:1:2".into());
        assert_eq!(
            e.to_string(),
            "engine fault in phase `unifying`: boom (at src/x.rs:1:2)"
        );
    }

    #[test]
    fn no_conflict_on_mentions_precedence() {
        let e = EngineError::no_conflict_on("else");
        assert_eq!(e.phase, "lookup");
        assert!(e.message.contains("`else`"));
        assert!(e.message.contains("precedence"));
        assert!(e.location.is_none());
    }
}
