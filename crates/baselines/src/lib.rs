//! Baseline tools the paper compares against (§7 and §8).
//!
//! * [`ppg`] — prior-PPG-style nonunifying counterexamples that *ignore
//!   lookahead symbols*; the paper shows these are misleading on ten of
//!   the benchmark grammars (§7.2).
//! * [`cup2`] — CUP2-style reports: just the shortest path of symbols to
//!   the conflict state.
//! * [`amber`] — AMBER-style exhaustive derivation enumeration with
//!   iterative deepening: accurate but "prohibitively slow" (§8).
//! * [`filtered`] — a grammar-filtered bounded ambiguity search standing
//!   in for the CFGAnalyzer variant of Basten & Vinju (the parenthesised
//!   column of Table 1): the search is restricted to the conflict-relevant
//!   slice of the grammar, and the length bound grows until an ambiguous
//!   sentence is found or the budget runs out.

#![forbid(unsafe_code)]

pub mod amber;
pub mod cup2;
pub mod filtered;
pub mod ppg;
