//! Grammar-filtered bounded ambiguity search — the stand-in for the
//! CFGAnalyzer variant with BV10 grammar filtering (the parenthesised
//! times in Table 1).
//!
//! The filtering idea of Basten & Vinju: use the parsing conflict to slice
//! the grammar down to the part that can matter, then run the exhaustive
//! bounded search on the slice. We realise the slice by choosing *search
//! roots* from the conflict: the left-hand sides of the two conflicting
//! productions and their ancestors, ordered innermost-first. Enumerating
//! from an inner root automatically restricts the search to the
//! sub-grammar reachable from it, which is exactly the filtered grammar.

use std::time::{Duration, Instant};

use lalrcex_grammar::{Analysis, Grammar, SymbolId, SymbolKind};
use lalrcex_lr::Conflict;

use crate::amber::{self, Budget, Outcome};

/// Result of the filtered search, with the root that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FilteredOutcome {
    /// An ambiguous sentence of `root` was found.
    Ambiguous {
        /// The nonterminal whose derivations unify.
        root: SymbolId,
        /// The ambiguous sentence.
        sentence: Vec<SymbolId>,
    },
    /// No ambiguity within the bound, for any candidate root.
    ExhaustedBound,
    /// Ran out of time.
    TimedOut,
}

/// Nonterminals that can derive a phrase containing `target`, i.e. the
/// ancestors of `target` in the reachability relation (including itself).
fn ancestors(g: &Grammar, target: SymbolId) -> Vec<SymbolId> {
    let n = g.nonterminal_count();
    // reaches[a][b]: nonterminal a's productions mention b.
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for p in g.productions() {
        let lhs = g.ntindex(p.lhs());
        for &s in p.rhs() {
            if g.kind(s) == SymbolKind::Nonterminal {
                parents[g.ntindex(s)].push(lhs);
            }
        }
    }
    let mut seen = vec![false; n];
    let mut stack = vec![g.ntindex(target)];
    seen[g.ntindex(target)] = true;
    while let Some(i) = stack.pop() {
        for &p in &parents[i] {
            if !seen[p] {
                seen[p] = true;
                stack.push(p);
            }
        }
    }
    (0..n)
        .filter(|&i| seen[i])
        .map(|i| g.nonterminal(i))
        .collect()
}

/// Size of the sub-grammar reachable from a nonterminal (used to order
/// candidate roots innermost-first).
fn slice_size(g: &Grammar, root: SymbolId) -> usize {
    let mut seen = vec![false; g.nonterminal_count()];
    let mut stack = vec![g.ntindex(root)];
    seen[g.ntindex(root)] = true;
    let mut prods = 0;
    while let Some(i) = stack.pop() {
        let nt = g.nonterminal(i);
        for &pid in g.prods_of(nt) {
            prods += 1;
            for &s in g.prod(pid).rhs() {
                if g.kind(s) == SymbolKind::Nonterminal && !seen[g.ntindex(s)] {
                    seen[g.ntindex(s)] = true;
                    stack.push(g.ntindex(s));
                }
            }
        }
    }
    prods
}

/// The candidate search roots for a conflict: ancestors of both conflict
/// productions' left-hand sides, innermost (smallest slice) first.
pub fn candidate_roots(g: &Grammar, conflict: &Conflict) -> Vec<SymbolId> {
    let lhs1 = g.prod(conflict.reduce_prod).lhs();
    let lhs2 = g.prod(conflict.other_item(g).prod()).lhs();
    let a1 = ancestors(g, lhs1);
    let a2 = ancestors(g, lhs2);
    let mut common: Vec<SymbolId> = a1.into_iter().filter(|s| a2.contains(s)).collect();
    common.sort_by_key(|&s| slice_size(g, s));
    common
}

/// Runs the grammar-filtered bounded search for one conflict.
pub fn search(g: &Grammar, conflict: &Conflict, budget: &Budget) -> FilteredOutcome {
    let a = Analysis::new(g);
    let roots = candidate_roots(g, conflict);
    let deadline = Instant::now() + budget.time_limit;
    // Interleave: grow the bound outermost so an inner root gets first try
    // at every bound.
    for bound in 1..=budget.max_len {
        for &root in &roots {
            let now = Instant::now();
            if now > deadline {
                return FilteredOutcome::TimedOut;
            }
            let remaining = deadline - now;
            let b = Budget {
                max_len: bound,
                time_limit: remaining.min(Duration::from_secs(3600)),
                max_steps: budget.max_steps,
            };
            // Only the exact bound: lower bounds were covered by earlier
            // iterations of the outer loop; re-running them is cheap
            // relative to the top bound, so keep it simple and rerun.
            match amber::search_from(g, &a, root, &b) {
                Outcome::Ambiguous { sentence, .. } => {
                    return FilteredOutcome::Ambiguous { root, sentence }
                }
                Outcome::TimedOut => return FilteredOutcome::TimedOut,
                Outcome::ExhaustedBound => {}
            }
        }
    }
    FilteredOutcome::ExhaustedBound
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_lr::Automaton;

    fn budget() -> Budget {
        Budget {
            max_len: 10,
            time_limit: Duration::from_secs(10),
            max_steps: 5_000_000,
        }
    }

    #[test]
    fn filtered_search_finds_inner_ambiguity() {
        // The ambiguity is in `e`; filtering should find it from the inner
        // root without enumerating statements.
        let g =
            lalrcex_grammar::Grammar::parse("%% s : 'print' e ';' | s s ';' ; e : e '+' e | N ;")
                .unwrap();
        let auto = Automaton::build(&g);
        let t = auto.tables(&g);
        let c = t
            .conflicts()
            .iter()
            .find(|c| g.display_name(c.terminal) == "+")
            .expect("expression conflict");
        match search(&g, c, &budget()) {
            FilteredOutcome::Ambiguous { root, sentence } => {
                assert_eq!(g.display_name(root), "e", "innermost root found");
                assert_eq!(sentence.len(), 5);
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn candidate_roots_are_innermost_first() {
        let g =
            lalrcex_grammar::Grammar::parse("%% s : 'print' e ';' ; e : e '+' e | N ;").unwrap();
        let auto = Automaton::build(&g);
        let t = auto.tables(&g);
        let c = &t.conflicts()[0];
        let roots = candidate_roots(&g, c);
        assert!(roots.len() >= 2);
        assert_eq!(g.display_name(roots[0]), "e");
    }

    #[test]
    fn unambiguous_conflict_exhausts() {
        let g = lalrcex_grammar::Grammar::parse(
            "%% S : T | S T ; T : X | Y ; X : 'a' ; Y : 'a' 'a' 'b' ;",
        )
        .unwrap();
        let auto = Automaton::build(&g);
        let t = auto.tables(&g);
        let out = search(&g, &t.conflicts()[0], &budget());
        assert_eq!(out, FilteredOutcome::ExhaustedBound);
    }
}
