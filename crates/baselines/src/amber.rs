//! AMBER-style exhaustive ambiguity search (§8): enumerate every terminal
//! string derivable from the start symbol, by iterative deepening on
//! string length, and report the first string reachable by two distinct
//! leftmost derivations. Accurate but exponential — the paper's point is
//! that this is "prohibitively slow" compared to conflict-directed search.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::{Duration, Instant};

use lalrcex_grammar::{Analysis, Grammar, SymbolId, SymbolKind};

/// Budget for the exhaustive search.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum sentence length to explore.
    pub max_len: usize,
    /// Wall-clock limit.
    pub time_limit: Duration,
    /// Maximum number of derivation steps across the whole run.
    pub max_steps: usize,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_len: 12,
            time_limit: Duration::from_secs(30),
            max_steps: 50_000_000,
        }
    }
}

/// Result of the exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// An ambiguous sentence was found.
    Ambiguous {
        /// The sentence (terminal symbols).
        sentence: Vec<SymbolId>,
        /// The length bound at which it was found.
        bound: usize,
    },
    /// Every sentence up to `max_len` is unambiguous.
    ExhaustedBound,
    /// The time or step budget ran out first.
    TimedOut,
}

struct Enumerator<'a> {
    g: &'a Grammar,
    a: &'a Analysis,
    bound: usize,
    deadline: Instant,
    steps: usize,
    max_steps: usize,
    /// sentence -> fingerprint of the first leftmost derivation seen.
    seen: HashMap<Vec<SymbolId>, u64>,
    found: Option<Vec<SymbolId>>,
}

impl Enumerator<'_> {
    /// Expands the leftmost nonterminal of `form`; `prefix_len` counts the
    /// terminals already fixed at the front, `trace` fingerprints the
    /// derivation (sequence of production indices).
    fn walk(&mut self, form: &[SymbolId], trace: u64, depth: usize) -> bool {
        self.steps += 1;
        if self.steps >= self.max_steps
            || (self.steps.is_multiple_of(4096) && Instant::now() > self.deadline)
        {
            return false;
        }
        // ε/unit cycles expand forever without growing the form; bound the
        // derivation depth relative to the sentence bound.
        if depth > 4 * self.bound + 64 {
            return true;
        }
        // Find leftmost nonterminal; also compute minimal completion size.
        let mut min_total = 0u64;
        let mut leftmost: Option<usize> = None;
        for (i, &s) in form.iter().enumerate() {
            match self.g.kind(s) {
                SymbolKind::Terminal => min_total += 1,
                SymbolKind::Nonterminal => {
                    if leftmost.is_none() {
                        leftmost = Some(i);
                    }
                    min_total += self.a.min_sentence_len(s).unwrap_or(u64::MAX / 4);
                }
            }
        }
        if min_total > self.bound as u64 {
            return true; // prune: cannot fit the bound
        }
        let Some(pos) = leftmost else {
            // A complete sentence.
            match self.seen.entry(form.to_vec()) {
                Entry::Vacant(e) => {
                    e.insert(trace);
                }
                Entry::Occupied(e) => {
                    if *e.get() != trace {
                        self.found = Some(form.to_vec());
                        return false;
                    }
                }
            }
            return true;
        };
        let nt = form[pos];
        for (alt, &pid) in self.g.prods_of(nt).iter().enumerate() {
            let rhs = self.g.prod(pid).rhs();
            let mut next = Vec::with_capacity(form.len() + rhs.len());
            next.extend_from_slice(&form[..pos]);
            next.extend_from_slice(rhs);
            next.extend_from_slice(&form[pos + 1..]);
            // Fingerprint the derivation by hashing the choice sequence.
            let t = trace
                .wrapping_mul(1_000_003)
                .wrapping_add(alt as u64 + 1)
                .wrapping_add((pos as u64) << 40);
            if !self.walk(&next, t, depth + 1) {
                return false;
            }
        }
        true
    }
}

/// Runs the exhaustive search from the grammar's start symbol.
pub fn search(g: &Grammar, budget: &Budget) -> Outcome {
    let a = Analysis::new(g);
    search_from(g, &a, g.start(), budget)
}

/// Runs the exhaustive search for ambiguity of a specific nonterminal
/// (the enumeration automatically restricts itself to the sub-grammar
/// reachable from `root` — the building block of the grammar-filtered
/// baseline).
pub fn search_from(
    g: &Grammar,
    a: &Analysis,
    root: lalrcex_grammar::SymbolId,
    budget: &Budget,
) -> Outcome {
    let deadline = Instant::now() + budget.time_limit;
    for bound in 1..=budget.max_len {
        let mut e = Enumerator {
            g,
            a,
            bound,
            deadline,
            steps: 0,
            max_steps: budget.max_steps,
            seen: HashMap::new(),
            found: None,
        };
        let form = vec![root];
        let completed = e.walk(&form, 0, 0);
        if let Some(sentence) = e.found {
            return Outcome::Ambiguous { sentence, bound };
        }
        if !completed {
            return Outcome::TimedOut;
        }
    }
    Outcome::ExhaustedBound
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::Grammar;

    fn budget() -> Budget {
        Budget {
            max_len: 8,
            time_limit: Duration::from_secs(10),
            max_steps: 5_000_000,
        }
    }

    #[test]
    fn finds_expression_ambiguity() {
        let g = Grammar::parse("%% e : e '+' e | N ;").unwrap();
        match search(&g, &budget()) {
            Outcome::Ambiguous { sentence, bound } => {
                assert_eq!(sentence.len(), 5, "N + N + N");
                assert_eq!(bound, 5);
                // Independent confirmation.
                let e = g.symbol_named("e").unwrap();
                assert!(lalrcex_earley::forest::is_ambiguous_form(&g, e, &sentence));
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn dangling_else_found() {
        let g = Grammar::parse("%% s : 'i' s 'e' s | 'i' s | 'x' ;").unwrap();
        assert!(matches!(search(&g, &budget()), Outcome::Ambiguous { .. }));
    }

    #[test]
    fn unambiguous_grammar_exhausts_bound() {
        let g = Grammar::parse("%% l : l A | A ;").unwrap();
        assert_eq!(search(&g, &budget()), Outcome::ExhaustedBound);
    }

    #[test]
    fn figure3_is_unambiguous_within_bound() {
        let g = Grammar::parse("%% S : T | S T ; T : X | Y ; X : 'a' ; Y : 'a' 'a' 'b' ;").unwrap();
        assert_eq!(search(&g, &budget()), Outcome::ExhaustedBound);
    }

    #[test]
    fn tiny_time_budget_times_out() {
        let g = lalrcex_corpus::by_name("Java.2").unwrap().load().unwrap();
        let out = search(
            &g,
            &Budget {
                max_len: 30,
                time_limit: Duration::from_millis(1),
                max_steps: usize::MAX,
            },
        );
        // Either it gets lucky instantly or (almost surely) times out; it
        // must not run unbounded.
        assert!(matches!(out, Outcome::TimedOut | Outcome::Ambiguous { .. }));
    }
}
