//! PPG-style counterexamples: shortest path to the conflict state,
//! *ignoring lookahead symbols* — the strategy of pre-2015 Polyglot/PPG
//! that the paper shows to be misleading (§7.2: "Incorrect
//! counterexamples are generated because PPG's algorithm ignores conflict
//! lookahead symbols").

use std::collections::{HashMap, VecDeque};

use lalrcex_earley::chart;
use lalrcex_grammar::{Derivation, Grammar, SymbolId, SymbolKind};
use lalrcex_lr::{Automaton, Conflict, Item, StateId};

/// A PPG-style counterexample: a sentential form that takes the parser to
/// the conflict state, with the conflict terminal blindly appended after
/// the dot.
#[derive(Clone, Debug)]
pub struct PpgExample {
    /// Symbols consumed on the shortest (lookahead-insensitive) path to
    /// the conflict state.
    pub prefix: Vec<SymbolId>,
    /// The claimed continuation: the conflict terminal.
    pub terminal: SymbolId,
}

impl PpgExample {
    /// The full claimed sentential prefix `prefix · terminal`.
    pub fn claimed_form(&self) -> Vec<SymbolId> {
        let mut v = self.prefix.clone();
        v.push(self.terminal);
        v
    }

    /// The reduce-side claim: the suffix of the prefix spelling the
    /// conflict production is folded to its left-hand side, then the
    /// conflict terminal follows. PPG asserts the reduction can be taken
    /// with this terminal as lookahead; if the folded form is not a valid
    /// sentential prefix, the example is misleading.
    pub fn claimed_reduce_form(
        &self,
        g: &Grammar,
        reduce_prod_len: usize,
        lhs: SymbolId,
    ) -> Vec<SymbolId> {
        let _ = g;
        let keep = self.prefix.len().saturating_sub(reduce_prod_len);
        let mut v = self.prefix[..keep].to_vec();
        v.push(lhs);
        v.push(self.terminal);
        v
    }

    /// Renders like `if expr then stmt · else`.
    pub fn display(&self, g: &Grammar) -> String {
        format!(
            "{} \u{2022} {}",
            g.format_symbols(&self.prefix),
            g.display_name(self.terminal)
        )
    }
}

/// Builds the PPG-style example for a conflict: BFS over *states* only
/// (transitions, no lookahead tracking), reading off the symbols.
pub fn ppg_example(_g: &Grammar, auto: &Automaton, conflict: &Conflict) -> PpgExample {
    // BFS from the start state to the conflict state over the plain state
    // diagram.
    let mut prev: HashMap<StateId, (StateId, SymbolId)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(StateId::START);
    'bfs: while let Some(s) = queue.pop_front() {
        for &(sym, t) in auto.state(s).transitions() {
            if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(t) {
                e.insert((s, sym));
                if t == conflict.state {
                    break 'bfs;
                }
                queue.push_back(t);
            }
        }
    }
    let mut prefix = Vec::new();
    let mut cur = conflict.state;
    while cur != StateId::START {
        let (p, sym) = prev[&cur];
        prefix.push(sym);
        cur = p;
    }
    prefix.reverse();
    PpgExample {
        prefix,
        terminal: conflict.terminal,
    }
}

/// Is the claimed example *valid*? PPG asserts that after the shown
/// prefix the conflict *reduction* may be taken with the conflict terminal
/// as lookahead. That is only true if, after folding the conflict
/// production, the terminal can actually follow — i.e. the folded form is
/// a prefix of some sentential form. PPG's lookahead-blind construction
/// often claims continuations that cannot occur, which is exactly what
/// this check detects (the paper's dangling-else PPG report is the
/// canonical invalid example).
pub fn is_valid(g: &Grammar, conflict: &Conflict, example: &PpgExample) -> bool {
    let prod = g.prod(conflict.reduce_prod);
    let folded = example.claimed_reduce_form(g, prod.rhs().len(), prod.lhs());
    prefix_recognized(g, &folded)
}

/// `true` if some sentential form of the grammar begins with `input`
/// (prefix recognition via the generalized Earley chart).
fn prefix_recognized(g: &Grammar, input: &[SymbolId]) -> bool {
    // Run Earley from the start symbol but accept when the final item set
    // is nonempty (a live parse exists) instead of requiring completion.
    // The chart module does not expose partial charts, so emulate with a
    // wrapper grammar: start' -> start, and test incrementally expandable
    // prefixes. Simpler and exact: an item set is "live" iff the prefix
    // plus some suffix of nonterminals parses; test by appending each
    // symbol's... — instead, reuse the chart recognizer on the prefix
    // against a grammar extended with a "rest" sink is intrusive. We use
    // the direct approach: breadth-first leftmost derivation of sentential
    // forms, matching the prefix, with a visited set. Counterexample
    // prefixes are short, so this stays small.
    let start = g.start();
    let mut queue: VecDeque<Vec<SymbolId>> = VecDeque::new();
    let mut seen = std::collections::HashSet::new();
    queue.push_back(vec![start]);
    let mut steps = 0usize;
    while let Some(form) = queue.pop_front() {
        steps += 1;
        if steps > 200_000 {
            return false; // budget exhausted: treat as invalid
        }
        // Match form against input prefix.
        let mut i = 0; // position in input
        let mut j = 0; // position in form
        let mut matched = true;
        while i < input.len() && j < form.len() {
            let f = form[j];
            if f == input[i] {
                i += 1;
                j += 1;
            } else if g.kind(f) == SymbolKind::Nonterminal {
                break; // expand this nonterminal
            } else {
                matched = false;
                break;
            }
        }
        if !matched {
            continue;
        }
        if i == input.len() {
            return true; // the whole claimed prefix is covered
        }
        if j == form.len() {
            continue; // form exhausted before covering the prefix
        }
        // Expand the nonterminal at position j.
        let nt = form[j];
        for &pid in g.prods_of(nt) {
            let mut next: Vec<SymbolId> = Vec::with_capacity(form.len() + 4);
            next.extend_from_slice(&form[..j]);
            next.extend_from_slice(g.prod(pid).rhs());
            next.extend_from_slice(&form[j + 1..]);
            // Keep forms bounded: drop anything wildly longer than needed.
            if next.len() <= input.len() + 8 && seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    false
}

/// A derivation-of-prefix helper for display purposes: wraps the prefix as
/// unexpanded leaves (PPG did not produce derivations).
pub fn as_derivation(example: &PpgExample) -> Vec<Derivation> {
    example
        .claimed_form()
        .iter()
        .map(|&s| Derivation::Leaf(s))
        .collect()
}

/// Convenience: run PPG on every conflict and report validity (used by the
/// §7.2 comparison binary).
pub fn validity_report(g: &Grammar, auto: &Automaton) -> Vec<(Conflict, PpgExample, bool)> {
    let tables = auto.tables(g);
    tables
        .conflicts()
        .iter()
        .map(|c| {
            let ex = ppg_example(g, auto, c);
            let ok = is_valid(g, c, &ex);
            (*c, ex, ok)
        })
        .collect()
}

/// The conflict reduce item, re-exported for report formatting.
pub fn reduce_item(g: &Grammar, c: &Conflict) -> Item {
    c.reduce_item(g)
}

// Silence the unused-import lint conservatively: the chart oracle is used
// in tests to cross-check `prefix_recognized`.
#[allow(unused_imports)]
use chart::recognizes as _earley_recognizes;

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::Grammar;
    use lalrcex_lr::Automaton;

    fn dangling_else() -> (Grammar, Automaton) {
        let g = Grammar::parse("%% s : 'if' e 'then' s 'else' s | 'if' e 'then' s | X ; e : Y ;")
            .unwrap();
        let auto = Automaton::build(&g);
        (g, auto)
    }

    #[test]
    fn ppg_dangling_else_is_invalid() {
        // §7.2: PPG reports `if expr then stmt · else` — but after the
        // *shortest* path (no nested if), `else` cannot follow when the
        // reduction is taken, making the claimed example misleading.
        let (g, auto) = dangling_else();
        let report = validity_report(&g, &auto);
        assert_eq!(report.len(), 1);
        let (_, ex, valid) = &report[0];
        assert_eq!(
            g.format_symbols(&ex.prefix),
            "if e then s",
            "PPG takes the shortest path"
        );
        assert!(!valid, "the reduce-side claim `s else ...` is underivable");
        // The raw prefix itself is fine (the shift side exists) — the
        // misleading part is specifically the reduction claim.
        assert!(prefix_recognized(&g, &ex.claimed_form()));
    }

    #[test]
    fn ppg_invalid_on_lookahead_sensitive_conflict() {
        // figure1's challenging conflict: PPG's shortest path to the
        // conflict state runs through `if expr then arr [ expr ] := num`,
        // and claims `digit` follows — but in that context a digit can
        // never follow, so the example is invalid.
        let g = Grammar::parse(
            "%start stmt
             %%
             stmt : 'if' expr 'then' stmt 'else' stmt
                  | 'if' expr 'then' stmt
                  | expr '?' stmt stmt
                  | 'arr' '[' expr ']' ':=' expr
                  ;
             expr : num | expr '+' expr ;
             num  : digit | num digit ;",
        )
        .unwrap();
        let auto = Automaton::build(&g);
        let report = validity_report(&g, &auto);
        let digit_conflicts: Vec<_> = report
            .iter()
            .filter(|(c, _, _)| g.display_name(c.terminal) == "digit")
            .collect();
        assert!(!digit_conflicts.is_empty());
        // At least one PPG example on this grammar must be invalid — the
        // whole point of the lookahead-sensitive algorithm.
        assert!(
            report.iter().any(|(_, _, valid)| !valid),
            "{:?}",
            report
                .iter()
                .map(|(c, ex, v)| format!(
                    "{} -> {} ({v})",
                    g.display_name(c.terminal),
                    ex.display(&g)
                ))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn prefix_recognition_basics() {
        let (g, _auto) = dangling_else();
        let ifs = g.symbol_named("if").unwrap();
        let e = g.symbol_named("e").unwrap();
        let then = g.symbol_named("then").unwrap();
        let els = g.symbol_named("else").unwrap();
        assert!(prefix_recognized(&g, &[ifs]));
        assert!(prefix_recognized(&g, &[ifs, e, then]));
        assert!(!prefix_recognized(&g, &[els]));
        assert!(!prefix_recognized(&g, &[then, ifs]));
    }
}
