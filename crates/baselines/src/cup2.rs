//! CUP2-style conflict reports: "the shortest path to the conflict state"
//! (§8), with no lookahead reasoning and no derivations. Kept as the
//! weakest baseline: its reports are never *wrong* about reachability but
//! explain nothing about the conflict itself.

use std::collections::{HashMap, VecDeque};

use lalrcex_grammar::{Grammar, SymbolId};
use lalrcex_lr::{Automaton, Conflict, StateId};

/// A CUP2-style report: the symbols of a shortest path to the conflict
/// state.
#[derive(Clone, Debug)]
pub struct Cup2Report {
    /// The state the conflict occurs in.
    pub state: StateId,
    /// Symbols of a shortest path from the start state.
    pub path: Vec<SymbolId>,
}

impl Cup2Report {
    /// Renders like `shortest path to state 10: if expr then stmt`.
    pub fn display(&self, g: &Grammar) -> String {
        format!(
            "shortest path to state {}: {}",
            self.state.index(),
            g.format_symbols(&self.path)
        )
    }
}

/// Computes the CUP2-style report for a conflict.
pub fn report(g: &Grammar, auto: &Automaton, conflict: &Conflict) -> Cup2Report {
    let _ = g;
    let mut prev: HashMap<StateId, (StateId, SymbolId)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(StateId::START);
    'bfs: while let Some(s) = queue.pop_front() {
        for &(sym, t) in auto.state(s).transitions() {
            if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(t) {
                e.insert((s, sym));
                if t == conflict.state {
                    break 'bfs;
                }
                queue.push_back(t);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = conflict.state;
    while cur != StateId::START {
        let (p, sym) = prev[&cur];
        path.push(sym);
        cur = p;
    }
    path.reverse();
    Cup2Report {
        state: conflict.state,
        path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::Grammar;
    use lalrcex_lr::Automaton;

    #[test]
    fn shortest_path_reaches_conflict_state() {
        let g = Grammar::parse("%% s : 'if' e 'then' s 'else' s | 'if' e 'then' s | X ; e : Y ;")
            .unwrap();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let c = &tables.conflicts()[0];
        let r = report(&g, &auto, c);
        assert_eq!(g.format_symbols(&r.path), "if e then s");
        // Walking the path really lands in the conflict state.
        let mut s = StateId::START;
        for &sym in &r.path {
            s = auto.state(s).transition(sym).unwrap();
        }
        assert_eq!(s, c.state);
        assert!(r.display(&g).contains("shortest path"));
    }
}
