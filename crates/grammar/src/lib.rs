//! Context-free grammar representation and analyses.
//!
//! This crate is the foundation of the `lalrcex` toolkit, a reproduction of
//! *Finding Counterexamples from Parsing Conflicts* (Isradisaikul & Myers,
//! PLDI 2015). It provides:
//!
//! * [`Grammar`] — an immutable, interned context-free grammar with an
//!   augmented start production, built through [`GrammarBuilder`] or parsed
//!   from a yacc-like DSL with [`Grammar::parse`].
//! * [`TerminalSet`] — a dense bitset over the grammar's terminals, the
//!   representation used for lookahead sets throughout the toolkit.
//! * [`Analysis`] — nullable / FIRST / FOLLOW / reachability / productivity
//!   and minimal-derivation tables computed by fixpoint iteration.
//! * [`Derivation`] — partial derivation trees (nonterminal leaves may be
//!   left unexpanded), the data carried by parser-conflict counterexamples.
//!
//! # Example
//!
//! ```
//! use lalrcex_grammar::Grammar;
//!
//! let g = Grammar::parse(
//!     "%start e
//!      %%
//!      e : e '+' e | NUM ;",
//! )?;
//! assert_eq!(g.nonterminal_count(), 2); // e and the augmented start
//! assert!(g.symbol_named("NUM").is_some());
//! # Ok::<(), lalrcex_grammar::GrammarError>(())
//! ```

#![forbid(unsafe_code)]

mod analysis;
mod derivation;
mod grammar;
mod symbol;
mod text;

pub use analysis::Analysis;
pub use derivation::{
    derive_seq_starting_with, derive_starting_with, eps_derivation, flat_all, Derivation,
};
pub use grammar::{
    Assoc, Grammar, GrammarBuilder, GrammarError, Precedence, ProdId, Production, MAX_PRODUCTIONS,
    MAX_RHS_SYMBOLS,
};
pub use symbol::{SymbolId, SymbolKind, TerminalSet};
