//! Symbol identifiers and terminal bitsets.

use std::fmt;

/// Identifies a grammar symbol (terminal or nonterminal).
///
/// Symbol ids are dense indices into the owning [`Grammar`](crate::Grammar)'s
/// symbol table; they are only meaningful together with that grammar.
/// The end-of-input terminal is always [`SymbolId::EOF`], and the augmented
/// start nonterminal is created by the builder.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub(crate) u32);

impl SymbolId {
    /// The end-of-input marker, spelled `$end` (displayed as `$`).
    /// It is the first symbol of every grammar.
    pub const EOF: SymbolId = SymbolId(0);

    /// Raw dense index of this symbol in the grammar's symbol table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol id from a raw index previously obtained from
    /// [`SymbolId::index`]. The index must identify a symbol of the grammar
    /// it is used with.
    pub fn from_index(index: usize) -> SymbolId {
        SymbolId(index as u32)
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Whether a symbol is a terminal or a nonterminal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SymbolKind {
    /// A token of the input alphabet.
    Terminal,
    /// A symbol with productions.
    Nonterminal,
}

/// A set of terminals, stored as a dense bitset.
///
/// Lookahead sets — the workhorse of the PLDI'15 algorithm — are
/// `TerminalSet`s. The set is sized for a particular grammar (one bit per
/// terminal, indexed by the terminal's *dense terminal index*, not its
/// [`SymbolId`]); mixing sets from different grammars is a logic error.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TerminalSet {
    words: Box<[u64]>,
}

impl TerminalSet {
    /// Creates an empty set able to hold `nterminals` terminals.
    pub fn empty(nterminals: usize) -> TerminalSet {
        TerminalSet {
            words: vec![0u64; nterminals.div_ceil(64).max(1)].into_boxed_slice(),
        }
    }

    /// Creates a set containing a single terminal index.
    pub fn singleton(nterminals: usize, tindex: usize) -> TerminalSet {
        let mut s = TerminalSet::empty(nterminals);
        s.insert(tindex);
        s
    }

    /// Inserts terminal index `tindex`; returns `true` if it was absent.
    ///
    /// # Panics
    ///
    /// Panics if `tindex` is out of range for this set.
    pub fn insert(&mut self, tindex: usize) -> bool {
        let w = &mut self.words[tindex / 64];
        let bit = 1u64 << (tindex % 64);
        let added = *w & bit == 0;
        *w |= bit;
        added
    }

    /// Tests membership of terminal index `tindex`.
    pub fn contains(&self, tindex: usize) -> bool {
        self.words
            .get(tindex / 64)
            .is_some_and(|w| w & (1u64 << (tindex % 64)) != 0)
    }

    /// Adds every element of `other`; returns `true` if `self` grew.
    pub fn union_with(&mut self, other: &TerminalSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        let mut grew = false;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let merged = *a | *b;
            grew |= merged != *a;
            *a = merged;
        }
        grew
    }

    /// Keeps only elements also in `other`.
    pub fn intersect_with(&mut self, other: &TerminalSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// Returns `true` if the sets share at least one element.
    pub fn intersects(&self, other: &TerminalSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if no terminal is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of terminals in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the terminal indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(i * 64 + bit)
                }
            })
        })
    }
}

impl fmt::Debug for TerminalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = TerminalSet::empty(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn insert_and_contains_across_word_boundary() {
        let mut s = TerminalSet::empty(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn union_reports_growth() {
        let mut a = TerminalSet::empty(10);
        let mut b = TerminalSet::empty(10);
        a.insert(1);
        b.insert(2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.contains(1) && a.contains(2));
    }

    #[test]
    fn intersection() {
        let mut a = TerminalSet::empty(70);
        let mut b = TerminalSet::empty(70);
        a.insert(5);
        a.insert(65);
        b.insert(65);
        assert!(a.intersects(&b));
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![65]);
        let empty = TerminalSet::empty(70);
        assert!(!a.intersects(&empty));
    }

    #[test]
    fn singleton() {
        let s = TerminalSet::singleton(8, 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
    }

    #[test]
    fn zero_capacity_set_is_usable() {
        let s = TerminalSet::empty(0);
        assert!(s.is_empty());
    }
}
