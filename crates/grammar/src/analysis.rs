//! Classic grammar analyses: nullable, FIRST, FOLLOW, reachability,
//! productivity, and minimal-derivation tables.
//!
//! All analyses are computed eagerly by fixpoint iteration when an
//! [`Analysis`] is constructed; queries are O(1) afterwards.

use crate::grammar::{Grammar, ProdId};
use crate::symbol::{SymbolId, SymbolKind, TerminalSet};

/// Cost of a derivation that does not exist.
pub(crate) const INFINITE: u64 = u64::MAX / 4;

/// Precomputed analyses for one [`Grammar`].
///
/// # Example
///
/// ```
/// use lalrcex_grammar::{Grammar, Analysis};
///
/// let g = Grammar::parse("%%  s : A s | ;")?;
/// let a = Analysis::new(&g);
/// let s = g.symbol_named("s").unwrap();
/// assert!(a.nullable(s));
/// assert!(a.first(s).contains(g.tindex(g.symbol_named("A").unwrap())));
/// # Ok::<(), lalrcex_grammar::GrammarError>(())
/// ```
pub struct Analysis {
    /// Per symbol id: derives ε? (Terminals: always `false`.)
    nullable: Vec<bool>,
    /// Per symbol id: FIRST set (terminals: singleton of themselves).
    first: Vec<TerminalSet>,
    /// Per nonterminal dense index: FOLLOW set.
    follow: Vec<TerminalSet>,
    /// Per symbol id: reachable from the start symbol?
    reachable: Vec<bool>,
    /// Per symbol id: derives at least one terminal string?
    productive: Vec<bool>,
    /// Per symbol id: minimal length of a derivable terminal string
    /// ([`INFINITE`] when unproductive).
    min_len: Vec<u64>,
    /// Per nonterminal dense index: cost (node count) of the cheapest
    /// ε-derivation, [`INFINITE`] if not nullable.
    pub(crate) eps_cost: Vec<u64>,
    /// Per nonterminal dense index: production achieving `eps_cost`.
    pub(crate) eps_prod: Vec<Option<ProdId>>,
}

impl Analysis {
    /// Computes every analysis for `g`.
    pub fn new(g: &Grammar) -> Analysis {
        let nterm = g.terminal_count();
        let nnont = g.nonterminal_count();
        let nsym = g.symbol_count();

        // Nullability, indexed by symbol id (terminals stay false).
        let mut nullable = vec![false; nsym];
        loop {
            let mut changed = false;
            for p in g.productions() {
                let lhs = p.lhs().index();
                if nullable[lhs] {
                    continue;
                }
                if p.rhs().iter().all(|&s| nullable[s.index()]) {
                    nullable[lhs] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // FIRST sets.
        let mut first: Vec<TerminalSet> = (0..nsym)
            .map(|i| {
                let sym = SymbolId::from_index(i);
                if g.kind(sym) == SymbolKind::Terminal {
                    TerminalSet::singleton(nterm, g.tindex(sym))
                } else {
                    TerminalSet::empty(nterm)
                }
            })
            .collect();
        loop {
            let mut changed = false;
            for p in g.productions() {
                let lhs = p.lhs().index();
                for &s in p.rhs() {
                    let snap = first[s.index()].clone();
                    changed |= first[lhs].union_with(&snap);
                    if !nullable[s.index()] {
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // FOLLOW sets. FOLLOW($accept) = {$end}.
        let mut follow: Vec<TerminalSet> = vec![TerminalSet::empty(nterm); nnont];
        follow[g.ntindex(g.accept())].insert(g.tindex(SymbolId::EOF));
        loop {
            let mut changed = false;
            for p in g.productions() {
                let lhs_nt = g.ntindex(p.lhs());
                let rhs = p.rhs();
                for (i, &s) in rhs.iter().enumerate() {
                    if g.kind(s) != SymbolKind::Nonterminal {
                        continue;
                    }
                    let nt = g.ntindex(s);
                    // FOLLOW(s) ⊇ FIRST(rest); if rest nullable, ⊇ FOLLOW(lhs).
                    let mut rest_nullable = true;
                    for &r in &rhs[i + 1..] {
                        let snap = first[r.index()].clone();
                        changed |= follow[nt].union_with(&snap);
                        if !nullable[r.index()] {
                            rest_nullable = false;
                            break;
                        }
                    }
                    if rest_nullable {
                        let snap = follow[lhs_nt].clone();
                        changed |= follow[nt].union_with(&snap);
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Reachability from $accept.
        let mut reachable = vec![false; nsym];
        let mut stack = vec![g.accept()];
        reachable[g.accept().index()] = true;
        while let Some(s) = stack.pop() {
            if g.kind(s) != SymbolKind::Nonterminal {
                continue;
            }
            for &pid in g.prods_of(s) {
                for &r in g.prod(pid).rhs() {
                    if !reachable[r.index()] {
                        reachable[r.index()] = true;
                        stack.push(r);
                    }
                }
            }
        }

        // Minimal terminal-string length per symbol (productivity).
        let mut min_len = vec![INFINITE; nsym];
        for t in 0..nterm {
            min_len[g.terminal(t).index()] = 1;
        }
        loop {
            let mut changed = false;
            for p in g.productions() {
                let total: u64 = p
                    .rhs()
                    .iter()
                    .map(|&s| min_len[s.index()])
                    .fold(0u64, |a, b| a.saturating_add(b))
                    .min(INFINITE);
                let lhs = p.lhs().index();
                if total < min_len[lhs] {
                    min_len[lhs] = total;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let productive: Vec<bool> = min_len.iter().map(|&l| l < INFINITE).collect();

        // Cheapest ε-derivation per nonterminal (node count).
        let mut eps_cost = vec![INFINITE; nnont];
        let mut eps_prod: Vec<Option<ProdId>> = vec![None; nnont];
        loop {
            let mut changed = false;
            for pid in g.prod_ids() {
                let p = g.prod(pid);
                let nt = g.ntindex(p.lhs());
                let mut total: u64 = 1;
                let mut ok = true;
                for &s in p.rhs() {
                    if g.kind(s) == SymbolKind::Nonterminal {
                        total = total.saturating_add(eps_cost[g.ntindex(s)]);
                    } else {
                        ok = false;
                        break;
                    }
                }
                if ok && total < eps_cost[nt] {
                    eps_cost[nt] = total;
                    eps_prod[nt] = Some(pid);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        Analysis {
            nullable,
            first,
            follow,
            reachable,
            productive,
            min_len,
            eps_cost,
            eps_prod,
        }
    }

    /// `true` if `sym` derives the empty string (terminals never do).
    pub fn nullable(&self, sym: SymbolId) -> bool {
        self.nullable[sym.index()]
    }

    /// FIRST set of a symbol (for a terminal: the singleton set of itself).
    pub fn first(&self, sym: SymbolId) -> &TerminalSet {
        &self.first[sym.index()]
    }

    /// FOLLOW set of a nonterminal.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is a terminal.
    pub fn follow(&self, g: &Grammar, sym: SymbolId) -> &TerminalSet {
        &self.follow[g.ntindex(sym)]
    }

    /// `true` if `sym` is reachable from the start symbol.
    pub fn reachable(&self, sym: SymbolId) -> bool {
        self.reachable[sym.index()]
    }

    /// `true` if `sym` derives at least one terminal string.
    pub fn productive(&self, sym: SymbolId) -> bool {
        self.productive[sym.index()]
    }

    /// Minimal length of a terminal string derivable from `sym`, or `None`
    /// if `sym` is unproductive.
    pub fn min_sentence_len(&self, sym: SymbolId) -> Option<u64> {
        let l = self.min_len[sym.index()];
        (l < INFINITE).then_some(l)
    }

    /// `true` if every symbol of `seq` is nullable.
    pub fn seq_nullable(&self, _g: &Grammar, seq: &[SymbolId]) -> bool {
        seq.iter().all(|&s| self.nullable[s.index()])
    }

    /// FIRST of a sentential suffix: `FIRST(seq)`, unioned with `tail` when
    /// the whole of `seq` is nullable. This is the paper's
    /// `followL` building block (§4).
    pub fn first_of_seq(&self, g: &Grammar, seq: &[SymbolId], tail: &TerminalSet) -> TerminalSet {
        let mut out = TerminalSet::empty(g.terminal_count());
        for &s in seq {
            out.union_with(self.first(s));
            if !self.nullable[s.index()] {
                return out;
            }
        }
        out.union_with(tail);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    /// stmt-expr grammar from Figure 1 of the paper, slightly reduced.
    fn fig1ish() -> Grammar {
        let mut b = GrammarBuilder::new();
        b.start("stmt");
        b.rule("stmt", &["if", "expr", "then", "stmt", "else", "stmt"]);
        b.rule("stmt", &["if", "expr", "then", "stmt"]);
        b.rule("expr", &["num"]);
        b.rule("expr", &["expr", "+", "expr"]);
        b.rule("num", &["digit"]);
        b.rule("num", &["num", "digit"]);
        b.build().unwrap()
    }

    #[test]
    fn first_sets() {
        let g = fig1ish();
        let a = Analysis::new(&g);
        let expr = g.symbol_named("expr").unwrap();
        let num = g.symbol_named("num").unwrap();
        let digit = g.tindex(g.symbol_named("digit").unwrap());
        assert!(a.first(expr).contains(digit));
        assert!(a.first(num).contains(digit));
        assert_eq!(a.first(num).len(), 1);
        let stmt = g.symbol_named("stmt").unwrap();
        assert!(a
            .first(stmt)
            .contains(g.tindex(g.symbol_named("if").unwrap())));
        assert!(
            !a.first(stmt).contains(digit),
            "stmt cannot start with digit here"
        );
    }

    #[test]
    fn follow_sets() {
        let g = fig1ish();
        let a = Analysis::new(&g);
        let stmt = g.symbol_named("stmt").unwrap();
        let f = a.follow(&g, stmt);
        assert!(f.contains(g.tindex(SymbolId::EOF)));
        assert!(f.contains(g.tindex(g.symbol_named("else").unwrap())));
        let expr = g.symbol_named("expr").unwrap();
        let fe = a.follow(&g, expr);
        assert!(fe.contains(g.tindex(g.symbol_named("then").unwrap())));
        assert!(fe.contains(g.tindex(g.symbol_named("+").unwrap())));
    }

    #[test]
    fn nullable_and_eps_costs() {
        let mut b = GrammarBuilder::new();
        b.start("s");
        b.rule("s", &["a", "b"]);
        b.rule("a", &[]);
        b.rule("a", &["X", "a"]);
        b.rule("b", &["a"]);
        let g = b.build().unwrap();
        let a = Analysis::new(&g);
        let s = g.symbol_named("s").unwrap();
        let av = g.symbol_named("a").unwrap();
        assert!(a.nullable(s));
        assert!(a.nullable(av));
        assert!(!a.nullable(g.symbol_named("X").unwrap()));
        assert!(a.seq_nullable(&g, &[s, av]));
        assert_eq!(a.eps_cost[g.ntindex(av)], 1);
        // s -> a b (1 node), a -> ε (1), b -> a (1) -> ε (1)
        assert_eq!(a.eps_cost[g.ntindex(s)], 4);
    }

    #[test]
    fn unproductive_and_unreachable() {
        let mut b = GrammarBuilder::new();
        b.start("s");
        b.rule("s", &["A"]);
        b.rule("loop", &["loop", "A"]); // unproductive and unreachable
        let g = b.build().unwrap();
        let a = Analysis::new(&g);
        let lp = g.symbol_named("loop").unwrap();
        assert!(!a.productive(lp));
        assert!(!a.reachable(lp));
        assert_eq!(a.min_sentence_len(lp), None);
        let s = g.symbol_named("s").unwrap();
        assert!(a.productive(s));
        assert!(a.reachable(s));
        assert_eq!(a.min_sentence_len(s), Some(1));
    }

    #[test]
    fn min_sentence_lengths() {
        let g = fig1ish();
        let a = Analysis::new(&g);
        // fig1ish has only recursive stmt productions, so stmt is
        // unproductive (the full Figure 1 grammar adds base cases).
        let stmt = g.symbol_named("stmt").unwrap();
        assert_eq!(a.min_sentence_len(stmt), None);
        assert!(!a.productive(stmt));
        let num = g.symbol_named("num").unwrap();
        assert_eq!(a.min_sentence_len(num), Some(1));
        let expr = g.symbol_named("expr").unwrap();
        assert_eq!(a.min_sentence_len(expr), Some(1));
    }

    #[test]
    fn first_of_seq_respects_nullability() {
        let mut b = GrammarBuilder::new();
        b.start("s");
        b.rule("s", &["opt", "X"]);
        b.rule("opt", &[]);
        b.rule("opt", &["Y"]);
        let g = b.build().unwrap();
        let a = Analysis::new(&g);
        let opt = g.symbol_named("opt").unwrap();
        let x = g.symbol_named("X").unwrap();
        let tail = TerminalSet::singleton(g.terminal_count(), g.tindex(SymbolId::EOF));
        let f = a.first_of_seq(&g, &[opt, x], &tail);
        assert!(f.contains(g.tindex(g.symbol_named("Y").unwrap())));
        assert!(f.contains(g.tindex(x)));
        assert!(!f.contains(g.tindex(SymbolId::EOF)), "X not nullable");
        let f2 = a.first_of_seq(&g, &[opt], &tail);
        assert!(
            f2.contains(g.tindex(SymbolId::EOF)),
            "nullable seq exposes tail"
        );
    }
}
