//! A yacc-like grammar DSL.
//!
//! The evaluation corpus and the `lalrcex` CLI read grammars in a small
//! subset of yacc/CUP syntax:
//!
//! ```text
//! // comments: //, /* */, or #
//! %token IF THEN ELSE          // optional: names are classified by use
//! %left '+' '-'
//! %left '*' '/'
//! %nonassoc UMINUS
//! %start stmt
//! %%
//! stmt : IF expr THEN stmt ELSE stmt
//!      | IF expr THEN stmt
//!      ;
//! expr : NUM | expr '+' expr | '-' expr %prec UMINUS | %empty ;
//! ```
//!
//! As in yacc, any name that appears to the left of a `:` is a nonterminal
//! and every other name is a terminal; quoted literals are always terminals.

use crate::grammar::{Assoc, Grammar, GrammarBuilder, GrammarError};

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    /// A quoted literal — always a terminal.
    Quoted(String),
    Directive(String),
    Colon,
    Pipe,
    Semi,
    Section, // %%
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> GrammarError {
        GrammarError::Parse {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
            }
        }
        c
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), GrammarError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') => match self.src.get(self.pos + 1) {
                    Some(b'/') => {
                        while let Some(c) = self.bump() {
                            if c == b'\n' {
                                break;
                            }
                        }
                    }
                    Some(b'*') => {
                        let start_line = self.line;
                        self.bump();
                        self.bump();
                        loop {
                            match self.bump() {
                                Some(b'*') if self.peek() == Some(b'/') => {
                                    self.bump();
                                    break;
                                }
                                Some(_) => {}
                                None => {
                                    return Err(GrammarError::Parse {
                                        line: start_line,
                                        msg: "unterminated /* comment".into(),
                                    })
                                }
                            }
                        }
                    }
                    _ => return Ok(()),
                },
                _ => return Ok(()),
            }
        }
    }

    fn is_ident_byte(c: u8) -> bool {
        c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b'-' | b'\'')
    }

    fn next_tok(&mut self) -> Result<Option<(Tok, u32)>, GrammarError> {
        self.skip_trivia()?;
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'|' => {
                self.bump();
                Tok::Pipe
            }
            b';' => {
                self.bump();
                Tok::Semi
            }
            b'%' => {
                self.bump();
                if self.peek() == Some(b'%') {
                    self.bump();
                    Tok::Section
                } else {
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphabetic() {
                            self.bump();
                            name.push(c as char);
                        } else {
                            break;
                        }
                    }
                    if name.is_empty() {
                        return Err(self.err("expected directive name after `%`"));
                    }
                    Tok::Directive(name)
                }
            }
            b'\'' | b'"' => {
                let quote = c;
                self.bump();
                let mut name = String::new();
                loop {
                    match self.bump() {
                        Some(c) if c == quote => break,
                        Some(b'\\') => match self.bump() {
                            Some(c) => name.push(c as char),
                            None => return Err(self.err("unterminated literal")),
                        },
                        Some(c) => name.push(c as char),
                        None => return Err(self.err("unterminated literal")),
                    }
                }
                if name.is_empty() {
                    return Err(self.err("empty literal"));
                }
                Tok::Quoted(name)
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let mut name = String::new();
                while let Some(c) = self.peek() {
                    if Self::is_ident_byte(c) && c != b'\'' {
                        self.bump();
                        name.push(c as char);
                    } else {
                        break;
                    }
                }
                Tok::Ident(name)
            }
            other => {
                // Accept common punctuation as bare terminal names so that
                // grammars can write `e : e + e ;` without quotes.
                if b"+-*/=<>!&^~@?,.()[]{}".contains(&other) {
                    self.bump();
                    let mut name = (other as char).to_string();
                    // Greedily glue two-char operators like `:=`, `==`, `<=`.
                    if let Some(next) = self.peek() {
                        if next == b'=' && matches!(other, b'<' | b'>' | b'!' | b'=') {
                            self.bump();
                            name.push('=');
                        }
                    }
                    Tok::Ident(name)
                } else {
                    return Err(self.err(format!("unexpected character `{}`", other as char)));
                }
            }
        };
        Ok(Some((tok, line)))
    }
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    /// Line of the *next* token (clamped to the last token at EOF).
    fn peek_line(&self) -> u32 {
        self.line()
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> GrammarError {
        GrammarError::Parse {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, GrammarError> {
        match self.bump() {
            Some(Tok::Ident(s)) | Some(Tok::Quoted(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }
}

/// Parses the DSL text into a builder (exposed for tooling that wants to
/// post-process rules before building).
pub fn parse_into_builder(text: &str) -> Result<GrammarBuilder, GrammarError> {
    let mut lex = Lexer::new(text);
    let mut toks = Vec::new();
    while let Some(t) = lex.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser { toks, pos: 0 };
    let mut b = GrammarBuilder::new();

    // Declarations.
    loop {
        match p.peek() {
            Some(Tok::Section) => {
                p.bump();
                break;
            }
            Some(Tok::Directive(_)) => {
                let decl_line = p.peek_line();
                let Some(Tok::Directive(d)) = p.bump() else {
                    return Err(p.err("internal: directive token vanished between peek and bump"));
                };
                match d.as_str() {
                    "token" | "term" => {
                        while matches!(p.peek(), Some(Tok::Ident(_) | Tok::Quoted(_))) {
                            let name_line = p.peek_line();
                            let (Some(Tok::Ident(name)) | Some(Tok::Quoted(name))) = p.bump()
                            else {
                                return Err(
                                    p.err("internal: name token vanished between peek and bump")
                                );
                            };
                            b.token_at(&name, name_line);
                        }
                    }
                    "left" | "right" | "nonassoc" => {
                        let assoc = match d.as_str() {
                            "left" => Assoc::Left,
                            "right" => Assoc::Right,
                            _ => Assoc::Nonassoc,
                        };
                        let mut names = Vec::new();
                        while matches!(p.peek(), Some(Tok::Ident(_) | Tok::Quoted(_))) {
                            let (Some(Tok::Ident(name)) | Some(Tok::Quoted(name))) = p.bump()
                            else {
                                return Err(
                                    p.err("internal: name token vanished between peek and bump")
                                );
                            };
                            names.push(name);
                        }
                        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                        b.prec_level_at(assoc, &refs, decl_line);
                    }
                    "start" => {
                        let name = p.expect_ident("start symbol")?;
                        b.start(&name);
                    }
                    other => return Err(p.err(format!("unknown directive `%{other}`"))),
                }
            }
            Some(other) => {
                return Err(p.err(format!("expected declaration or `%%`, found {other:?}")))
            }
            None => return Err(p.err("missing `%%` separator")),
        }
    }

    // Rules.
    while let Some(tok) = p.peek() {
        let lhs_line = p.peek_line();
        let Tok::Ident(_) = tok else {
            return Err(p.err(format!("expected rule name, found {tok:?}")));
        };
        let Some(Tok::Ident(lhs)) = p.bump() else {
            return Err(p.err("internal: rule-name token vanished between peek and bump"));
        };
        match p.bump() {
            Some(Tok::Colon) => {}
            other => return Err(p.err(format!("expected `:` after rule name, found {other:?}"))),
        }
        let mut first_alt = true;
        loop {
            // One alternative. Its span is the line of its first token (the
            // rule head for the first alternative, so that `x : A | B ;`
            // written on one line points at the rule).
            let alt_line = if first_alt { lhs_line } else { p.peek_line() };
            first_alt = false;
            let mut rhs: Vec<String> = Vec::new();
            let mut prec: Option<String> = None;
            loop {
                match p.peek() {
                    Some(Tok::Ident(_)) => {
                        let Some(Tok::Ident(s)) = p.bump() else {
                            return Err(
                                p.err("internal: symbol token vanished between peek and bump")
                            );
                        };
                        rhs.push(s);
                    }
                    Some(Tok::Quoted(_)) => {
                        let quoted_line = p.peek_line();
                        let Some(Tok::Quoted(s)) = p.bump() else {
                            return Err(
                                p.err("internal: quoted token vanished between peek and bump")
                            );
                        };
                        // Quoted literals are always terminals; declaring
                        // them surfaces accidental collisions with
                        // nonterminal names as TokenOnLhs errors.
                        b.token_at(&s, quoted_line);
                        rhs.push(s);
                    }
                    Some(Tok::Directive(d)) if d == "empty" => {
                        p.bump();
                    }
                    Some(Tok::Directive(d)) if d == "prec" => {
                        p.bump();
                        prec = Some(p.expect_ident("terminal after %prec")?);
                    }
                    _ => break,
                }
            }
            let refs: Vec<&str> = rhs.iter().map(String::as_str).collect();
            match prec {
                Some(ps) => {
                    b.rule_prec_at(&lhs, &refs, &ps, alt_line);
                }
                None => {
                    b.rule_at(&lhs, &refs, alt_line);
                }
            }
            match p.bump() {
                Some(Tok::Pipe) => continue,
                Some(Tok::Semi) => break,
                other => return Err(p.err(format!("expected `|` or `;` in rule, found {other:?}"))),
            }
        }
    }
    Ok(b)
}

impl Grammar {
    /// Parses a grammar from the yacc-like DSL described in
    /// [the module docs](crate::Grammar#impl-Grammar).
    ///
    /// # Errors
    ///
    /// Returns [`GrammarError::Parse`] with a line number for syntax errors,
    /// or the other [`GrammarError`] variants for semantic problems.
    ///
    /// # Example
    ///
    /// ```
    /// use lalrcex_grammar::Grammar;
    ///
    /// let g = Grammar::parse("%% s : s A | A ;")?;
    /// assert_eq!(g.prod_count(), 3);
    /// # Ok::<(), lalrcex_grammar::GrammarError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Grammar, GrammarError> {
        parse_into_builder(text)?.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Precedence;

    #[test]
    fn parses_figure1_grammar() {
        let g = Grammar::parse(
            "// Figure 1 of the paper
             %start stmt
             %%
             stmt : 'if' expr 'then' stmt 'else' stmt
                  | 'if' expr 'then' stmt
                  | expr '?' stmt stmt
                  | 'arr' '[' expr ']' ':=' expr
                  ;
             expr : num | expr '+' expr ;
             num  : digit | num digit ;",
        )
        .unwrap();
        assert_eq!(g.prod_count(), 9, "8 rules + augmented start");
        assert_eq!(g.nonterminal_count(), 4); // $accept stmt expr num
        assert!(g.is_terminal(g.symbol_named("digit").unwrap()));
    }

    #[test]
    fn precedence_directives() {
        let g = Grammar::parse(
            "%left '+' '-'
             %left '*'
             %nonassoc EQ
             %start e
             %%
             e : e '+' e | e '*' e | e EQ e | ID ;",
        )
        .unwrap();
        let plus = g.terminal_prec(g.symbol_named("+").unwrap()).unwrap();
        let star = g.terminal_prec(g.symbol_named("*").unwrap()).unwrap();
        let eq = g.terminal_prec(g.symbol_named("EQ").unwrap()).unwrap();
        assert!(star.level > plus.level);
        assert!(eq.level > star.level);
        assert_eq!(eq.assoc, Assoc::Nonassoc);
    }

    #[test]
    fn explicit_prec_on_rule() {
        let g = Grammar::parse(
            "%right UMINUS
             %%
             e : '-' e %prec UMINUS | NUM ;",
        )
        .unwrap();
        let e = g.symbol_named("e").unwrap();
        let p = g.prod(g.prods_of(e)[0]);
        assert_eq!(
            p.precedence(),
            Some(Precedence {
                level: 1,
                assoc: Assoc::Right
            })
        );
    }

    #[test]
    fn empty_alternatives() {
        let g = Grammar::parse("%% s : A s | %empty ; t : ;").unwrap();
        let s = g.symbol_named("s").unwrap();
        assert!(g.prod(g.prods_of(s)[1]).rhs().is_empty());
    }

    #[test]
    fn bare_operators_without_quotes() {
        let g = Grammar::parse("%% e : e + e | e <= e | ( e ) | NUM ;").unwrap();
        assert!(g.symbol_named("+").is_some());
        assert!(g.symbol_named("<=").is_some());
        assert!(g.symbol_named("(").is_some());
    }

    #[test]
    fn comments_all_styles() {
        let g = Grammar::parse(
            "# hash comment
             // slashes
             /* block
                comment */
             %% s : A ;",
        )
        .unwrap();
        assert_eq!(g.prod_count(), 2);
    }

    #[test]
    fn error_reports_line() {
        let err = Grammar::parse("%start s\n%%\ns : A\n").unwrap_err();
        match err {
            GrammarError::Parse { line, .. } => assert!(line >= 3, "line was {line}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn productions_carry_source_lines() {
        let g = Grammar::parse(
            "%token A B\n\
             %left '+'\n\
             %start s\n\
             %%\n\
             s : A s\n\
               | B\n\
               | %empty\n\
               ;\n\
             t : '+' ;\n",
        )
        .unwrap();
        let s = g.symbol_named("s").unwrap();
        let lines: Vec<Option<u32>> = g
            .prods_of(s)
            .iter()
            .map(|&pid| g.prod(pid).line())
            .collect();
        assert_eq!(lines, vec![Some(5), Some(6), Some(7)]);
        let t = g.symbol_named("t").unwrap();
        assert_eq!(g.prod(g.prods_of(t)[0]).line(), Some(9));
        // The augmented production has no source location.
        assert_eq!(g.prod(g.accept_prod()).line(), None);
    }

    #[test]
    fn declarations_carry_source_lines() {
        let g = Grammar::parse(
            "%token A B\n\
             %left '+' '-'\n\
             %%\n\
             s : A '+' s | B ;\n",
        )
        .unwrap();
        assert_eq!(g.decl_line(g.symbol_named("A").unwrap()), Some(1));
        assert_eq!(g.decl_line(g.symbol_named("B").unwrap()), Some(1));
        assert_eq!(g.decl_line(g.symbol_named("+").unwrap()), Some(2));
        assert_eq!(g.decl_line(g.symbol_named("-").unwrap()), Some(2));
        // Nonterminals point at their first producing rule.
        assert_eq!(g.decl_line(g.symbol_named("s").unwrap()), Some(4));
        assert_eq!(g.decl_line(crate::SymbolId::EOF), None);
    }

    #[test]
    fn unknown_directive_is_error() {
        assert!(matches!(
            Grammar::parse("%frobnicate\n%% s : A ;"),
            Err(GrammarError::Parse { .. })
        ));
    }

    #[test]
    fn missing_section_is_error() {
        assert!(matches!(
            Grammar::parse("%start s"),
            Err(GrammarError::Parse { .. })
        ));
    }

    #[test]
    fn unterminated_block_comment() {
        assert!(matches!(
            Grammar::parse("/* oops\n%% s : A ;"),
            Err(GrammarError::Parse { .. })
        ));
    }
}
