//! Grammar construction and immutable grammar representation.

use std::collections::HashMap;
use std::fmt;

use crate::symbol::{SymbolId, SymbolKind};

/// Identifies a production of a [`Grammar`].
///
/// Production 0 is always the augmented start production
/// `$accept -> <start>`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProdId(pub(crate) u32);

impl ProdId {
    /// Dense index of this production in [`Grammar::productions`].
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a production id from a raw index previously obtained
    /// from [`ProdId::index`].
    pub fn from_index(index: usize) -> ProdId {
        ProdId(index as u32)
    }
}

impl fmt::Debug for ProdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prod#{}", self.0)
    }
}

/// Operator associativity, used for conflict resolution (§2.4 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Assoc {
    /// `%left` — the reduction wins a same-precedence shift/reduce conflict.
    Left,
    /// `%right` — the shift wins.
    Right,
    /// `%nonassoc` — same-precedence conflicts become syntax errors.
    Nonassoc,
}

/// A precedence level with associativity.
///
/// Higher `level` binds tighter. Two terminals declared on the same
/// `%left`/`%right`/`%nonassoc` line share a level.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Precedence {
    /// Binding strength; larger wins.
    pub level: u16,
    /// Associativity used to break same-level shift/reduce ties.
    pub assoc: Assoc,
}

/// A single production `lhs -> rhs[0] rhs[1] ...`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Production {
    pub(crate) lhs: SymbolId,
    pub(crate) rhs: Vec<SymbolId>,
    pub(crate) prec: Option<Precedence>,
    /// Source line of the alternative in the grammar DSL (`0` = unknown,
    /// e.g. a builder-constructed grammar without location info).
    pub(crate) line: u32,
}

impl Production {
    /// The left-hand-side nonterminal.
    pub fn lhs(&self) -> SymbolId {
        self.lhs
    }

    /// The right-hand-side symbols (empty for an ε-production).
    pub fn rhs(&self) -> &[SymbolId] {
        &self.rhs
    }

    /// The production's precedence: an explicit `%prec`, or inherited from
    /// the last terminal of the right-hand side.
    pub fn precedence(&self) -> Option<Precedence> {
        self.prec
    }

    /// The source line of this production in the grammar DSL, when known.
    ///
    /// Populated by [`Grammar::parse`] (and [`GrammarBuilder::rule_at`]);
    /// `None` for rules added without location info.
    pub fn line(&self) -> Option<u32> {
        (self.line != 0).then_some(self.line)
    }
}

struct SymbolInfo {
    name: String,
    kind: SymbolKind,
    /// Terminal index or nonterminal index, depending on `kind`.
    dense: u32,
    prec: Option<Precedence>,
    /// Line of the symbol's declaration (`%token` / `%left` / … for
    /// terminals, first producing rule for nonterminals); `0` = unknown.
    decl_line: u32,
}

/// Errors from building or parsing a grammar.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GrammarError {
    /// No `%start` was given and no production exists to infer one from.
    NoStartSymbol,
    /// The start symbol has no productions (it would be a terminal).
    StartIsTerminal(String),
    /// A declared `%token` appeared on the left of a rule.
    TokenOnLhs(String),
    /// A `%prec` referred to a symbol that is not a terminal with declared
    /// precedence.
    BadPrecSymbol(String),
    /// The grammar DSL text was malformed; carries a line number and message.
    Parse { line: u32, msg: String },
    /// A name was declared twice with conflicting roles.
    DuplicateDecl(String),
    /// A structural limit was exceeded. The caps ([`MAX_PRODUCTIONS`],
    /// [`MAX_RHS_SYMBOLS`]) are far beyond any real grammar (Table 1's
    /// largest row has about a thousand productions) and exist so
    /// pathological or fuzzed inputs fail with a structured error instead
    /// of driving the downstream automaton construction into memory
    /// exhaustion.
    Limit {
        /// Which structural quantity overflowed.
        what: &'static str,
        /// The enforced cap.
        limit: usize,
        /// The offending value.
        actual: usize,
    },
}

/// Maximum number of productions a grammar may declare (the augmented
/// `$accept` production does not count). See [`GrammarError::Limit`].
pub const MAX_PRODUCTIONS: usize = 65_536;

/// Maximum number of symbols on one production's right-hand side.
/// See [`GrammarError::Limit`].
pub const MAX_RHS_SYMBOLS: usize = 4_096;

impl fmt::Display for GrammarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarError::NoStartSymbol => write!(f, "grammar has no start symbol"),
            GrammarError::StartIsTerminal(s) => {
                write!(f, "start symbol `{s}` has no productions")
            }
            GrammarError::TokenOnLhs(s) => {
                write!(
                    f,
                    "declared token `{s}` appears on the left-hand side of a rule"
                )
            }
            GrammarError::BadPrecSymbol(s) => {
                write!(
                    f,
                    "`%prec {s}` does not name a terminal with declared precedence"
                )
            }
            GrammarError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GrammarError::DuplicateDecl(s) => write!(f, "symbol `{s}` declared twice"),
            GrammarError::Limit {
                what,
                limit,
                actual,
            } => write!(f, "grammar exceeds the {what} limit: {actual} > {limit}"),
        }
    }
}

impl std::error::Error for GrammarError {}

/// An immutable context-free grammar with interned symbols.
///
/// Construct one with [`GrammarBuilder`] or [`Grammar::parse`]. The grammar
/// is *augmented*: a fresh start symbol `$accept` with the single production
/// `$accept -> start` is production 0, and the end-of-input terminal `$end`
/// is [`SymbolId::EOF`].
pub struct Grammar {
    symbols: Vec<SymbolInfo>,
    by_name: HashMap<String, SymbolId>,
    productions: Vec<Production>,
    /// Productions of each nonterminal, indexed by nonterminal dense index.
    prods_of: Vec<Vec<ProdId>>,
    terminals: Vec<SymbolId>,
    nonterminals: Vec<SymbolId>,
    start: SymbolId,
    accept: SymbolId,
}

impl Grammar {
    /// Looks up a symbol by its name.
    pub fn symbol_named(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// The name of a symbol. `$end` and `$accept` are internal names; see
    /// [`Grammar::display_name`] for user-facing output.
    pub fn name(&self, sym: SymbolId) -> &str {
        &self.symbols[sym.index()].name
    }

    /// User-facing name: `$end` is shown as `$`.
    pub fn display_name(&self, sym: SymbolId) -> &str {
        if sym == SymbolId::EOF {
            "$"
        } else {
            self.name(sym)
        }
    }

    /// The kind (terminal / nonterminal) of a symbol.
    pub fn kind(&self, sym: SymbolId) -> SymbolKind {
        self.symbols[sym.index()].kind
    }

    /// `true` if `sym` is a terminal.
    pub fn is_terminal(&self, sym: SymbolId) -> bool {
        self.kind(sym) == SymbolKind::Terminal
    }

    /// `true` if `sym` is a nonterminal.
    pub fn is_nonterminal(&self, sym: SymbolId) -> bool {
        self.kind(sym) == SymbolKind::Nonterminal
    }

    /// Number of terminals, including `$end`.
    pub fn terminal_count(&self) -> usize {
        self.terminals.len()
    }

    /// Number of nonterminals, including `$accept`.
    pub fn nonterminal_count(&self) -> usize {
        self.nonterminals.len()
    }

    /// Total number of symbols.
    pub fn symbol_count(&self) -> usize {
        self.symbols.len()
    }

    /// Iterates over all symbols in id order.
    pub fn symbols(&self) -> impl Iterator<Item = SymbolId> + '_ {
        (0..self.symbols.len() as u32).map(SymbolId)
    }

    /// Dense terminal index of a terminal symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is a nonterminal.
    pub fn tindex(&self, sym: SymbolId) -> usize {
        debug_assert!(self.is_terminal(sym), "tindex of nonterminal");
        self.symbols[sym.index()].dense as usize
    }

    /// Dense nonterminal index of a nonterminal symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is a terminal.
    pub fn ntindex(&self, sym: SymbolId) -> usize {
        debug_assert!(self.is_nonterminal(sym), "ntindex of terminal");
        self.symbols[sym.index()].dense as usize
    }

    /// The terminal with dense index `tindex`.
    pub fn terminal(&self, tindex: usize) -> SymbolId {
        self.terminals[tindex]
    }

    /// The nonterminal with dense index `ntindex`.
    pub fn nonterminal(&self, ntindex: usize) -> SymbolId {
        self.nonterminals[ntindex]
    }

    /// All productions; index with [`ProdId::index`].
    pub fn productions(&self) -> &[Production] {
        &self.productions
    }

    /// Number of productions, including the augmented start production.
    pub fn prod_count(&self) -> usize {
        self.productions.len()
    }

    /// A production by id.
    pub fn prod(&self, id: ProdId) -> &Production {
        &self.productions[id.index()]
    }

    /// Iterates over all production ids.
    pub fn prod_ids(&self) -> impl Iterator<Item = ProdId> + '_ {
        (0..self.productions.len() as u32).map(ProdId)
    }

    /// Production ids of a nonterminal.
    pub fn prods_of(&self, nonterminal: SymbolId) -> &[ProdId] {
        &self.prods_of[self.ntindex(nonterminal)]
    }

    /// The user start symbol (right-hand side of the augmented production).
    pub fn start(&self) -> SymbolId {
        self.start
    }

    /// The augmented start symbol `$accept`.
    pub fn accept(&self) -> SymbolId {
        self.accept
    }

    /// The augmented start production `$accept -> start`.
    pub fn accept_prod(&self) -> ProdId {
        ProdId(0)
    }

    /// Declared precedence of a terminal, if any.
    pub fn terminal_prec(&self, sym: SymbolId) -> Option<Precedence> {
        self.symbols[sym.index()].prec
    }

    /// Source line of the symbol's declaration, when known: the
    /// `%token`/`%left`/`%right`/`%nonassoc` line for declared terminals,
    /// the first producing rule for nonterminals, or the first use
    /// otherwise.
    pub fn decl_line(&self, sym: SymbolId) -> Option<u32> {
        let l = self.symbols[sym.index()].decl_line;
        (l != 0).then_some(l)
    }

    /// Formats a sequence of symbols as a space-separated string.
    pub fn format_symbols(&self, syms: &[SymbolId]) -> String {
        syms.iter()
            .map(|&s| self.display_name(s))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Formats a production like `stmt -> IF expr THEN stmt`.
    pub fn format_prod(&self, id: ProdId) -> String {
        let p = self.prod(id);
        if p.rhs.is_empty() {
            format!("{} -> <empty>", self.display_name(p.lhs))
        } else {
            format!(
                "{} -> {}",
                self.display_name(p.lhs),
                self.format_symbols(&p.rhs)
            )
        }
    }
}

impl fmt::Debug for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Grammar")
            .field("terminals", &self.terminal_count())
            .field("nonterminals", &self.nonterminal_count())
            .field("productions", &self.prod_count())
            .field("start", &self.name(self.start))
            .finish()
    }
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for id in self.prod_ids().skip(1) {
            writeln!(f, "{}", self.format_prod(id))?;
        }
        Ok(())
    }
}

#[derive(Clone)]
struct RuleDraft {
    lhs: String,
    rhs: Vec<String>,
    prec_sym: Option<String>,
    /// Source line of the alternative (`0` = unknown).
    line: u32,
}

#[derive(Clone)]
struct TokenDraft {
    name: String,
    prec: Option<Precedence>,
    /// Line of the declaration (`0` = unknown).
    line: u32,
}

/// Incrementally builds a [`Grammar`].
///
/// Symbols are referred to by name. Any name that appears on the left-hand
/// side of a rule becomes a nonterminal; every other name becomes a terminal
/// (the yacc convention), so `%token` declarations are optional unless a
/// precedence is attached.
///
/// # Example
///
/// ```
/// use lalrcex_grammar::GrammarBuilder;
///
/// let mut b = GrammarBuilder::new();
/// b.start("list");
/// b.rule("list", &["item"]);
/// b.rule("list", &["list", "item"]);
/// b.rule("item", &["ID"]);
/// let g = b.build()?;
/// assert_eq!(g.prod_count(), 4); // 3 rules + augmented start
/// # Ok::<(), lalrcex_grammar::GrammarError>(())
/// ```
#[derive(Default)]
pub struct GrammarBuilder {
    tokens: Vec<TokenDraft>,
    rules: Vec<RuleDraft>,
    start: Option<String>,
    next_level: u16,
}

impl GrammarBuilder {
    /// Creates an empty builder.
    pub fn new() -> GrammarBuilder {
        GrammarBuilder {
            next_level: 1,
            ..GrammarBuilder::default()
        }
    }

    /// Declares a token (terminal). Optional unless precedence matters.
    pub fn token(&mut self, name: &str) -> &mut Self {
        self.token_at(name, 0)
    }

    /// [`GrammarBuilder::token`] with a source line for diagnostics.
    pub fn token_at(&mut self, name: &str, line: u32) -> &mut Self {
        if let Some(entry) = self.tokens.iter_mut().find(|t| t.name == name) {
            if entry.line == 0 {
                entry.line = line;
            }
        } else {
            self.tokens.push(TokenDraft {
                name: name.to_owned(),
                prec: None,
                line,
            });
        }
        self
    }

    /// Declares a precedence level for `names`, like a yacc
    /// `%left`/`%right`/`%nonassoc` line. Later calls bind tighter.
    pub fn prec_level(&mut self, assoc: Assoc, names: &[&str]) -> &mut Self {
        self.prec_level_at(assoc, names, 0)
    }

    /// [`GrammarBuilder::prec_level`] with a source line for diagnostics.
    pub fn prec_level_at(&mut self, assoc: Assoc, names: &[&str], line: u32) -> &mut Self {
        let level = self.next_level;
        self.next_level += 1;
        for &name in names {
            let prec = Some(Precedence { level, assoc });
            if let Some(entry) = self.tokens.iter_mut().find(|t| t.name == name) {
                entry.prec = prec;
                if line != 0 {
                    entry.line = line;
                }
            } else {
                self.tokens.push(TokenDraft {
                    name: name.to_owned(),
                    prec,
                    line,
                });
            }
        }
        self
    }

    /// Sets the start symbol. Defaults to the first rule's left-hand side.
    pub fn start(&mut self, name: &str) -> &mut Self {
        self.start = Some(name.to_owned());
        self
    }

    /// Adds a production `lhs -> rhs`.
    pub fn rule(&mut self, lhs: &str, rhs: &[&str]) -> &mut Self {
        self.rule_at(lhs, rhs, 0)
    }

    /// [`GrammarBuilder::rule`] with a source line for diagnostics.
    pub fn rule_at(&mut self, lhs: &str, rhs: &[&str], line: u32) -> &mut Self {
        self.rules.push(RuleDraft {
            lhs: lhs.to_owned(),
            rhs: rhs.iter().map(|s| (*s).to_owned()).collect(),
            prec_sym: None,
            line,
        });
        self
    }

    /// Adds a production with an explicit `%prec` terminal.
    pub fn rule_prec(&mut self, lhs: &str, rhs: &[&str], prec_sym: &str) -> &mut Self {
        self.rule_prec_at(lhs, rhs, prec_sym, 0)
    }

    /// [`GrammarBuilder::rule_prec`] with a source line for diagnostics.
    pub fn rule_prec_at(
        &mut self,
        lhs: &str,
        rhs: &[&str],
        prec_sym: &str,
        line: u32,
    ) -> &mut Self {
        self.rules.push(RuleDraft {
            lhs: lhs.to_owned(),
            rhs: rhs.iter().map(|s| (*s).to_owned()).collect(),
            prec_sym: Some(prec_sym.to_owned()),
            line,
        });
        self
    }

    /// Resolves names and produces the immutable [`Grammar`].
    ///
    /// # Errors
    ///
    /// Returns a [`GrammarError`] if the grammar is ill-formed: no start
    /// symbol can be determined, a declared token is used as a rule
    /// left-hand side, or a `%prec` symbol is unknown.
    pub fn build(&self) -> Result<Grammar, GrammarError> {
        // Structural caps first: fuzzed or generated inputs must fail with
        // a structured error before any quadratic work happens below.
        if self.rules.len() > MAX_PRODUCTIONS {
            return Err(GrammarError::Limit {
                what: "production count",
                limit: MAX_PRODUCTIONS,
                actual: self.rules.len(),
            });
        }
        if let Some(r) = self.rules.iter().find(|r| r.rhs.len() > MAX_RHS_SYMBOLS) {
            return Err(GrammarError::Limit {
                what: "right-hand-side length",
                limit: MAX_RHS_SYMBOLS,
                actual: r.rhs.len(),
            });
        }
        let start_name = match &self.start {
            Some(s) => s.clone(),
            None => self
                .rules
                .first()
                .map(|r| r.lhs.clone())
                .ok_or(GrammarError::NoStartSymbol)?,
        };

        // Classify names: LHS names are nonterminals, everything else terminal.
        let mut is_lhs: HashMap<&str, bool> = HashMap::new();
        for r in &self.rules {
            is_lhs.insert(&r.lhs, true);
        }
        for t in &self.tokens {
            if is_lhs.contains_key(t.name.as_str()) {
                return Err(GrammarError::TokenOnLhs(t.name.clone()));
            }
        }
        if !is_lhs.contains_key(start_name.as_str()) {
            return Err(GrammarError::StartIsTerminal(start_name));
        }

        let mut symbols: Vec<SymbolInfo> = Vec::new();
        let mut by_name: HashMap<String, SymbolId> = HashMap::new();
        let mut terminals: Vec<SymbolId> = Vec::new();
        let mut nonterminals: Vec<SymbolId> = Vec::new();

        let intern = |name: &str,
                      kind: SymbolKind,
                      prec: Option<Precedence>,
                      decl_line: u32,
                      symbols: &mut Vec<SymbolInfo>,
                      by_name: &mut HashMap<String, SymbolId>,
                      terminals: &mut Vec<SymbolId>,
                      nonterminals: &mut Vec<SymbolId>|
         -> SymbolId {
            if let Some(&id) = by_name.get(name) {
                // Keep the earliest known location.
                if symbols[id.index()].decl_line == 0 {
                    symbols[id.index()].decl_line = decl_line;
                }
                return id;
            }
            let id = SymbolId(symbols.len() as u32);
            let dense = match kind {
                SymbolKind::Terminal => {
                    terminals.push(id);
                    (terminals.len() - 1) as u32
                }
                SymbolKind::Nonterminal => {
                    nonterminals.push(id);
                    (nonterminals.len() - 1) as u32
                }
            };
            symbols.push(SymbolInfo {
                name: name.to_owned(),
                kind,
                dense,
                prec,
                decl_line,
            });
            by_name.insert(name.to_owned(), id);
            id
        };

        // $end is terminal 0; $accept is the first nonterminal.
        intern(
            "$end",
            SymbolKind::Terminal,
            None,
            0,
            &mut symbols,
            &mut by_name,
            &mut terminals,
            &mut nonterminals,
        );
        let accept = intern(
            "$accept",
            SymbolKind::Nonterminal,
            None,
            0,
            &mut symbols,
            &mut by_name,
            &mut terminals,
            &mut nonterminals,
        );

        // Declared tokens first (stable terminal numbering), then symbols in
        // order of appearance.
        for t in &self.tokens {
            intern(
                &t.name,
                SymbolKind::Terminal,
                t.prec,
                t.line,
                &mut symbols,
                &mut by_name,
                &mut terminals,
                &mut nonterminals,
            );
        }
        let kind_of = |name: &str, is_lhs: &HashMap<&str, bool>| {
            if is_lhs.contains_key(name) {
                SymbolKind::Nonterminal
            } else {
                SymbolKind::Terminal
            }
        };
        for r in &self.rules {
            intern(
                &r.lhs,
                SymbolKind::Nonterminal,
                None,
                r.line,
                &mut symbols,
                &mut by_name,
                &mut terminals,
                &mut nonterminals,
            );
            for s in &r.rhs {
                intern(
                    s,
                    kind_of(s, &is_lhs),
                    None,
                    r.line,
                    &mut symbols,
                    &mut by_name,
                    &mut terminals,
                    &mut nonterminals,
                );
            }
        }

        let start = by_name[&start_name];

        // Productions: augmented production first. Following CUP (and the
        // paper's Figure 5), the end-of-input marker is part of the
        // augmented production: `$accept -> start $end`.
        let mut productions = vec![Production {
            lhs: accept,
            rhs: vec![start, SymbolId::EOF],
            prec: None,
            line: 0,
        }];
        for r in &self.rules {
            let lhs = by_name[&r.lhs];
            let rhs: Vec<SymbolId> = r.rhs.iter().map(|s| by_name[s]).collect();
            let prec = match &r.prec_sym {
                Some(ps) => {
                    let sym = by_name
                        .get(ps)
                        .copied()
                        .ok_or_else(|| GrammarError::BadPrecSymbol(ps.clone()))?;
                    let info = &symbols[sym.index()];
                    if info.kind != SymbolKind::Terminal {
                        return Err(GrammarError::BadPrecSymbol(ps.clone()));
                    }
                    // A %prec symbol without declared precedence yields none,
                    // matching yacc (the rule gets no precedence).
                    info.prec
                }
                None => rhs
                    .iter()
                    .rev()
                    .find(|&&s| symbols[s.index()].kind == SymbolKind::Terminal)
                    .and_then(|&s| symbols[s.index()].prec),
            };
            productions.push(Production {
                lhs,
                rhs,
                prec,
                line: r.line,
            });
        }

        let mut prods_of = vec![Vec::new(); nonterminals.len()];
        for (i, p) in productions.iter().enumerate() {
            let nt = symbols[p.lhs.index()].dense as usize;
            prods_of[nt].push(ProdId(i as u32));
        }

        Ok(Grammar {
            symbols,
            by_name,
            productions,
            prods_of,
            terminals,
            nonterminals,
            start,
            accept,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr_grammar() -> Grammar {
        let mut b = GrammarBuilder::new();
        b.prec_level(Assoc::Left, &["+"]);
        b.prec_level(Assoc::Left, &["*"]);
        b.start("e");
        b.rule("e", &["e", "+", "e"]);
        b.rule("e", &["e", "*", "e"]);
        b.rule("e", &["NUM"]);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_augmented_grammar() {
        let g = expr_grammar();
        assert_eq!(g.prod_count(), 4);
        let accept = g.prod(g.accept_prod());
        assert_eq!(accept.lhs(), g.accept());
        assert_eq!(accept.rhs(), &[g.start(), SymbolId::EOF]);
        assert_eq!(g.name(g.accept()), "$accept");
        assert_eq!(g.display_name(SymbolId::EOF), "$");
    }

    #[test]
    fn kinds_inferred_from_lhs_usage() {
        let g = expr_grammar();
        assert!(g.is_nonterminal(g.symbol_named("e").unwrap()));
        assert!(g.is_terminal(g.symbol_named("NUM").unwrap()));
        assert!(g.is_terminal(g.symbol_named("+").unwrap()));
        assert_eq!(g.terminal_count(), 4); // $end + * NUM
        assert_eq!(g.nonterminal_count(), 2); // $accept e
    }

    #[test]
    fn dense_indices_round_trip() {
        let g = expr_grammar();
        for t in 0..g.terminal_count() {
            assert_eq!(g.tindex(g.terminal(t)), t);
        }
        for n in 0..g.nonterminal_count() {
            assert_eq!(g.ntindex(g.nonterminal(n)), n);
        }
    }

    #[test]
    fn precedence_levels_increase() {
        let g = expr_grammar();
        let plus = g.terminal_prec(g.symbol_named("+").unwrap()).unwrap();
        let star = g.terminal_prec(g.symbol_named("*").unwrap()).unwrap();
        assert!(star.level > plus.level);
        assert_eq!(plus.assoc, Assoc::Left);
    }

    #[test]
    fn production_inherits_last_terminal_precedence() {
        let g = expr_grammar();
        let e = g.symbol_named("e").unwrap();
        let prods = g.prods_of(e);
        let plus_prod = g.prod(prods[0]);
        assert_eq!(
            plus_prod.precedence(),
            g.terminal_prec(g.symbol_named("+").unwrap())
        );
        let num_prod = g.prod(prods[2]);
        assert_eq!(num_prod.precedence(), None);
    }

    #[test]
    fn explicit_prec_overrides() {
        let mut b = GrammarBuilder::new();
        b.prec_level(Assoc::Right, &["UMINUS"]);
        b.rule_prec("e", &["-", "e"], "UMINUS");
        b.rule("e", &["NUM"]);
        let g = b.build().unwrap();
        let e = g.symbol_named("e").unwrap();
        let p = g.prod(g.prods_of(e)[0]);
        assert_eq!(p.precedence().unwrap().assoc, Assoc::Right);
    }

    #[test]
    fn token_on_lhs_is_error() {
        let mut b = GrammarBuilder::new();
        b.token("x");
        b.rule("x", &["y"]);
        assert_eq!(b.build().unwrap_err(), GrammarError::TokenOnLhs("x".into()));
    }

    #[test]
    fn missing_start_is_error() {
        let b = GrammarBuilder::new();
        assert_eq!(b.build().unwrap_err(), GrammarError::NoStartSymbol);
    }

    #[test]
    fn start_defaults_to_first_rule() {
        let mut b = GrammarBuilder::new();
        b.rule("s", &["a"]);
        b.rule("a", &["X"]);
        let g = b.build().unwrap();
        assert_eq!(g.name(g.start()), "s");
    }

    #[test]
    fn start_must_be_nonterminal() {
        let mut b = GrammarBuilder::new();
        b.start("X");
        b.rule("s", &["X"]);
        assert_eq!(
            b.build().unwrap_err(),
            GrammarError::StartIsTerminal("X".into())
        );
    }

    #[test]
    fn empty_production_allowed() {
        let mut b = GrammarBuilder::new();
        b.rule("s", &[]);
        let g = b.build().unwrap();
        let s = g.symbol_named("s").unwrap();
        assert!(g.prod(g.prods_of(s)[0]).rhs().is_empty());
        assert!(g.format_prod(g.prods_of(s)[0]).contains("<empty>"));
    }

    #[test]
    fn display_lists_user_productions() {
        let g = expr_grammar();
        let shown = g.to_string();
        assert!(shown.contains("e -> e + e"));
        assert!(!shown.contains("$accept"), "augmented prod hidden: {shown}");
    }
}
