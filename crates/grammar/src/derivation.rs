//! Partial derivation trees and minimal-expansion helpers.
//!
//! Counterexamples in the PLDI'15 algorithm are *derivations*: trees whose
//! leaves may be unexpanded nonterminals ("no more concrete than necessary",
//! §3.2). This module provides the tree type plus the expansion routines the
//! counterexample constructors need:
//!
//! * derive ε from a nullable symbol with as few nodes as possible, and
//! * derive a string *beginning with a given terminal* from a symbol (or a
//!   sequence of symbols), expanding as little as possible — used to place
//!   the conflict terminal right after the conflict point (§4).

use crate::analysis::{Analysis, INFINITE};
use crate::grammar::Grammar;
use crate::symbol::{SymbolId, SymbolKind};

/// A node in a partial derivation tree.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Derivation {
    /// An unexpanded symbol: a terminal, or a nonterminal whose expansion is
    /// irrelevant to the counterexample.
    Leaf(SymbolId),
    /// An expanded nonterminal with the derivations of its production's
    /// right-hand side (empty for an ε-production).
    Node(SymbolId, Vec<Derivation>),
    /// The conflict point marker, rendered as `•`.
    Dot,
}

impl Derivation {
    /// The symbol at this node (`None` for the dot marker).
    pub fn symbol(&self) -> Option<SymbolId> {
        match self {
            Derivation::Leaf(s) | Derivation::Node(s, _) => Some(*s),
            Derivation::Dot => None,
        }
    }

    /// Appends the leaf symbols (the derived sentential form) to `out`,
    /// skipping dot markers.
    pub fn leaves_into(&self, out: &mut Vec<SymbolId>) {
        match self {
            Derivation::Leaf(s) => out.push(*s),
            Derivation::Node(_, children) => {
                for c in children {
                    c.leaves_into(out);
                }
            }
            Derivation::Dot => {}
        }
    }

    /// The derived sentential form (leaf symbols, dots skipped).
    pub fn leaves(&self) -> Vec<SymbolId> {
        let mut out = Vec::new();
        self.leaves_into(&mut out);
        out
    }

    /// A copy of the tree with every dot marker removed (used when
    /// comparing the *structure* of two derivations: trees that differ only
    /// in dot placement are the same derivation).
    pub fn strip_dots(&self) -> Option<Derivation> {
        match self {
            Derivation::Leaf(s) => Some(Derivation::Leaf(*s)),
            Derivation::Dot => None,
            Derivation::Node(s, children) => Some(Derivation::Node(
                *s,
                children.iter().filter_map(Derivation::strip_dots).collect(),
            )),
        }
    }

    /// Number of expanded nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            Derivation::Leaf(_) | Derivation::Dot => 0,
            Derivation::Node(_, children) => {
                1 + children.iter().map(Derivation::size).sum::<usize>()
            }
        }
    }

    /// Renders the sentential form with dots, e.g.
    /// `if expr then stmt • else stmt`.
    pub fn flat(&self, g: &Grammar) -> String {
        fn walk(d: &Derivation, g: &Grammar, out: &mut Vec<String>) {
            match d {
                Derivation::Leaf(s) => out.push(g.display_name(*s).to_owned()),
                Derivation::Node(_, children) => {
                    for c in children {
                        walk(c, g, out);
                    }
                }
                Derivation::Dot => out.push("\u{2022}".to_owned()),
            }
        }
        let mut parts = Vec::new();
        walk(self, g, &mut parts);
        parts.join(" ")
    }

    /// Renders the bracketed derivation form of the paper's Figure 11, e.g.
    /// `expr ::= [expr ::= [expr PLUS expr •] PLUS expr]`.
    pub fn pretty(&self, g: &Grammar) -> String {
        match self {
            Derivation::Leaf(s) => g.display_name(*s).to_owned(),
            Derivation::Dot => "\u{2022}".to_owned(),
            Derivation::Node(s, children) => {
                let inner = children
                    .iter()
                    .map(|c| c.pretty(g))
                    .collect::<Vec<_>>()
                    .join(" ");
                format!("{} ::= [{}]", g.display_name(*s), inner)
            }
        }
    }
}

/// Renders a slice of derivations as one flat sentential form.
pub fn flat_all(derivs: &[Derivation], g: &Grammar) -> String {
    derivs
        .iter()
        .map(|d| d.flat(g))
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

/// The cheapest derivation of ε from `sym`, or `None` if `sym` is not
/// nullable.
pub fn eps_derivation(g: &Grammar, a: &Analysis, sym: SymbolId) -> Option<Derivation> {
    if g.kind(sym) != SymbolKind::Nonterminal {
        return None;
    }
    let pid = a.eps_prod[g.ntindex(sym)]?;
    let children = g
        .prod(pid)
        .rhs()
        .iter()
        .map(|&s| eps_derivation(g, a, s))
        .collect::<Option<Vec<_>>>()?;
    Some(Derivation::Node(sym, children))
}

fn eps_cost_sym(g: &Grammar, a: &Analysis, sym: SymbolId) -> u64 {
    match g.kind(sym) {
        SymbolKind::Terminal => INFINITE,
        SymbolKind::Nonterminal => a.eps_cost[g.ntindex(sym)],
    }
}

/// Per-symbol cost of the cheapest derivation whose terminal string begins
/// with `t` (counting expanded nodes).
fn start_costs(g: &Grammar, a: &Analysis, t: SymbolId) -> Vec<u64> {
    let mut cost = vec![INFINITE; g.symbol_count()];
    cost[t.index()] = 0;
    loop {
        let mut changed = false;
        for p in g.productions() {
            let lhs = p.lhs().index();
            let mut prefix_eps: u64 = 0;
            for &s in p.rhs() {
                let cand = 1u64
                    .saturating_add(prefix_eps)
                    .saturating_add(cost[s.index()]);
                if cand < cost[lhs] {
                    cost[lhs] = cand;
                    changed = true;
                }
                prefix_eps = prefix_eps.saturating_add(eps_cost_sym(g, a, s));
                if prefix_eps >= INFINITE {
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    cost
}

fn reconstruct(
    g: &Grammar,
    a: &Analysis,
    cost: &[u64],
    sym: SymbolId,
    t: SymbolId,
) -> Option<Derivation> {
    if sym == t {
        return Some(Derivation::Leaf(sym));
    }
    if g.kind(sym) != SymbolKind::Nonterminal || cost[sym.index()] >= INFINITE {
        return None;
    }
    // Find the production and pivot position achieving the recorded cost.
    let my_cost = cost[sym.index()];
    for &pid in g.prods_of(sym) {
        let rhs = g.prod(pid).rhs();
        let mut prefix_eps: u64 = 0;
        for (i, &s) in rhs.iter().enumerate() {
            let cand = 1u64
                .saturating_add(prefix_eps)
                .saturating_add(cost[s.index()]);
            if cand == my_cost {
                let mut children = Vec::with_capacity(rhs.len());
                for &p in &rhs[..i] {
                    children.push(eps_derivation(g, a, p)?);
                }
                children.push(reconstruct(g, a, cost, s, t)?);
                for &p in &rhs[i + 1..] {
                    children.push(Derivation::Leaf(p));
                }
                return Some(Derivation::Node(sym, children));
            }
            prefix_eps = prefix_eps.saturating_add(eps_cost_sym(g, a, s));
            if prefix_eps >= INFINITE {
                break;
            }
        }
    }
    None
}

/// The cheapest derivation of `sym` whose terminal string begins with the
/// terminal `t`, leaving everything after `t` unexpanded. Returns `None` if
/// `t` is not in FIRST(`sym`).
pub fn derive_starting_with(
    g: &Grammar,
    a: &Analysis,
    sym: SymbolId,
    t: SymbolId,
) -> Option<Derivation> {
    let cost = start_costs(g, a, t);
    reconstruct(g, a, &cost, sym, t)
}

/// Like [`derive_starting_with`], but for a sequence: symbols before the one
/// that produces `t` derive ε, the producing symbol is minimally expanded,
/// and the rest are left as leaves. Returns one derivation per input symbol.
pub fn derive_seq_starting_with(
    g: &Grammar,
    a: &Analysis,
    seq: &[SymbolId],
    t: SymbolId,
) -> Option<Vec<Derivation>> {
    let cost = start_costs(g, a, t);
    // Pick the pivot position minimising total node count.
    let mut best: Option<(usize, u64)> = None;
    let mut prefix_eps: u64 = 0;
    for (i, &s) in seq.iter().enumerate() {
        let cand = prefix_eps.saturating_add(cost[s.index()]);
        if cand < INFINITE && best.is_none_or(|(_, c)| cand < c) {
            best = Some((i, cand));
        }
        prefix_eps = prefix_eps.saturating_add(eps_cost_sym(g, a, s));
        if prefix_eps >= INFINITE {
            break;
        }
    }
    let (pivot, _) = best?;
    let mut out = Vec::with_capacity(seq.len());
    for &s in &seq[..pivot] {
        out.push(eps_derivation(g, a, s)?);
    }
    out.push(reconstruct(g, a, &cost, seq[pivot], t)?);
    for &s in &seq[pivot + 1..] {
        out.push(Derivation::Leaf(s));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    fn stmt_grammar() -> Grammar {
        // The paper's Figure 1 grammar.
        let mut b = GrammarBuilder::new();
        b.start("stmt");
        b.rule("stmt", &["if", "expr", "then", "stmt", "else", "stmt"]);
        b.rule("stmt", &["if", "expr", "then", "stmt"]);
        b.rule("stmt", &["expr", "?", "stmt", "stmt"]);
        b.rule("stmt", &["arr", "[", "expr", "]", ":=", "expr"]);
        b.rule("expr", &["num"]);
        b.rule("expr", &["expr", "+", "expr"]);
        b.rule("num", &["digit"]);
        b.rule("num", &["num", "digit"]);
        b.build().unwrap()
    }

    #[test]
    fn eps_derivation_of_non_nullable_is_none() {
        let g = stmt_grammar();
        let a = Analysis::new(&g);
        assert_eq!(
            eps_derivation(&g, &a, g.symbol_named("stmt").unwrap()),
            None
        );
    }

    #[test]
    fn eps_derivation_builds_minimal_tree() {
        let mut b = GrammarBuilder::new();
        b.start("s");
        b.rule("s", &["a", "a"]);
        b.rule("a", &["X"]);
        b.rule("a", &[]);
        let g = b.build().unwrap();
        let a = Analysis::new(&g);
        let d = eps_derivation(&g, &a, g.symbol_named("s").unwrap()).unwrap();
        assert!(d.leaves().is_empty());
        assert_eq!(d.size(), 3);
    }

    #[test]
    fn derive_statement_starting_with_digit() {
        // The paper's §3.1: a stmt that begins with ⟨digit⟩ is
        // `digit ? stmt stmt` (via expr -> num -> digit).
        let g = stmt_grammar();
        let a = Analysis::new(&g);
        let stmt = g.symbol_named("stmt").unwrap();
        let digit = g.symbol_named("digit").unwrap();
        let d = derive_starting_with(&g, &a, stmt, digit).unwrap();
        let leaves = d.leaves();
        assert_eq!(leaves[0], digit);
        let names: Vec<&str> = leaves.iter().map(|&s| g.display_name(s)).collect();
        assert_eq!(names, vec!["digit", "?", "stmt", "stmt"]);
    }

    #[test]
    fn derive_starting_with_missing_terminal_is_none() {
        let g = stmt_grammar();
        let a = Analysis::new(&g);
        let stmt = g.symbol_named("stmt").unwrap();
        let then = g.symbol_named("then").unwrap();
        assert!(derive_starting_with(&g, &a, stmt, then).is_none());
    }

    #[test]
    fn derive_terminal_from_itself() {
        let g = stmt_grammar();
        let a = Analysis::new(&g);
        let d = derive_starting_with(
            &g,
            &a,
            g.symbol_named("if").unwrap(),
            g.symbol_named("if").unwrap(),
        )
        .unwrap();
        assert_eq!(d, Derivation::Leaf(g.symbol_named("if").unwrap()));
    }

    #[test]
    fn derive_seq_skips_nullable_prefix() {
        let mut b = GrammarBuilder::new();
        b.start("s");
        b.rule("s", &["opt", "X", "tail"]);
        b.rule("opt", &[]);
        b.rule("opt", &["Y"]);
        b.rule("tail", &["Z"]);
        let g = b.build().unwrap();
        let a = Analysis::new(&g);
        let seq = [
            g.symbol_named("opt").unwrap(),
            g.symbol_named("X").unwrap(),
            g.symbol_named("tail").unwrap(),
        ];
        let x = g.symbol_named("X").unwrap();
        let ds = derive_seq_starting_with(&g, &a, &seq, x).unwrap();
        assert_eq!(ds.len(), 3);
        assert!(ds[0].leaves().is_empty(), "opt derived to ε");
        assert_eq!(ds[1].leaves(), vec![x]);
        assert_eq!(ds[2], Derivation::Leaf(seq[2]), "tail left unexpanded");
    }

    #[test]
    fn flat_and_pretty_rendering() {
        let g = stmt_grammar();
        let stmt = g.symbol_named("stmt").unwrap();
        let d = Derivation::Node(
            stmt,
            vec![
                Derivation::Leaf(g.symbol_named("if").unwrap()),
                Derivation::Leaf(g.symbol_named("expr").unwrap()),
                Derivation::Leaf(g.symbol_named("then").unwrap()),
                Derivation::Leaf(stmt),
                Derivation::Dot,
                Derivation::Leaf(g.symbol_named("else").unwrap()),
                Derivation::Leaf(stmt),
            ],
        );
        assert_eq!(d.flat(&g), "if expr then stmt \u{2022} else stmt");
        assert_eq!(
            d.pretty(&g),
            "stmt ::= [if expr then stmt \u{2022} else stmt]"
        );
        assert_eq!(d.leaves().len(), 6, "dot is not a leaf");
    }
}
