//! LR items: a production with a dot position.

use lalrcex_grammar::{Grammar, ProdId, SymbolId};
use std::fmt;

/// An LR item `A -> α · β`: production `prod` with the dot after the first
/// `dot` right-hand-side symbols.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item {
    prod: ProdId,
    dot: u16,
}

impl Item {
    /// The item `A -> · rhs` for a production.
    pub fn start(prod: ProdId) -> Item {
        Item { prod, dot: 0 }
    }

    /// An item with an explicit dot position.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dot` exceeds the production length when
    /// checked against a grammar; this constructor performs no checking.
    pub fn new(prod: ProdId, dot: usize) -> Item {
        Item {
            prod,
            dot: dot as u16,
        }
    }

    /// The item's production.
    pub fn prod(self) -> ProdId {
        self.prod
    }

    /// Number of symbols before the dot.
    pub fn dot(self) -> usize {
        self.dot as usize
    }

    /// The symbol immediately after the dot, or `None` for a reduce item.
    pub fn next_symbol(self, g: &Grammar) -> Option<SymbolId> {
        g.prod(self.prod).rhs().get(self.dot()).copied()
    }

    /// The symbol immediately before the dot, or `None` at the start.
    pub fn prev_symbol(self, g: &Grammar) -> Option<SymbolId> {
        self.dot()
            .checked_sub(1)
            .map(|i| g.prod(self.prod).rhs()[i])
    }

    /// The symbols after the dot.
    pub fn tail(self, g: &Grammar) -> &[SymbolId] {
        &g.prod(self.prod).rhs()[self.dot()..]
    }

    /// `true` if the dot is at the end of the production.
    pub fn is_reduce(self, g: &Grammar) -> bool {
        self.dot() == g.prod(self.prod).rhs().len()
    }

    /// The item with the dot advanced one symbol.
    ///
    /// # Panics
    ///
    /// Panics if this is already a reduce item.
    pub fn advance(self, g: &Grammar) -> Item {
        assert!(!self.is_reduce(g), "cannot advance a reduce item");
        Item {
            prod: self.prod,
            dot: self.dot + 1,
        }
    }

    /// The item with the dot moved one symbol back.
    ///
    /// # Panics
    ///
    /// Panics if the dot is at the start.
    pub fn retreat(self) -> Item {
        assert!(self.dot > 0, "cannot retreat past the start");
        Item {
            prod: self.prod,
            dot: self.dot - 1,
        }
    }

    /// Renders the item like `stmt -> if expr · then stmt`.
    pub fn display(self, g: &Grammar) -> String {
        let p = g.prod(self.prod);
        let mut out = format!("{} ->", g.display_name(p.lhs()));
        for (i, &s) in p.rhs().iter().enumerate() {
            if i == self.dot() {
                out.push_str(" \u{00b7}");
            }
            out.push(' ');
            out.push_str(g.display_name(s));
        }
        if self.is_reduce(g) {
            out.push_str(" \u{00b7}");
        }
        out
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item({:?}@{})", self.prod, self.dot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::Grammar;

    fn g() -> Grammar {
        Grammar::parse("%% s : A b C ; b : X | ;").unwrap()
    }

    #[test]
    fn navigation() {
        let g = g();
        let s = g.symbol_named("s").unwrap();
        let p = g.prods_of(s)[0];
        let it = Item::start(p);
        assert_eq!(it.next_symbol(&g), g.symbol_named("A"));
        assert_eq!(it.prev_symbol(&g), None);
        assert!(!it.is_reduce(&g));
        let it2 = it.advance(&g);
        assert_eq!(it2.prev_symbol(&g), g.symbol_named("A"));
        assert_eq!(it2.next_symbol(&g), g.symbol_named("b"));
        assert_eq!(it2.retreat(), it);
        let done = it2.advance(&g).advance(&g);
        assert!(done.is_reduce(&g));
        assert_eq!(done.next_symbol(&g), None);
        assert_eq!(done.tail(&g), &[]);
    }

    #[test]
    fn empty_production_item_is_reduce_at_start() {
        let g = g();
        let b = g.symbol_named("b").unwrap();
        let eps = g.prods_of(b)[1];
        let it = Item::start(eps);
        assert!(it.is_reduce(&g));
    }

    #[test]
    fn display_places_dot() {
        let g = g();
        let s = g.symbol_named("s").unwrap();
        let p = g.prods_of(s)[0];
        assert_eq!(Item::new(p, 1).display(&g), "s -> A \u{00b7} b C");
        assert_eq!(Item::new(p, 3).display(&g), "s -> A b C \u{00b7}");
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn advance_past_end_panics() {
        let g = g();
        let s = g.symbol_named("s").unwrap();
        let p = g.prods_of(s)[0];
        let _ = Item::new(p, 3).advance(&g);
    }
}
