//! LR(0) automaton construction with LALR(1) per-item lookahead sets.
//!
//! Lookaheads are computed with the classic spontaneous-generation /
//! propagation algorithm on kernel items (equivalent to the
//! DeRemer–Pennello LALR(1) sets), then extended to closure items by a
//! per-state fixpoint so that *every* item of every state carries the
//! lookahead set shown in the paper's Figure 2. The counterexample engine
//! depends on these per-item sets.

use std::collections::HashMap;

use lalrcex_grammar::{Analysis, Grammar, SymbolId, SymbolKind, TerminalSet};

use crate::item::Item;
use crate::table::Tables;

/// Identifies a state of an [`Automaton`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// The start state.
    pub const START: StateId = StateId(0);

    /// Dense index of this state.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a state id from an index obtained from
    /// [`StateId::index`].
    pub fn from_index(index: usize) -> StateId {
        StateId(index as u32)
    }
}

impl std::fmt::Debug for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "state#{}", self.0)
    }
}

/// One parser state: items (kernel first), per-item lookahead sets, and
/// outgoing transitions.
pub struct State {
    items: Vec<Item>,
    lookaheads: Vec<TerminalSet>,
    kernel_len: usize,
    transitions: Vec<(SymbolId, StateId)>,
    accessing_symbol: Option<SymbolId>,
}

impl State {
    /// All items: the kernel items first, then closure items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of kernel items (a prefix of [`State::items`]).
    pub fn kernel_len(&self) -> usize {
        self.kernel_len
    }

    /// LALR(1) lookahead set of the item at `idx` in [`State::items`].
    pub fn lookahead(&self, idx: usize) -> &TerminalSet {
        &self.lookaheads[idx]
    }

    /// Outgoing transitions, sorted by symbol.
    pub fn transitions(&self) -> &[(SymbolId, StateId)] {
        &self.transitions
    }

    /// The target of the transition on `sym`, if any.
    pub fn transition(&self, sym: SymbolId) -> Option<StateId> {
        self.transitions
            .binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| self.transitions[i].1)
    }

    /// The symbol on which every transition *into* this state is made
    /// (`None` only for the start state).
    pub fn accessing_symbol(&self) -> Option<SymbolId> {
        self.accessing_symbol
    }

    /// Index of `item` within this state, or `None` if absent.
    pub fn item_index(&self, item: Item) -> Option<usize> {
        self.items.iter().position(|&i| i == item)
    }
}

/// The LR(0) automaton of a grammar, annotated with LALR(1) lookaheads.
pub struct Automaton {
    states: Vec<State>,
    analysis: Analysis,
}

/// LR(0) closure: expands `kernel` (kept first, in the given order) with
/// the start items of every nonterminal that appears after a dot.
fn closure(g: &Grammar, kernel: &[Item]) -> Vec<Item> {
    let mut items: Vec<Item> = kernel.to_vec();
    let mut seen: HashMap<Item, ()> = items.iter().map(|&i| (i, ())).collect();
    let mut idx = 0;
    while idx < items.len() {
        let it = items[idx];
        idx += 1;
        if let Some(next) = it.next_symbol(g) {
            if g.kind(next) == SymbolKind::Nonterminal {
                for &pid in g.prods_of(next) {
                    let start = Item::start(pid);
                    if seen.insert(start, ()).is_none() {
                        items.push(start);
                    }
                }
            }
        }
    }
    // Deterministic order for closure items (kernel keeps its order).
    items[kernel.len()..].sort_unstable();
    items
}

impl Automaton {
    /// Builds the automaton (states, transitions, LALR(1) lookaheads).
    pub fn build(g: &Grammar) -> Automaton {
        let analysis = Analysis::new(g);
        let nterm = g.terminal_count();

        // --- LR(0) states ----------------------------------------------
        struct Proto {
            items: Vec<Item>,
            kernel_len: usize,
            transitions: Vec<(SymbolId, StateId)>,
            accessing_symbol: Option<SymbolId>,
        }

        let mut kernels: HashMap<Vec<Item>, StateId> = HashMap::new();
        let mut protos: Vec<Proto> = Vec::new();

        let start_kernel = vec![Item::start(g.accept_prod())];
        kernels.insert(start_kernel.clone(), StateId(0));
        protos.push(Proto {
            items: closure(g, &start_kernel),
            kernel_len: 1,
            transitions: Vec::new(),
            accessing_symbol: None,
        });

        let mut work = 0;
        while work < protos.len() {
            // Group items by their next symbol.
            let mut by_symbol: Vec<(SymbolId, Vec<Item>)> = Vec::new();
            for &it in &protos[work].items {
                if let Some(next) = it.next_symbol(g) {
                    match by_symbol.iter_mut().find(|(s, _)| *s == next) {
                        Some((_, v)) => v.push(it.advance(g)),
                        None => by_symbol.push((next, vec![it.advance(g)])),
                    }
                }
            }
            let mut transitions = Vec::with_capacity(by_symbol.len());
            for (sym, mut kernel) in by_symbol {
                kernel.sort_unstable();
                kernel.dedup();
                let next_id = match kernels.get(&kernel) {
                    Some(&id) => id,
                    None => {
                        let id = StateId(protos.len() as u32);
                        kernels.insert(kernel.clone(), id);
                        protos.push(Proto {
                            items: closure(g, &kernel),
                            kernel_len: kernel.len(),
                            transitions: Vec::new(),
                            accessing_symbol: Some(sym),
                        });
                        id
                    }
                };
                transitions.push((sym, next_id));
            }
            transitions.sort_unstable_by_key(|&(s, _)| s);
            protos[work].transitions = transitions;
            work += 1;
        }

        // --- LALR(1) kernel lookaheads: spontaneous + propagation -------
        // `kernel_la[s][i]` is the lookahead of kernel item i of state s.
        let mut kernel_la: Vec<Vec<TerminalSet>> = protos
            .iter()
            .map(|p| vec![TerminalSet::empty(nterm); p.kernel_len])
            .collect();
        kernel_la[0][0].insert(g.tindex(SymbolId::EOF));

        // Propagation links: (from_state, from_kernel_idx) -> (to_state,
        // to_kernel_idx).
        let mut links: Vec<((usize, usize), (usize, usize))> = Vec::new();

        // Map (state, kernel item) -> kernel index, for targets.
        let kernel_index = |protos: &[Proto], s: usize, item: Item| -> usize {
            protos[s].items[..protos[s].kernel_len]
                .iter()
                .position(|&i| i == item)
                .expect("advanced item must be in target kernel")
        };

        for (s, proto) in protos.iter().enumerate() {
            for (ki, &kitem) in proto.items[..proto.kernel_len].iter().enumerate() {
                // LR(1) closure of {(kitem, {#})} where # is a probe.
                // Represented as (TerminalSet, has_probe).
                let mut la: HashMap<Item, (TerminalSet, bool)> = HashMap::new();
                la.insert(kitem, (TerminalSet::empty(nterm), true));
                let mut queue = vec![kitem];
                while let Some(it) = queue.pop() {
                    let Some(next) = it.next_symbol(g) else {
                        continue;
                    };
                    if g.kind(next) != SymbolKind::Nonterminal {
                        continue;
                    }
                    let (cur_set, cur_probe) = la[&it].clone();
                    let beta = &it.tail(g)[1..];
                    let mut add = analysis.first_of_seq(g, beta, &TerminalSet::empty(nterm));
                    let pass_through = analysis.seq_nullable(g, beta);
                    if pass_through {
                        add.union_with(&cur_set);
                    }
                    let add_probe = pass_through && cur_probe;
                    for &pid in g.prods_of(next) {
                        let target = Item::start(pid);
                        let entry = la
                            .entry(target)
                            .or_insert_with(|| (TerminalSet::empty(nterm), false));
                        let mut changed = entry.0.union_with(&add);
                        if add_probe && !entry.1 {
                            entry.1 = true;
                            changed = true;
                        }
                        if changed {
                            queue.push(target);
                        }
                    }
                }
                // Distribute to successor kernels.
                for (it, (set, probe)) in &la {
                    let Some(next) = it.next_symbol(g) else {
                        continue;
                    };
                    let t = proto
                        .transitions
                        .iter()
                        .find(|&&(sym, _)| sym == next)
                        .map(|&(_, id)| id.index())
                        .expect("transition exists for item with next symbol");
                    let tj = kernel_index(&protos, t, it.advance(g));
                    kernel_la[t][tj].union_with(set);
                    if *probe {
                        links.push(((s, ki), (t, tj)));
                    }
                }
            }
        }

        // Propagate to fixpoint.
        loop {
            let mut changed = false;
            for &((fs, fi), (ts, ti)) in &links {
                let snap = kernel_la[fs][fi].clone();
                changed |= kernel_la[ts][ti].union_with(&snap);
            }
            if !changed {
                break;
            }
        }

        // --- Extend lookaheads to closure items (per-state fixpoint) ----
        let mut states: Vec<State> = Vec::with_capacity(protos.len());
        for (s, proto) in protos.into_iter().enumerate() {
            let n = proto.items.len();
            let mut las: Vec<TerminalSet> = vec![TerminalSet::empty(nterm); n];
            las[..proto.kernel_len].clone_from_slice(&kernel_la[s]);
            let pos: HashMap<Item, usize> = proto
                .items
                .iter()
                .enumerate()
                .map(|(i, &it)| (it, i))
                .collect();
            loop {
                let mut changed = false;
                for i in 0..n {
                    let it = proto.items[i];
                    let Some(next) = it.next_symbol(g) else {
                        continue;
                    };
                    if g.kind(next) != SymbolKind::Nonterminal {
                        continue;
                    }
                    let beta = &it.tail(g)[1..];
                    let mut add = analysis.first_of_seq(g, beta, &TerminalSet::empty(nterm));
                    if analysis.seq_nullable(g, beta) {
                        let snap = las[i].clone();
                        add.union_with(&snap);
                    }
                    for &pid in g.prods_of(next) {
                        let j = pos[&Item::start(pid)];
                        changed |= las[j].union_with(&add);
                    }
                }
                if !changed {
                    break;
                }
            }
            states.push(State {
                items: proto.items,
                lookaheads: las,
                kernel_len: proto.kernel_len,
                transitions: proto.transitions,
                accessing_symbol: proto.accessing_symbol,
            });
        }

        Automaton { states, analysis }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// A state by id.
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id.index()]
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len() as u32).map(StateId)
    }

    /// The grammar analyses computed during construction.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Builds action/goto tables, resolving conflicts by precedence and
    /// recording the rest. See [`Tables`].
    pub fn tables(&self, g: &Grammar) -> Tables {
        Tables::build(g, self)
    }

    /// Renders a state like the paper's Figure 2 (items with lookaheads,
    /// then transitions).
    pub fn dump_state(&self, g: &Grammar, id: StateId) -> String {
        let st = self.state(id);
        let mut out = format!("State {}\n", id.0);
        for (i, &it) in st.items().iter().enumerate() {
            let la: Vec<&str> = st
                .lookahead(i)
                .iter()
                .map(|t| g.display_name(g.terminal(t)))
                .collect();
            out.push_str(&format!("  {}  {{{}}}\n", it.display(g), la.join(", ")));
        }
        for &(sym, target) in st.transitions() {
            out.push_str(&format!(
                "  {} => State {}\n",
                g.display_name(sym),
                target.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::Grammar;

    /// The paper's Figure 1 grammar.
    fn figure1() -> Grammar {
        Grammar::parse(
            "%start stmt
             %%
             stmt : 'if' expr 'then' stmt 'else' stmt
                  | 'if' expr 'then' stmt
                  | expr '?' stmt stmt
                  | 'arr' '[' expr ']' ':=' expr
                  ;
             expr : num | expr '+' expr ;
             num  : digit | num digit ;",
        )
        .unwrap()
    }

    #[test]
    fn figure1_state_count_matches_paper() {
        // Table 1 row `figure1`: 24 states.
        let g = figure1();
        let auto = Automaton::build(&g);
        assert_eq!(auto.state_count(), 24);
    }

    #[test]
    fn start_state_has_closure_of_start_symbol() {
        let g = figure1();
        let auto = Automaton::build(&g);
        let s0 = auto.state(StateId::START);
        assert_eq!(s0.kernel_len(), 1);
        // 1 accept + 4 stmt + 2 expr + 2 num items.
        assert_eq!(s0.items().len(), 9);
        assert_eq!(s0.accessing_symbol(), None);
    }

    #[test]
    fn accessing_symbols_are_consistent() {
        let g = figure1();
        let auto = Automaton::build(&g);
        for id in auto.state_ids() {
            for &(sym, target) in auto.state(id).transitions() {
                assert_eq!(auto.state(target).accessing_symbol(), Some(sym));
            }
        }
    }

    #[test]
    fn dangling_else_lookaheads() {
        // Find the state containing `stmt -> if expr then stmt ·` — its
        // lookahead must contain both `else` (enabling the conflict) and $.
        let g = figure1();
        let auto = Automaton::build(&g);
        let stmt = g.symbol_named("stmt").unwrap();
        let short_if = g.prods_of(stmt)[1];
        let else_t = g.tindex(g.symbol_named("else").unwrap());
        let eof = g.tindex(SymbolId::EOF);
        let mut found = false;
        for id in auto.state_ids() {
            let st = auto.state(id);
            for (i, &it) in st.items().iter().enumerate() {
                if it.prod() == short_if && it.is_reduce(&g) {
                    found = true;
                    assert!(
                        st.lookahead(i).contains(else_t),
                        "{}",
                        auto.dump_state(&g, id)
                    );
                    assert!(st.lookahead(i).contains(eof));
                    // That same state must also contain the long-if shift item.
                    let long_if = g.prods_of(stmt)[0];
                    let shift = Item::new(long_if, 4);
                    assert!(st.item_index(shift).is_some());
                }
            }
        }
        assert!(found, "reduce item never appeared");
    }

    #[test]
    fn closure_item_lookaheads_match_figure2() {
        // In Figure 2's State 6 the closure item `expr -> · num` has
        // lookahead {then, +}.
        let g = figure1();
        let auto = Automaton::build(&g);
        let s6 = auto
            .state(StateId::START)
            .transition(g.symbol_named("if").unwrap())
            .unwrap();
        let st = auto.state(s6);
        let expr = g.symbol_named("expr").unwrap();
        let num_prod = g.prods_of(expr)[0];
        let idx = st.item_index(Item::start(num_prod)).unwrap();
        let la = st.lookahead(idx);
        let then_t = g.tindex(g.symbol_named("then").unwrap());
        let plus_t = g.tindex(g.symbol_named("+").unwrap());
        assert!(la.contains(then_t));
        assert!(la.contains(plus_t));
        assert_eq!(la.len(), 2, "{}", auto.dump_state(&g, s6));
    }

    #[test]
    fn lr0_grammar_has_deterministic_lookaheads() {
        let g = Grammar::parse("%% s : s A | A ;").unwrap();
        let auto = Automaton::build(&g);
        // Left-recursive list grammar: 4 LR(0) states + accept bookkeeping.
        assert!(auto.state_count() >= 4);
        // No state may contain two reduce items with intersecting lookaheads.
        for id in auto.state_ids() {
            let st = auto.state(id);
            let reduces: Vec<usize> = (0..st.items().len())
                .filter(|&i| st.items()[i].is_reduce(&g))
                .collect();
            for (a, &i) in reduces.iter().enumerate() {
                for &j in &reduces[a + 1..] {
                    assert!(!st.lookahead(i).intersects(st.lookahead(j)));
                }
            }
        }
    }
}
