//! Action/goto tables with yacc-style precedence resolution.

use lalrcex_grammar::{Assoc, Grammar, ProdId, SymbolId, SymbolKind};

use crate::automaton::{Automaton, StateId};
use crate::conflict::{Conflict, ConflictKind};

/// A parser action for one (state, terminal) cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Action {
    /// Syntax error.
    #[default]
    Error,
    /// Shift the terminal and go to the state.
    Shift(StateId),
    /// Reduce by the production.
    Reduce(ProdId),
    /// Accept the input.
    Accept,
}

/// A conflict that was silently resolved by precedence/associativity
/// declarations (§2.4) rather than reported.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Resolution {
    /// State of the would-be conflict.
    pub state: StateId,
    /// Lookahead terminal.
    pub terminal: SymbolId,
    /// The production whose reduction participated.
    pub reduce_prod: ProdId,
    /// The action that won.
    pub chosen: Action,
}

/// Parse tables plus the conflicts that survived precedence resolution.
///
/// Unresolved conflicts get the yacc defaults in the table (shift beats
/// reduce; the earlier production beats the later one) so the deterministic
/// parser always runs, but each one is recorded in [`Tables::conflicts`] —
/// the work list of the counterexample engine.
pub struct Tables {
    nterm: usize,
    nnont: usize,
    action: Vec<Action>,
    goto_: Vec<Option<StateId>>,
    conflicts: Vec<Conflict>,
    resolutions: Vec<Resolution>,
}

impl Tables {
    pub(crate) fn build(g: &Grammar, auto: &Automaton) -> Tables {
        let nterm = g.terminal_count();
        let nnont = g.nonterminal_count();
        let nstates = auto.state_count();
        let mut action = vec![Action::Error; nstates * nterm];
        let mut goto_ = vec![None; nstates * nnont];
        let mut conflicts = Vec::new();
        let mut resolutions = Vec::new();

        for sid in auto.state_ids() {
            let st = auto.state(sid);
            for &(sym, target) in st.transitions() {
                match g.kind(sym) {
                    SymbolKind::Terminal => {
                        // The augmented production ends in `$end`; shifting
                        // it is acceptance.
                        action[sid.index() * nterm + g.tindex(sym)] = if sym == SymbolId::EOF {
                            Action::Accept
                        } else {
                            Action::Shift(target)
                        };
                    }
                    SymbolKind::Nonterminal => {
                        goto_[sid.index() * nnont + g.ntindex(sym)] = Some(target);
                    }
                }
            }
            for (i, &it) in st.items().iter().enumerate() {
                if !it.is_reduce(g) {
                    continue;
                }
                let prod = it.prod();
                for t in st.lookahead(i).iter() {
                    let term = g.terminal(t);
                    let cell = &mut action[sid.index() * nterm + t];
                    let new = if prod == g.accept_prod() {
                        Action::Accept
                    } else {
                        Action::Reduce(prod)
                    };
                    match *cell {
                        Action::Error => *cell = new,
                        // Acceptance is a shift of `$end`, so a reduction
                        // clashing with it is a shift/reduce conflict on
                        // the end-of-input marker.
                        Action::Shift(_) | Action::Accept => {
                            // Shift/reduce: try precedence first.
                            let pp = g.prod(prod).precedence();
                            let tp = g.terminal_prec(term);
                            match (pp, tp) {
                                (Some(pp), Some(tp)) => {
                                    let chosen = if pp.level > tp.level {
                                        *cell = new;
                                        new
                                    } else if pp.level < tp.level {
                                        *cell // shift stays
                                    } else {
                                        match pp.assoc {
                                            Assoc::Left => {
                                                *cell = new;
                                                new
                                            }
                                            Assoc::Right => *cell,
                                            Assoc::Nonassoc => {
                                                *cell = Action::Error;
                                                Action::Error
                                            }
                                        }
                                    };
                                    resolutions.push(Resolution {
                                        state: sid,
                                        terminal: term,
                                        reduce_prod: prod,
                                        chosen,
                                    });
                                }
                                _ => {
                                    // Unresolved: default shift, report one
                                    // conflict per shift item (CUP counts a
                                    // conflict for every reduce/shift item
                                    // pair — the paper's Figure 7 state has
                                    // two).
                                    let mut any = false;
                                    for shift_item in st
                                        .items()
                                        .iter()
                                        .copied()
                                        .filter(|si| si.next_symbol(g) == Some(term))
                                    {
                                        any = true;
                                        conflicts.push(Conflict {
                                            state: sid,
                                            terminal: term,
                                            reduce_prod: prod,
                                            kind: ConflictKind::ShiftReduce { shift_item },
                                        });
                                    }
                                    if !any {
                                        // An Accept cell produced by the
                                        // completed accept item (not by a
                                        // `$end` shift): a reduce/reduce
                                        // clash with the accept production.
                                        conflicts.push(Conflict {
                                            state: sid,
                                            terminal: term,
                                            reduce_prod: g.accept_prod(),
                                            kind: ConflictKind::ReduceReduce { other_prod: prod },
                                        });
                                    }
                                }
                            }
                        }
                        Action::Reduce(p2) => {
                            // Reduce/reduce: report; earlier production wins.
                            let (first, second) = if p2 < prod { (p2, prod) } else { (prod, p2) };
                            conflicts.push(Conflict {
                                state: sid,
                                terminal: term,
                                reduce_prod: first,
                                kind: ConflictKind::ReduceReduce { other_prod: second },
                            });
                            *cell = Action::Reduce(first);
                        }
                    }
                }
            }
        }

        // One conflict may surface under many lookahead terminals (an
        // eqn-style reduce/reduce pair clashes on every terminal in the
        // intersected lookahead sets). Like CUP, count it once per
        // (state, item pair), keeping the first terminal as the
        // representative conflict symbol.
        let mut seen = std::collections::HashSet::new();
        conflicts.retain(|c| seen.insert((c.state, c.reduce_prod, c.kind)));

        Tables {
            nterm,
            nnont,
            action,
            goto_,
            conflicts,
            resolutions,
        }
    }

    /// The action for `state` on terminal `term`.
    ///
    /// # Panics
    ///
    /// Panics if `term` is a nonterminal.
    pub fn action(&self, g: &Grammar, state: StateId, term: SymbolId) -> Action {
        self.action[state.index() * self.nterm + g.tindex(term)]
    }

    /// The goto target for `state` on nonterminal `nt`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `nt` is a terminal.
    pub fn goto(&self, g: &Grammar, state: StateId, nt: SymbolId) -> Option<StateId> {
        self.goto_[state.index() * self.nnont + g.ntindex(nt)]
    }

    /// The conflicts that survived precedence resolution, in (state,
    /// terminal) order of discovery.
    pub fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// Conflicts silently resolved by precedence declarations.
    pub fn resolutions(&self) -> &[Resolution] {
        &self.resolutions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Automaton;
    use lalrcex_grammar::Grammar;

    #[test]
    fn dangling_else_is_one_shift_reduce_conflict() {
        let g = Grammar::parse("%% s : 'if' e 'then' s 'else' s | 'if' e 'then' s | X ; e : Y ;")
            .unwrap();
        let auto = Automaton::build(&g);
        let t = auto.tables(&g);
        assert_eq!(t.conflicts().len(), 1);
        let c = &t.conflicts()[0];
        assert_eq!(g.display_name(c.terminal), "else");
        assert!(matches!(c.kind, ConflictKind::ShiftReduce { .. }));
        // Default resolution is shift.
        assert!(matches!(
            t.action(&g, c.state, c.terminal),
            Action::Shift(_)
        ));
    }

    #[test]
    fn precedence_resolves_expression_conflicts() {
        let g = Grammar::parse(
            "%left '+'
             %left '*'
             %% e : e '+' e | e '*' e | NUM ;",
        )
        .unwrap();
        let auto = Automaton::build(&g);
        let t = auto.tables(&g);
        assert!(t.conflicts().is_empty(), "{:?}", t.conflicts());
        assert!(!t.resolutions().is_empty());
    }

    #[test]
    fn left_assoc_chooses_reduce() {
        let g = Grammar::parse("%left '+' %% e : e '+' e | NUM ;").unwrap();
        let auto = Automaton::build(&g);
        let t = auto.tables(&g);
        let r = t
            .resolutions()
            .iter()
            .find(|r| g.display_name(r.terminal) == "+")
            .unwrap();
        assert!(matches!(r.chosen, Action::Reduce(_)));
    }

    #[test]
    fn nonassoc_resolves_to_error() {
        let g = Grammar::parse("%nonassoc EQ %% e : e EQ e | NUM ;").unwrap();
        let auto = Automaton::build(&g);
        let t = auto.tables(&g);
        let r = t
            .resolutions()
            .iter()
            .find(|r| g.display_name(r.terminal) == "EQ")
            .unwrap();
        assert_eq!(r.chosen, Action::Error);
        assert_eq!(t.action(&g, r.state, r.terminal), Action::Error);
    }

    #[test]
    fn reduce_reduce_conflict_reported_and_earlier_prod_wins() {
        // Classic r/r: two nonterminals deriving the same terminal with the
        // same follow.
        let g = Grammar::parse("%% s : a X | b X ; a : T ; b : T ;").unwrap();
        let auto = Automaton::build(&g);
        let t = auto.tables(&g);
        assert!(t
            .conflicts()
            .iter()
            .any(|c| matches!(c.kind, ConflictKind::ReduceReduce { .. })));
        let c = t
            .conflicts()
            .iter()
            .find(|c| matches!(c.kind, ConflictKind::ReduceReduce { .. }))
            .unwrap();
        match t.action(&g, c.state, c.terminal) {
            Action::Reduce(p) => assert_eq!(p, c.reduce_prod, "earlier production wins"),
            other => panic!("expected reduce, got {other:?}"),
        }
    }

    #[test]
    fn unambiguous_grammar_has_clean_tables() {
        let g = Grammar::parse("%% s : s A | A ;").unwrap();
        let auto = Automaton::build(&g);
        let t = auto.tables(&g);
        assert!(t.conflicts().is_empty());
        assert!(t.resolutions().is_empty());
    }

    #[test]
    fn figure3_grammar_conflict_is_shift_reduce() {
        // Paper Figure 3: unambiguous but not LALR — 1 conflict.
        let g = Grammar::parse("%% S : T | S T ; T : X | Y ; X : 'a' ; Y : 'a' 'a' 'b' ;").unwrap();
        let auto = Automaton::build(&g);
        assert_eq!(auto.state_count(), 10, "Table 1 row figure3: 10 states");
        let t = auto.tables(&g);
        assert_eq!(t.conflicts().len(), 1);
        let c = &t.conflicts()[0];
        assert_eq!(g.display_name(c.terminal), "a");
        assert!(matches!(c.kind, ConflictKind::ShiftReduce { .. }));
        assert!(c.describe(&g).contains("Shift/Reduce"));
    }
}
