//! LALR(1) parser construction and runtimes.
//!
//! This crate is the parser-generator substrate of the `lalrcex` toolkit
//! (reproducing Isradisaikul & Myers, PLDI 2015). It builds, from a
//! [`Grammar`](lalrcex_grammar::Grammar):
//!
//! * an LR(0) [`Automaton`] whose states carry full item sets,
//! * LALR(1) per-item lookahead sets (computed by spontaneous-generation /
//!   propagation, equivalent to the DeRemer–Pennello sets for reduce items),
//! * [`Tables`] with yacc-style precedence resolution and a list of the
//!   remaining [`Conflict`]s — the inputs to the counterexample engine,
//! * a deterministic table-driven [`parser`], and
//! * a nondeterministic [`glr`] runtime used as an independent ambiguity
//!   oracle in tests.
//!
//! # Example
//!
//! ```
//! use lalrcex_grammar::Grammar;
//! use lalrcex_lr::Automaton;
//!
//! // The classic dangling-else grammar has one shift/reduce conflict.
//! let g = Grammar::parse(
//!     "%%
//!      s : 'if' E 'then' s 'else' s | 'if' E 'then' s | OTHER ;
//!      E : ID ;",
//! )?;
//! let auto = Automaton::build(&g);
//! let tables = auto.tables(&g);
//! assert_eq!(tables.conflicts().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod automaton;
mod conflict;
pub mod glr;
mod item;
pub mod parser;
mod table;

pub use automaton::{Automaton, State, StateId};
pub use conflict::{Conflict, ConflictKind};
pub use item::Item;
pub use table::{Action, Resolution, Tables};
