//! A nondeterministic (GLR-style) runtime that enumerates parse trees.
//!
//! Where the deterministic [`parser`](crate::parser) follows the resolved
//! tables, this runtime explores *every* action the automaton allows —
//! shifts and all lookahead-compatible reductions — so it finds every
//! derivation of the input, bounded by [`Limits`]. It is used as an
//! independent oracle: a unifying counterexample produced by the search
//! engine must have at least two distinct parses here.
//!
//! Inputs may be *sentential forms*: nonterminal symbols in the input are
//! consumed directly by the corresponding goto transition, which is exactly
//! a derivation that leaves the nonterminal unexpanded (§3.2 of the paper
//! prefers such counterexamples).

use std::collections::HashSet;

use lalrcex_grammar::{Derivation, Grammar, SymbolId, SymbolKind};

use crate::automaton::{Automaton, StateId};

/// Exploration bounds for the nondeterministic runtime.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Stop after collecting this many distinct parse trees.
    pub max_parses: usize,
    /// Abort exploration after this many elementary steps (guards against
    /// cyclic grammars where the number of derivations is infinite).
    pub max_steps: usize,
    /// Maximum recursion depth (guards against unit/ε-cycles that reduce
    /// forever without consuming input).
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_parses: 8,
            max_steps: 200_000,
            max_depth: 512,
        }
    }
}

struct Search<'a> {
    g: &'a Grammar,
    auto: &'a Automaton,
    input: &'a [SymbolId],
    limits: Limits,
    steps: usize,
    out: HashSet<Derivation>,
}

impl Search<'_> {
    fn explore(
        &mut self,
        states: &mut Vec<StateId>,
        values: &mut Vec<Derivation>,
        pos: usize,
        depth: usize,
    ) {
        if self.out.len() >= self.limits.max_parses
            || self.steps >= self.limits.max_steps
            || depth >= self.limits.max_depth
        {
            return;
        }
        self.steps += 1;
        let state = *states.last().expect("stack never empty");
        let st = self.auto.state(state);
        let look = self.input.get(pos).copied();

        // Accept: all input consumed and the state can shift `$end`
        // (i.e. it holds `$accept -> start · $end`).
        if look.is_none() && st.transition(SymbolId::EOF).is_some() && values.len() == 1 {
            self.out.insert(values[0].clone());
        }

        // Shift (terminal or nonterminal input symbol).
        if let Some(sym) = look {
            if let Some(next) = st.transition(sym) {
                states.push(next);
                values.push(Derivation::Leaf(sym));
                self.explore(states, values, pos + 1, depth + 1);
                values.pop();
                states.pop();
            }
        }

        // Reductions compatible with the lookahead.
        for (i, &it) in st.items().iter().enumerate() {
            if !it.is_reduce(self.g) || it.prod() == self.g.accept_prod() {
                continue;
            }
            if !self.lookahead_compatible(st.lookahead(i), look) {
                continue;
            }
            let n = self.g.prod(it.prod()).rhs().len();
            if n >= states.len() {
                continue; // not enough context on this stack
            }
            let saved_states: Vec<StateId> = states.split_off(states.len() - n);
            let children: Vec<Derivation> = values.split_off(values.len() - n);
            let lhs = self.g.prod(it.prod()).lhs();
            let top = *states.last().expect("stack never empty");
            if let Some(next) = self.auto.state(top).transition(lhs) {
                states.push(next);
                values.push(Derivation::Node(lhs, children.clone()));
                self.explore(states, values, pos, depth + 1);
                values.pop();
                states.pop();
            }
            states.extend(saved_states);
            values.extend(children);
        }
    }

    /// Sound pruning: a reduction can only be part of a successful parse if
    /// the upcoming symbol can begin something in the item's lookahead set.
    fn lookahead_compatible(
        &self,
        la: &lalrcex_grammar::TerminalSet,
        look: Option<SymbolId>,
    ) -> bool {
        match look {
            None => la.contains(self.g.tindex(SymbolId::EOF)),
            Some(sym) => match self.g.kind(sym) {
                SymbolKind::Terminal => la.contains(self.g.tindex(sym)),
                SymbolKind::Nonterminal => {
                    self.auto.analysis().first(sym).intersects(la)
                        || self.auto.analysis().nullable(sym)
                }
            },
        }
    }
}

/// Enumerates distinct parse trees of `input` (a sentential form) as
/// derivations of the start symbol, up to the given limits.
pub fn parses(
    g: &Grammar,
    auto: &Automaton,
    input: &[SymbolId],
    limits: Limits,
) -> Vec<Derivation> {
    let mut search = Search {
        g,
        auto,
        input,
        limits,
        steps: 0,
        out: HashSet::new(),
    };
    let mut states = vec![StateId::START];
    let mut values = Vec::new();
    search.explore(&mut states, &mut values, 0, 0);
    let mut v: Vec<Derivation> = search.out.into_iter().collect();
    v.sort_by_key(|d| format!("{d:?}"));
    v
}

/// `true` if `input` has at least two distinct parses.
pub fn is_ambiguous_sentence(g: &Grammar, auto: &Automaton, input: &[SymbolId]) -> bool {
    parses(
        g,
        auto,
        input,
        Limits {
            max_parses: 2,
            ..Limits::default()
        },
    )
    .len()
        >= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Automaton;
    use lalrcex_grammar::Grammar;

    fn setup(src: &str) -> (Grammar, Automaton) {
        let g = Grammar::parse(src).unwrap();
        let auto = Automaton::build(&g);
        (g, auto)
    }

    fn syms(g: &Grammar, names: &[&str]) -> Vec<SymbolId> {
        names.iter().map(|n| g.symbol_named(n).unwrap()).collect()
    }

    #[test]
    fn unambiguous_input_has_one_parse() {
        let (g, auto) = setup("%% list : list ITEM | ITEM ;");
        let p = parses(&g, &auto, &syms(&g, &["ITEM", "ITEM"]), Limits::default());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn ambiguous_expression_has_two_parses() {
        let (g, auto) = setup("%% e : e '+' e | N ;");
        let input = syms(&g, &["N", "+", "N", "+", "N"]);
        let p = parses(&g, &auto, &input, Limits::default());
        assert_eq!(p.len(), 2, "{p:#?}");
        assert!(is_ambiguous_sentence(&g, &auto, &input));
        assert!(!is_ambiguous_sentence(
            &g,
            &auto,
            &syms(&g, &["N", "+", "N"])
        ));
    }

    #[test]
    fn sentential_form_with_nonterminals() {
        // The paper's §2.4 counterexample: `expr + expr + expr` with expr
        // left as a nonterminal has two parses.
        let (g, auto) = setup("%% e : e '+' e | N ;");
        let e = g.symbol_named("e").unwrap();
        let plus = g.symbol_named("+").unwrap();
        let input = vec![e, plus, e, plus, e];
        assert!(is_ambiguous_sentence(&g, &auto, &input));
        assert!(!is_ambiguous_sentence(&g, &auto, &[e, plus, e]));
    }

    #[test]
    fn dangling_else_counterexample_is_ambiguous() {
        let (g, auto) = setup("%% s : 'if' E 'then' s 'else' s | 'if' E 'then' s | X ; E : Y ;");
        let input = syms(
            &g,
            &["if", "E", "then", "if", "E", "then", "s", "else", "s"],
        );
        assert!(is_ambiguous_sentence(&g, &auto, &input));
    }

    #[test]
    fn figure3_is_unambiguous_despite_conflict() {
        let (g, auto) = setup("%% S : T | S T ; T : X | Y ; X : 'a' ; Y : 'a' 'a' 'b' ;");
        for input in [
            syms(&g, &["a"]),
            syms(&g, &["a", "a", "b"]),
            syms(&g, &["a", "a", "a", "b"]),
            syms(&g, &["a", "a", "b", "a"]),
            syms(&g, &["a", "a", "a", "a", "b", "a"]),
        ] {
            let p = parses(&g, &auto, &input, Limits::default());
            assert_eq!(p.len(), 1, "input {:?}", g.format_symbols(&input));
        }
    }

    #[test]
    fn rejects_garbage() {
        let (g, auto) = setup("%% s : A B ;");
        assert!(parses(&g, &auto, &syms(&g, &["B"]), Limits::default()).is_empty());
        assert!(parses(&g, &auto, &[], Limits::default()).is_empty());
    }

    #[test]
    fn respects_max_parses_limit() {
        let (g, auto) = setup("%% e : e '+' e | N ;");
        let input = syms(&g, &["N", "+", "N", "+", "N", "+", "N", "+", "N"]);
        let p = parses(
            &g,
            &auto,
            &input,
            Limits {
                max_parses: 3,
                max_steps: 1_000_000,
                ..Limits::default()
            },
        );
        assert_eq!(p.len(), 3);
    }
}
