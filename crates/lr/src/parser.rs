//! Deterministic table-driven LR parsing.
//!
//! Parses a token stream with the resolved [`Tables`],
//! producing a [`Derivation`] tree. Because unresolved conflicts are given
//! yacc defaults during table construction, this parser is total over the
//! table — but the point of the toolkit is that those defaults may not be
//! what the grammar author meant, which is what counterexamples explain.

use lalrcex_grammar::{Derivation, Grammar, SymbolId, SymbolKind};

use crate::automaton::{Automaton, StateId};
use crate::table::{Action, Tables};

/// A syntax error from [`parse`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// The token at `pos` has no action in the current state.
    UnexpectedToken {
        /// Index into the input token slice.
        pos: usize,
        /// The offending token.
        found: SymbolId,
        /// The state the parser was in.
        state: StateId,
    },
    /// Input ended but the parser expected more.
    UnexpectedEof {
        /// The state the parser was in.
        state: StateId,
    },
    /// The input contained a nonterminal symbol.
    NotATerminal(SymbolId),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnexpectedToken { pos, state, .. } => {
                write!(
                    f,
                    "unexpected token at position {pos} in state {}",
                    state.index()
                )
            }
            ParseError::UnexpectedEof { state } => {
                write!(f, "unexpected end of input in state {}", state.index())
            }
            ParseError::NotATerminal(_) => write!(f, "input symbol is not a terminal"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses `tokens` (terminals only; do not include `$end`) and returns the
/// derivation of the start symbol.
///
/// # Errors
///
/// Returns a [`ParseError`] when the input is not in the language of the
/// *resolved* tables, or contains a nonterminal symbol.
///
/// # Example
///
/// ```
/// use lalrcex_grammar::Grammar;
/// use lalrcex_lr::{parser, Automaton};
///
/// let g = Grammar::parse("%% list : list ITEM | ITEM ;")?;
/// let auto = Automaton::build(&g);
/// let tables = auto.tables(&g);
/// let item = g.symbol_named("ITEM").unwrap();
/// let tree = parser::parse(&g, &auto, &tables, &[item, item, item])?;
/// assert_eq!(tree.leaves().len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse(
    g: &Grammar,
    _auto: &Automaton,
    tables: &Tables,
    tokens: &[SymbolId],
) -> Result<Derivation, ParseError> {
    for &t in tokens {
        if g.kind(t) != SymbolKind::Terminal {
            return Err(ParseError::NotATerminal(t));
        }
    }
    let mut states = vec![StateId::START];
    let mut values: Vec<Derivation> = Vec::new();
    let mut pos = 0usize;
    loop {
        let state = *states.last().expect("state stack never empty");
        let look = tokens.get(pos).copied().unwrap_or(SymbolId::EOF);
        match tables.action(g, state, look) {
            Action::Shift(next) => {
                values.push(Derivation::Leaf(look));
                states.push(next);
                pos += 1;
            }
            Action::Reduce(pid) => {
                let n = g.prod(pid).rhs().len();
                let children = values.split_off(values.len() - n);
                states.truncate(states.len() - n);
                let lhs = g.prod(pid).lhs();
                values.push(Derivation::Node(lhs, children));
                let top = *states.last().expect("state stack never empty");
                let next = tables
                    .goto(g, top, lhs)
                    .expect("goto must exist after reduce");
                states.push(next);
            }
            Action::Accept => {
                return Ok(values.pop().expect("accept with value on stack"));
            }
            Action::Error => {
                return Err(if pos < tokens.len() {
                    ParseError::UnexpectedToken {
                        pos,
                        found: look,
                        state,
                    }
                } else {
                    ParseError::UnexpectedEof { state }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Automaton;
    use lalrcex_grammar::Grammar;

    fn setup(src: &str) -> (Grammar, Automaton, Tables) {
        let g = Grammar::parse(src).unwrap();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        (g, auto, tables)
    }

    fn toks(g: &Grammar, names: &[&str]) -> Vec<SymbolId> {
        names.iter().map(|n| g.symbol_named(n).unwrap()).collect()
    }

    #[test]
    fn parses_left_recursive_list() {
        let (g, auto, t) = setup("%% list : list ITEM | ITEM ;");
        let tree = parse(&g, &auto, &t, &toks(&g, &["ITEM", "ITEM"])).unwrap();
        assert_eq!(tree.symbol(), g.symbol_named("list"));
        assert_eq!(tree.leaves().len(), 2);
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let (g, auto, t) = setup(
            "%left '+'
             %left '*'
             %% e : e '+' e | e '*' e | N ;",
        );
        // N + N * N parses as N + (N * N) because * binds tighter.
        let tree = parse(&g, &auto, &t, &toks(&g, &["N", "+", "N", "*", "N"])).unwrap();
        let Derivation::Node(_, children) = &tree else {
            panic!("root must be a node");
        };
        assert_eq!(children.len(), 3);
        assert_eq!(g.display_name(children[1].symbol().unwrap()), "+");
        assert_eq!(children[2].leaves().len(), 3, "rhs holds N * N");
    }

    #[test]
    fn left_assoc_groups_left() {
        let (g, auto, t) = setup("%left '-' %% e : e '-' e | N ;");
        // N - N - N must parse as (N - N) - N.
        let tree = parse(&g, &auto, &t, &toks(&g, &["N", "-", "N", "-", "N"])).unwrap();
        let Derivation::Node(_, children) = &tree else {
            panic!()
        };
        assert_eq!(children[0].leaves().len(), 3, "lhs holds N - N");
    }

    #[test]
    fn dangling_else_default_binds_tight() {
        let (g, auto, t) = setup("%% s : 'if' E 'then' s 'else' s | 'if' E 'then' s | X ; E : Y ;");
        // Default (shift) attaches else to the inner if.
        let input = toks(
            &g,
            &["if", "Y", "then", "if", "Y", "then", "X", "else", "X"],
        );
        let tree = parse(&g, &auto, &t, &input).unwrap();
        let Derivation::Node(_, children) = &tree else {
            panic!()
        };
        assert_eq!(children.len(), 4, "outer if has no else branch");
    }

    #[test]
    fn syntax_error_reports_position() {
        let (g, auto, t) = setup("%% s : A B ;");
        let err = parse(&g, &auto, &t, &toks(&g, &["A", "A"])).unwrap_err();
        assert!(matches!(err, ParseError::UnexpectedToken { pos: 1, .. }));
        let err2 = parse(&g, &auto, &t, &toks(&g, &["A"])).unwrap_err();
        assert!(matches!(err2, ParseError::UnexpectedEof { .. }));
    }

    #[test]
    fn rejects_nonterminal_input() {
        let (g, auto, t) = setup("%% s : A ;");
        let s = g.symbol_named("s").unwrap();
        assert!(matches!(
            parse(&g, &auto, &t, &[s]),
            Err(ParseError::NotATerminal(_))
        ));
    }

    #[test]
    fn empty_input_for_nullable_grammar() {
        let (g, auto, t) = setup("%% s : A s | ;");
        let tree = parse(&g, &auto, &t, &[]).unwrap();
        assert!(tree.leaves().is_empty());
    }
}
