//! Parsing conflicts reported by table construction.

use lalrcex_grammar::{Grammar, ProdId, SymbolId};

use crate::automaton::{Automaton, StateId};
use crate::item::Item;

/// The kind of a parsing conflict (§2.2–2.3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConflictKind {
    /// A shift action competes with a reduction. `shift_item` is a
    /// representative item of the state with the conflict terminal after
    /// its dot (there may be several; see [`Conflict::shift_items`]).
    ShiftReduce {
        /// One item enabling the shift.
        shift_item: Item,
    },
    /// Two distinct reductions compete on the same lookahead.
    ReduceReduce {
        /// The second (higher-numbered) production.
        other_prod: ProdId,
    },
}

/// A parsing conflict: in `state`, on lookahead `terminal`, the reduction
/// by `reduce_prod` competes with another action.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Conflict {
    /// State in which the conflict occurs.
    pub state: StateId,
    /// The conflict lookahead terminal.
    pub terminal: SymbolId,
    /// The production of the conflict reduce item.
    pub reduce_prod: ProdId,
    /// Shift/reduce or reduce/reduce specifics.
    pub kind: ConflictKind,
}

impl Conflict {
    /// The conflict reduce item `A -> ω ·`.
    pub fn reduce_item(&self, g: &Grammar) -> Item {
        Item::new(self.reduce_prod, g.prod(self.reduce_prod).rhs().len())
    }

    /// The "other" conflict item: the shift item, or the second reduce item.
    pub fn other_item(&self, g: &Grammar) -> Item {
        match self.kind {
            ConflictKind::ShiftReduce { shift_item } => shift_item,
            ConflictKind::ReduceReduce { other_prod } => {
                Item::new(other_prod, g.prod(other_prod).rhs().len())
            }
        }
    }

    /// Every item of the conflict state that can shift the conflict
    /// terminal (nonempty exactly for shift/reduce conflicts).
    pub fn shift_items(&self, g: &Grammar, auto: &Automaton) -> Vec<Item> {
        auto.state(self.state)
            .items()
            .iter()
            .copied()
            .filter(|it| it.next_symbol(g) == Some(self.terminal))
            .collect()
    }

    /// A one-line description in the style of CUP's report (Figure 11).
    pub fn describe(&self, g: &Grammar) -> String {
        match self.kind {
            ConflictKind::ShiftReduce { shift_item } => format!(
                "Shift/Reduce conflict found in state #{} between reduction on {} and shift on {} under symbol {}",
                self.state.index(),
                self.reduce_item(g).display(g),
                shift_item.display(g),
                g.display_name(self.terminal),
            ),
            ConflictKind::ReduceReduce { other_prod } => format!(
                "Reduce/Reduce conflict found in state #{} between reduction on {} and reduction on {} under symbol {}",
                self.state.index(),
                self.reduce_item(g).display(g),
                Item::new(other_prod, g.prod(other_prod).rhs().len()).display(g),
                g.display_name(self.terminal),
            ),
        }
    }
}
