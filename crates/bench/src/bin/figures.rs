//! Regenerates the content of the paper's figures from the implementation.
//!
//! ```text
//! USAGE: figures [fig2|fig3|fig5|fig7|fig9|fig11|all]
//! ```
//!
//! * fig2 — selected parser states of the Figure 1 grammar
//! * fig3 — the unambiguous-but-conflicted grammar and its diagnosis
//! * fig5 — the shortest lookahead-sensitive path for the dangling else
//! * fig7 — both conflicts of the Figure 7 grammar with their examples
//! * fig9 — the four search stages for the §3.1 challenging conflict
//! * fig11 — the CUP-style error message for the §2.4 conflict

#![forbid(unsafe_code)]

use lalrcex_core::{format_report, lssi, Analyzer, CexConfig};
use lalrcex_grammar::{Derivation, Grammar};

fn figure1() -> Grammar {
    lalrcex_corpus::by_name("figure1").unwrap().load().unwrap()
}

fn fig2() {
    println!("=== Figure 2: selected parser states of the Figure 1 grammar ===\n");
    let g = figure1();
    let analyzer = Analyzer::new(&g);
    let auto = analyzer.automaton();
    // Walk the states along `if expr then stmt` as the figure does.
    let mut s = lalrcex_lr::StateId::START;
    println!("{}", auto.dump_state(&g, s));
    for sym in ["if", "expr", "then", "stmt"] {
        s = auto
            .state(s)
            .transition(g.symbol_named(sym).unwrap())
            .unwrap();
        println!("{}", auto.dump_state(&g, s));
    }
}

fn fig3() {
    println!("=== Figure 3: unambiguous CFG with a shift/reduce conflict ===\n");
    let entry = lalrcex_corpus::by_name("figure3").unwrap();
    println!("{}", entry.text());
    let g = entry.load().unwrap();
    let mut analyzer = Analyzer::new(&g);
    let report = analyzer.analyze_all(&CexConfig::default());
    for r in &report.reports {
        println!("{}", format_report(&g, r));
    }
}

fn fig5() {
    println!("=== Figure 5(a): shortest lookahead-sensitive path (dangling else) ===\n");
    let g = figure1();
    let analyzer = Analyzer::new(&g);
    let conflict = *analyzer
        .tables()
        .conflicts()
        .iter()
        .find(|c| g.display_name(c.terminal) == "else")
        .expect("dangling else");
    let path = analyzer.shortest_path(&conflict).expect("path exists");
    println!("{}", lssi::display_path(&g, analyzer.graph(), &path));
    println!("=== Figure 5(b): the path to the conflict shift item ===\n");
    let ex = lalrcex_core::nonunifying_example(
        &g,
        analyzer.automaton(),
        analyzer.graph(),
        &conflict,
        &path,
    )
    .expect("nonunifying example");
    println!(
        "derivation using the reduce item:\n  {}",
        ex.reduce_derivation.pretty(&g)
    );
    if let Some(o) = &ex.other_derivation {
        println!("derivation using the shift item:\n  {}", o.pretty(&g));
    }
}

fn fig7() {
    println!("=== Figure 7: shortest-path prefix vs. the second shift item ===\n");
    let entry = lalrcex_corpus::by_name("figure7").unwrap();
    println!("{}", entry.text());
    let g = entry.load().unwrap();
    let mut analyzer = Analyzer::new(&g);
    let report = analyzer.analyze_all(&CexConfig::default());
    for r in &report.reports {
        println!("{}", format_report(&g, r));
    }
}

/// The subtree of `d` that contains the dot marker, if any.
fn dotted_subtree(d: &Derivation) -> Option<&Derivation> {
    match d {
        Derivation::Dot | Derivation::Leaf(_) => None,
        Derivation::Node(_, children) => {
            if children.iter().any(|c| matches!(c, Derivation::Dot)) {
                return Some(d);
            }
            children.iter().find_map(dotted_subtree)
        }
    }
}

fn fig9() {
    println!("=== Figure 9: search stages for the challenging conflict (§3.1) ===\n");
    let g = figure1();
    let mut analyzer = Analyzer::new(&g);
    let conflict = *analyzer
        .tables()
        .conflicts()
        .iter()
        .find(|c| g.display_name(c.terminal) == "digit")
        .expect("challenging conflict");
    let r = analyzer.analyze_conflict(&conflict, &CexConfig::default());
    let u = r.unifying.as_ref().expect("unifying example found");
    println!(
        "Stage 1 — completion of the conflict reduce item:\n  {}",
        dotted_subtree(&u.derivation1)
            .unwrap_or(&u.derivation1)
            .pretty(&g)
    );
    println!(
        "\nStage 2 — completion of the conflict shift item:\n  {}",
        dotted_subtree(&u.derivation2)
            .unwrap_or(&u.derivation2)
            .pretty(&g)
    );
    println!(
        "\nStage 3 — the unifying nonterminal: {}",
        g.display_name(u.nonterminal)
    );
    println!(
        "\nStage 4 — the completed unifying counterexample:\n  {}\n  via {}\n  and {}",
        u.derivation1.flat(&g),
        u.derivation1.pretty(&g),
        u.derivation2.pretty(&g),
    );
}

fn fig11() {
    println!("=== Figure 11: the CUP-style report for the §2.4 conflict ===\n");
    let g = figure1();
    let mut analyzer = Analyzer::new(&g);
    let conflict = *analyzer
        .tables()
        .conflicts()
        .iter()
        .find(|c| g.display_name(c.terminal) == "+")
        .expect("expression conflict");
    let r = analyzer.analyze_conflict(&conflict, &CexConfig::default());
    println!("{}", format_report(&g, &r));
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig5" => fig5(),
        "fig7" => fig7(),
        "fig9" => fig9(),
        "fig11" => fig11(),
        "all" => {
            fig2();
            fig3();
            fig5();
            fig7();
            fig9();
            fig11();
        }
        other => {
            eprintln!("unknown figure {other}; use fig2|fig3|fig5|fig7|fig9|fig11|all");
            std::process::exit(2);
        }
    }
}
