//! The §7.2 comparison: PPG-style lookahead-blind counterexamples versus
//! this implementation, across the evaluation corpus.
//!
//! The paper reports that PPG "produces misleading results on ten
//! benchmark grammars". This binary runs the PPG reconstruction on every
//! corpus grammar (skipping the very large ones by default; pass `--all`),
//! flags the invalid examples, and shows what our engine reports instead.

#![forbid(unsafe_code)]

use lalrcex_baselines::ppg;
use lalrcex_core::{Analyzer, CexConfig};
use lalrcex_lr::Automaton;

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    let heavy = ["java-ext1", "java-ext2", "Java.2"];
    let mut misleading_grammars = Vec::new();
    for entry in lalrcex_corpus::all() {
        if !all && heavy.contains(&entry.name) {
            continue;
        }
        let g = entry.load().expect("corpus grammars parse");
        let auto = Automaton::build(&g);
        let report = ppg::validity_report(&g, &auto);
        let invalid: Vec<_> = report.iter().filter(|(_, _, ok)| !ok).collect();
        if invalid.is_empty() {
            println!(
                "{:<12} {} PPG examples, all valid",
                entry.name,
                report.len()
            );
            continue;
        }
        misleading_grammars.push(entry.name);
        println!(
            "{:<12} {} PPG examples, {} MISLEADING:",
            entry.name,
            report.len(),
            invalid.len()
        );
        let mut analyzer = Analyzer::new(&g);
        for (c, ex, _) in invalid.iter().take(3) {
            println!(
                "    PPG claims: {}  (reduction on {})",
                ex.display(&g),
                g.format_prod(c.reduce_prod)
            );
            let r = analyzer.analyze_conflict(c, &CexConfig::default());
            if let Some(u) = &r.unifying {
                println!("    ours:       {}", u.derivation1.flat(&g));
            } else if let Some(n) = &r.nonunifying {
                println!("    ours:       {}", n.reduce_derivation.flat(&g));
            }
        }
    }
    println!(
        "\n{} grammars with misleading PPG counterexamples (paper: 10 of its corpus)",
        misleading_grammars.len()
    );
    println!("{}", misleading_grammars.join(", "));
}
