//! Regenerates Table 1 of the paper (§7): for every corpus grammar, the
//! complexity, conflict counts, counterexample kinds, and timings — with
//! the paper's reported numbers printed alongside for comparison.
//!
//! ```text
//! USAGE: table1 [--fast] [--baseline] [--only NAME] [--time-limit SECS]
//!               [--workers N]
//!
//!   --fast             skip the four largest grammars (java-ext*, Java.2)
//!   --baseline         also run the grammar-filtered bounded search
//!                      (CFGAnalyzer stand-in) per grammar — slow
//!   --only NAME        run a single row
//!   --time-limit SECS  per-conflict unifying budget (default 5)
//!   --workers N        worker threads for the per-conflict fan-out
//!                      (default 0 = one per CPU)
//! ```

#![forbid(unsafe_code)]

use std::time::Duration;

use lalrcex_baselines::amber::Budget;
use lalrcex_bench::{fmt_secs, geometric_mean, paper_config, run_baseline, run_entry, Row};

fn main() {
    let mut fast = false;
    let mut baseline = false;
    let mut only: Option<String> = None;
    let mut time_limit = Duration::from_secs(5);
    let mut workers: usize = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--baseline" => baseline = true,
            "--only" => only = args.next(),
            "--time-limit" => {
                time_limit =
                    Duration::from_secs(args.next().and_then(|s| s.parse().ok()).unwrap_or(5))
            }
            "--workers" => workers = args.next().and_then(|s| s.parse().ok()).unwrap_or(0),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = paper_config();
    cfg.search.time_limit = time_limit;
    cfg.workers = workers;

    let heavy = ["java-ext1", "java-ext2", "Java.2"];
    println!(
        "{:<12} | {:>4} {:>5} {:>6} | {:>5} | {:>5} {:>7} {:>5} | {:>9} {:>9} | {:>9} {:>8} {:>4} | {:>4} {:>5} {:>4} {:>8} | paper(conf u/n/t)",
        "grammar", "nt", "prods", "states", "conf", "unif", "nonunif", "tout", "total(s)", "avg(s)",
        "explored", "deduped", "memo", "tac", "merge", "prec", "prov(ms)"
    );
    println!("{}", "-".repeat(162));

    let mut rows: Vec<Row> = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();
    for entry in lalrcex_corpus::all() {
        if let Some(name) = &only {
            if entry.name != name {
                continue;
            }
        }
        if fast && heavy.contains(&entry.name) {
            continue;
        }
        let mut row = run_entry(&entry, &cfg);
        if baseline {
            let b = run_baseline(
                &entry,
                &Budget {
                    max_len: 14,
                    time_limit: Duration::from_secs(30),
                    max_steps: 100_000_000,
                },
            );
            // Compare like the paper: baseline time to find ONE ambiguity
            // vs our average time per conflict.
            if let Some(avg) = row.average() {
                if b.1 {
                    ratios.push(b.0.as_secs_f64() / avg.as_secs_f64());
                }
            }
            row.baseline = Some(b);
        }
        let avg = row
            .average()
            .map(fmt_secs)
            .unwrap_or_else(|| "T/L".to_owned());
        let total = if row.unifying + row.nonunifying == 0 {
            "T/L".to_owned()
        } else {
            fmt_secs(row.total)
        };
        let p = entry.paper;
        let base = match &row.baseline {
            Some((d, true)) => format!("  [baseline {}s]", fmt_secs(*d)),
            Some((d, false)) => format!("  [baseline {}s, not found]", fmt_secs(*d)),
            None => String::new(),
        };
        println!(
            "{:<12} | {:>4} {:>5} {:>6} | {:>5} | {:>5} {:>7} {:>5} | {:>9} {:>9} | {:>9} {:>8} {:>4} | {:>4} {:>5} {:>4} {:>8.1} | ({} {}/{}/{}){}",
            row.name,
            row.nonterminals,
            row.productions,
            row.states,
            row.conflicts,
            row.unifying,
            row.nonunifying,
            row.timeouts,
            total,
            avg,
            row.explored,
            row.deduped,
            row.memo_hits,
            row.class_true,
            row.class_merge,
            row.class_resolved,
            row.provenance_time.as_secs_f64() * 1e3,
            p.conflicts,
            p.unifying,
            p.nonunifying,
            p.timeouts,
            base,
        );
        rows.push(row);
    }

    // §7.3 summary.
    println!("{}", "-".repeat(162));
    let finished: Vec<&Row> = rows
        .iter()
        .filter(|r| r.unifying + r.nonunifying > 0)
        .collect();
    let conflicts: usize = rows.iter().map(|r| r.conflicts).sum();
    let done: usize = rows.iter().map(|r| r.unifying + r.nonunifying).sum();
    let total: Duration = finished.iter().map(|r| r.total).sum();
    if done > 0 {
        println!(
            "summary: {conflicts} conflicts, {done} within the limit ({:.0}%), {} s total, {} s per finished conflict",
            100.0 * done as f64 / conflicts.max(1) as f64,
            fmt_secs(total),
            fmt_secs(total / done as u32),
        );
    }
    let tac: u64 = rows.iter().map(|r| r.class_true).sum();
    let merge: u64 = rows.iter().map(|r| r.class_merge).sum();
    let prec: u64 = rows.iter().map(|r| r.class_resolved).sum();
    let prov: Duration = rows.iter().map(|r| r.provenance_time).sum();
    println!(
        "provenance: {tac} true-ambiguity-candidate / {merge} merge-artifact conflicts, \
         {prec} precedence-resolved resolutions, {} s total precompute",
        fmt_secs(prov)
    );
    let so_rows: Vec<&Row> = rows
        .iter()
        .filter(|r| r.name.starts_with("stack"))
        .collect();
    let so_done: usize = so_rows.iter().map(|r| r.unifying + r.nonunifying).sum();
    if so_done > 0 {
        let so_total: Duration = so_rows.iter().map(|r| r.total).sum();
        println!(
            "Stack Overflow grammars: {} ms per conflict (paper: 8 ms)",
            (so_total / so_done as u32).as_millis()
        );
    }
    if let Some(gm) = geometric_mean(&ratios) {
        println!(
            "baseline comparison: filtered bounded search is {gm:.1}x slower per ambiguity \
             than our per-conflict average (paper: 10.7x, geometric mean)"
        );
    }
}
