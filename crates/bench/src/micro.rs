//! A minimal `std::time::Instant`-based micro-benchmark harness.
//!
//! Stand-in for criterion in hermetic builds (no registry access): each
//! benchmark is warmed up, then timed over a fixed number of batches, and
//! the per-iteration mean / median / min are printed in a compact table.
//! Run with `cargo bench` (the bench target sets `harness = false`) or
//! filter by name: `cargo bench -- lssi`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `black_box` inputs like with criterion.
pub use std::hint::black_box as bb;

/// Harness options.
#[derive(Clone, Copy, Debug)]
pub struct MicroConfig {
    /// Number of timed batches (samples).
    pub samples: usize,
    /// Minimum wall-clock time to spend per benchmark (drives the
    /// iterations-per-batch calibration).
    pub min_time: Duration,
    /// Warm-up time before calibration.
    pub warmup: Duration,
}

impl Default for MicroConfig {
    fn default() -> MicroConfig {
        MicroConfig {
            samples: 20,
            min_time: Duration::from_millis(300),
            warmup: Duration::from_millis(100),
        }
    }
}

/// A named group of benchmarks, printed as a table.
pub struct Group<'a> {
    name: &'a str,
    cfg: MicroConfig,
    filter: Option<String>,
    printed_header: bool,
}

impl<'a> Group<'a> {
    /// Creates a group; `filter` (usually the first CLI argument) restricts
    /// which benchmarks run by substring match on `group/name`.
    pub fn new(name: &'a str, cfg: MicroConfig, filter: Option<String>) -> Group<'a> {
        Group {
            name,
            cfg,
            filter,
            printed_header: false,
        }
    }

    /// Times `f` (whose return value is black-boxed) under `name`.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let full = format!("{}/{name}", self.name);
        if let Some(flt) = &self.filter {
            if !full.contains(flt.as_str()) {
                return;
            }
        }
        if !self.printed_header {
            println!("\n== {} ==", self.name);
            println!(
                "{:<28} {:>12} {:>12} {:>12} {:>8}",
                "benchmark", "mean", "median", "min", "iters"
            );
            self.printed_header = true;
        }

        // Warm up and calibrate iterations per batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.cfg.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let target_batch = self.cfg.min_time / self.cfg.samples as u32;
        let iters_per_batch = if per_iter.is_zero() {
            1000
        } else {
            (target_batch.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.cfg.samples);
        for _ in 0..self.cfg.samples {
            let t = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            samples.push(t.elapsed() / iters_per_batch as u32);
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>8}",
            name,
            fmt(mean),
            fmt(median),
            fmt(min),
            iters_per_batch * self.cfg.samples as u64,
        );
    }
}

/// One family's row in the machine-readable search-throughput report
/// (`BENCH_search.json`, committed at the repo root so the perf trajectory
/// of the §5 search is tracked across changes).
#[derive(Clone, Debug)]
pub struct ThroughputRecord {
    /// Grammar family (corpus entry name).
    pub family: String,
    /// Configurations explored by the measured search.
    pub explored: u64,
    /// Best-of-samples wall time of that search.
    pub elapsed: Duration,
}

impl ThroughputRecord {
    /// Explored configurations per second.
    pub fn explored_per_sec(&self) -> f64 {
        self.explored as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Nanoseconds per explored configuration.
    pub fn ns_per_config(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / (self.explored as f64).max(1.0)
    }
}

/// Serializes throughput records in the committed `BENCH_search.json`
/// format (see DESIGN.md "Search-core memory layout" for the schema
/// contract):
///
/// ```json
/// {
///   "schema": "lalrcex.bench_search.v1",
///   "families": [
///     { "family": "stackovf08", "explored": 200000,
///       "elapsed_ms": 250.0, "explored_per_sec": 800000.0,
///       "ns_per_config": 1250.0 }
///   ]
/// }
/// ```
///
/// Hand-rolled writer: the format is flat and the bench crate stays free
/// of serialization dependencies.
pub fn throughput_json(records: &[ThroughputRecord]) -> String {
    let mut out =
        String::from("{\n  \"schema\": \"lalrcex.bench_search.v1\",\n  \"families\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"family\": {:?}, \"explored\": {}, \"elapsed_ms\": {:.3}, \
             \"explored_per_sec\": {:.1}, \"ns_per_config\": {:.1} }}{sep}\n",
            r.family,
            r.explored,
            r.elapsed.as_secs_f64() * 1e3,
            r.explored_per_sec(),
            r.ns_per_config(),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`throughput_json`] to `path`.
pub fn write_throughput_json(path: &str, records: &[ThroughputRecord]) -> std::io::Result<()> {
    std::fs::write(path, throughput_json(records))
}

/// Formats a duration with an adaptive unit.
fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_respects_filter() {
        let cfg = MicroConfig {
            samples: 3,
            min_time: Duration::from_millis(3),
            warmup: Duration::from_millis(1),
        };
        let mut ran = 0;
        let mut g = Group::new("g", cfg, Some("match".into()));
        g.bench("match_me", || ran += 1);
        assert!(ran > 0, "filtered-in benchmark must run");
        let before = ran;
        g.bench("skipped", || ran += 1);
        assert_eq!(ran, before, "filtered-out benchmark must not run");
    }
}
