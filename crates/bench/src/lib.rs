//! Shared harness code for regenerating the paper's evaluation (Table 1
//! and the figures). The binaries:
//!
//! * `table1` — the full Table 1 run (§7): per-grammar conflict counts,
//!   counterexample kinds, and timings, with the paper's numbers printed
//!   alongside; `--baseline` adds the grammar-filtered bounded-search
//!   column (the CFGAnalyzer stand-in).
//! * `figures` — regenerates the content of Figures 1–11 from the
//!   implementation (state dumps, lookahead-sensitive paths, search
//!   stages, the CUP-style report).
//! * `ppg_compare` — the §7.2 comparison against PPG's lookahead-blind
//!   counterexamples.

#![forbid(unsafe_code)]

pub mod micro;

use std::time::Duration;

use lalrcex_baselines::amber::Budget;
use lalrcex_baselines::filtered::{self, FilteredOutcome};
use lalrcex_core::{Analyzer, CexConfig, ExampleKind, SearchConfig};
use lalrcex_corpus::CorpusEntry;

/// Everything measured for one Table 1 row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Grammar name.
    pub name: &'static str,
    /// Nonterminals (excluding `$accept`).
    pub nonterminals: usize,
    /// Productions (including the augmented one).
    pub productions: usize,
    /// Automaton states.
    pub states: usize,
    /// Conflicts reported.
    pub conflicts: usize,
    /// Conflicts that got a unifying counterexample.
    pub unifying: usize,
    /// Conflicts where the unifying search exhausted (nonunifying example).
    pub nonunifying: usize,
    /// Conflicts that timed out or were skipped (nonunifying example).
    pub timeouts: usize,
    /// Total counterexample wall-clock time.
    pub total: Duration,
    /// Product-parser configurations explored across all conflicts.
    pub explored: u64,
    /// Configurations dropped by the visited-core dedup.
    pub deduped: u64,
    /// Spine-memo hits (conflicts that reused another conflict's §4 path).
    pub memo_hits: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Conflicts classified true-ambiguity-candidate by the provenance
    /// engine.
    pub class_true: u64,
    /// Conflicts classified LALR merge artifact.
    pub class_merge: u64,
    /// Silenced resolutions (classified precedence-resolved).
    pub class_resolved: u64,
    /// Canonical LR(1) states explored by the merge check.
    pub lr1_states: usize,
    /// Wall time of the provenance precomputation.
    pub provenance_time: Duration,
    /// Baseline (grammar-filtered bounded search) time, if run.
    pub baseline: Option<(Duration, bool)>,
}

impl Row {
    /// Average time per conflict that finished within the limit.
    pub fn average(&self) -> Option<Duration> {
        let done = self.unifying + self.nonunifying;
        (done > 0).then(|| self.total / done as u32)
    }
}

/// Runs the counterexample engine on one corpus entry.
pub fn run_entry(entry: &CorpusEntry, cfg: &CexConfig) -> Row {
    let g = entry.load().expect("corpus grammars parse");
    let mut analyzer = Analyzer::new(&g);
    let states = analyzer.automaton().state_count();
    let report = analyzer.analyze_all(cfg);
    // Classification is pure precomputation (no search budget involved);
    // a contained fault degrades the columns to zero rather than the row.
    let (counts, lr1_states, provenance_time) = analyzer
        .engine()
        .provenance()
        .map(|p| (p.counts(), p.lr1_states, p.compute_time))
        .unwrap_or_default();
    Row {
        name: entry.name,
        nonterminals: g.nonterminal_count() - 1,
        productions: g.prod_count(),
        states,
        conflicts: report.reports.len(),
        unifying: report.unifying_count(),
        nonunifying: report.exhausted_count(),
        timeouts: report.timeout_count(),
        total: report.total_time,
        explored: report.stats.search.explored,
        deduped: report.stats.search.deduped,
        memo_hits: report.stats.spine_memo_hits,
        workers: report.stats.workers,
        class_true: counts.true_candidates,
        class_merge: counts.merge_artifacts,
        class_resolved: counts.precedence_resolved,
        lr1_states,
        provenance_time,
        baseline: None,
    }
}

/// Runs the grammar-filtered baseline on the entry's *first* conflict
/// (like CFGAnalyzer, the baseline stops at its first ambiguity proof).
pub fn run_baseline(entry: &CorpusEntry, budget: &Budget) -> (Duration, bool) {
    let g = entry.load().expect("corpus grammars parse");
    let auto = lalrcex_lr::Automaton::build(&g);
    let tables = auto.tables(&g);
    let started = std::time::Instant::now();
    let found = tables
        .conflicts()
        .first()
        .map(|c| {
            matches!(
                filtered::search(&g, c, budget),
                FilteredOutcome::Ambiguous { .. }
            )
        })
        .unwrap_or(false);
    (started.elapsed(), found)
}

/// The default evaluation configuration: the paper's 5 s / 2 min limits.
pub fn paper_config() -> CexConfig {
    CexConfig {
        search: SearchConfig {
            time_limit: Duration::from_secs(5),
            ..Default::default()
        },
        cumulative_limit: Duration::from_secs(120),
        ..CexConfig::default()
    }
}

/// Formats a duration like the paper (seconds with 3 decimals).
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Geometric mean of ratios, skipping non-finite entries.
pub fn geometric_mean(ratios: &[f64]) -> Option<f64> {
    let logs: Vec<f64> = ratios
        .iter()
        .copied()
        .filter(|r| r.is_finite() && *r > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        None
    } else {
        Some((logs.iter().sum::<f64>() / logs.len() as f64).exp())
    }
}

/// Kind label used in the summary output.
pub fn kind_label(kind: ExampleKind) -> &'static str {
    match kind {
        ExampleKind::Unifying => "unifying",
        ExampleKind::NonunifyingExhausted => "nonunifying",
        ExampleKind::NonunifyingTimeout => "timeout",
        ExampleKind::NonunifyingSkipped => "skipped",
        ExampleKind::Cancelled => "cancelled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_entry_on_figure1_matches_paper() {
        let entry = lalrcex_corpus::by_name("figure1").unwrap();
        let row = run_entry(&entry, &paper_config());
        assert_eq!(row.conflicts, 3);
        assert_eq!(row.unifying, 3);
        assert_eq!(row.states, 24);
        assert!(row.average().is_some());
    }

    #[test]
    fn baseline_on_sql1_finds_ambiguity() {
        let entry = lalrcex_corpus::by_name("SQL.1").unwrap();
        // The minimal ambiguous sentence of SQL.1's `cond` is
        // `ID = ID OR ID = ID OR ID = ID` — 11 tokens, so the length bound
        // must be at least 11 for the bounded search to see it.
        let (elapsed, found) = run_baseline(
            &entry,
            &Budget {
                max_len: 12,
                time_limit: Duration::from_secs(20),
                max_steps: 20_000_000,
            },
        );
        assert!(found, "filtered baseline proves SQL.1 ambiguous");
        assert!(elapsed < Duration::from_secs(30));
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[4.0, 1.0]), Some(2.0));
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[f64::INFINITY]), None);
    }
}
