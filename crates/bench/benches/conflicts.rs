//! Micro-benchmarks for the counterexample pipeline — one group per
//! measurable claim of the paper's evaluation, on the hermetic
//! `std::time::Instant` harness (`lalrcex_bench::micro`):
//!
//! * `automaton` — LALR construction cost on grammars of growing size
//!   (the fixed setup cost before any conflict is diagnosed).
//! * `lssi` — the shortest lookahead-sensitive path search (§4).
//! * `unifying` — the product-parser search (§5) per conflict.
//! * `full_conflict` — end-to-end per-conflict diagnosis time, the
//!   quantity reported in Table 1's "Average" column.
//! * `baseline` — the grammar-filtered bounded search on the same
//!   conflict, the paper's comparison point (parenthesised column).
//! * `lint` — the static-analysis passes: cold (engine built per run)
//!   vs shared-facts (engine reused), quantifying the fact-sharing seam.
//! * `search_throughput` — explored-configurations/sec of the §5 search
//!   under a fixed configuration budget; emits the machine-readable
//!   `BENCH_search.json` report when `LALRCEX_BENCH_JSON=<path>` is set.
//!
//! Filter with `cargo bench -- NAME` (substring match on `group/bench`).

use std::time::Duration;

use lalrcex_baselines::{amber, filtered};
use lalrcex_bench::micro::{Group, MicroConfig};
use lalrcex_core::{lssi, unifying_search, Analyzer, CexConfig, SearchConfig, StateGraph};
use lalrcex_lr::Automaton;

fn automaton_construction(cfg: MicroConfig, filter: Option<String>) {
    let mut group = Group::new("automaton", cfg, filter);
    for name in ["figure1", "SQL.1", "eqn", "C.1", "Java.1"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        group.bench(name, || Automaton::build(&g).state_count());
    }
}

fn lssi_search(cfg: MicroConfig, filter: Option<String>) {
    let mut group = Group::new("lssi", cfg, filter);
    for name in ["figure1", "eqn", "C.1", "Java.1"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let graph = StateGraph::build(&g, &auto);
        let conflict = tables.conflicts()[0];
        let target = graph.node(conflict.state, conflict.reduce_item(&g));
        group.bench(name, || {
            lssi::shortest_path(&g, &auto, &graph, target, g.tindex(conflict.terminal))
                .expect("path exists")
                .len()
        });
    }
}

fn unifying(cfg: MicroConfig, filter: Option<String>) {
    let mut group = Group::new("unifying", cfg, filter);
    for name in ["figure1", "figure7", "SQL.1", "simp2"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let graph = StateGraph::build(&g, &auto);
        let conflict = tables.conflicts()[0];
        let target = graph.node(conflict.state, conflict.reduce_item(&g));
        let path = lssi::shortest_path(&g, &auto, &graph, target, g.tindex(conflict.terminal))
            .expect("path");
        let states = lssi::states_of_path(&graph, &path);
        let scfg = SearchConfig::default();
        group.bench(name, || {
            unifying_search(&g, &auto, &graph, &conflict, &states, &scfg)
        });
    }
}

fn full_conflict(cfg: MicroConfig, filter: Option<String>) {
    let mut group = Group::new("full_conflict", cfg, filter);
    for name in ["figure1", "eqn", "SQL.1", "Pascal.3", "C.1", "Java.1"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        group.bench(name, || {
            let mut analyzer = Analyzer::new(&g);
            let conflict = analyzer.tables().conflicts()[0];
            analyzer
                .analyze_conflict(&conflict, &CexConfig::default())
                .kind()
        });
    }
}

fn baseline(cfg: MicroConfig, filter: Option<String>) {
    let mut group = Group::new("baseline_filtered", cfg, filter);
    for name in ["figure1", "SQL.1"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let conflict = tables.conflicts()[0];
        let budget = amber::Budget {
            max_len: 12,
            time_limit: Duration::from_secs(20),
            max_steps: 50_000_000,
        };
        group.bench(name, || filtered::search(&g, &conflict, &budget));
    }
}

/// Cancellation-poll overhead (ISSUE 3): `stride1` re-checks the cancel
/// token, the wall clock, and the memory-governor lease on *every*
/// configuration pop — what a naive per-node `Instant::now()`
/// implementation pays — while `stride256` (the default) amortizes the
/// poll across 256 pops. The node budget caps the search so both variants
/// expand identical configurations; only the poll frequency differs.
fn cancel_stride(cfg: MicroConfig, filter: Option<String>) {
    use lalrcex_core::{unifying_search_metered, Engine, SearchMetrics};

    let mut group = Group::new("cancel_stride", cfg, filter);
    for name in ["Java.2", "C.3"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        let engine = Engine::new(&g);
        // Pick the conflict whose bounded search explores the most
        // configurations, so the poll sits in a genuinely hot loop.
        let probe_cfg = SearchConfig {
            time_limit: Duration::from_secs(3600),
            max_configs: 50_000,
            ..SearchConfig::default()
        };
        let mut best: Option<(usize, u64)> = None;
        for (i, c) in engine.tables().conflicts().iter().take(40).enumerate() {
            let (spine, _) = engine.spine(c);
            let mut m = SearchMetrics::default();
            unifying_search_metered(
                &g,
                engine.automaton(),
                engine.graph(),
                c,
                &spine.states,
                &probe_cfg,
                &mut m,
            );
            if best.is_none_or(|(_, e)| m.explored > e) {
                best = Some((i, m.explored));
            }
        }
        let (idx, _) = best.expect("corpus grammar has conflicts");
        let conflict = engine.tables().conflicts()[idx];
        let (spine, _) = engine.spine(&conflict);
        for stride in [1u32, 256] {
            let scfg = SearchConfig {
                cancel_stride: stride,
                ..probe_cfg
            };
            group.bench(&format!("{name}/stride{stride}"), || {
                let mut m = SearchMetrics::default();
                unifying_search_metered(
                    &g,
                    engine.automaton(),
                    engine.graph(),
                    &conflict,
                    &spine.states,
                    &scfg,
                    &mut m,
                );
                m.explored
            });
        }
    }
}

/// The lint engine, cold vs shared-facts: `cold` builds the `Engine`
/// (automaton, tables, state-item graph) inside the timed region — the
/// cost a standalone linter would pay; `shared` reuses an engine built
/// once outside it — the cost when lint rides on a conflict analysis
/// that already precomputed everything. The gap is the fact-sharing win.
fn lint_passes(cfg: MicroConfig, filter: Option<String>) {
    use lalrcex_core::Engine;
    use lalrcex_lint::Linter;

    let mut group = Group::new("lint", cfg, filter);
    for name in ["figure1", "simp2", "SQL.1", "C.1"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        let linter = Linter::new();
        group.bench(&format!("{name}/cold"), || linter.run_grammar(&g).len());
        let engine = Engine::new(&g);
        group.bench(&format!("{name}/shared"), || linter.run(&engine).len());
    }
}

/// Search-core throughput (the data-oriented-core acceptance gate): each
/// family runs the §5 search on its heaviest conflict under a fixed
/// configuration budget, and the explored-configurations/sec rate is
/// reported. A budgeted search is far too heavy for the calibrated
/// batching harness, so this group times single bounded runs (best of N)
/// directly; the budget makes `explored` deterministic, so the rate is
/// comparable across machines and changes.
///
/// Environment knobs:
/// * `LALRCEX_BENCH_JSON=<path>` — write the records as
///   `BENCH_search.json` (format: `micro::throughput_json`).
/// * `LALRCEX_BENCH_SMOKE=1` — shrink budget and samples so the check.sh
///   bench leg finishes in seconds.
fn search_throughput(filter: Option<String>) {
    use std::time::Instant;

    use lalrcex_bench::micro::{write_throughput_json, ThroughputRecord};
    use lalrcex_core::{unifying_search_metered, Engine, SearchMetrics};

    let smoke = std::env::var_os("LALRCEX_BENCH_SMOKE").is_some_and(|v| v != "0");
    let budget: usize = if smoke { 20_000 } else { 200_000 };
    let samples: usize = if smoke { 1 } else { 3 };
    let mut records: Vec<ThroughputRecord> = Vec::new();
    let mut printed = false;
    for name in ["figure1", "SQL.1", "stackovf08", "stackovf10"] {
        let full = format!("search_throughput/{name}");
        if let Some(flt) = &filter {
            if !full.contains(flt.as_str()) {
                continue;
            }
        }
        if !printed {
            println!("\n== search_throughput (budget {budget} configs) ==");
            println!(
                "{:<28} {:>12} {:>12} {:>14} {:>12}",
                "benchmark", "explored", "best", "configs/s", "ns/config"
            );
            printed = true;
        }
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        let engine = Engine::new(&g);
        // Heaviest conflict by a cheap bounded probe, as in cancel_stride:
        // throughput on a trivially-exhausted conflict measures setup, not
        // the search loop.
        let probe_cfg = SearchConfig {
            time_limit: Duration::from_secs(3600),
            max_configs: 5_000,
            ..SearchConfig::default()
        };
        let mut best: Option<(usize, u64)> = None;
        for (i, c) in engine.tables().conflicts().iter().take(40).enumerate() {
            let (spine, _) = engine.spine(c);
            let mut m = SearchMetrics::default();
            unifying_search_metered(
                &g,
                engine.automaton(),
                engine.graph(),
                c,
                &spine.states,
                &probe_cfg,
                &mut m,
            );
            if best.is_none_or(|(_, e)| m.explored > e) {
                best = Some((i, m.explored));
            }
        }
        let (idx, _) = best.expect("corpus grammar has conflicts");
        let conflict = engine.tables().conflicts()[idx];
        let (spine, _) = engine.spine(&conflict);
        let scfg = SearchConfig {
            time_limit: Duration::from_secs(3600),
            max_configs: budget,
            ..SearchConfig::default()
        };
        let mut explored = 0u64;
        let mut elapsed = Duration::MAX;
        for _ in 0..samples {
            let mut m = SearchMetrics::default();
            let t = Instant::now();
            unifying_search_metered(
                &g,
                engine.automaton(),
                engine.graph(),
                &conflict,
                &spine.states,
                &scfg,
                &mut m,
            );
            let d = t.elapsed();
            explored = m.explored;
            elapsed = elapsed.min(d);
        }
        let rec = ThroughputRecord {
            family: name.to_string(),
            explored,
            elapsed,
        };
        println!(
            "{:<28} {:>12} {:>9.2} ms {:>14.0} {:>12.1}",
            name,
            rec.explored,
            rec.elapsed.as_secs_f64() * 1e3,
            rec.explored_per_sec(),
            rec.ns_per_config(),
        );
        records.push(rec);
    }
    if let Ok(path) = std::env::var("LALRCEX_BENCH_JSON") {
        if !records.is_empty() {
            write_throughput_json(&path, &records).expect("write BENCH_search.json");
            println!("wrote {path}");
        }
    }
}

fn main() {
    // `cargo bench -- FILTER` puts the filter in argv; `cargo bench` also
    // passes `--bench`, which we ignore.
    let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    let cfg = MicroConfig::default();
    let slow = MicroConfig {
        samples: 10,
        min_time: Duration::from_millis(500),
        ..cfg
    };
    automaton_construction(cfg, filter.clone());
    lssi_search(cfg, filter.clone());
    unifying(slow, filter.clone());
    full_conflict(slow, filter.clone());
    baseline(slow, filter.clone());
    cancel_stride(slow, filter.clone());
    lint_passes(slow, filter.clone());
    search_throughput(filter);
}
