//! Criterion benchmarks for the counterexample pipeline — one group per
//! measurable claim of the paper's evaluation:
//!
//! * `automaton` — LALR construction cost on grammars of growing size
//!   (the fixed setup cost before any conflict is diagnosed).
//! * `lssi` — the shortest lookahead-sensitive path search (§4).
//! * `unifying` — the product-parser search (§5) per conflict.
//! * `full_conflict` — end-to-end per-conflict diagnosis time, the
//!   quantity reported in Table 1's "Average" column.
//! * `baseline` — the grammar-filtered bounded search on the same
//!   conflict, the paper's comparison point (parenthesised column).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lalrcex_baselines::{amber, filtered};
use lalrcex_core::{lssi, unifying_search, Analyzer, CexConfig, SearchConfig, StateGraph};
use lalrcex_lr::Automaton;

fn automaton_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("automaton");
    for name in ["figure1", "SQL.1", "eqn", "C.1", "Java.1"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| Automaton::build(g).state_count())
        });
    }
    group.finish();
}

fn lssi_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("lssi");
    for name in ["figure1", "eqn", "C.1", "Java.1"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let graph = StateGraph::build(&g, &auto);
        let conflict = tables.conflicts()[0];
        let target = graph.node(conflict.state, conflict.reduce_item(&g));
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                lssi::shortest_path(&g, &auto, &graph, target, g.tindex(conflict.terminal))
                    .expect("path exists")
                    .len()
            })
        });
    }
    group.finish();
}

fn unifying(c: &mut Criterion) {
    let mut group = c.benchmark_group("unifying");
    group.measurement_time(Duration::from_secs(10));
    for name in ["figure1", "figure7", "SQL.1", "simp2"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let graph = StateGraph::build(&g, &auto);
        let conflict = tables.conflicts()[0];
        let target = graph.node(conflict.state, conflict.reduce_item(&g));
        let path = lssi::shortest_path(&g, &auto, &graph, target, g.tindex(conflict.terminal))
            .expect("path");
        let states = lssi::states_of_path(&graph, &path);
        let cfg = SearchConfig::default();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| unifying_search(&g, &auto, &graph, &conflict, &states, &cfg))
        });
    }
    group.finish();
}

fn full_conflict(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_conflict");
    group.sample_size(10);
    for name in ["figure1", "eqn", "SQL.1", "Pascal.3", "C.1", "Java.1"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut analyzer = Analyzer::new(&g);
                let conflict = analyzer.tables().conflicts()[0];
                analyzer.analyze_conflict(&conflict, &CexConfig::default()).kind
            })
        });
    }
    group.finish();
}

fn baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_filtered");
    group.sample_size(10);
    for name in ["figure1", "SQL.1"] {
        let g = lalrcex_corpus::by_name(name).unwrap().load().unwrap();
        let auto = Automaton::build(&g);
        let tables = auto.tables(&g);
        let conflict = tables.conflicts()[0];
        let budget = amber::Budget {
            max_len: 12,
            time_limit: Duration::from_secs(20),
            max_steps: 50_000_000,
        };
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| filtered::search(&g, &conflict, &budget))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    automaton_construction,
    lssi_search,
    unifying,
    full_conflict,
    baseline
);
criterion_main!(benches);
