//! Injection-tuning scratchpad.
use lalrcex_lr::Automaton;

fn count(text: &str) -> String {
    match lalrcex_grammar::Grammar::parse(text) {
        Ok(g) => {
            let auto = Automaton::build(&g);
            format!("{}", auto.tables(&g).conflicts().len())
        }
        Err(e) => format!("ERR {e}"),
    }
}

fn detail(label: &str, text: &str) {
    let g = lalrcex_grammar::Grammar::parse(text).unwrap();
    let auto = Automaton::build(&g);
    println!("--- {label}: {}", auto.tables(&g).conflicts().len());
    for c in auto.tables(&g).conflicts().iter().take(30) {
        println!("  {}", c.describe(&g));
    }
}

fn main() {
    let eqn = std::fs::read_to_string("crates/corpus/grammars/eqn.y").unwrap();
    let eqn_prec = "%left 'mark' 'lineup'\n%left 'from' 'to'\n%left 'over'\n%left 'sub' 'sup'\n%left 'roman' 'italic' 'bold' 'fat' 'size' 'font' 'sqrt'\n%left 'dot' 'dotdot' 'hat' 'tilde' 'vec' 'bar' 'under'\n";
    detail("eqn+prec", &format!("{eqn_prec}{eqn}"));

    let xi = std::fs::read_to_string("crates/corpus/grammars/xi.y").unwrap();
    let xi_prec = "%left '+'\n%left '*'\n%nonassoc UMINUS\n";
    let xi2 = xi.replace("| '-' expr", "| '-' expr %prec UMINUS");
    detail("xi+prec(no !=)", &format!("{xi_prec}{xi2}"));

    println!(
        "se1 v6 {}",
        count("%start S\n%%\nS : 'a' S 'b' S | 'b' S 'a' S | %empty ;")
    );
    println!(
        "se1 v7 {}",
        count("%start S\n%%\nS : 'a' S 'b' S | 'b' S 'a' S | 'a' 'b' | 'b' 'a' | %empty ;")
    );
    println!("so8 pad {}", count("%start s\n%%\ns : 'a' s 'a' | 'b' s 'b' | 'a' | 'b' | 'x' | 'z' t ;\nt : 'p' t 'p' | 'q' | t 'q' ;"));
    let sql_small = "%start query\n%%\nquery : 'SELECT' select 'FROM' tables where ;\nselect : '*' | cols | 'DISTINCT' cols ;\ncols : col | cols ',' col ;\ncol : ID | ID '.' ID ;\ntables : ID | tables ',' ID | tables ',' ID ID ;\nwhere : %empty | 'WHERE' cond ;\ncond : cond 'OR' cond | ID '=' val | ID '<' val | ID '>' val | '(' cond ')' | ID 'BETWEEN' val 'AND' val ;\nval : ID | NUM | STRING | '-' val ;\n";
    println!("sqlsmall {}", count(sql_small));
    let g = lalrcex_grammar::Grammar::parse(sql_small).unwrap();
    println!(
        "sqlsmall nt={} prods={}",
        g.nonterminal_count() - 1,
        g.prod_count()
    );
}
