//! Prints the conflicts of one corpus grammar (by name) or a raw file.
use lalrcex_lr::Automaton;

fn main() {
    let name = std::env::args().nth(1).expect("grammar name");
    let text = match lalrcex_corpus::by_name(&name) {
        Some(e) => e.text(),
        None => std::fs::read_to_string(&name).expect("readable grammar file"),
    };
    let g = lalrcex_grammar::Grammar::parse(&text).expect("grammar parses");
    let auto = Automaton::build(&g);
    let t = auto.tables(&g);
    println!("{} conflicts", t.conflicts().len());
    for c in t.conflicts() {
        println!("  {}", c.describe(&g));
    }
}
