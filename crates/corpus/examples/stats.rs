//! Prints reconstruction statistics for every corpus grammar.
use lalrcex_lr::Automaton;

fn main() {
    println!(
        "{:<12} {:>4} {:>5} {:>6} {:>5}   (paper: nt prods states conflicts)",
        "name", "nt", "prods", "states", "conf"
    );
    for e in lalrcex_corpus::all() {
        let g = match e.load() {
            Ok(g) => g,
            Err(err) => {
                println!("{:<12} PARSE ERROR: {err}", e.name);
                continue;
            }
        };
        let auto = Automaton::build(&g);
        let conflicts = auto.tables(&g).conflicts().len();
        println!(
            "{:<12} {:>4} {:>5} {:>6} {:>5}   (paper: {} {} {} {})",
            e.name,
            g.nonterminal_count() - 1,
            g.prod_count(),
            auto.state_count(),
            conflicts,
            e.paper.nonterminals,
            e.paper.productions,
            e.paper.states,
            e.paper.conflicts,
        );
    }
}
