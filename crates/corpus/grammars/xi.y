// Reconstruction of `xi`: a grammar in the style of the Xi language
// (Cornell CS 4120), whose array/indexing syntax and multiple-return
// constructs created several ambiguous conflicts during its design.
// Six conflicts: array-literal vs indexing juxtaposition, unparenthesized
// binary operators without precedence, and the optional-else statement.
%left '!='
%left '+'
%left '*'
%start program
%%
program : uses decls ;
uses : %empty
     | uses 'use' ID
     ;
decls : decl
      | decls decl
      ;
decl : ID '(' params ')' rets block ;
params : %empty
       | paramlist
       ;
paramlist : param
          | paramlist ',' param
          ;
param : ID ':' type ;
rets : %empty
     | ':' typelist
     ;
typelist : type
         | typelist ',' type
         ;
type : 'int'
     | 'bool'
     | type '[' ']'
     ;
block : '{' stmts '}' ;
stmts : %empty
      | stmts stmt
      ;
stmt : ID ':' type init
     | lhs '=' expr
     | 'if' expr stmt
     | 'if' expr stmt 'else' stmt
     | 'while' expr stmt
     | 'return' exprs
     | block
     | ID '(' exprs ')'
     ;
init : %empty
     | '=' expr
     ;
lhs : ID
    | lhs '[' expr ']'
    ;
exprs : %empty
      | exprlist
      ;
exprlist : expr
         | exprlist ',' expr
         ;
expr : expr '+' expr
     | expr '*' expr
     | expr '!=' expr
     | '-' expr
     | atom
     ;
atom : ID
     | NUM
     | 'true'
     | 'false'
     | atom '[' expr ']'
     | '{' exprlist '}'
     | '(' expr ')'
     ;
