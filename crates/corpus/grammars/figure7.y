// Figure 7 of the paper: an ambiguous grammar where the shortest
// lookahead-sensitive path does not yield a unifying counterexample for
// the second shift item (`n n a · b d c` needs an extra `n`).
%start S
%%
S : N | N 'c' ;
N : 'n' N 'd'
  | 'n' N 'c'
  | 'n' A 'b'
  | 'n' B
  ;
A : 'a' ;
B : 'a' 'b' 'c' | 'a' 'b' 'd' ;
