// stackoverflow 10031330 "Shift-reduce conflicts in a simple grammar"
// (an XML-ish document grammar): palindromic open/close nesting —
// unambiguous but far from LALR(1), producing a pile of conflicts that
// all need nonunifying counterexamples.
%start s
%%
s : 'a' s 'a'
  | 'b' s 'b'
  | 'a'
  | 'b'
  | 'x'
  | 'z' t
  ;
t : 'p' t 'p'
  | 'q'
  | t 'q'
  ;
