// Base Java 1.1 grammar for the BV10 benchmark rows (Java.1–Java.5),
// following the classic CUP Java grammar (derived from the JLS 1st ed.
// syntax, with the usual LALR(1) massaging: `_no_short_if` statement
// variants instead of precedence for the dangling else, and name-based
// cast productions). The base grammar is conflict-free; each Java.n
// variant injects one conflict.
%start goal
%%
goal : compilation_unit ;

literal : INTEGER_LITERAL
        | FLOATING_POINT_LITERAL
        | BOOLEAN_LITERAL
        | CHARACTER_LITERAL
        | STRING_LITERAL
        | NULL_LITERAL
        ;

type : primitive_type
     | reference_type
     ;
primitive_type : numeric_type
               | 'boolean'
               ;
numeric_type : integral_type
             | floating_point_type
             ;
integral_type : 'byte' | 'short' | 'int' | 'long' | 'char' ;
floating_point_type : 'float' | 'double' ;
reference_type : class_or_interface_type
               | array_type
               ;
class_or_interface_type : name ;
class_type : class_or_interface_type ;
interface_type : class_or_interface_type ;
array_type : primitive_type dims
           | name dims
           ;

name : simple_name
     | qualified_name
     ;
simple_name : IDENTIFIER ;
qualified_name : name '.' IDENTIFIER ;

compilation_unit : package_declaration_opt import_declarations_opt type_declarations_opt ;
package_declaration_opt : package_declaration | %empty ;
import_declarations_opt : import_declarations | %empty ;
type_declarations_opt : type_declarations | %empty ;
import_declarations : import_declaration
                    | import_declarations import_declaration
                    ;
type_declarations : type_declaration
                  | type_declarations type_declaration
                  ;
package_declaration : 'package' name ';' ;
import_declaration : single_type_import_declaration
                   | type_import_on_demand_declaration
                   ;
single_type_import_declaration : 'import' name ';' ;
type_import_on_demand_declaration : 'import' name '.' '*' ';' ;
type_declaration : class_declaration
                 | interface_declaration
                 | ';'
                 ;

modifiers_opt : modifiers | %empty ;
modifiers : modifier
          | modifiers modifier
          ;
modifier : 'public' | 'protected' | 'private'
         | 'static' | 'abstract' | 'final' | 'native'
         | 'synchronized' | 'transient' | 'volatile'
         ;

class_declaration : modifiers_opt 'class' IDENTIFIER super_opt interfaces_opt class_body ;
super_opt : super_clause | %empty ;
super_clause : 'extends' class_type ;
interfaces_opt : interfaces | %empty ;
interfaces : 'implements' interface_type_list ;
interface_type_list : interface_type
                    | interface_type_list ',' interface_type
                    ;
class_body : '{' class_body_declarations_opt '}' ;
class_body_declarations_opt : class_body_declarations | %empty ;
class_body_declarations : class_body_declaration
                        | class_body_declarations class_body_declaration
                        ;
class_body_declaration : class_member_declaration
                       | static_initializer
                       | constructor_declaration
                       | block
                       ;
class_member_declaration : field_declaration
                         | method_declaration
                         | class_declaration
                         | interface_declaration
                         ;

field_declaration : modifiers_opt type variable_declarators ';' ;
variable_declarators : variable_declarator
                     | variable_declarators ',' variable_declarator
                     ;
variable_declarator : variable_declarator_id
                    | variable_declarator_id '=' variable_initializer
                    ;
variable_declarator_id : IDENTIFIER
                       | variable_declarator_id '[' ']'
                       ;
variable_initializer : expression
                     | array_initializer
                     ;

method_declaration : method_header method_body ;
method_header : modifiers_opt type method_declarator throws_opt
              | modifiers_opt 'void' method_declarator throws_opt
              ;
method_declarator : IDENTIFIER '(' formal_parameter_list_opt ')'
                  | method_declarator '[' ']'
                  ;
formal_parameter_list_opt : formal_parameter_list | %empty ;
formal_parameter_list : formal_parameter
                      | formal_parameter_list ',' formal_parameter
                      ;
formal_parameter : type variable_declarator_id
                 | 'final' type variable_declarator_id
                 ;
throws_opt : throws_clause | %empty ;
throws_clause : 'throws' class_type_list ;
class_type_list : class_type
                | class_type_list ',' class_type
                ;
method_body : block
            | ';'
            ;

static_initializer : 'static' block ;

constructor_declaration : modifiers_opt constructor_declarator throws_opt constructor_body ;
constructor_declarator : simple_name '(' formal_parameter_list_opt ')' ;
constructor_body : '{' explicit_constructor_invocation block_statements '}'
                 | '{' explicit_constructor_invocation '}'
                 | '{' block_statements '}'
                 | '{' '}'
                 ;
explicit_constructor_invocation : 'this' '(' argument_list_opt ')' ';'
                                | 'super' '(' argument_list_opt ')' ';'
                                | primary '.' 'this' '(' argument_list_opt ')' ';'
                                | primary '.' 'super' '(' argument_list_opt ')' ';'
                                ;

interface_declaration : modifiers_opt 'interface' IDENTIFIER extends_interfaces_opt interface_body ;
extends_interfaces_opt : extends_interfaces | %empty ;
extends_interfaces : 'extends' interface_type
                   | extends_interfaces ',' interface_type
                   ;
interface_body : '{' interface_member_declarations_opt '}' ;
interface_member_declarations_opt : interface_member_declarations | %empty ;
interface_member_declarations : interface_member_declaration
                              | interface_member_declarations interface_member_declaration
                              ;
interface_member_declaration : constant_declaration
                             | abstract_method_declaration
                             | class_declaration
                             | interface_declaration
                             ;
constant_declaration : field_declaration ;
abstract_method_declaration : method_header ';' ;

array_initializer : '{' variable_initializers ',' '}'
                  | '{' variable_initializers '}'
                  | '{' ',' '}'
                  | '{' '}'
                  ;
variable_initializers : variable_initializer
                      | variable_initializers ',' variable_initializer
                      ;

block : '{' block_statements_opt '}' ;
block_statements_opt : block_statements | %empty ;
block_statements : block_statement
                 | block_statements block_statement
                 ;
block_statement : local_variable_declaration_statement
                | statement
                | class_declaration
                ;
local_variable_declaration_statement : local_variable_declaration ';' ;
local_variable_declaration : type variable_declarators
                           | 'final' type variable_declarators
                           ;
statement : statement_without_trailing_substatement
          | labeled_statement
          | if_then_statement
          | if_then_else_statement
          | while_statement
          | for_statement
          ;
statement_no_short_if : statement_without_trailing_substatement
                      | labeled_statement_no_short_if
                      | if_then_else_statement_no_short_if
                      | while_statement_no_short_if
                      | for_statement_no_short_if
                      ;
statement_without_trailing_substatement : block
                                        | empty_statement
                                        | expression_statement
                                        | switch_statement
                                        | do_statement
                                        | break_statement
                                        | continue_statement
                                        | return_statement
                                        | synchronized_statement
                                        | throw_statement
                                        | try_statement
                                        ;
empty_statement : ';' ;
labeled_statement : IDENTIFIER ':' statement ;
labeled_statement_no_short_if : IDENTIFIER ':' statement_no_short_if ;
expression_statement : statement_expression ';' ;
statement_expression : assignment
                     | preincrement_expression
                     | predecrement_expression
                     | postincrement_expression
                     | postdecrement_expression
                     | method_invocation
                     | class_instance_creation_expression
                     ;
if_then_statement : 'if' '(' expression ')' statement ;
if_then_else_statement : 'if' '(' expression ')' statement_no_short_if 'else' statement ;
if_then_else_statement_no_short_if : 'if' '(' expression ')' statement_no_short_if 'else' statement_no_short_if ;
switch_statement : 'switch' '(' expression ')' switch_block ;
switch_block : '{' switch_block_statement_groups switch_labels '}'
             | '{' switch_block_statement_groups '}'
             | '{' switch_labels '}'
             | '{' '}'
             ;
switch_block_statement_groups : switch_block_statement_group
                              | switch_block_statement_groups switch_block_statement_group
                              ;
switch_block_statement_group : switch_labels block_statements ;
switch_labels : switch_label
              | switch_labels switch_label
              ;
switch_label : 'case' constant_expression ':'
             | 'default' ':'
             ;
while_statement : 'while' '(' expression ')' statement ;
while_statement_no_short_if : 'while' '(' expression ')' statement_no_short_if ;
do_statement : 'do' statement 'while' '(' expression ')' ';' ;
for_statement : 'for' '(' for_init_opt ';' expression_opt ';' for_update_opt ')' statement ;
for_statement_no_short_if : 'for' '(' for_init_opt ';' expression_opt ';' for_update_opt ')' statement_no_short_if ;
for_init_opt : for_init | %empty ;
for_init : statement_expression_list
         | local_variable_declaration
         ;
for_update_opt : for_update | %empty ;
for_update : statement_expression_list ;
statement_expression_list : statement_expression
                          | statement_expression_list ',' statement_expression
                          ;
expression_opt : expression | %empty ;
break_statement : 'break' identifier_opt ';' ;
identifier_opt : IDENTIFIER | %empty ;
continue_statement : 'continue' identifier_opt ';' ;
return_statement : 'return' expression_opt ';' ;
throw_statement : 'throw' expression ';' ;
synchronized_statement : 'synchronized' '(' expression ')' block ;
try_statement : 'try' block catches
              | 'try' block catches_opt finally_clause
              ;
catches_opt : catches | %empty ;
catches : catch_clause
        | catches catch_clause
        ;
catch_clause : 'catch' '(' formal_parameter ')' block ;
finally_clause : 'finally' block ;

primary : primary_no_new_array
        | array_creation_expression
        ;
primary_no_new_array : literal
                     | 'this'
                     | '(' expression ')'
                     | class_instance_creation_expression
                     | field_access
                     | method_invocation
                     | array_access
                     | name '.' 'this'
                     | name '.' 'class'
                     | primitive_type '.' 'class'
                     | 'void' '.' 'class'
                     ;
class_instance_creation_expression : 'new' class_type '(' argument_list_opt ')'
                                   | 'new' class_type '(' argument_list_opt ')' class_body
                                   | primary '.' 'new' IDENTIFIER '(' argument_list_opt ')'
                                   | primary '.' 'new' IDENTIFIER '(' argument_list_opt ')' class_body
                                   ;
argument_list_opt : argument_list | %empty ;
argument_list : expression
              | argument_list ',' expression
              ;
array_creation_expression : 'new' primitive_type dim_exprs dims_opt
                          | 'new' class_or_interface_type dim_exprs dims_opt
                          | 'new' primitive_type dims array_initializer
                          | 'new' class_or_interface_type dims array_initializer
                          ;
dim_exprs : dim_expr
          | dim_exprs dim_expr
          ;
dim_expr : '[' expression ']' ;
dims_opt : dims | %empty ;
dims : '[' ']'
     | dims '[' ']'
     ;
field_access : primary '.' IDENTIFIER
             | 'super' '.' IDENTIFIER
             | name '.' 'super' '.' IDENTIFIER
             ;
method_invocation : name '(' argument_list_opt ')'
                  | primary '.' IDENTIFIER '(' argument_list_opt ')'
                  | 'super' '.' IDENTIFIER '(' argument_list_opt ')'
                  | name '.' 'super' '.' IDENTIFIER '(' argument_list_opt ')'
                  ;
array_access : name '[' expression ']'
             | primary_no_new_array '[' expression ']'
             ;

postfix_expression : primary
                   | name
                   | postincrement_expression
                   | postdecrement_expression
                   ;
postincrement_expression : postfix_expression 'PLUSPLUS' ;
postdecrement_expression : postfix_expression 'MINUSMINUS' ;
unary_expression : preincrement_expression
                 | predecrement_expression
                 | '+' unary_expression
                 | '-' unary_expression
                 | unary_expression_not_plus_minus
                 ;
preincrement_expression : 'PLUSPLUS' unary_expression ;
predecrement_expression : 'MINUSMINUS' unary_expression ;
unary_expression_not_plus_minus : postfix_expression
                                | '~' unary_expression
                                | '!' unary_expression
                                | cast_expression
                                ;
cast_expression : '(' primitive_type dims_opt ')' unary_expression
                | '(' expression ')' unary_expression_not_plus_minus
                | '(' name dims ')' unary_expression_not_plus_minus
                ;
multiplicative_expression : unary_expression
                          | multiplicative_expression '*' unary_expression
                          | multiplicative_expression '/' unary_expression
                          | multiplicative_expression '%' unary_expression
                          ;
additive_expression : multiplicative_expression
                    | additive_expression '+' multiplicative_expression
                    | additive_expression '-' multiplicative_expression
                    ;
shift_expression : additive_expression
                 | shift_expression 'LSHIFT' additive_expression
                 | shift_expression 'RSHIFT' additive_expression
                 | shift_expression 'URSHIFT' additive_expression
                 ;
relational_expression : shift_expression
                      | relational_expression '<' shift_expression
                      | relational_expression '>' shift_expression
                      | relational_expression 'LTEQ' shift_expression
                      | relational_expression 'GTEQ' shift_expression
                      | relational_expression 'instanceof' reference_type
                      ;
equality_expression : relational_expression
                    | equality_expression 'EQEQ' relational_expression
                    | equality_expression 'NOTEQ' relational_expression
                    ;
and_expression : equality_expression
               | and_expression '&' equality_expression
               ;
exclusive_or_expression : and_expression
                        | exclusive_or_expression '^' and_expression
                        ;
inclusive_or_expression : exclusive_or_expression
                        | inclusive_or_expression '|' exclusive_or_expression
                        ;
conditional_and_expression : inclusive_or_expression
                           | conditional_and_expression 'ANDAND' inclusive_or_expression
                           ;
conditional_or_expression : conditional_and_expression
                          | conditional_or_expression 'OROR' conditional_and_expression
                          ;
conditional_expression : conditional_or_expression
                       | conditional_or_expression '?' expression ':' conditional_expression
                       ;
assignment_expression : conditional_expression
                      | assignment
                      ;
assignment : left_hand_side assignment_operator assignment_expression ;
left_hand_side : name
               | field_access
               | array_access
               ;
assignment_operator : '='
                    | 'MULTEQ'
                    | 'DIVEQ'
                    | 'MODEQ'
                    | 'PLUSEQ'
                    | 'MINUSEQ'
                    | 'LSHIFTEQ'
                    | 'RSHIFTEQ'
                    | 'URSHIFTEQ'
                    | 'ANDEQ'
                    | 'XOREQ'
                    | 'OREQ'
                    ;
expression : assignment_expression ;
constant_expression : expression ;
