// Base ISO-7185-style Pascal grammar for the BV10 benchmark rows
// (Pascal.1–Pascal.5), modeled after the classic public-domain Pascal
// yacc grammar. The dangling else is resolved with the usual
// %nonassoc trick so the base grammar is conflict-free; each Pascal.n
// variant injects one conflict.
%nonassoc 'then'
%nonassoc 'else'
%start pascal_program
%%
pascal_program : program_heading ';' block '.' ;
program_heading : 'program' ID
                | 'program' ID '(' identifier_list ')'
                ;
identifier_list : identifier_list ',' ID
                | ID
                ;

block : label_part constant_part type_part variable_part proc_part statement_part ;

label_part : %empty
           | 'label' label_list ';'
           ;
label_list : label_list ',' plabel
           | plabel
           ;
plabel : NUM ;

constant_part : %empty
              | 'const' constant_list
              ;
constant_list : constant_list constant_definition
              | constant_definition
              ;
constant_definition : ID '=' cexpression ';' ;
cexpression : csimple_expression
            | csimple_expression relop csimple_expression
            ;
csimple_expression : cterm
                   | csimple_expression addop cterm
                   ;
cterm : cfactor
      | cterm mulop cfactor
      ;
cfactor : sign cfactor
        | cexponentiation
        ;
cexponentiation : cprimary
                | cprimary '**' cexponentiation
                ;
cprimary : ID
         | '(' cexpression ')'
         | unsigned_constant
         | 'not' cprimary
         ;

constant : non_string
         | sign non_string
         | STRING
         ;
sign : '+' | '-' ;
non_string : NUM
           | ID
           | REALNUM
           ;
unsigned_constant : unsigned_number
                  | STRING
                  | 'nil'
                  ;
unsigned_number : NUM | REALNUM ;

type_part : %empty
          | 'type' type_definition_list
          ;
type_definition_list : type_definition_list type_definition
                     | type_definition
                     ;
type_definition : ID '=' type_denoter ';' ;
type_denoter : ID
             | new_type
             ;
new_type : new_ordinal_type
         | new_structured_type
         | new_pointer_type
         ;
new_ordinal_type : enumerated_type
                 | subrange_type
                 ;
enumerated_type : '(' identifier_list ')' ;
subrange_type : constant '..' constant ;
new_structured_type : structured_type
                    | 'packed' structured_type
                    ;
structured_type : array_type
                | record_type
                | set_type
                | file_type
                ;
array_type : 'array' '[' index_list ']' 'of' component_type ;
index_list : index_list ',' index_type
           | index_type
           ;
index_type : ordinal_type ;
ordinal_type : new_ordinal_type
             | ID
             ;
component_type : type_denoter ;
record_type : 'record' record_section_list 'end'
            | 'record' record_section_list ';' variant_part 'end'
            | 'record' variant_part 'end'
            ;
record_section_list : record_section_list ';' record_section
                    | record_section
                    ;
record_section : identifier_list ':' type_denoter ;
variant_part : 'case' variant_selector 'of' variant_list
             | 'case' variant_selector 'of' variant_list ';'
             ;
variant_selector : tag_field ':' tag_type
                 | tag_type
                 ;
tag_field : ID ;
tag_type : ID ;
variant_list : variant_list ';' variant
             | variant
             ;
variant : case_constant_list ':' '(' record_section_list ')'
        | case_constant_list ':' '(' record_section_list ';' variant_part ')'
        | case_constant_list ':' '(' variant_part ')'
        ;
case_constant_list : case_constant_list ',' case_constant
                   | case_constant
                   ;
case_constant : constant
              | constant '..' constant
              ;
set_type : 'set' 'of' base_type ;
base_type : ordinal_type ;
file_type : 'file' 'of' component_type ;
new_pointer_type : '^' domain_type ;
domain_type : ID ;

variable_part : %empty
              | 'var' variable_declaration_list ';'
              ;
variable_declaration_list : variable_declaration_list ';' variable_declaration
                          | variable_declaration
                          ;
variable_declaration : identifier_list ':' type_denoter ;

proc_part : %empty
          | proc_part proc_or_func_declaration ';'
          ;
proc_or_func_declaration : procedure_declaration
                         | function_declaration
                         ;
procedure_declaration : procedure_heading ';' directive
                      | procedure_heading ';' block
                      ;
procedure_heading : 'procedure' ID
                  | 'procedure' ID formal_parameter_list
                  ;
directive : 'forward'
          | 'external'
          ;
formal_parameter_list : '(' formal_parameter_section_list ')' ;
formal_parameter_section_list : formal_parameter_section_list ';' formal_parameter_section
                              | formal_parameter_section
                              ;
formal_parameter_section : value_parameter_specification
                         | variable_parameter_specification
                         | procedural_parameter_specification
                         | functional_parameter_specification
                         ;
value_parameter_specification : identifier_list ':' ID ;
variable_parameter_specification : 'var' identifier_list ':' ID ;
procedural_parameter_specification : procedure_heading ;
functional_parameter_specification : function_heading ;
function_declaration : function_heading ';' directive
                     | function_identification ';' block
                     | function_heading ';' block
                     ;
function_heading : 'function' ID ':' result_type
                 | 'function' ID formal_parameter_list ':' result_type
                 ;
function_identification : 'function' ID ;
result_type : ID ;

statement_part : compound_statement ;
compound_statement : 'begin' statement_sequence 'end' ;
statement_sequence : statement_sequence ';' statement
                   | statement
                   ;
statement : open_statement
          | closed_statement
          ;
open_statement : plabel ':' non_labeled_open_statement
               | non_labeled_open_statement
               ;
closed_statement : plabel ':' non_labeled_closed_statement
                 | non_labeled_closed_statement
                 ;
non_labeled_closed_statement : assignment_statement
                             | procedure_statement
                             | goto_statement
                             | compound_statement
                             | case_statement
                             | repeat_statement
                             | closed_with_statement
                             | closed_if_statement
                             | closed_while_statement
                             | closed_for_statement
                             | %empty
                             ;
non_labeled_open_statement : open_with_statement
                           | open_if_statement
                           | open_while_statement
                           | open_for_statement
                           ;
repeat_statement : 'repeat' statement_sequence 'until' boolean_expression ;
open_while_statement : 'while' boolean_expression 'do' open_statement ;
closed_while_statement : 'while' boolean_expression 'do' closed_statement ;
open_for_statement : 'for' control_variable ':=' initial_value direction final_value 'do' open_statement ;
closed_for_statement : 'for' control_variable ':=' initial_value direction final_value 'do' closed_statement ;
open_with_statement : 'with' record_variable_list 'do' open_statement ;
closed_with_statement : 'with' record_variable_list 'do' closed_statement ;
open_if_statement : 'if' boolean_expression 'then' statement
                  | 'if' boolean_expression 'then' closed_statement 'else' open_statement
                  ;
closed_if_statement : 'if' boolean_expression 'then' closed_statement 'else' closed_statement ;
assignment_statement : variable_access ':=' expression ;
variable_access : ID
                | indexed_variable
                | field_designator
                | variable_access '^'
                ;
indexed_variable : variable_access '[' index_expression_list ']' ;
index_expression_list : index_expression_list ',' index_expression
                      | index_expression
                      ;
index_expression : expression ;
field_designator : variable_access '.' ID ;
procedure_statement : ID params
                    | ID
                    ;
params : '(' actual_parameter_list ')' ;
actual_parameter_list : actual_parameter_list ',' actual_parameter
                      | actual_parameter
                      ;
actual_parameter : expression
                 | expression ':' expression
                 | expression ':' expression ':' expression
                 ;
goto_statement : 'goto' plabel ;
case_statement : 'case' case_index 'of' case_list_element_list 'end'
               | 'case' case_index 'of' case_list_element_list ';' 'end'
               | 'case' case_index 'of' case_list_element_list ';' otherwisepart statement 'end'
               | 'case' case_index 'of' case_list_element_list ';' otherwisepart statement ';' 'end'
               ;
case_index : expression ;
case_list_element_list : case_list_element_list ';' case_list_element
                       | case_list_element
                       ;
case_list_element : case_constant_list ':' statement ;
otherwisepart : 'otherwise'
              | 'otherwise' ':'
              ;
control_variable : ID ;
initial_value : expression ;
direction : 'to' | 'downto' ;
final_value : expression ;
record_variable_list : record_variable_list ',' variable_access
                     | variable_access
                     ;
boolean_expression : expression ;
expression : simple_expression
           | simple_expression relop simple_expression
           ;
simple_expression : term
                  | simple_expression addop term
                  ;
term : factor
     | term mulop factor
     ;
factor : sign factor
       | exponentiation
       ;
exponentiation : primary
               | primary '**' exponentiation
               ;
primary : variable_access
        | unsigned_constant
        | function_designator
        | set_constructor
        | '(' expression ')'
        | 'not' primary
        ;
function_designator : ID params ;
set_constructor : '[' member_designator_list ']'
                | '[' ']'
                ;
member_designator_list : member_designator_list ',' member_designator
                       | member_designator
                       ;
member_designator : member_designator '..' expression
                  | expression
                  ;
addop : '+' | '-' | 'or' ;
mulop : '*' | '/' | 'div' | 'mod' | 'and' ;
relop : '=' | '<>' | '<' | '>' | '<=' | '>=' | 'in' ;
