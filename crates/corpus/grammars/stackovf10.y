// stackoverflow 9651733 "Why are these conflicts appearing in the
// following yacc grammar": an expression grammar with four binary
// operators, unary minus, and postfix calls — all without precedence
// declarations, producing a conflict for every (reduction, operator)
// pair, every one of them a genuine ambiguity.
%start prog
%%
prog : stmt
     | prog stmt
     ;
stmt : ID '=' e ';'
     | 'print' e ';'
     ;
e : e '+' e
  | e '-' e
  | e '*' e
  | e '/' e
  | '-' e
  | primary
  ;
primary : ID
        | NUM
        | '(' e ')'
        | ID '(' args ')'
        ;
args : %empty
     | arglist
     ;
arglist : e
        | arglist ',' e
        ;
