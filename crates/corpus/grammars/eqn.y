// Reconstruction of `eqn`: the troff/eqn mathematical typesetting
// language. Box juxtaposition plus the postfix sub/sup/over operators is
// the classic source of its conflict: `box box · sub box` can attach the
// subscript to the last box or to the concatenation.
%left 'mark' 'lineup'
%left 'from' 'to'
%left 'over'
%left 'sub' 'sup'
%left 'roman' 'italic' 'bold' 'fat' 'size' 'font' 'sqrt'
%left 'dot' 'dotdot' 'hat' 'tilde' 'vec' 'bar' 'under'
%start equation
%%
equation : boxes ;
boxes : box
      | boxes box
      ;
box : simplebox
    | box 'sub' box 'sup' box // the classic eqn conflict
    | box 'sub' box
    | box 'sup' box
    | box 'over' box
    | box 'from' box
    | box 'to' box
    | 'sqrt' box
    | diacritical
    | fontchange
    ;
diacritical : box 'dot'
            | box 'dotdot'
            | box 'hat'
            | box 'tilde'
            | box 'vec'
            | box 'bar'
            | box 'under'
            ;
fontchange : 'roman' box
           | 'italic' box
           | 'bold' box
           | 'fat' box
           | 'size' NUM box %prec 'size'
           | 'font' ID box %prec 'font'
           ;
simplebox : TEXT
          | NUM
          | ID
          | '{' boxes '}'
          | '(' boxes ')'
          | pile_box
          | matrix_box
          | marked
          ;
pile_box : 'pile' '{' cols '}'
     | 'lpile' '{' cols '}'
     | 'rpile' '{' cols '}'
     | 'cpile' '{' cols '}'
     ;
cols : col
     | cols 'above' col
     ;
col : boxes ;
matrix_box : 'matrix' '{' mcols '}' ;
mcols : mcol
      | mcols mcol
      ;
mcol : 'ccol' '{' cols '}'
     | 'lcol' '{' cols '}'
     | 'rcol' '{' cols '}'
     ;
marked : 'mark' box
       | 'lineup' box
       ;
