// stackoverflow 1760083 "How to resolve this shift-reduce conflict":
// three nonterminals that erase to the same token create two
// reduce/reduce conflicts, but every full sentence is unambiguous.
%start s
%%
s : a 'x' 'p'
  | b 'x' 'q'
  | c 'x' 'r'
  | d
  ;
a : 'T' ;
b : 'T' ;
c : 'T' ;
d : 'z' | 'w' ;
