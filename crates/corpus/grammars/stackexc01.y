// math.stackexchange 297721 "Determining ambiguity in context-free
// grammars": the equal-numbers-of-a's-and-b's grammar, famously ambiguous.
%start S
%%
S : 'a' S 'b' S
  | 'b' S 'a' S
  | 'c'
  | 'd'
  | 'e'
  | %empty
  ;
