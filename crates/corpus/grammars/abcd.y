// Reconstruction of `abcd`: a small grammar with three independent
// ambiguities — an associativity ambiguity in `e`, a dangling else in
// `i`, and a reduce/reduce ambiguity between `e` and `l` on `;`.
%start s
%%
s : e ';'
  | i
  | l ';'
  ;
l : N
  | l N
  ;
e : e '+' e
  | N
  | '(' e ')'
  ;
i : 'if' e 'then' s 'else' s
  | 'if' e 'then' s
  ;
