// stackoverflow 3373114 "Bison shift-reduce conflict for simple grammar":
// a center-palindrome grammar — unambiguous but not LR(k) for any k, so
// the single conflict has no unifying counterexample.
%start e
%%
e : 'a' e 'a'
  | 'a'
  | 'c'
  | 'd'
  ;
