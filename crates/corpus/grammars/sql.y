// Base SQL grammar for the BV10-style benchmark rows (SQL.1–SQL.5).
// A moderate SQL subset: SELECT with joins/grouping, INSERT, UPDATE,
// DELETE, CREATE TABLE, and a full expression/condition layer. The base
// grammar is conflict-free; each SQL.n variant injects one conflict (see
// the corpus registry).
%left 'JOIN'
%left 'OR'
%left 'AND'
%nonassoc 'NOT'
%nonassoc '=' '<>' '<' '>' '<=' '>='
%left '+' '-'
%left '*' '/'
%start sql_list
%%
sql_list : sql ';'
         | sql_list sql ';'
         ;
sql : select_stmt
    | insert_stmt
    | update_stmt
    | delete_stmt
    | create_stmt
    ;

select_stmt : 'SELECT' opt_distinct selection 'FROM' table_refs opt_where opt_group opt_order ;
opt_distinct : %empty
             | 'DISTINCT'
             | 'ALL'
             ;
selection : '*'
          | select_list
          ;
select_list : select_item
            | select_list ',' select_item
            ;
select_item : expr
            | expr 'AS' ID
            ;
table_refs : table_ref
           | table_refs ',' table_ref
           ;
table_ref : ID
          | ID ID
          | table_ref 'JOIN' table_ref 'ON' condition %prec 'JOIN'
          | '(' select_stmt ')' ID
          ;
opt_where : %empty
          | 'WHERE' condition
          ;
opt_group : %empty
          | 'GROUP' 'BY' column_list opt_having
          ;
opt_having : %empty
           | 'HAVING' condition
           ;
opt_order : %empty
          | 'ORDER' 'BY' order_list
          ;
order_list : order_item
           | order_list ',' order_item
           ;
order_item : column
           | column 'ASC'
           | column 'DESC'
           ;
column_list : column
            | column_list ',' column
            ;
column : ID
       | ID '.' ID
       ;

insert_stmt : 'INSERT' 'INTO' ID opt_columns 'VALUES' '(' value_list ')'
            | 'INSERT' 'INTO' ID opt_columns select_stmt
            ;
opt_columns : %empty
            | '(' column_list ')'
            ;
value_list : expr
           | value_list ',' expr
           ;

update_stmt : 'UPDATE' ID 'SET' assign_list opt_where ;
assign_list : assign
            | assign_list ',' assign
            ;
assign : column '=' expr ;

delete_stmt : 'DELETE' 'FROM' ID opt_where ;

create_stmt : 'CREATE' 'TABLE' ID '(' column_defs ')' ;
column_defs : column_def
            | column_defs ',' column_def
            ;
column_def : ID type opt_constraint ;
type : 'INTEGER'
     | 'VARCHAR' '(' NUM ')'
     | 'FLOAT'
     | 'DATE'
     ;
opt_constraint : %empty
               | 'NOT' 'NULL'
               | 'PRIMARY' 'KEY'
               ;

condition : condition 'OR' condition
          | condition 'AND' condition
          | 'NOT' condition
          | '(' condition ')' %prec 'NOT'
          | predicate
          ;
predicate : expr '=' expr
          | expr '<>' expr
          | expr '<' expr
          | expr '>' expr
          | expr '<=' expr
          | expr '>=' expr
          | expr 'IS' 'NULL'
          | expr 'IS' 'NOT' 'NULL'
          | expr 'IN' '(' value_list ')'
          | expr 'LIKE' STRING
          | 'EXISTS' '(' select_stmt ')'
          ;
expr : expr '+' expr
     | expr '-' expr
     | expr '*' expr
     | expr '/' expr
     | '-' expr %prec '*'
     | atom
     ;
atom : column
     | NUM
     | STRING
     | 'NULL'
     | '(' expr ')'
     | func '(' arg ')'
     ;
func : 'COUNT' | 'SUM' | 'AVG' | 'MIN' | 'MAX' ;
arg : expr
    | '*'
    ;
