// cstheory.stackexchange 22384 "Resolving ambiguity in an LALR grammar
// with empty productions": two nullable options whose FOLLOW sets overlap
// create a reduce/reduce conflict, yet the grammar is unambiguous
// (deciding needs two tokens of lookahead).
%start s
%%
s : p | q | 'z' ;
p : o1 'x' ;
q : o2 'x' 'y' ;
o1 : %empty | 'a' ;
o2 : %empty | 'a' 'a' ;
