// Reconstruction of `simp2`: a small imperative language (SIMP-like) with
// a single subtle ambiguity: statement sequencing is written as a binary
// operator (`stmts ';' stmts`), so `stmt ; stmt · ; stmt` can associate
// either way. Boolean and arithmetic operators carry precedence so only
// that one conflict remains.
%left 'or'
%left 'and'
%nonassoc 'not'
%nonassoc '=' '<'
%left '+' '-'
%left '*' '/'
%start prog
%%
prog : stmts ;
stmts : stmt
      | stmts ';' stmts
      ;
stmt : ID ':=' expr
     | 'if' bexpr 'then' stmts 'fi'
     | 'if' bexpr 'then' stmts 'else' stmts 'fi'
     | 'while' bexpr 'do' stmts 'od'
     | 'for' ID ':=' expr 'to' expr 'do' stmts 'od'
     | 'skip'
     | 'begin' stmts 'end'
     | 'print' expr
     | 'read' ID
     ;
bexpr : expr '=' expr
      | expr '<' expr
      | 'not' bexpr
      | bexpr 'and' bexpr
      | bexpr 'or' bexpr
      | '(' bexpr ')' %prec 'not'
      | 'true'
      | 'false'
      ;
expr : expr '+' term
     | expr '-' term
     | term
     ;
term : term '*' factor
     | term '/' factor
     | factor
     ;
factor : ID
       | NUM
       | '(' expr ')'
       | '-' factor
       | ID '(' args ')'
       ;
args : %empty
     | arglist
     ;
arglist : expr
        | arglist ',' expr
        ;
