// Figure 3 of the paper: an unambiguous (LR(2)) grammar with a
// shift/reduce conflict between `X -> a ·` and `Y -> a · a b` under `a`.
%start S
%%
S : T | S T ;
T : X | Y ;
X : 'a' ;
Y : 'a' 'a' 'b' ;
