// stackoverflow 910445 "Issue resolving a shift-reduce conflict in my
// grammar": juxtaposition (sequencing without a separator) is ambiguous.
%start e
%%
e : e e
  | 'a'
  | 'b'
  | '(' e ')'
  ;
