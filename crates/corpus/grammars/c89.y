// Base ANSI C89 grammar for the BV10 benchmark rows (C.1–C.5), following
// the classic public-domain yacc grammar (Jeff Lee, 1985). As usual, the
// lexer is assumed to distinguish TYPE_NAME from IDENTIFIER, and the
// dangling else is resolved with precedence so the base grammar is
// conflict-free; each C.n variant injects one conflict.
%nonassoc 'LOWER_THAN_ELSE'
%nonassoc 'else'
%start translation_unit
%%
primary_expression : IDENTIFIER
                   | CONSTANT
                   | STRING_LITERAL
                   | '(' expression ')'
                   ;
postfix_expression : primary_expression
                   | postfix_expression '[' expression ']'
                   | postfix_expression '(' ')'
                   | postfix_expression '(' argument_expression_list ')'
                   | postfix_expression '.' IDENTIFIER
                   | postfix_expression 'PTR_OP' IDENTIFIER
                   | postfix_expression 'INC_OP'
                   | postfix_expression 'DEC_OP'
                   ;
argument_expression_list : assignment_expression
                         | argument_expression_list ',' assignment_expression
                         ;
unary_expression : postfix_expression
                 | 'INC_OP' unary_expression
                 | 'DEC_OP' unary_expression
                 | unary_operator cast_expression
                 | 'sizeof' unary_expression
                 | 'sizeof' '(' type_name ')'
                 ;
unary_operator : '&' | '*' | '+' | '-' | '~' | '!' ;
cast_expression : unary_expression
                | '(' type_name ')' cast_expression
                ;
multiplicative_expression : cast_expression
                          | multiplicative_expression '*' cast_expression
                          | multiplicative_expression '/' cast_expression
                          | multiplicative_expression '%' cast_expression
                          ;
additive_expression : multiplicative_expression
                    | additive_expression '+' multiplicative_expression
                    | additive_expression '-' multiplicative_expression
                    ;
shift_expression : additive_expression
                 | shift_expression 'LEFT_OP' additive_expression
                 | shift_expression 'RIGHT_OP' additive_expression
                 ;
relational_expression : shift_expression
                      | relational_expression '<' shift_expression
                      | relational_expression '>' shift_expression
                      | relational_expression 'LE_OP' shift_expression
                      | relational_expression 'GE_OP' shift_expression
                      ;
equality_expression : relational_expression
                    | equality_expression 'EQ_OP' relational_expression
                    | equality_expression 'NE_OP' relational_expression
                    ;
and_expression : equality_expression
               | and_expression '&' equality_expression
               ;
exclusive_or_expression : and_expression
                        | exclusive_or_expression '^' and_expression
                        ;
inclusive_or_expression : exclusive_or_expression
                        | inclusive_or_expression '|' exclusive_or_expression
                        ;
logical_and_expression : inclusive_or_expression
                       | logical_and_expression 'AND_OP' inclusive_or_expression
                       ;
logical_or_expression : logical_and_expression
                      | logical_or_expression 'OR_OP' logical_and_expression
                      ;
conditional_expression : logical_or_expression
                       | logical_or_expression '?' expression ':' conditional_expression
                       ;
assignment_expression : conditional_expression
                      | unary_expression assignment_operator assignment_expression
                      ;
assignment_operator : '='
                    | 'MUL_ASSIGN'
                    | 'DIV_ASSIGN'
                    | 'MOD_ASSIGN'
                    | 'ADD_ASSIGN'
                    | 'SUB_ASSIGN'
                    | 'LEFT_ASSIGN'
                    | 'RIGHT_ASSIGN'
                    | 'AND_ASSIGN'
                    | 'XOR_ASSIGN'
                    | 'OR_ASSIGN'
                    ;
expression : assignment_expression
           | expression ',' assignment_expression
           ;
constant_expression : conditional_expression ;

declaration : declaration_specifiers ';'
            | declaration_specifiers init_declarator_list ';'
            ;
declaration_specifiers : storage_class_specifier
                       | storage_class_specifier declaration_specifiers
                       | type_specifier
                       | type_specifier declaration_specifiers
                       | type_qualifier
                       | type_qualifier declaration_specifiers
                       ;
init_declarator_list : init_declarator
                     | init_declarator_list ',' init_declarator
                     ;
init_declarator : declarator
                | declarator '=' initializer
                ;
storage_class_specifier : 'typedef'
                        | 'extern'
                        | 'static'
                        | 'auto'
                        | 'register'
                        ;
type_specifier : 'void'
               | 'char'
               | 'short'
               | 'int'
               | 'long'
               | 'float'
               | 'double'
               | 'signed'
               | 'unsigned'
               | struct_or_union_specifier
               | enum_specifier
               | TYPE_NAME
               ;
struct_or_union_specifier : struct_or_union IDENTIFIER '{' struct_declaration_list '}'
                          | struct_or_union '{' struct_declaration_list '}'
                          | struct_or_union IDENTIFIER
                          ;
struct_or_union : 'struct' | 'union' ;
struct_declaration_list : struct_declaration
                        | struct_declaration_list struct_declaration
                        ;
struct_declaration : specifier_qualifier_list struct_declarator_list ';' ;
specifier_qualifier_list : type_specifier specifier_qualifier_list
                         | type_specifier
                         | type_qualifier specifier_qualifier_list
                         | type_qualifier
                         ;
struct_declarator_list : struct_declarator
                       | struct_declarator_list ',' struct_declarator
                       ;
struct_declarator : declarator
                  | ':' constant_expression
                  | declarator ':' constant_expression
                  ;
enum_specifier : 'enum' '{' enumerator_list '}'
               | 'enum' IDENTIFIER '{' enumerator_list '}'
               | 'enum' IDENTIFIER
               ;
enumerator_list : enumerator
                | enumerator_list ',' enumerator
                ;
enumerator : IDENTIFIER
           | IDENTIFIER '=' constant_expression
           ;
type_qualifier : 'const' | 'volatile' ;
declarator : pointer direct_declarator
           | direct_declarator
           ;
direct_declarator : IDENTIFIER
                  | '(' declarator ')'
                  | direct_declarator '[' constant_expression ']'
                  | direct_declarator '[' ']'
                  | direct_declarator '(' parameter_type_list ')'
                  | direct_declarator '(' identifier_list ')'
                  | direct_declarator '(' ')'
                  ;
pointer : '*'
        | '*' type_qualifier_list
        | '*' pointer
        | '*' type_qualifier_list pointer
        ;
type_qualifier_list : type_qualifier
                    | type_qualifier_list type_qualifier
                    ;
parameter_type_list : parameter_list
                    | parameter_list ',' 'ELLIPSIS'
                    ;
parameter_list : parameter_declaration
               | parameter_list ',' parameter_declaration
               ;
parameter_declaration : declaration_specifiers declarator
                      | declaration_specifiers abstract_declarator
                      | declaration_specifiers
                      ;
identifier_list : IDENTIFIER
                | identifier_list ',' IDENTIFIER
                ;
type_name : specifier_qualifier_list
          | specifier_qualifier_list abstract_declarator
          ;
abstract_declarator : pointer
                    | direct_abstract_declarator
                    | pointer direct_abstract_declarator
                    ;
direct_abstract_declarator : '(' abstract_declarator ')'
                           | '[' ']'
                           | '[' constant_expression ']'
                           | direct_abstract_declarator '[' ']'
                           | direct_abstract_declarator '[' constant_expression ']'
                           | '(' ')'
                           | '(' parameter_type_list ')'
                           | direct_abstract_declarator '(' ')'
                           | direct_abstract_declarator '(' parameter_type_list ')'
                           ;
initializer : assignment_expression
            | '{' initializer_list '}'
            | '{' initializer_list ',' '}'
            ;
initializer_list : initializer
                 | initializer_list ',' initializer
                 ;
statement : labeled_statement
          | compound_statement
          | expression_statement
          | selection_statement
          | iteration_statement
          | jump_statement
          ;
labeled_statement : IDENTIFIER ':' statement
                  | 'case' constant_expression ':' statement
                  | 'default' ':' statement
                  ;
compound_statement : '{' '}'
                   | '{' statement_list '}'
                   | '{' declaration_list '}'
                   | '{' declaration_list statement_list '}'
                   ;
declaration_list : declaration
                 | declaration_list declaration
                 ;
statement_list : statement
               | statement_list statement
               ;
expression_statement : ';'
                     | expression ';'
                     ;
selection_statement : 'if' '(' expression ')' statement %prec 'LOWER_THAN_ELSE'
                    | 'if' '(' expression ')' statement 'else' statement
                    | 'switch' '(' expression ')' statement
                    ;
iteration_statement : 'while' '(' expression ')' statement
                    | 'do' statement 'while' '(' expression ')' ';'
                    | 'for' '(' expression_statement expression_statement ')' statement
                    | 'for' '(' expression_statement expression_statement expression ')' statement
                    ;
jump_statement : 'goto' IDENTIFIER ';'
               | 'continue' ';'
               | 'break' ';'
               | 'return' ';'
               | 'return' expression ';'
               ;
translation_unit : external_declaration
                 | translation_unit external_declaration
                 ;
external_declaration : function_definition
                     | declaration
                     ;
function_definition : declaration_specifiers declarator declaration_list compound_statement
                    | declaration_specifiers declarator compound_statement
                    | declarator declaration_list compound_statement
                    | declarator compound_statement
                    ;
