// Reconstruction of `ambfailed01` (§7.2): an ambiguous grammar whose only
// unifying counterexample requires reverse transitions through states that
// are NOT on the shortest lookahead-sensitive path, so the restricted
// search exhausts and reports a nonunifying counterexample. The full
// search (`-extendedsearch`) finds `m n a · b d c`-style ambiguity:
//   m n a b d c  =  [m [n a b] d] c   (S -> M 'c', M -> 'm' N 'd')
//                =  [m [n [a b d]] c] (S -> M,     M -> 'm' N 'c')
// while the shortest path to the conflict goes through `m a ·` whose
// states never see `n`.
%start S
%%
S : M | M 'c' ;
M : 'm' N 'd'
  | 'm' N 'c'
  | 'm' A 'b'
  | 'm' B
  ;
N : 'n' A 'b' | 'n' B ;
A : 'a' ;
B : 'a' 'b' 'd' ;
