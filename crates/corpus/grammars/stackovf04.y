// stackoverflow 958885 "How to resolve a shift-reduce conflict in an
// unambiguous grammar": two reductions of the same token whose contexts
// only diverge two tokens later — unambiguous, not LALR(1).
%start s
%%
s : a 'x' 'p'
  | b 'x' 'q'
  | c
  ;
a : 'T' ;
b : 'T' ;
c : 'u' | 'v' | 'w' ;
