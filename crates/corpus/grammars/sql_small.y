// Small SQL subset for the BV10 row SQL.1 (the paper's SQL.1 is a much
// smaller grammar than SQL.2-5: 8 nonterminals, 23 productions). The
// condition layer's OR has no associativity declaration — the injected
// ambiguity.
%start query
%%
query : 'SELECT' select 'FROM' tables where ;
select : '*'
       | cols
       | 'DISTINCT' cols
       ;
cols : col
     | cols ',' col
     ;
col : ID
    | ID '.' ID
    ;
tables : ID
       | tables ',' ID
       | tables ',' ID ID
       ;
where : %empty
      | 'WHERE' cond
      ;
cond : cond 'OR' cond
     | ID '=' val
     | ID '<' val
     | ID '>' val
     | '(' cond ')'
     | ID 'BETWEEN' val 'AND' val
     ;
val : ID
    | NUM
    | STRING
    ;
