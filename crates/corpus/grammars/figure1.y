// Figure 1 of the paper: the ambiguous statement/expression grammar with
// the dangling else, the ambiguous expression, and the "challenging"
// num/digit conflict of §3.1.
%start stmt
%%
stmt : 'if' expr 'then' stmt 'else' stmt
     | 'if' expr 'then' stmt
     | expr '?' stmt stmt
     | 'arr' '[' expr ']' ':=' expr
     ;
expr : num
     | expr '+' expr
     ;
num  : digit
     | num digit
     ;
