// stackoverflow 196179 "shift/reduce conflict": the C-style
// declaration-versus-expression problem — `ID ID ;` is a declaration,
// `ID ;` an expression — unambiguous, but the first `ID` cannot be
// classified with one token of lookahead once a cast-like form exists.
%start prog
%%
prog : item
     | prog item
     ;
item : decl | stmt ;
decl : typ ID ';' ;
typ : 'int'
    | ID
    | typ '*'
    ;
stmt : e ';' ;
e : ID
  | NUM
  | e '+' e
  | '*' e
  | ID '(' e ')'
  ;
