// stackoverflow 7967202 "Bison complained conflicts: 1 shift/reduce":
// the dangling else in miniature.
%start s
%%
s : 'i' s 'e' s
  | 'i' s
  | 'x'
  | 'y'
  | 'z'
  ;
