// stackoverflow 5176867 "Why are there 3 parsing conflicts in my tiny
// grammar": an optional trailing clause plus an ambiguous operator.
%start s
%%
s : c
  | s c
  ;
c : 'when' e 'then' acts 'end'
  | 'when' e 'then' acts 'otherwise' acts 'end'
  ;
acts : act
     | acts act
     ;
act : 'do' ID
    | 'do' ID 'with' e
    ;
e : e 'and' e
  | e 'or' e
  | ID
  | NUM
  ;
