// stackoverflow 22384530 "Bison/yacc reduce-reduce conflict for a
// specific grammar": an assignment language whose expression layer has an
// injected ambiguity.
%start prog
%%
prog : stmt
     | prog stmt
     ;
stmt : ID '=' e ';' ;
e : e '+' e
  | t
  ;
t : ID
  | NUM
  | '-' t
  | '(' e ')'
  ;
