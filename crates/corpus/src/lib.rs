//! The evaluation grammar corpus: a reconstruction of every grammar in
//! Table 1 of *Finding Counterexamples from Parsing Conflicts*
//! (Isradisaikul & Myers, PLDI 2015).
//!
//! Three groups, as in the paper (§7.1):
//!
//! * **Ours** — the grammars printed in the paper (exact) plus
//!   reconstructions of the authors' motivating grammars
//!   (`ambfailed01`, `abcd`, `simp2`, `xi`, `eqn`, `java-ext1/2`).
//! * **Stack Overflow / Stack Exchange** — small grammars rebuilt from
//!   the linked questions' topics.
//! * **BV10** — full-scale SQL / Pascal / C / Java grammars with one
//!   injected conflict per variant, mirroring Basten & Vinju's
//!   conflict-injection methodology.
//!
//! The original CUP inputs are not available offline, so each entry
//! carries the *paper's* reported statistics (`paper` field) alongside the
//! reconstruction; the Table 1 harness prints both so divergence is
//! visible rather than hidden.
//!
//! # Example
//!
//! ```
//! use lalrcex_corpus::{by_name, all};
//!
//! let fig1 = by_name("figure1").unwrap();
//! let g = fig1.load()?;
//! assert_eq!(g.nonterminal_count() - 1, 3); // paper counts exclude $accept
//! assert_eq!(all().len(), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

use lalrcex_grammar::{Grammar, GrammarError};

/// Which section of Table 1 an entry belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// Grammars from the paper and the authors' projects.
    Ours,
    /// Grammars from Stack Overflow / Stack Exchange questions.
    StackOverflow,
    /// The BV10 conflict-injected grammars.
    Bv10,
}

/// The statistics Table 1 reports for a grammar (the *paper's* numbers,
/// kept for side-by-side comparison with the reconstruction).
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// `# nonterms` (excludes the augmented start symbol).
    pub nonterminals: usize,
    /// `# prods` (includes the augmented production).
    pub productions: usize,
    /// `# states`.
    pub states: usize,
    /// `# conflicts`.
    pub conflicts: usize,
    /// `Amb?` — whether the grammar is ambiguous.
    pub ambiguous: bool,
    /// `# unif`.
    pub unifying: usize,
    /// `# nonunif`.
    pub nonunifying: usize,
    /// `# time out`.
    pub timeouts: usize,
}

/// How an entry's DSL text is assembled.
enum Source {
    /// A standalone grammar file.
    Text(&'static str),
    /// A base grammar with textual patches: every `(from, to)` replacement
    /// is applied (and must match), then each `append` fragment (rule
    /// text) is added at the end.
    Patched {
        base: &'static str,
        replace: &'static [(&'static str, &'static str)],
        append: &'static [&'static str],
    },
}

/// One grammar of the corpus.
pub struct CorpusEntry {
    /// Table 1 row name, e.g. `"figure1"` or `"Java.2"`.
    pub name: &'static str,
    /// Section of Table 1.
    pub category: Category,
    /// The paper's reported statistics for this row.
    pub paper: PaperRow,
    source: Source,
}

impl CorpusEntry {
    /// The assembled DSL text of the grammar.
    pub fn text(&self) -> String {
        match &self.source {
            Source::Text(t) => (*t).to_owned(),
            Source::Patched {
                base,
                replace,
                append,
            } => {
                let mut text = (*base).to_owned();
                for (from, to) in *replace {
                    assert!(
                        text.contains(from),
                        "patch for {} does not match base grammar: {from:?}",
                        self.name
                    );
                    text = text.replacen(from, to, 1);
                }
                for frag in *append {
                    text.push('\n');
                    text.push_str(frag);
                }
                text
            }
        }
    }

    /// Parses the grammar.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`GrammarError`] — corpus tests assert this
    /// never happens.
    pub fn load(&self) -> Result<Grammar, GrammarError> {
        Grammar::parse(&self.text())
    }
}

const FIGURE1: &str = include_str!("../grammars/figure1.y");
const FIGURE3: &str = include_str!("../grammars/figure3.y");
const FIGURE7: &str = include_str!("../grammars/figure7.y");
const AMBFAILED01: &str = include_str!("../grammars/ambfailed01.y");
const ABCD: &str = include_str!("../grammars/abcd.y");
const SIMP2: &str = include_str!("../grammars/simp2.y");
const XI: &str = include_str!("../grammars/xi.y");
const EQN: &str = include_str!("../grammars/eqn.y");
const STACKEXC01: &str = include_str!("../grammars/stackexc01.y");
const STACKEXC02: &str = include_str!("../grammars/stackexc02.y");
const STACKOVF01: &str = include_str!("../grammars/stackovf01.y");
const STACKOVF02: &str = include_str!("../grammars/stackovf02.y");
const STACKOVF03: &str = include_str!("../grammars/stackovf03.y");
const STACKOVF04: &str = include_str!("../grammars/stackovf04.y");
const STACKOVF05: &str = include_str!("../grammars/stackovf05.y");
const STACKOVF06: &str = include_str!("../grammars/stackovf06.y");
const STACKOVF07: &str = include_str!("../grammars/stackovf07.y");
const STACKOVF08: &str = include_str!("../grammars/stackovf08.y");
const STACKOVF09: &str = include_str!("../grammars/stackovf09.y");
const STACKOVF10: &str = include_str!("../grammars/stackovf10.y");
const SQL: &str = include_str!("../grammars/sql.y");
const SQL_SMALL: &str = include_str!("../grammars/sql_small.y");
const PASCAL: &str = include_str!("../grammars/pascal.y");
const C89: &str = include_str!("../grammars/c89.y");
const JAVA: &str = include_str!("../grammars/java.y");
const JAVA_EXT1: &str = include_str!("../grammars/java_ext1.inc");
const JAVA_EXT2: &str = include_str!("../grammars/java_ext2.inc");

#[allow(clippy::too_many_arguments)]
const fn row(
    nonterminals: usize,
    productions: usize,
    states: usize,
    conflicts: usize,
    ambiguous: bool,
    unifying: usize,
    nonunifying: usize,
    timeouts: usize,
) -> PaperRow {
    PaperRow {
        nonterminals,
        productions,
        states,
        conflicts,
        ambiguous,
        unifying,
        nonunifying,
        timeouts,
    }
}

/// Every grammar of Table 1, in the paper's row order.
pub fn all() -> Vec<CorpusEntry> {
    use Category::{Bv10, Ours, StackOverflow};
    let mut v = Vec::new();
    let mut push = |name, category, paper, source| {
        v.push(CorpusEntry {
            name,
            category,
            paper,
            source,
        });
    };

    // --- Our grammars ---------------------------------------------------
    push(
        "figure1",
        Ours,
        row(3, 9, 24, 3, true, 3, 0, 0),
        Source::Text(FIGURE1),
    );
    push(
        "figure3",
        Ours,
        row(4, 7, 10, 1, false, 0, 1, 0),
        Source::Text(FIGURE3),
    );
    push(
        "figure7",
        Ours,
        row(4, 10, 16, 2, true, 2, 0, 0),
        Source::Text(FIGURE7),
    );
    push(
        "ambfailed01",
        Ours,
        row(6, 10, 17, 1, true, 0, 1, 0),
        Source::Text(AMBFAILED01),
    );
    push(
        "abcd",
        Ours,
        row(5, 11, 22, 3, true, 3, 0, 0),
        Source::Text(ABCD),
    );
    push(
        "simp2",
        Ours,
        row(10, 41, 70, 1, true, 1, 0, 0),
        Source::Text(SIMP2),
    );
    push(
        "xi",
        Ours,
        row(16, 41, 82, 6, true, 6, 0, 0),
        Source::Text(XI),
    );
    push(
        "eqn",
        Ours,
        row(14, 67, 133, 1, true, 1, 0, 0),
        Source::Text(EQN),
    );
    push(
        "java-ext1",
        Ours,
        row(185, 445, 767, 2, false, 0, 0, 2),
        Source::Patched {
            base: JAVA,
            replace: &[],
            append: &[JAVA_EXT1],
        },
    );
    push(
        "java-ext2",
        Ours,
        row(234, 599, 1255, 1, false, 0, 0, 1),
        Source::Patched {
            base: JAVA,
            replace: &[],
            append: &[JAVA_EXT1, JAVA_EXT2],
        },
    );

    // --- Stack Overflow / Stack Exchange --------------------------------
    push(
        "stackexc01",
        StackOverflow,
        row(2, 7, 13, 3, true, 3, 0, 0),
        Source::Text(STACKEXC01),
    );
    push(
        "stackexc02",
        StackOverflow,
        row(6, 11, 15, 1, false, 0, 1, 0),
        Source::Text(STACKEXC02),
    );
    push(
        "stackovf01",
        StackOverflow,
        row(2, 5, 9, 1, false, 0, 1, 0),
        Source::Text(STACKOVF01),
    );
    push(
        "stackovf02",
        StackOverflow,
        row(2, 5, 9, 4, true, 4, 0, 0),
        Source::Text(STACKOVF02),
    );
    push(
        "stackovf03",
        StackOverflow,
        row(2, 6, 10, 1, true, 1, 0, 0),
        Source::Text(STACKOVF03),
    );
    push(
        "stackovf04",
        StackOverflow,
        row(5, 9, 13, 1, false, 0, 1, 0),
        Source::Text(STACKOVF04),
    );
    push(
        "stackovf05",
        StackOverflow,
        row(5, 10, 14, 1, true, 1, 0, 0),
        Source::Text(STACKOVF05),
    );
    push(
        "stackovf06",
        StackOverflow,
        row(6, 10, 15, 2, false, 0, 2, 0),
        Source::Text(STACKOVF06),
    );
    push(
        "stackovf07",
        StackOverflow,
        row(7, 12, 17, 3, true, 3, 0, 0),
        Source::Text(STACKOVF07),
    );
    push(
        "stackovf08",
        StackOverflow,
        row(3, 13, 21, 8, false, 0, 8, 0),
        Source::Text(STACKOVF08),
    );
    push(
        "stackovf09",
        StackOverflow,
        row(6, 12, 27, 1, false, 0, 1, 0),
        Source::Text(STACKOVF09),
    );
    push(
        "stackovf10",
        StackOverflow,
        row(9, 20, 53, 19, true, 19, 0, 0),
        Source::Text(STACKOVF10),
    );

    // --- BV10 -------------------------------------------------------------
    // SQL: 29 nonterminals, 81 productions, ~150 states.
    push(
        "SQL.1",
        Bv10,
        row(8, 23, 46, 1, true, 1, 0, 0),
        Source::Text(SQL_SMALL),
    );
    push(
        "SQL.2",
        Bv10,
        row(29, 81, 151, 1, true, 1, 0, 0),
        Source::Patched {
            base: SQL,
            replace: &[],
            append: &["// injected: generalized qualified column\ncolumn : column '.' ID ;\n"],
        },
    );
    push(
        "SQL.3",
        Bv10,
        row(29, 81, 149, 1, true, 1, 0, 0),
        Source::Patched {
            base: SQL,
            replace: &[],
            append: &["// injected: overlapping unit production\nselect_item : column ;\n"],
        },
    );
    push(
        "SQL.4",
        Bv10,
        row(29, 81, 151, 1, true, 1, 0, 0),
        Source::Patched {
            base: SQL,
            replace: &[],
            append: &["// injected: rule extension overlapping the list separator\norder_item : order_item ',' column ;\n"],
        },
    );
    push(
        "SQL.5",
        Bv10,
        row(29, 81, 151, 1, true, 1, 0, 0),
        Source::Patched {
            base: SQL,
            replace: &[],
            append: &["// injected: appendable value lists\nvalue_list : value_list expr ;\n"],
        },
    );

    // Pascal: 79 nonterminals, 177 productions, ~320 states.
    push(
        "Pascal.1",
        Bv10,
        row(79, 177, 323, 3, true, 2, 0, 1),
        Source::Patched {
            base: PASCAL,
            replace: &[],
            append: &["// injected: break the open/closed statement discipline\nnon_labeled_closed_statement : 'if' boolean_expression 'then' closed_statement ;\n"],
        },
    );
    push(
        "Pascal.2",
        Bv10,
        row(79, 177, 324, 5, true, 5, 0, 0),
        Source::Patched {
            base: PASCAL,
            replace: &[],
            append: &["// injected: trailing-semicolon sequences\nstatement_sequence : statement_sequence ';' ;\n"],
        },
    );
    push(
        "Pascal.3",
        Bv10,
        row(79, 177, 321, 1, true, 1, 0, 0),
        Source::Patched {
            base: PASCAL,
            replace: &[],
            append: &["// injected: variant with trailing semicolon\nvariant : case_constant_list ':' '(' record_section_list ')' ';' ;\n"],
        },
    );
    push(
        "Pascal.4",
        Bv10,
        row(79, 177, 322, 1, true, 1, 0, 0),
        Source::Patched {
            base: PASCAL,
            replace: &[],
            append: &["// injected: case arms with trailing semicolon\ncase_list_element : case_constant_list ':' statement ';' ;\n"],
        },
    );
    push(
        "Pascal.5",
        Bv10,
        row(79, 177, 322, 1, true, 1, 0, 0),
        Source::Patched {
            base: PASCAL,
            replace: &[],
            append: &["// injected: parameter sections with trailing semicolon\nformal_parameter_section : identifier_list ':' ID ';' ;\n"],
        },
    );

    // C: 64 nonterminals, 214 productions, ~370 states.
    push(
        "C.1",
        Bv10,
        row(64, 214, 369, 1, true, 1, 0, 0),
        Source::Patched {
            base: C89,
            replace: &[(" %prec 'LOWER_THAN_ELSE'", "")],
            append: &[],
        },
    );
    push(
        "C.2",
        Bv10,
        row(64, 214, 368, 1, true, 1, 0, 0),
        Source::Patched {
            base: C89,
            replace: &[],
            append: &["// injected: nullable initializers\ninitializer : %empty ;\n"],
        },
    );
    push(
        "C.3",
        Bv10,
        row(64, 214, 368, 4, true, 4, 0, 0),
        Source::Patched {
            base: C89,
            replace: &[],
            append: &["// injected: identifiers as abstract declarators\ndirect_abstract_declarator : IDENTIFIER ;\n"],
        },
    );
    push(
        "C.4",
        Bv10,
        row(64, 214, 369, 1, true, 0, 0, 1),
        Source::Patched {
            base: C89,
            replace: &[],
            append: &["// injected: identifier casts\ncast_expression : '(' IDENTIFIER ')' cast_expression ;\n"],
        },
    );
    push(
        "C.5",
        Bv10,
        row(64, 214, 370, 1, true, 1, 0, 0),
        Source::Patched {
            base: C89,
            replace: &[],
            append: &["// injected: doubled array declarator brackets\ndirect_declarator : direct_declarator '[' ']' '[' ']' ;\n"],
        },
    );

    // Java: 152 nonterminals, 351 productions, ~600 states.
    push(
        "Java.1",
        Bv10,
        row(152, 351, 607, 1, true, 1, 0, 0),
        Source::Patched {
            base: JAVA,
            replace: &[],
            append: &["// injected: name-only casts\ncast_expression : '(' name ')' unary_expression_not_plus_minus ;\n"],
        },
    );
    push(
        "Java.2",
        Bv10,
        row(152, 351, 606, 1133, true, 141, 0, 9),
        Source::Patched {
            base: JAVA,
            replace: &[],
            append: &["// injected: nullable block statements (the paper: 'the addition\n// of a nullable production generates a large number of conflicts')\nblock_statement : %empty ;\n"],
        },
    );
    push(
        "Java.3",
        Bv10,
        row(152, 351, 608, 2, true, 2, 0, 0),
        Source::Patched {
            base: JAVA,
            replace: &[],
            append: &["// injected: array types over class types\narray_type : class_or_interface_type dims ;\n"],
        },
    );
    push(
        "Java.4",
        Bv10,
        row(152, 351, 608, 14, true, 6, 2, 6),
        Source::Patched {
            base: JAVA,
            replace: &[],
            append: &["// injected: nullable argument lists\nargument_list : %empty ;\n"],
        },
    );
    push(
        "Java.5",
        Bv10,
        row(152, 351, 607, 3, true, 3, 0, 0),
        Source::Patched {
            base: JAVA,
            replace: &[],
            append: &["// injected: parenthesized assignment targets\nleft_hand_side : '(' left_hand_side ')' ;\n"],
        },
    );

    v
}

/// Looks up an entry by its Table 1 name.
pub fn by_name(name: &str) -> Option<CorpusEntry> {
    all().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_lr::Automaton;

    #[test]
    fn all_grammars_parse() {
        for e in all() {
            let g = e.load().unwrap_or_else(|err| panic!("{}: {err}", e.name));
            assert!(g.prod_count() > 1, "{} has productions", e.name);
        }
    }

    #[test]
    fn table_has_42_rows() {
        assert_eq!(all().len(), 42);
    }

    #[test]
    fn paper_figures_are_exact() {
        // The grammars printed in the paper must match Table 1 exactly
        // (counts exclude $accept, include the augmented production).
        for name in ["figure1", "figure3", "figure7"] {
            let e = by_name(name).unwrap();
            let g = e.load().unwrap();
            assert_eq!(
                g.nonterminal_count() - 1,
                e.paper.nonterminals,
                "{name}: nonterminals"
            );
            assert_eq!(g.prod_count(), e.paper.productions, "{name}: productions");
            let auto = Automaton::build(&g);
            assert_eq!(auto.state_count(), e.paper.states, "{name}: states");
            assert_eq!(
                auto.tables(&g).conflicts().len(),
                e.paper.conflicts,
                "{name}: conflicts"
            );
        }
    }

    #[test]
    fn every_grammar_has_conflicts() {
        // Every Table 1 row has at least one conflict — that is the point.
        for e in all() {
            let g = e.load().unwrap();
            let auto = Automaton::build(&g);
            assert!(
                !auto.tables(&g).conflicts().is_empty(),
                "{} must have conflicts",
                e.name
            );
        }
    }

    #[test]
    fn by_name_round_trips() {
        assert!(by_name("Java.2").is_some());
        assert!(by_name("nonexistent").is_none());
        assert_eq!(by_name("eqn").unwrap().category, Category::Ours);
    }
}
