//! Earley recognition and exhaustive derivation enumeration.
//!
//! This crate is the *independent oracle* of the `lalrcex` toolkit: it
//! knows nothing about LR automata, so it can cross-check what the
//! counterexample engine claims. Two components:
//!
//! * [`chart`] — a classic Earley recognizer, generalized to *sentential
//!   forms*: the input may contain nonterminals, which match themselves
//!   (an unexpanded leaf), and recognition may start from any nonterminal.
//! * [`forest`] — a span-based derivation table from which all distinct
//!   derivation trees of an input can be enumerated (up to limits). A
//!   sentential form with two distinct trees proves the grammar ambiguous,
//!   which is exactly the property a *unifying counterexample* (§3.2 of
//!   the paper) must have.
//!
//! # Example
//!
//! ```
//! use lalrcex_grammar::Grammar;
//! use lalrcex_earley::{chart, forest};
//!
//! let g = Grammar::parse("%% e : e '+' e | N ;")?;
//! let e = g.symbol_named("e").unwrap();
//! let plus = g.symbol_named("+").unwrap();
//! // `e + e + e` — the paper's §2.4 counterexample shape.
//! let input = vec![e, plus, e, plus, e];
//! assert!(chart::recognizes(&g, e, &input));
//! assert!(forest::is_ambiguous_form(&g, e, &input));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod chart;
pub mod forest;
