//! Classic Earley recognition over sentential forms.
//!
//! The scanner is generalized: an input symbol (terminal *or* nonterminal)
//! is consumed when an item has exactly that symbol after its dot. A
//! nonterminal consumed this way is an unexpanded leaf of the derivation,
//! matching the paper's preference for counterexamples that are "no more
//! concrete than necessary" (§3.2).

use lalrcex_grammar::{Grammar, ProdId, SymbolId, SymbolKind};

/// An Earley item: production, dot position, and origin set index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct EItem {
    prod: ProdId,
    dot: usize,
    origin: usize,
}

/// `true` if `start ⇒* input`, where nonterminals in `input` stand for
/// themselves (they are not expanded).
///
/// # Example
///
/// ```
/// use lalrcex_grammar::Grammar;
/// use lalrcex_earley::chart::recognizes;
///
/// let g = Grammar::parse("%% s : 'a' s 'b' | ;")?;
/// let s = g.symbol_named("s").unwrap();
/// let a = g.symbol_named("a").unwrap();
/// let b = g.symbol_named("b").unwrap();
/// assert!(recognizes(&g, s, &[a, a, b, b]));
/// assert!(recognizes(&g, s, &[a, s, b]));
/// assert!(!recognizes(&g, s, &[b, a]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn recognizes(g: &Grammar, start: SymbolId, input: &[SymbolId]) -> bool {
    assert!(
        g.kind(start) == SymbolKind::Nonterminal,
        "start symbol must be a nonterminal"
    );
    // Trivial derivation: the input is exactly [start].
    if input == [start] {
        return true;
    }
    let n = input.len();
    let mut sets: Vec<Vec<EItem>> = vec![Vec::new(); n + 1];

    let add = |sets: &mut Vec<Vec<EItem>>, k: usize, item: EItem| -> bool {
        if sets[k].contains(&item) {
            false
        } else {
            sets[k].push(item);
            true
        }
    };

    for &pid in g.prods_of(start) {
        add(
            &mut sets,
            0,
            EItem {
                prod: pid,
                dot: 0,
                origin: 0,
            },
        );
    }

    for k in 0..=n {
        // Process until the set stabilizes (prediction/completion can feed
        // each other, including through ε-productions).
        let mut idx = 0;
        while idx < sets[k].len() {
            let item = sets[k][idx];
            idx += 1;
            let rhs = g.prod(item.prod).rhs();
            if item.dot < rhs.len() {
                let next = rhs[item.dot];
                // Scan: symbol matches itself.
                if k < n && input[k] == next {
                    add(
                        &mut sets,
                        k + 1,
                        EItem {
                            prod: item.prod,
                            dot: item.dot + 1,
                            origin: item.origin,
                        },
                    );
                }
                // Predict.
                if g.kind(next) == SymbolKind::Nonterminal {
                    for &pid in g.prods_of(next) {
                        add(
                            &mut sets,
                            k,
                            EItem {
                                prod: pid,
                                dot: 0,
                                origin: k,
                            },
                        );
                    }
                    // Magic completion for nullable nonterminals already
                    // completed in this set (Aycock–Horspool fix).
                    let completed_here: Vec<EItem> = sets[k]
                        .iter()
                        .copied()
                        .filter(|c| {
                            c.origin == k
                                && g.prod(c.prod).lhs() == next
                                && c.dot == g.prod(c.prod).rhs().len()
                        })
                        .collect();
                    if !completed_here.is_empty() {
                        add(
                            &mut sets,
                            k,
                            EItem {
                                prod: item.prod,
                                dot: item.dot + 1,
                                origin: item.origin,
                            },
                        );
                    }
                }
            } else {
                // Complete.
                let lhs = g.prod(item.prod).lhs();
                let parents: Vec<EItem> = sets[item.origin]
                    .iter()
                    .copied()
                    .filter(|p| {
                        let prhs = g.prod(p.prod).rhs();
                        p.dot < prhs.len() && prhs[p.dot] == lhs
                    })
                    .collect();
                for p in parents {
                    add(
                        &mut sets,
                        k,
                        EItem {
                            prod: p.prod,
                            dot: p.dot + 1,
                            origin: p.origin,
                        },
                    );
                }
            }
        }
    }

    sets[n].iter().any(|item| {
        item.origin == 0
            && item.dot == g.prod(item.prod).rhs().len()
            && g.prod(item.prod).lhs() == start
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::Grammar;

    fn syms(g: &Grammar, names: &[&str]) -> Vec<SymbolId> {
        names.iter().map(|n| g.symbol_named(n).unwrap()).collect()
    }

    #[test]
    fn balanced_parens() {
        let g = Grammar::parse("%% s : '(' s ')' s | ;").unwrap();
        let s = g.symbol_named("s").unwrap();
        assert!(recognizes(
            &g,
            s,
            &syms(&g, &["(", ")", "(", "(", ")", ")"])
        ));
        assert!(recognizes(&g, s, &[]));
        assert!(!recognizes(&g, s, &syms(&g, &["(", "(", ")"])));
    }

    #[test]
    fn nullable_chains() {
        let g = Grammar::parse("%% s : a b X ; a : ; b : a ;").unwrap();
        let s = g.symbol_named("s").unwrap();
        assert!(recognizes(&g, s, &syms(&g, &["X"])));
        assert!(!recognizes(&g, s, &[]));
    }

    #[test]
    fn sentential_form_with_nonterminal_leaf() {
        let g = Grammar::parse("%% s : 'if' e 'then' s | X ; e : Y ;").unwrap();
        let s = g.symbol_named("s").unwrap();
        let e = g.symbol_named("e").unwrap();
        let input = vec![
            g.symbol_named("if").unwrap(),
            e,
            g.symbol_named("then").unwrap(),
            s,
        ];
        assert!(recognizes(&g, s, &input));
    }

    #[test]
    fn trivial_self_derivation() {
        let g = Grammar::parse("%% s : X ;").unwrap();
        let s = g.symbol_named("s").unwrap();
        assert!(recognizes(&g, s, &[s]));
    }

    #[test]
    fn start_from_inner_nonterminal() {
        let g = Grammar::parse("%% s : e ';' ; e : e '+' N | N ;").unwrap();
        let e = g.symbol_named("e").unwrap();
        assert!(recognizes(&g, e, &syms(&g, &["N", "+", "N"])));
        assert!(!recognizes(&g, e, &syms(&g, &["N", "+", "N", ";"])));
    }

    #[test]
    fn left_and_right_recursion() {
        let g = Grammar::parse("%% l : l A | ; r : A r | ;").unwrap();
        let l = g.symbol_named("l").unwrap();
        let r = g.symbol_named("r").unwrap();
        let input = syms(&g, &["A", "A", "A", "A"]);
        assert!(recognizes(&g, l, &input));
        assert!(recognizes(&g, r, &input));
    }
}
