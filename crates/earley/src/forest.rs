//! Span-based derivation forests: enumerate all distinct derivation trees
//! of a sentential form, up to configurable limits.
//!
//! The counterexample engine claims that a unifying counterexample has two
//! distinct derivations; [`is_ambiguous_form`] verifies such claims with a
//! completely independent algorithm (no LR machinery involved).

use std::collections::HashSet;

use lalrcex_grammar::{Derivation, Grammar, SymbolId, SymbolKind};

/// Enumeration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Stop after this many distinct trees.
    pub max_parses: usize,
    /// Maximum derivation depth (guards against cyclic grammars, where a
    /// form can have infinitely many derivations).
    pub max_depth: usize,
    /// Overall work budget (elementary enumeration steps).
    pub max_steps: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_parses: 8,
            max_depth: 48,
            max_steps: 500_000,
        }
    }
}

/// The derivability table `sym ⇒* input[i..j]` for every symbol and span.
struct SpanTable {
    n: usize,
    nsym: usize,
    table: Vec<bool>, // [sym.index() * (n+1)^2 + i * (n+1) + j]
}

impl SpanTable {
    fn idx(&self, sym: SymbolId, i: usize, j: usize) -> usize {
        sym.index() * (self.n + 1) * (self.n + 1) + i * (self.n + 1) + j
    }

    fn get(&self, sym: SymbolId, i: usize, j: usize) -> bool {
        self.table[self.idx(sym, i, j)]
    }

    fn set(&mut self, sym: SymbolId, i: usize, j: usize) -> bool {
        let k = self.idx(sym, i, j);
        let was = self.table[k];
        self.table[k] = true;
        !was
    }

    fn build(g: &Grammar, input: &[SymbolId]) -> SpanTable {
        let n = input.len();
        let nsym = g.symbol_count();
        let mut t = SpanTable {
            n,
            nsym,
            table: vec![false; nsym * (n + 1) * (n + 1)],
        };
        let _ = t.nsym;
        // Leaves: every input symbol derives itself.
        for (i, &s) in input.iter().enumerate() {
            t.set(s, i, i + 1);
        }
        // Fixpoint over productions.
        loop {
            let mut changed = false;
            for p in g.productions() {
                let lhs = p.lhs();
                for i in 0..=n {
                    for j in i..=n {
                        if t.get(lhs, i, j) {
                            continue;
                        }
                        if seq_covers(g, &t, p.rhs(), i, j) {
                            t.set(lhs, i, j);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        t
    }
}

/// Can `seq` derive exactly `input[i..j]`? (Positions reachable after each
/// prefix of `seq`, classic sequence DP.)
fn seq_covers(g: &Grammar, t: &SpanTable, seq: &[SymbolId], i: usize, j: usize) -> bool {
    let _ = g;
    let mut positions = vec![false; j + 1];
    positions[i] = true;
    for &y in seq {
        let mut next = vec![false; j + 1];
        for (m, &ok) in positions.iter().enumerate() {
            if !ok {
                continue;
            }
            for (m2, slot) in next.iter_mut().enumerate().skip(m) {
                if t.get(y, m, m2) {
                    *slot = true;
                }
            }
        }
        positions = next;
        if !positions.iter().any(|&b| b) {
            return false;
        }
    }
    positions[j]
}

struct Enumerator<'a> {
    g: &'a Grammar,
    input: &'a [SymbolId],
    table: SpanTable,
    limits: Limits,
    steps: usize,
}

impl Enumerator<'_> {
    /// All *distinct* derivations of `sym` spanning `input[i..j]`, up to
    /// limits. Deduplication matters: duplicate productions (or equal
    /// sub-derivations reached along different splits) must not consume
    /// the `max_parses` budget, or genuinely distinct trees get lost.
    fn trees(&mut self, sym: SymbolId, i: usize, j: usize, depth: usize) -> Vec<Derivation> {
        let mut out = Vec::new();
        if self.steps >= self.limits.max_steps || depth > self.limits.max_depth {
            return out;
        }
        self.steps += 1;
        let mut seen = HashSet::new();
        // The unexpanded leaf.
        if j == i + 1 && self.input[i] == sym {
            let leaf = Derivation::Leaf(sym);
            seen.insert(leaf.clone());
            out.push(leaf);
        }
        if self.g.kind(sym) != SymbolKind::Nonterminal {
            return out;
        }
        for &pid in self.g.prods_of(sym) {
            let rhs = self.g.prod(pid).rhs();
            let mut splits: Vec<Vec<Derivation>> = Vec::new();
            self.expand_seq(rhs, i, j, depth, &mut Vec::new(), &mut splits, out.len());
            for children in splits {
                let node = Derivation::Node(sym, children);
                if seen.insert(node.clone()) {
                    out.push(node);
                    if out.len() >= self.limits.max_parses {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// Enumerates ways `seq` derives `input[i..j]`, collecting the child
    /// derivation vectors into `acc`.
    #[allow(clippy::too_many_arguments)]
    fn expand_seq(
        &mut self,
        seq: &[SymbolId],
        i: usize,
        j: usize,
        depth: usize,
        prefix: &mut Vec<Derivation>,
        acc: &mut Vec<Vec<Derivation>>,
        already: usize,
    ) {
        if already + acc.len() >= self.limits.max_parses || self.steps >= self.limits.max_steps {
            return;
        }
        let Some((&y, rest)) = seq.split_first() else {
            if i == j {
                acc.push(prefix.clone());
            }
            return;
        };
        for m in i..=j {
            if !self.table.get(y, i, m) {
                continue;
            }
            // `rest` must be able to cover (m, j); cheap pre-check.
            if !seq_covers(self.g, &self.table, rest, m, j) {
                continue;
            }
            for child in self.trees(y, i, m, depth + 1) {
                prefix.push(child);
                self.expand_seq(rest, m, j, depth, prefix, acc, already);
                prefix.pop();
            }
        }
    }
}

/// Enumerates distinct derivation trees of `input` from `start`, up to the
/// limits. The trivial tree (when `input == [start]`) is included.
///
/// # Panics
///
/// Panics if `start` is a terminal.
pub fn parses(g: &Grammar, start: SymbolId, input: &[SymbolId], limits: Limits) -> Vec<Derivation> {
    assert!(
        g.kind(start) == SymbolKind::Nonterminal,
        "start symbol must be a nonterminal"
    );
    // Iterative deepening on derivation depth: shallow (cheap) trees are
    // found before the step budget is spent in deep ε-span recursions of
    // cyclic grammars.
    let mut seen = HashSet::new();
    let mut out: Vec<Derivation> = Vec::new();
    let mut spent = 0usize;
    let mut depth = 4usize;
    loop {
        let table = SpanTable::build(g, input);
        let mut e = Enumerator {
            g,
            input,
            table,
            limits: Limits {
                max_depth: depth.min(limits.max_depth),
                max_steps: limits.max_steps.saturating_sub(spent),
                ..limits
            },
            steps: 0,
        };
        for t in e.trees(start, 0, input.len(), 0) {
            if seen.insert(t.clone()) && out.len() < limits.max_parses {
                out.push(t);
            }
        }
        spent += e.steps;
        if out.len() >= limits.max_parses || depth >= limits.max_depth || spent >= limits.max_steps
        {
            break;
        }
        depth *= 2;
    }
    out
}

/// Number of distinct derivation trees, capped at `max`.
pub fn count_parses(g: &Grammar, start: SymbolId, input: &[SymbolId], max: usize) -> usize {
    parses(
        g,
        start,
        input,
        Limits {
            max_parses: max,
            ..Limits::default()
        },
    )
    .len()
}

/// `true` if the sentential form `input` has two distinct derivations from
/// `start` — i.e. it is a valid *unifying counterexample* for an ambiguity
/// of `start`.
pub fn is_ambiguous_form(g: &Grammar, start: SymbolId, input: &[SymbolId]) -> bool {
    count_parses(g, start, input, 2) >= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use lalrcex_grammar::Grammar;

    fn syms(g: &Grammar, names: &[&str]) -> Vec<SymbolId> {
        names.iter().map(|n| g.symbol_named(n).unwrap()).collect()
    }

    #[test]
    fn unambiguous_string_has_one_tree() {
        let g = Grammar::parse("%% l : l A | A ;").unwrap();
        let l = g.symbol_named("l").unwrap();
        assert_eq!(count_parses(&g, l, &syms(&g, &["A", "A", "A"]), 10), 1);
    }

    #[test]
    fn classic_ambiguous_expression() {
        let g = Grammar::parse("%% e : e '+' e | N ;").unwrap();
        let e = g.symbol_named("e").unwrap();
        assert_eq!(
            count_parses(&g, e, &syms(&g, &["N", "+", "N", "+", "N"]), 10),
            2
        );
        assert!(is_ambiguous_form(
            &g,
            e,
            &syms(&g, &["N", "+", "N", "+", "N"])
        ));
        assert!(!is_ambiguous_form(&g, e, &syms(&g, &["N", "+", "N"])));
    }

    #[test]
    fn sentential_form_ambiguity() {
        let g = Grammar::parse("%% e : e '+' e | N ;").unwrap();
        let e = g.symbol_named("e").unwrap();
        let plus = g.symbol_named("+").unwrap();
        let input = vec![e, plus, e, plus, e];
        let trees = parses(&g, e, &input, Limits::default());
        assert_eq!(trees.len(), 2);
        for t in &trees {
            assert_eq!(t.leaves(), input, "leaves must be the input form");
        }
    }

    #[test]
    fn dangling_else_two_trees() {
        let g = Grammar::parse("%% s : 'if' e 'then' s 'else' s | 'if' e 'then' s | X ; e : Y ;")
            .unwrap();
        let s = g.symbol_named("s").unwrap();
        let e = g.symbol_named("e").unwrap();
        let input = vec![
            g.symbol_named("if").unwrap(),
            e,
            g.symbol_named("then").unwrap(),
            s,
            g.symbol_named("else").unwrap(),
            s,
        ];
        // `if e then s else s` itself has only one parse; the ambiguity
        // appears with a nested if.
        assert_eq!(count_parses(&g, s, &input, 10), 1);
        let nested = vec![
            g.symbol_named("if").unwrap(),
            e,
            g.symbol_named("then").unwrap(),
            g.symbol_named("if").unwrap(),
            e,
            g.symbol_named("then").unwrap(),
            s,
            g.symbol_named("else").unwrap(),
            s,
        ];
        assert_eq!(count_parses(&g, s, &nested, 10), 2);
    }

    #[test]
    fn cyclic_grammar_is_bounded() {
        // s -> s is a cycle: infinitely many derivations of `A`.
        let g = Grammar::parse("%% s : s | A ;").unwrap();
        let s = g.symbol_named("s").unwrap();
        let c = count_parses(&g, s, &syms(&g, &["A"]), 5);
        assert!(c >= 2, "cycle found ({c} trees)");
        assert!(c <= 5, "respects the cap");
    }

    #[test]
    fn nullable_ambiguity() {
        // Two ways to derive ε.
        let g = Grammar::parse("%% s : a a ; a : ;").unwrap();
        let s = g.symbol_named("s").unwrap();
        assert_eq!(count_parses(&g, s, &[], 10), 1);
        let g2 = Grammar::parse("%% s : a | b ; a : ; b : ;").unwrap();
        let s2 = g2.symbol_named("s").unwrap();
        assert_eq!(count_parses(&g2, s2, &[], 10), 2);
    }

    #[test]
    fn non_derivable_input_has_no_trees() {
        let g = Grammar::parse("%% s : A B ;").unwrap();
        let s = g.symbol_named("s").unwrap();
        assert_eq!(count_parses(&g, s, &syms(&g, &["B", "A"]), 10), 0);
    }

    #[test]
    fn trivial_tree_for_start_itself() {
        let g = Grammar::parse("%% s : A ;").unwrap();
        let s = g.symbol_named("s").unwrap();
        let trees = parses(&g, s, &[s], Limits::default());
        assert_eq!(trees, vec![Derivation::Leaf(s)]);
    }
}
