//! End-to-end tests for the `lalrcex` binary: the uniform argument
//! contract across all four subcommands, the JSON report surface, and the
//! serve/batch wiring.

use std::io::Write;
use std::process::{Command, Output, Stdio};

use lalrcex::api::json::{self, Json};

const BIN: &str = env!("CARGO_BIN_EXE_lalrcex");

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn lalrcex")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("lalrcex-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

const FIG1: &str = "%%\ne : e '+' e | NUM ;\n";

/// Satellite bugfix: every subcommand funnels through one argument
/// scanner, so an unknown flag is exit 2 + usage on stderr everywhere,
/// and `--help` is exit 0 + usage on stdout everywhere.
#[test]
fn argument_contract_is_uniform_across_subcommands() {
    for args in [
        vec!["cex", "--bogus", "g.y"],
        vec!["--bogus", "g.y"], // legacy implicit cex
        vec!["lint", "--bogus", "g.y"],
        vec!["serve", "--bogus"],
        vec!["batch", "--bogus", "m.txt"],
        vec!["cex", "--time-limit"],      // flag missing its value
        vec!["cex", "--workers", "soon"], // not a number
        vec!["cex", "--format", "yaml", "g.y"],
        vec!["lint", "--format", "yaml", "g.y"],
        vec!["batch", "--format", "yaml", "m.txt"],
    ] {
        let out = run(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("usage:"), "{args:?} prints usage on stderr");
        assert!(out.stdout.is_empty(), "{args:?} writes nothing to stdout");
    }
    for args in [
        vec!["--help"],
        vec!["cex", "--help"],
        vec!["lint", "-h"],
        vec!["serve", "--help"],
        vec!["batch", "--help"],
    ] {
        let out = run(&args);
        assert_eq!(out.status.code(), Some(0), "{args:?} exits 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage:"), "{args:?} prints usage on stdout");
    }
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2), "no arguments is a usage error");
}

#[test]
fn cex_json_emits_schema_v1_and_conflict_exit_code() {
    let g = write_temp("fig1.y", FIG1);
    let out = run(&["cex", "--format", "json", g.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "conflicts reported");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let doc = json::parse(stdout.trim()).expect("stdout is one JSON document");
    assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(1));
    assert_eq!(
        doc.get("grammar")
            .and_then(|g| g.get("conflicts"))
            .and_then(Json::as_u64),
        Some(1)
    );
    // Text mode on the same grammar agrees on the exit code.
    let text = run(&[g.to_str().unwrap()]);
    assert_eq!(text.status.code(), Some(1));
}

#[test]
fn cex_rejects_unreadable_and_unparsable_grammars() {
    let out = run(&["cex", "/nonexistent/lalrcex-test.y"]);
    assert_eq!(out.status.code(), Some(2));
    let bad = write_temp("bad.y", "%% e : ;;;;");
    let out = run(&["cex", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn serve_end_to_end_over_stdio() {
    let mut child = Command::new(BIN)
        .args(["serve", "--workers", "2", "--max-line", "65536"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lalrcex serve");
    let mut stdin = child.stdin.take().unwrap();
    let grammar = Json::str(FIG1).to_string();
    writeln!(
        stdin,
        "{{\"op\":\"analyze\",\"id\":\"a\",\"grammar\":{grammar},\"file\":\"fig1.y\"}}\n\
         not json\n\
         {{\"op\":\"shutdown\",\"id\":\"z\"}}"
    )
    .unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let responses: Vec<Json> = stdout
        .lines()
        .map(|l| json::parse(l).expect("response lines are JSON"))
        .collect();
    assert_eq!(responses.len(), 3);
    for r in &responses {
        assert_eq!(r.get("protocol").and_then(Json::as_u64), Some(1));
    }
    let analyze = responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("a"))
        .unwrap();
    assert_eq!(analyze.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        analyze
            .get("report")
            .and_then(|d| d.get("schema_version"))
            .and_then(Json::as_u64),
        Some(1)
    );
    let bad = responses
        .iter()
        .find(|r| r.get("ok").and_then(Json::as_bool) == Some(false))
        .expect("the malformed line gets a structured error");
    assert_eq!(
        bad.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("protocol")
    );
}

#[test]
fn batch_shares_one_cache_across_manifest_entries() {
    let manifest = write_temp(
        "manifest.txt",
        "# twice on purpose: the second run must hit the cache\n\
         corpus:figure1\n\
         corpus:figure1\n",
    );
    let out = run(&[
        "batch",
        "--format",
        "json",
        "--stats",
        manifest.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "figure1 has conflicts");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let docs: Vec<&str> = stdout.lines().collect();
    assert_eq!(docs.len(), 2, "one document per manifest entry");
    assert_eq!(
        docs[0], docs[1],
        "cold and warm documents are byte-identical"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("1 hits / 1 misses"),
        "--stats surfaces the cache counters; stderr: {stderr}"
    );
    assert!(
        stderr.contains("2/2 entries analyzed, 0 failed"),
        "end-of-run summary; stderr: {stderr}"
    );
}

/// Satellite: one bad manifest entry no longer aborts the run. Failed
/// entries are reported and counted in the end-of-run summary, the good
/// entries still analyze, and the exit code is nonzero iff any entry
/// failed.
#[test]
fn batch_isolates_per_entry_failures() {
    let mixed = write_temp(
        "manifest-mixed.txt",
        "corpus:figure1\n\
         corpus:no-such-grammar\n\
         /nonexistent/lalrcex-batch-test.y\n\
         corpus:figure1\n",
    );
    let out = run(&["batch", "--format", "json", mixed.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "failed entries dominate the exit code"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        stdout.lines().count(),
        2,
        "both good entries around the failures still analyze"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown corpus grammar"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("cannot read"), "stderr: {stderr}");
    assert!(
        stderr.contains("2/4 entries analyzed, 2 failed"),
        "end-of-run summary; stderr: {stderr}"
    );
    // An all-good run with conflicts keeps the conflict exit code.
    let good = write_temp("manifest-good.txt", "corpus:figure1\n");
    let out = run(&["batch", good.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "conflicts, no failed entries");
}

/// The admission flags end to end: an over-cap grammar is shed with a
/// structured `too_large` error, `health` answers inline, and a request
/// carrying `deadline_ms` far in the past of any real budget degrades to
/// `ok:true` with `deadline_expired`.
#[test]
fn serve_admission_flags_end_to_end() {
    let mut child = Command::new(BIN)
        .args(["serve", "--max-inflight", "4", "--max-grammar-bytes", "64"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lalrcex serve");
    let mut stdin = child.stdin.take().unwrap();
    let big = Json::str(format!("%%\ne : e '+' e | NUM ; // {}", "x".repeat(80))).to_string();
    let small = Json::str(FIG1).to_string();
    writeln!(
        stdin,
        "{{\"op\":\"analyze\",\"id\":\"big\",\"grammar\":{big}}}\n\
         {{\"op\":\"health\",\"id\":\"h\"}}\n\
         {{\"op\":\"analyze\",\"id\":\"ok\",\"grammar\":{small},\"deadline_ms\":1}}\n\
         {{\"op\":\"shutdown\",\"id\":\"z\"}}"
    )
    .unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("serve exits");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let responses: Vec<Json> = stdout
        .lines()
        .map(|l| json::parse(l).expect("response lines are JSON"))
        .collect();
    let by_id = |id: &str| {
        responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
            .unwrap_or_else(|| panic!("no response {id}"))
    };
    let big = by_id("big");
    assert_eq!(big.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        big.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("too_large")
    );
    let health = by_id("h");
    assert_eq!(health.get("op").and_then(Json::as_str), Some("health"));
    assert_eq!(health.get("max_inflight").and_then(Json::as_u64), Some(4));
    let ok = by_id("ok");
    assert_eq!(
        ok.get("ok").and_then(Json::as_bool),
        Some(true),
        "deadline expiry degrades, never errors"
    );
}

/// Satellite: the serve loop notices a dead peer. With the reader end of
/// its stdout closed mid-analysis, the next response write fails, the
/// hour-budget search is hard-cancelled, and the process exits 0 promptly
/// instead of finishing work nobody will read.
#[test]
fn serve_exits_promptly_when_reader_dies_mid_analysis() {
    use std::time::{Duration, Instant};

    let java = lalrcex::corpus::by_name("Java.2")
        .expect("corpus entry")
        .text();
    let mut child = Command::new(BIN)
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn lalrcex serve");
    let mut stdin = child.stdin.take().unwrap();
    let grammar = Json::str(&java).to_string();
    // An hour-budget extended search: without hangup detection the drain
    // would run it to completion.
    writeln!(
        stdin,
        "{{\"op\":\"analyze\",\"id\":\"slow\",\"grammar\":{grammar},\
         \"extended\":true,\"time_limit_ms\":3600000,\"total_limit_ms\":3600000}}"
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(500));
    // Kill the reader: the next response write comes back EPIPE.
    drop(child.stdout.take());
    writeln!(stdin, "{{\"op\":\"stats\",\"id\":\"s\"}}").unwrap();
    let started = Instant::now();
    let deadline = started + Duration::from_secs(90);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("serve did not exit after its peer hung up");
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(0), "hangup is an orderly exit");
}
