//! Deterministic chaos soak harness (ISSUE 8, tentpole 4): seeded
//! multi-request storms against a real `lalrcex serve` process over piped
//! stdio, mixing analyze/explain/lint/cancel/stats/health traffic with
//! slot-scoped fault plans, admission-control overload, and expiring
//! deadlines.
//!
//! Compiled and run only with the `failpoints` feature (the fault legs
//! need the probes in the binary):
//!
//! ```text
//! cargo test -p lalrcex-cli --features failpoints --test soak
//! ```
//!
//! The invariants under soak:
//!
//! 1. **Every request is answered** — exactly one response per id, no
//!    hangs, under faults and under shedding alike.
//! 2. **Clean replays are byte-identical** — the same seeded storm run
//!    twice produces canonically identical transcripts, even across
//!    different worker counts.
//! 3. **One-shot faults heal** — retried slots report `Completed`, never
//!    `Internal`, and the healed reports match a never-faulted run.
//! 4. **Shedding is structured and local** — overloaded submissions get
//!    `overloaded` replies with `retry_after_ms`, while admitted requests
//!    complete byte-identically to an unloaded run.
//! 5. **Deadlines degrade** — expiry yields partial reports through the
//!    engine's degradation ladder, cold and warm cache, never an error.
//!
//! Determinism discipline: requests are *paced* (each waits for its
//! response before the next is sent) wherever byte-identity is asserted,
//! because fault-plan hit counters are global per probe and the engine
//! cache's hit/miss sequence depends on completion order. Overload legs
//! rely on the reader admitting (inserting into the in-flight map) before
//! it reads the next line, which makes shedding deterministic by
//! construction; where a slot must *free up* mid-storm, the test polls
//! the inline `health` op instead of sleeping.

#![cfg(feature = "failpoints")]

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lalrcex::api::json::{self, Json};

const BIN: &str = env!("CARGO_BIN_EXE_lalrcex");

/// A grammar pool with deterministic, quickly-completing searches (so
/// byte-identity never depends on the clock).
const EXPR: &str = "%%\ne : e '+' e | NUM ;\n";
const CHAIN: &str = "%%\ns : 'a' s | 'b' ;\n";

/// Per-request limits high enough that every search in the pool finishes
/// by exhaustion or discovery, never by timeout.
const HUGE: &str = r#","time_limit_ms":3600000,"total_limit_ms":3600000"#;

fn corpus(name: &str) -> String {
    lalrcex::corpus::by_name(name).expect("corpus entry").text()
}

/// One `lalrcex serve` child on piped stdio, with a reader thread
/// draining stdout so the child never blocks on a full pipe.
struct Server {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: Arc<Mutex<Vec<String>>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    fn start(args: &[&str], fault_plan: Option<&str>) -> Server {
        let mut cmd = Command::new(BIN);
        cmd.arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        cmd.env_remove("LALRCEX_FAULT_PLAN");
        if let Some(p) = fault_plan {
            cmd.env("LALRCEX_FAULT_PLAN", p);
        }
        let mut child = cmd.spawn().expect("spawn lalrcex serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = child.stdout.take().unwrap();
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        let reader = std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                match line {
                    Ok(l) => sink.lock().unwrap().push(l),
                    Err(_) => break,
                }
            }
        });
        Server {
            child,
            stdin: Some(stdin),
            lines,
            reader: Some(reader),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stdin.as_mut().unwrap(), "{line}").unwrap();
    }

    fn responses(&self) -> Vec<Json> {
        self.lines
            .lock()
            .unwrap()
            .iter()
            .map(|l| json::parse(l).expect("every response line is valid JSON"))
            .collect()
    }

    /// Blocks until a response with `id` exists, then returns it.
    fn wait_for(&self, id: &str) -> Json {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            if let Some(r) = self
                .responses()
                .into_iter()
                .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
            {
                return r;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for response {id}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Blocks until `n` responses exist.
    fn wait_count(&self, n: usize) -> Vec<Json> {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let rs = self.responses();
            if rs.len() >= n {
                return rs;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {n} responses; have {}",
                rs.len()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Sends `shutdown`, waits for a prompt exit, and returns the full
    /// transcript.
    fn shutdown(mut self) -> Vec<Json> {
        self.send(r#"{"op":"shutdown","id":"__down"}"#);
        drop(self.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert_eq!(status.code(), Some(0), "serve exits cleanly");
                    break;
                }
                None if Instant::now() >= deadline => {
                    let _ = self.child.kill();
                    panic!("serve did not exit after shutdown — something hung");
                }
                None => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        self.reader.take().unwrap().join().expect("reader thread");
        self.responses()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

/// Exactly one response per id, and none unaccounted for.
fn assert_all_answered(responses: &[Json], ids: &[String]) {
    for id in ids {
        let n = responses
            .iter()
            .filter(|r| r.get("id").and_then(Json::as_str) == Some(id))
            .count();
        assert_eq!(n, 1, "request {id} must be answered exactly once");
    }
}

/// A canonical, volatile-free rendering of one response: fixed member
/// order, wall-clock members (`elapsed_ms`) dropped, `stats` payloads
/// reduced to their identity (their byte breakdowns re-sample allocator
/// estimates). Everything else — report documents, diagnostics,
/// classification counts, error kinds, cache hit/miss — must replay
/// byte-for-byte.
fn canonical(r: &Json) -> String {
    let op = r.get("op").and_then(Json::as_str).unwrap_or("");
    let mut s = String::new();
    let keys: &[&str] = if op == "stats" {
        &["id", "op", "ok"]
    } else {
        &[
            "id",
            "op",
            "ok",
            "cache",
            "cancelled",
            "deadline_expired",
            "retried_slots",
            "internal_count",
            "target",
            "found",
            "status",
            "inflight",
            "max_inflight",
            "worst",
            "classification",
            "diagnostics",
            "report",
            "error",
        ]
    };
    for k in keys {
        if let Some(v) = r.get(k) {
            s.push_str(k);
            s.push('=');
            s.push_str(&v.to_string());
            s.push(';');
        }
    }
    s
}

/// Sorted canonical transcript: completion order is scheduling, identity
/// is not.
fn canonical_transcript(responses: &[Json]) -> String {
    let mut lines: Vec<String> = responses.iter().map(canonical).collect();
    lines.sort();
    lines.join("\n")
}

/// The splitmix64 step — a tiny deterministic PRNG for storm scripts.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Runs one seeded, paced storm and returns the full transcript plus the
/// ids it used. Pacing (wait for each response before the next request)
/// is what makes the cache hit/miss sequence — and therefore the whole
/// transcript — a pure function of the seed.
fn run_storm(seed: u64, workers: &str, requests: usize) -> (Vec<Json>, Vec<String>) {
    let pool = [
        ("figure1", corpus("figure1")),
        ("SQL.2", corpus("SQL.2")),
        ("expr", EXPR.to_owned()),
        ("chain", CHAIN.to_owned()),
    ];
    let mut server = Server::start(&["--workers", workers], None);
    let mut rng = Rng(seed);
    let mut ids = Vec::new();
    for i in 0..requests {
        let id = format!("r{i}");
        let (label, text) = &pool[rng.pick(pool.len())];
        let grammar = Json::str(text).to_string();
        let line = match rng.pick(6) {
            0 | 1 => format!(
                r#"{{"op":"analyze","id":"{id}","grammar":{grammar},"file":"{label}.y"{HUGE}}}"#
            ),
            2 => format!(
                r#"{{"op":"explain","id":"{id}","grammar":{grammar},"file":"{label}.y"{HUGE}}}"#
            ),
            3 => format!(r#"{{"op":"lint","id":"{id}","grammar":{grammar},"file":"{label}.y"}}"#),
            4 if i > 0 => {
                // Cancel a *completed* request: paced traffic makes the
                // `found:false` answer deterministic.
                let target = format!("r{}", rng.pick(i));
                format!(r#"{{"op":"cancel","id":"{id}","target":"{target}"}}"#)
            }
            4 => r#"{"op":"health","id":"r0"}"#.replace("r0", &id),
            _ => {
                if rng.pick(2) == 0 {
                    format!(r#"{{"op":"stats","id":"{id}"}}"#)
                } else {
                    format!(r#"{{"op":"health","id":"{id}"}}"#)
                }
            }
        };
        server.send(&line);
        server.wait_for(&id);
        ids.push(id);
    }
    let responses = server.shutdown();
    (responses, ids)
}

/// Invariants 1 and 2: the same seeded storm, run twice — and at two
/// different worker counts, which the engine guarantees cannot change
/// payloads — answers every request and replays byte-identically.
#[test]
fn seeded_storm_replays_byte_identical() {
    let seed = 0x5eed_0008;
    let (run_a, ids_a) = run_storm(seed, "1", 24);
    let (run_b, ids_b) = run_storm(seed, "4", 24);
    assert_eq!(ids_a, ids_b);
    assert_all_answered(&run_a, &ids_a);
    assert_all_answered(&run_b, &ids_b);
    assert!(
        run_a
            .iter()
            .all(|r| r.get("ok").and_then(Json::as_bool).is_some()),
        "every response carries ok"
    );
    assert_eq!(
        canonical_transcript(&run_a),
        canonical_transcript(&run_b),
        "clean replays must be byte-identical"
    );
}

/// Invariant 3: a storm under slot-scoped one-shot fault plans. Every
/// request is answered, retried slots report `Completed` (internal_count
/// 0 after supervision), and healed reports are byte-identical to a
/// never-faulted server's.
#[test]
fn one_shot_faults_heal_under_storm() {
    // Slot 0's unifying search and slot 1's spine each panic exactly
    // once, on the first request that reaches them.
    let plan = "0:unify.expand:1:panic;1:engine.conflict:1:panic";
    let text = corpus("figure1");
    let grammar = Json::str(&text).to_string();
    let analyze = |id: &str| {
        format!(r#"{{"op":"analyze","id":"{id}","grammar":{grammar},"file":"f.y"{HUGE}}}"#)
    };

    let mut faulted = Server::start(&["--workers", "1"], Some(plan));
    let mut ids = Vec::new();
    for i in 0..3 {
        let id = format!("f{i}");
        faulted.send(&analyze(&id));
        faulted.wait_for(&id);
        ids.push(id);
    }
    let rs = faulted.shutdown();
    assert_all_answered(&rs, &ids);

    let mut clean = Server::start(&["--workers", "1"], None);
    clean.send(&analyze("c"));
    clean.wait_for("c");
    let clean_rs = clean.shutdown();
    let clean_report = clean_rs
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("c"))
        .unwrap()
        .get("report")
        .unwrap()
        .to_string();

    for (i, id) in ids.iter().enumerate() {
        let r = rs
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some(id.as_str()))
            .unwrap();
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{id}");
        assert_eq!(
            r.get("internal_count").and_then(Json::as_u64),
            Some(0),
            "{id}: retried slots report Completed, not Internal"
        );
        let retried = r.get("retried_slots").and_then(Json::as_u64).unwrap();
        if i == 0 {
            assert_eq!(retried, 2, "first request absorbs both one-shot faults");
        } else {
            assert_eq!(retried, 0, "spent triggers stay spent");
        }
        assert_eq!(
            r.get("report").unwrap().to_string(),
            clean_report,
            "{id}: healed report is byte-identical to a never-faulted run"
        );
    }
}

/// Invariant 4: an overload storm against `--max-inflight`. Saturating
/// traffic is shed with structured `overloaded` replies carrying the
/// deterministic `retry_after_ms` hint; the admitted request — analyzed
/// while the server is fully loaded — produces a report byte-identical to
/// an unloaded run, at workers 1 and 4.
#[test]
fn overload_storm_sheds_structurally_and_admitted_work_is_unperturbed() {
    let slow_text = corpus("Java.2");
    let slow_grammar = Json::str(&slow_text).to_string();
    let fig = corpus("figure1");
    let fig_grammar = Json::str(&fig).to_string();

    let mut unloaded_reports = Vec::new();
    let mut loaded_reports = Vec::new();
    for workers in ["1", "4"] {
        let mut server = Server::start(&["--workers", workers, "--max-inflight", "3"], None);
        // Three hour-budget searches fill every admission slot. The reader
        // inserts each into the in-flight map before reading the next
        // line, so the burst below is shed deterministically.
        for i in 0..3 {
            server.send(&format!(
                r#"{{"op":"analyze","id":"slow{i}","grammar":{slow_grammar},"extended":true{HUGE}}}"#
            ));
        }
        let mut ids: Vec<String> = (0..3).map(|i| format!("slow{i}")).collect();
        for i in 0..4 {
            let id = format!("shed{i}");
            server.send(&format!(
                r#"{{"op":"analyze","id":"{id}","grammar":{fig_grammar}}}"#
            ));
            ids.push(id);
        }
        let rs = server.wait_count(4);
        for i in 0..4 {
            let shed = rs
                .iter()
                .find(|r| r.get("id").and_then(Json::as_str) == Some(&format!("shed{i}")[..]))
                .expect("shed responses arrive while the slows run");
            assert_eq!(shed.get("ok").and_then(Json::as_bool), Some(false));
            let err = shed.get("error").unwrap();
            assert_eq!(err.get("kind").and_then(Json::as_str), Some("overloaded"));
            assert_eq!(err.get("inflight").and_then(Json::as_u64), Some(3));
            assert_eq!(err.get("limit").and_then(Json::as_u64), Some(3));
            assert_eq!(
                err.get("retry_after_ms").and_then(Json::as_u64),
                Some(300),
                "deterministic backoff hint"
            );
        }
        // Free one slot and wait (via the inline health op) until the
        // in-flight count reflects it, then admit real work into the
        // still-loaded server.
        server.send(r#"{"op":"cancel","id":"c0","target":"slow0"}"#);
        server.wait_for("slow0");
        let mut polls = 0;
        loop {
            let id = format!("hp{polls}");
            server.send(&format!(r#"{{"op":"health","id":"{id}"}}"#));
            let h = server.wait_for(&id);
            if h.get("inflight").and_then(Json::as_u64) == Some(2) {
                break;
            }
            polls += 1;
            assert!(polls < 1000, "slow0 never left the in-flight map");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.send(&format!(
            r#"{{"op":"analyze","id":"adm","grammar":{fig_grammar},"file":"f.y"{HUGE}}}"#
        ));
        ids.push("adm".to_owned());
        let adm = server.wait_for("adm");
        assert_eq!(
            adm.get("ok").and_then(Json::as_bool),
            Some(true),
            "admitted under load"
        );
        loaded_reports.push(adm.get("report").unwrap().to_string());
        server.send(r#"{"op":"cancel","id":"c1","target":"slow1"}"#);
        server.send(r#"{"op":"cancel","id":"c2","target":"slow2"}"#);
        ids.extend(["c0", "c1", "c2"].map(str::to_owned));
        let rs = server.shutdown();
        assert_all_answered(&rs, &ids);
        for i in 0..3 {
            let slow = rs
                .iter()
                .find(|r| {
                    r.get("id").and_then(Json::as_str) == Some(&format!("slow{i}")[..])
                        && r.get("op").and_then(Json::as_str) == Some("analyze")
                })
                .unwrap();
            assert_eq!(
                slow.get("ok").and_then(Json::as_bool),
                Some(true),
                "admitted requests are answered, never shed"
            );
        }

        // The unloaded baseline at the same worker count.
        let mut base = Server::start(&["--workers", workers], None);
        base.send(&format!(
            r#"{{"op":"analyze","id":"b","grammar":{fig_grammar},"file":"f.y"{HUGE}}}"#
        ));
        base.wait_for("b");
        let base_rs = base.shutdown();
        unloaded_reports.push(
            base_rs
                .iter()
                .find(|r| r.get("id").and_then(Json::as_str) == Some("b"))
                .unwrap()
                .get("report")
                .unwrap()
                .to_string(),
        );
    }
    assert_eq!(
        loaded_reports[0], unloaded_reports[0],
        "workers=1: loaded == unloaded"
    );
    assert_eq!(
        loaded_reports[1], unloaded_reports[1],
        "workers=4: loaded == unloaded"
    );
    assert_eq!(
        loaded_reports[0], loaded_reports[1],
        "worker count never changes payloads"
    );
}

/// Invariant 5: a deadline storm under `--default-deadline-ms 1`. Expiry
/// degrades to partial reports (skipped unifying searches, nonunifying
/// fallbacks constructed) cold and warm; a per-request `deadline_ms`
/// override restores the full budget.
#[test]
fn deadline_storm_degrades_cold_and_warm() {
    let text = corpus("Java.2");
    let grammar = Json::str(&text).to_string();
    let mut server = Server::start(&["--default-deadline-ms", "1"], None);
    let mut ids = Vec::new();
    for id in ["cold", "warm"] {
        server.send(&format!(
            r#"{{"op":"analyze","id":"{id}","grammar":{grammar},"extended":true{HUGE}}}"#
        ));
        server.wait_for(id);
        ids.push(id.to_owned());
    }
    // The override escapes the server default entirely (tiny search
    // limits keep the request quick — only the deadline flag matters).
    server.send(&format!(
        r#"{{"op":"analyze","id":"free","grammar":{grammar},"deadline_ms":3600000,"time_limit_ms":50,"total_limit_ms":200}}"#
    ));
    server.wait_for("free");
    ids.push("free".to_owned());
    let rs = server.shutdown();
    assert_all_answered(&rs, &ids);

    for id in ["cold", "warm"] {
        let r = rs
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
            .unwrap();
        assert_eq!(
            r.get("ok").and_then(Json::as_bool),
            Some(true),
            "{id}: expiry is degradation, not an error"
        );
        assert_eq!(
            r.get("deadline_expired").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(r.get("internal_count").and_then(Json::as_u64), Some(0));
        let conflicts = r
            .get("report")
            .and_then(|d| d.get("conflicts"))
            .and_then(Json::as_arr)
            .unwrap();
        let skipped = conflicts
            .iter()
            .filter(|c| c.get("outcome").and_then(Json::as_str) == Some("nonunifying-skipped"))
            .count();
        assert!(skipped > 0, "{id}: expired budget skips unifying searches");
        for c in conflicts {
            let outcome = c.get("outcome").and_then(Json::as_str).unwrap();
            assert_ne!(outcome, "internal", "{id}");
            assert_ne!(outcome, "cancelled", "{id}");
            if outcome == "nonunifying-skipped" {
                assert!(
                    !matches!(c.get("nonunifying"), None | Some(&Json::Null)),
                    "{id}: skipped slots keep their nonunifying fallback"
                );
            }
        }
    }
    let free = rs
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("free"))
        .unwrap();
    assert_eq!(
        free.get("deadline_expired").and_then(Json::as_bool),
        Some(false),
        "a generous per-request deadline overrides the server default"
    );
}
