//! `lalrcex` — LALR conflict diagnosis with counterexamples.
//!
//! Reads a grammar in the yacc-like DSL, builds the LALR(1) automaton,
//! and reports every parsing conflict with a counterexample, in the style
//! of the paper's Figure 11.
//!
//! ```text
//! USAGE: lalrcex [OPTIONS] GRAMMAR.y
//!        lalrcex lint [--format text|json] [--deny-warnings] [--list] GRAMMAR.y
//!
//!   --extended           full unifying search (no shortest-path pruning)
//!   --time-limit SECS    per-conflict unifying search budget (default 5)
//!   --total-limit SECS   cumulative unifying budget (default 120)
//!   --workers N          worker threads for the conflict fan-out
//!                        (default 0 = one per CPU)
//!   --max-rss-mb MB      soft limit on the searches' estimated live
//!                        frontier memory; over it, searches shed
//!                        (default 0 = unlimited)
//!   --stats              print per-conflict and grammar-wide search
//!                        counters (explored configs, spine memo, times)
//!   --dump-states        print the full parser state machine
//!   --path               print the shortest lookahead-sensitive path
//!   --summary            one line per conflict instead of full reports
//!
//! lint mode:
//!   --format text|json   diagnostic output format (default text)
//!   --deny-warnings      warnings also make the exit code nonzero
//!   --list               list the registered passes and exit
//! ```
//!
//! Exit status (conflict mode): 0 when the grammar is conflict-free, 1 when
//! conflicts were reported, 2 on usage or parse errors, 3 when the report
//! was produced but at least one conflict's diagnosis faulted internally
//! (contained partial failure), 130 when interrupted by Ctrl-C (the report
//! produced so far is still printed, with `cancelled` stubs).
//!
//! Exit status (lint mode): 0 when no diagnostic at error severity was
//! reported (warnings and infos are printed but don't fail the run unless
//! `--deny-warnings`), 1 when an error-severity diagnostic (or, with
//! `--deny-warnings`, any warning) was reported, 2 on usage or parse
//! errors.

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use lalrcex_core::{
    format_conflict_stats, format_grammar_stats, format_report, Analyzer, CancelReason,
    CancelToken, CexConfig, ConflictOutcome, ExampleKind,
};
use lalrcex_grammar::Grammar;
use lalrcex_lr::Automaton;

/// Ctrl-C handling without any dependency: a raw `signal(2)` handler sets
/// an atomic flag; a watcher thread (signal-handler-safe code must not
/// touch locks or allocate) turns the flag into a *hard* cancel on the
/// shared token. The handler resets itself to the OS default so a second
/// Ctrl-C kills the process immediately.
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        // Second Ctrl-C falls through to the default (terminate) handler.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    /// Installs the Ctrl-C handler (best effort; errors are ignored).
    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

struct Options {
    grammar: String,
    extended: bool,
    time_limit: Duration,
    total_limit: Duration,
    dump_states: bool,
    show_path: bool,
    summary: bool,
    stats: bool,
    workers: usize,
    max_rss_mb: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: lalrcex [--extended] [--time-limit SECS] [--total-limit SECS] \
         [--workers N] [--max-rss-mb MB] [--stats] [--dump-states] [--path] \
         [--summary] GRAMMAR.y\n\
         \x20      lalrcex lint [--format text|json] [--deny-warnings] [--list] GRAMMAR.y"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        grammar: String::new(),
        extended: false,
        time_limit: Duration::from_secs(5),
        total_limit: Duration::from_secs(120),
        dump_states: false,
        show_path: false,
        summary: false,
        stats: false,
        workers: 0,
        max_rss_mb: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--extended" | "-extendedsearch" => opts.extended = true,
            "--time-limit" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.time_limit = Duration::from_secs(secs);
            }
            "--total-limit" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.total_limit = Duration::from_secs(secs);
            }
            "--workers" => {
                opts.workers = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-rss-mb" => {
                opts.max_rss_mb = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--stats" => opts.stats = true,
            "--dump-states" => opts.dump_states = true,
            "--path" => opts.show_path = true,
            "--summary" => opts.summary = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && opts.grammar.is_empty() => {
                opts.grammar = other.to_owned();
            }
            _ => usage(),
        }
    }
    if opts.grammar.is_empty() {
        usage();
    }
    opts
}

/// Options for `lalrcex lint`.
struct LintOptions {
    grammar: String,
    json: bool,
    deny_warnings: bool,
    list: bool,
}

fn lint_usage() -> ! {
    eprintln!("usage: lalrcex lint [--format text|json] [--deny-warnings] [--list] GRAMMAR.y");
    std::process::exit(2);
}

fn parse_lint_args(args: impl Iterator<Item = String>) -> LintOptions {
    let mut opts = LintOptions {
        grammar: String::new(),
        json: false,
        deny_warnings: false,
        list: false,
    };
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => opts.json = false,
                Some("json") => opts.json = true,
                _ => lint_usage(),
            },
            "--deny-warnings" => opts.deny_warnings = true,
            "--list" => opts.list = true,
            "--help" | "-h" => lint_usage(),
            other if !other.starts_with('-') && opts.grammar.is_empty() => {
                opts.grammar = other.to_owned();
            }
            _ => lint_usage(),
        }
    }
    if opts.grammar.is_empty() && !opts.list {
        lint_usage();
    }
    opts
}

/// The `lalrcex lint` subcommand: run every static-analysis pass over the
/// grammar and print spanned diagnostics.
fn run_lint(args: impl Iterator<Item = String>) -> ExitCode {
    use lalrcex_lint::{render_json, render_text, worst_severity, Linter, Severity};

    let opts = parse_lint_args(args);
    let linter = Linter::new();
    if opts.list {
        for pass in linter.passes() {
            println!(
                "{} {:<28} {}",
                pass.code().id,
                pass.code().name,
                pass.description()
            );
        }
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(&opts.grammar) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lalrcex: cannot read {}: {e}", opts.grammar);
            return ExitCode::from(2);
        }
    };
    let g = match Grammar::parse(&text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("lalrcex: {}: {e}", opts.grammar);
            return ExitCode::from(2);
        }
    };
    let diags = linter.run_grammar(&g);
    if opts.json {
        print!("{}", render_json(&opts.grammar, &diags));
    } else {
        print!("{}", render_text(&opts.grammar, &diags));
        if diags.is_empty() {
            eprintln!("{}: no lint findings", opts.grammar);
        }
    }
    let gate = if opts.deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    match worst_severity(&diags) {
        Some(s) if s >= gate => ExitCode::from(1),
        _ => ExitCode::SUCCESS,
    }
}

fn main() -> ExitCode {
    // `lalrcex lint ...` dispatches to the lint subcommand; anything else
    // is the legacy conflict-analysis mode.
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("lint") {
        raw.next();
        return run_lint(raw);
    }
    drop(raw);

    let opts = parse_args();

    // Chaos testing only: with the `failpoints` feature compiled in,
    // `LALRCEX_FAULT_PLAN` installs a deterministic fault plan.
    #[cfg(feature = "failpoints")]
    let _fault_guard = lalrcex_core::faultpoint::install_from_env();

    let text = match std::fs::read_to_string(&opts.grammar) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lalrcex: cannot read {}: {e}", opts.grammar);
            return ExitCode::from(2);
        }
    };
    let g = match Grammar::parse(&text) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("lalrcex: {}: {e}", opts.grammar);
            return ExitCode::from(2);
        }
    };

    if opts.dump_states {
        let auto = Automaton::build(&g);
        for id in auto.state_ids() {
            println!("{}", auto.dump_state(&g, id));
        }
    }

    let mut analyzer = Analyzer::new(&g);
    let nstates = analyzer.automaton().state_count();
    let conflicts: Vec<_> = analyzer.tables().conflicts().to_vec();
    println!(
        "{}: {} terminals, {} nonterminals, {} productions, {} states, {} conflicts",
        opts.grammar,
        g.terminal_count() - 1,
        g.nonterminal_count() - 1,
        g.prod_count(),
        nstates,
        conflicts.len(),
    );
    for r in analyzer.tables().resolutions() {
        let what = format!(
            "resolved by precedence: state #{} on {}",
            r.state.index(),
            g.display_name(r.terminal)
        );
        if !opts.summary {
            println!("Note  : {what}");
        }
    }
    if conflicts.is_empty() {
        return ExitCode::SUCCESS;
    }

    let cfg = CexConfig {
        search: lalrcex_core::SearchConfig {
            time_limit: opts.time_limit,
            extended: opts.extended,
            ..Default::default()
        },
        cumulative_limit: opts.total_limit,
        workers: opts.workers,
        max_live_mb: opts.max_rss_mb,
    };

    // Ctrl-C → hard cancel: the signal handler raises a flag; the watcher
    // thread turns it into `CancelReason::Signal` on the shared token. The
    // report produced so far is still printed, with `cancelled` stubs.
    sigint::install();
    let cancel = CancelToken::new();
    {
        let cancel = cancel.clone();
        std::thread::spawn(move || loop {
            if sigint::INTERRUPTED.load(Ordering::SeqCst) {
                cancel.cancel(CancelReason::Signal);
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }

    let grammar_report = analyzer.analyze_all_cancellable(&cfg, &cancel);
    for (c, report) in conflicts.iter().zip(&grammar_report.reports) {
        if opts.show_path {
            if let Some(path) = analyzer.shortest_path(c) {
                println!(
                    "Shortest lookahead-sensitive path:\n{}",
                    lalrcex_core::lssi::display_path(&g, analyzer.graph(), &path)
                );
            }
        }
        if opts.summary {
            let kind = match &report.outcome {
                ConflictOutcome::Internal(_) => "internal fault (contained)",
                ConflictOutcome::Completed(ExampleKind::Unifying) => "unifying",
                ConflictOutcome::Completed(ExampleKind::NonunifyingExhausted) => {
                    "nonunifying (no ambiguity found)"
                }
                ConflictOutcome::Completed(ExampleKind::NonunifyingTimeout) => {
                    "nonunifying (timeout)"
                }
                ConflictOutcome::Completed(ExampleKind::NonunifyingSkipped) => {
                    "nonunifying (budget spent)"
                }
                ConflictOutcome::Completed(ExampleKind::Cancelled) => "cancelled",
            };
            let example = report
                .unifying
                .as_ref()
                .map(|u| u.derivation1.flat(&g))
                .or_else(|| {
                    report
                        .nonunifying
                        .as_ref()
                        .map(|n| n.reduce_derivation.flat(&g))
                })
                .unwrap_or_default();
            println!(
                "conflict in state #{} on {}: {kind}: {example}",
                c.state.index(),
                g.display_name(c.terminal)
            );
        } else {
            println!("{}", format_report(&g, report));
        }
        if opts.stats {
            println!("Stats : {}", format_conflict_stats(&report.stats));
        }
    }
    if opts.stats {
        println!(
            "{}",
            format_grammar_stats(&grammar_report.stats, grammar_report.total_time)
        );
    }
    if cancel.is_hard_cancelled() || grammar_report.cancelled_count() > 0 {
        ExitCode::from(130)
    } else if grammar_report.internal_count() > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::from(1)
    }
}
