//! `lalrcex` — LALR conflict diagnosis with counterexamples.
//!
//! Five subcommands over one engine, all built on the `lalrcex::api`
//! session layer:
//!
//! ```text
//! lalrcex [cex] [OPTIONS] GRAMMAR.y    conflict counterexamples (default)
//! lalrcex explain [OPTIONS] GRAMMAR.y  lookahead provenance and conflict
//!                                      classification
//! lalrcex lint [OPTIONS] GRAMMAR.y     static-analysis passes
//! lalrcex serve [OPTIONS]              JSON-Lines analysis service on
//!                                      stdin/stdout (protocol v1)
//! lalrcex batch [OPTIONS] MANIFEST     drive many grammars through one
//!                                      cached session
//! ```
//!
//! Run `lalrcex <command> --help` for per-command options. Every
//! subcommand parses its arguments through one shared scanner, so the
//! contract is uniform: `--help` prints usage on stdout and exits 0;
//! unknown options, missing values, and malformed numbers print a
//! diagnostic plus usage on stderr and exit 2.
//!
//! Exit status (cex, explain, batch): 0 conflict-free, 1 conflicts
//! reported, 2 usage or parse errors, 3 report produced but at least one
//! conflict's diagnosis (or classification) faulted internally (contained
//! partial failure), 130 interrupted by Ctrl-C (the report produced so
//! far is still printed, with `cancelled` stubs).
//!
//! Exit status (lint): 0 no error-severity diagnostic (warnings don't
//! fail the run unless `--deny-warnings`), 1 otherwise, 2 usage or parse
//! errors.
//!
//! Exit status (serve): 0 on `shutdown`, EOF, or peer hangup (a failed
//! response write cancels in-flight work and drains).

// `deny` rather than `forbid`: the signal module below needs one scoped,
// documented `allow` for the raw `signal(2)` FFI.
#![deny(unsafe_code)]

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use lalrcex::api::{AnalysisRequest, Error, GrammarFormat, GrammarSource, Session};
use lalrcex::service::{serve, ServeOptions};
use lalrcex_core::{
    format_conflict_stats, format_grammar_stats, format_report, CancelReason, CancelToken,
    ConflictOutcome, Engine, ExampleKind, GrammarReport,
};
use lalrcex_grammar::Grammar;

/// Ctrl-C handling without any dependency: a raw `signal(2)` handler sets
/// an atomic flag; a watcher thread (signal-handler-safe code must not
/// touch locks or allocate) turns the flag into a *hard* cancel on the
/// shared token. The handler resets itself to the OS default so a second
/// Ctrl-C kills the process immediately.
// The crate denies `unsafe_code`; this module is its single exception:
// installing a handler via the raw `signal(2)` FFI is inherently unsafe,
// and the handler body touches only atomics (async-signal-safe).
#[allow(unsafe_code)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    const SIG_IGN: usize = 1;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        // Second Ctrl-C falls through to the default (terminate) handler.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    /// Installs the Ctrl-C handler (best effort; errors are ignored).
    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }

    /// Restores SIGPIPE to the OS default. The Rust runtime ignores it,
    /// which turns `lalrcex ... | head` into a broken-pipe panic; the Unix
    /// convention for a line-oriented CLI is to die silently instead.
    pub fn default_sigpipe() {
        unsafe {
            signal(SIGPIPE, SIG_DFL);
        }
    }

    /// Ignores SIGPIPE again (undoing [`default_sigpipe`]). `serve` wants
    /// the opposite convention from the one-shot commands: a write to a
    /// hung-up peer must come back as an `EPIPE` error the loop can turn
    /// into an orderly cancel-and-drain, not kill the process mid-request.
    pub fn ignore_sigpipe() {
        unsafe {
            signal(SIGPIPE, SIG_IGN);
        }
    }
}

/// The one argument scanner every subcommand goes through. Centralizing
/// the error paths here is what keeps the CLI contract uniform: `--help`
/// exits 0 via [`ArgScan::help`], and every malformed invocation —
/// unknown flag, flag missing its value, value that isn't a number —
/// funnels through [`ArgScan::fail`] to stderr and exit code 2.
struct ArgScan {
    iter: std::vec::IntoIter<String>,
    cmd: &'static str,
    usage: &'static str,
}

impl ArgScan {
    fn new(args: Vec<String>, cmd: &'static str, usage: &'static str) -> ArgScan {
        ArgScan {
            iter: args.into_iter(),
            cmd,
            usage,
        }
    }

    fn next_arg(&mut self) -> Option<String> {
        self.iter.next()
    }

    /// `--help`: usage on stdout, exit 0.
    fn help(&self) -> ! {
        println!("{}", self.usage);
        std::process::exit(0);
    }

    /// Any parse failure: diagnostic plus usage on stderr, exit 2.
    fn fail(&self, msg: &str) -> ! {
        eprintln!("lalrcex {}: {msg}", self.cmd);
        eprintln!("{}", self.usage);
        std::process::exit(2);
    }

    fn unknown(&self, arg: &str) -> ! {
        self.fail(&format!("unknown option `{arg}`"));
    }

    /// The value following a flag, or exit 2.
    fn value(&mut self, flag: &str) -> String {
        self.iter
            .next()
            .unwrap_or_else(|| self.fail(&format!("`{flag}` needs a value")))
    }

    /// The numeric value following a flag, or exit 2.
    fn num<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        let v = self.value(flag);
        v.parse()
            .unwrap_or_else(|_| self.fail(&format!("`{flag}` needs a number, got `{v}`")))
    }

    /// The value of `--grammar-format`, or exit 2.
    fn grammar_format(&mut self) -> GrammarFormat {
        let v = self.value("--grammar-format");
        GrammarFormat::from_name(&v).unwrap_or_else(|| {
            self.fail(&format!(
                "`--grammar-format` is dsl, yacc, or auto, got `{v}`"
            ))
        })
    }
}

/// The grammar source for a file's text: an explicit `--grammar-format`
/// wins; `auto` takes the file extension as a hint (`.y` and friends mean
/// yacc) and otherwise falls back to content sniffing.
fn file_source(path: &str, text: String, flag: GrammarFormat) -> GrammarSource {
    match flag {
        GrammarFormat::Auto => GrammarSource::from_path_text(std::path::Path::new(path), text),
        pinned => GrammarSource::new(text, pinned),
    }
}

const GLOBAL_USAGE: &str = "\
usage: lalrcex [cex] [OPTIONS] GRAMMAR.y
       lalrcex explain [OPTIONS] GRAMMAR.y
       lalrcex lint [OPTIONS] GRAMMAR.y
       lalrcex serve [OPTIONS]
       lalrcex batch [OPTIONS] MANIFEST
run `lalrcex <command> --help` for per-command options";

// ---------------------------------------------------------------------------
// cex

const CEX_USAGE: &str = "\
usage: lalrcex [cex] [OPTIONS] GRAMMAR.y

  --format text|json   report format (default text; json is schema v1)
  --grammar-format dsl|yacc|auto
                       grammar frontend (default auto: .y/.yacc/.yy/.ypp
                       extensions mean yacc, anything else is sniffed
                       from the content)
  --extended           full unifying search (no shortest-path pruning)
  --time-limit SECS    per-conflict unifying search budget (default 5)
  --total-limit SECS   cumulative unifying budget (default 120)
  --workers N          worker threads for the conflict fan-out
                       (default 0 = one per CPU)
  --max-rss-mb MB      soft limit on the searches' estimated live
                       frontier memory (default 0 = unlimited)
  --stats              print per-conflict and grammar-wide search counters
                       (to stderr in json mode)
  --dump-states        print the full parser state machine (text mode)
  --path               print the shortest lookahead-sensitive path
  --summary            one line per conflict instead of full reports";

#[derive(Clone)]
struct CexOptions {
    grammar: String,
    grammar_format: GrammarFormat,
    json: bool,
    extended: bool,
    time_limit: Duration,
    total_limit: Duration,
    dump_states: bool,
    show_path: bool,
    summary: bool,
    stats: bool,
    workers: usize,
    max_rss_mb: usize,
}

impl Default for CexOptions {
    fn default() -> CexOptions {
        CexOptions {
            grammar: String::new(),
            grammar_format: GrammarFormat::Auto,
            json: false,
            extended: false,
            time_limit: Duration::from_secs(5),
            total_limit: Duration::from_secs(120),
            dump_states: false,
            show_path: false,
            summary: false,
            stats: false,
            workers: 0,
            max_rss_mb: 0,
        }
    }
}

fn parse_cex_args(args: Vec<String>) -> CexOptions {
    let mut p = ArgScan::new(args, "cex", CEX_USAGE);
    let mut opts = CexOptions::default();
    while let Some(a) = p.next_arg() {
        match a.as_str() {
            "--help" | "-h" => p.help(),
            "--format" => match p.value("--format").as_str() {
                "text" => opts.json = false,
                "json" => opts.json = true,
                other => p.fail(&format!("`--format` is text or json, got `{other}`")),
            },
            "--grammar-format" => opts.grammar_format = p.grammar_format(),
            "--extended" | "-extendedsearch" => opts.extended = true,
            "--time-limit" => opts.time_limit = Duration::from_secs(p.num("--time-limit")),
            "--total-limit" => opts.total_limit = Duration::from_secs(p.num("--total-limit")),
            "--workers" => opts.workers = p.num("--workers"),
            "--max-rss-mb" => opts.max_rss_mb = p.num("--max-rss-mb"),
            "--stats" => opts.stats = true,
            "--dump-states" => opts.dump_states = true,
            "--path" => opts.show_path = true,
            "--summary" => opts.summary = true,
            other if !other.starts_with('-') && opts.grammar.is_empty() => {
                opts.grammar = other.to_owned();
            }
            other => p.unknown(other),
        }
    }
    if opts.grammar.is_empty() {
        p.fail("no grammar file given");
    }
    opts
}

/// A Ctrl-C-wired cancellation token (see [`sigint`]).
fn interruptible_token() -> CancelToken {
    sigint::install();
    let cancel = CancelToken::new();
    {
        let cancel = cancel.clone();
        std::thread::spawn(move || loop {
            if sigint::INTERRUPTED.load(Ordering::SeqCst) {
                cancel.cancel(CancelReason::Signal);
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        });
    }
    cancel
}

fn analysis_request(
    source: GrammarSource,
    label: &str,
    opts: &CexOptions,
    cancel: &CancelToken,
) -> AnalysisRequest {
    AnalysisRequest::new(source)
        .label(label)
        .time_limit(opts.time_limit)
        .cumulative_limit(opts.total_limit)
        .workers(opts.workers)
        .extended(opts.extended)
        .max_live_mb(opts.max_rss_mb)
        .cancel_token(cancel.clone())
}

/// Renders one grammar's text report (header, precedence notes, one block
/// per conflict) — shared verbatim between `cex` and `batch`.
fn print_text_report(
    label: &str,
    g: &Grammar,
    engine: &Engine<'_>,
    report: &GrammarReport,
    opts: &CexOptions,
) {
    if opts.dump_states {
        let auto = engine.automaton();
        for id in auto.state_ids() {
            println!("{}", auto.dump_state(g, id));
        }
    }
    let conflicts = engine.tables().conflicts();
    println!(
        "{}: {} terminals, {} nonterminals, {} productions, {} states, {} conflicts",
        label,
        g.terminal_count() - 1,
        g.nonterminal_count() - 1,
        g.prod_count(),
        engine.automaton().state_count(),
        conflicts.len(),
    );
    if !opts.summary {
        for r in engine.tables().resolutions() {
            println!(
                "Note  : resolved by precedence: state #{} on {}",
                r.state.index(),
                g.display_name(r.terminal)
            );
        }
    }
    for (c, report) in conflicts.iter().zip(&report.reports) {
        if opts.show_path {
            if let Some(path) = engine.spine(c).0.path.clone() {
                println!(
                    "Shortest lookahead-sensitive path:\n{}",
                    lalrcex_core::lssi::display_path(g, engine.graph(), &path)
                );
            }
        }
        if opts.summary {
            let kind = match &report.outcome {
                ConflictOutcome::Internal(_) => "internal fault (contained)",
                ConflictOutcome::Completed(ExampleKind::Unifying) => "unifying",
                ConflictOutcome::Completed(ExampleKind::NonunifyingExhausted) => {
                    "nonunifying (no ambiguity found)"
                }
                ConflictOutcome::Completed(ExampleKind::NonunifyingTimeout) => {
                    "nonunifying (timeout)"
                }
                ConflictOutcome::Completed(ExampleKind::NonunifyingSkipped) => {
                    "nonunifying (budget spent)"
                }
                ConflictOutcome::Completed(ExampleKind::Cancelled) => "cancelled",
            };
            let example = report
                .unifying
                .as_ref()
                .map(|u| u.derivation1.flat(g))
                .or_else(|| {
                    report
                        .nonunifying
                        .as_ref()
                        .map(|n| n.reduce_derivation.flat(g))
                })
                .unwrap_or_default();
            println!(
                "conflict in state #{} on {}: {kind}: {example}",
                c.state.index(),
                g.display_name(c.terminal)
            );
        } else {
            println!("{}", format_report(g, report));
        }
        if opts.stats {
            println!("Stats : {}", format_conflict_stats(&report.stats));
        }
    }
    if opts.stats {
        println!("{}", format_grammar_stats(&report.stats, report.total_time));
    }
}

/// The cex/batch exit code for one analyzed grammar.
fn report_exit(hard_cancelled: bool, report: &GrammarReport) -> u8 {
    if hard_cancelled || report.cancelled_count() > 0 {
        130
    } else if report.internal_count() > 0 {
        3
    } else if report.reports.is_empty() {
        0
    } else {
        1
    }
}

fn run_cex(args: Vec<String>) -> ExitCode {
    let opts = parse_cex_args(args);
    let text = match std::fs::read_to_string(&opts.grammar) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lalrcex: cannot read {}: {e}", opts.grammar);
            return ExitCode::from(2);
        }
    };

    let session = Session::new();
    let cancel = interruptible_token();
    let source = file_source(&opts.grammar, text, opts.grammar_format);
    let request = analysis_request(source, &opts.grammar, &opts, &cancel);
    let reply = match session.analyze(&request) {
        Ok(r) => r,
        Err(Error::Grammar(e) | Error::YaccParse(e)) => {
            eprintln!("lalrcex: {}: {e}", opts.grammar);
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("lalrcex: {}: {e}", opts.grammar);
            return ExitCode::from(3);
        }
    };

    if opts.json {
        println!("{}", reply.to_json());
        if opts.stats {
            eprint!(
                "{}",
                format_grammar_stats(&reply.report.stats, reply.report.total_time)
            );
        }
    } else {
        print_text_report(
            &opts.grammar,
            reply.grammar(),
            reply.engine(),
            &reply.report,
            &opts,
        );
    }
    ExitCode::from(report_exit(cancel.is_hard_cancelled(), &reply.report))
}

// ---------------------------------------------------------------------------
// explain

const EXPLAIN_USAGE: &str = "\
usage: lalrcex explain [OPTIONS] GRAMMAR.y

Classifies every LALR conflict by lookahead provenance: true-ambiguity
candidate (survives canonical LR(1); corroborated when the counterexample
search finds a unifying example), LALR merge artifact (exists only because
LALR merged distinguishable LR(1) states -- splitting states fixes it), or
precedence-resolved (silenced; see lint L009). Each verdict comes with the
DeRemer-Pennello relation chain that carried the conflict terminal into
the lookahead.

  --conflict N         explain only conflict index N (as numbered in the
                       full output)
  --format text|json   output format (default text; json is the schema-v1
                       report document with a `provenance` block on every
                       conflict and resolution)
  --grammar-format dsl|yacc|auto
                       grammar frontend (default auto: extension hint,
                       then content sniffing)
  --time-limit SECS    per-conflict corroboration search budget (default 5)
  --total-limit SECS   cumulative corroboration budget (default 120)
  --workers N          worker threads for the corroboration fan-out
                       (default 0 = one per CPU)
  --stats              grammar-wide counters, including classification
                       tallies (to stderr in json mode)";

struct ExplainOptions {
    cex: CexOptions,
    conflict: Option<usize>,
}

fn parse_explain_args(args: Vec<String>) -> ExplainOptions {
    let mut p = ArgScan::new(args, "explain", EXPLAIN_USAGE);
    let mut opts = ExplainOptions {
        cex: CexOptions::default(),
        conflict: None,
    };
    while let Some(a) = p.next_arg() {
        match a.as_str() {
            "--help" | "-h" => p.help(),
            "--format" => match p.value("--format").as_str() {
                "text" => opts.cex.json = false,
                "json" => opts.cex.json = true,
                other => p.fail(&format!("`--format` is text or json, got `{other}`")),
            },
            "--grammar-format" => opts.cex.grammar_format = p.grammar_format(),
            "--conflict" => opts.conflict = Some(p.num("--conflict")),
            "--time-limit" => opts.cex.time_limit = Duration::from_secs(p.num("--time-limit")),
            "--total-limit" => opts.cex.total_limit = Duration::from_secs(p.num("--total-limit")),
            "--workers" => opts.cex.workers = p.num("--workers"),
            "--stats" => opts.cex.stats = true,
            other if !other.starts_with('-') && opts.cex.grammar.is_empty() => {
                opts.cex.grammar = other.to_owned();
            }
            other => p.unknown(other),
        }
    }
    if opts.cex.grammar.is_empty() {
        p.fail("no grammar file given");
    }
    opts
}

/// The `lalrcex explain` subcommand: classify every conflict by lookahead
/// provenance and print the relation chains behind the verdicts.
fn run_explain(args: Vec<String>) -> ExitCode {
    let opts = parse_explain_args(args);
    let text = match std::fs::read_to_string(&opts.cex.grammar) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lalrcex: cannot read {}: {e}", opts.cex.grammar);
            return ExitCode::from(2);
        }
    };

    let session = Session::new();
    let cancel = interruptible_token();
    let source = file_source(&opts.cex.grammar, text, opts.cex.grammar_format);
    let request = analysis_request(source, &opts.cex.grammar, &opts.cex, &cancel);
    let reply = match session.explain(&request) {
        Ok(r) => r,
        Err(Error::Grammar(e) | Error::YaccParse(e)) => {
            eprintln!("lalrcex: {}: {e}", opts.cex.grammar);
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("lalrcex: {}: {e}", opts.cex.grammar);
            return ExitCode::from(3);
        }
    };
    if let Some(n) = opts.conflict {
        if n >= reply.provenance.conflicts.len() {
            eprintln!(
                "lalrcex: {}: conflict index {n} out of range ({} conflict(s))",
                opts.cex.grammar,
                reply.provenance.conflicts.len()
            );
            return ExitCode::from(2);
        }
    }

    if opts.cex.json {
        let doc = reply.to_json();
        match opts.conflict {
            // `--conflict N` narrows the JSON output to that conflict's
            // document member (the full document keeps every conflict).
            Some(n) => {
                let one = doc
                    .get("conflicts")
                    .and_then(|c| c.as_arr())
                    .and_then(|a| a.get(n))
                    .expect("index validated above");
                println!("{one}");
            }
            None => println!("{doc}"),
        }
        if opts.cex.stats {
            eprint!(
                "{}",
                format_grammar_stats(&reply.report.stats, reply.report.total_time)
            );
        }
    } else {
        print!("{}", reply.render_text(opts.conflict));
        if opts.cex.stats {
            println!(
                "{}",
                format_grammar_stats(&reply.report.stats, reply.report.total_time)
            );
        }
    }

    let counts = reply.provenance.counts();
    let mut code = report_exit(cancel.is_hard_cancelled(), &reply.report);
    if code < 3 && counts.internal > 0 {
        code = 3;
    }
    ExitCode::from(code)
}

// ---------------------------------------------------------------------------
// lint

const LINT_USAGE: &str = "\
usage: lalrcex lint [OPTIONS] GRAMMAR.y

  --format text|json   diagnostic output format (default text)
  --grammar-format dsl|yacc|auto
                       grammar frontend (default auto: extension hint,
                       then content sniffing)
  --deny-warnings      warnings also make the exit code nonzero
  --list               list the registered passes and exit";

struct LintOptions {
    grammar: String,
    grammar_format: GrammarFormat,
    json: bool,
    deny_warnings: bool,
    list: bool,
}

fn parse_lint_args(args: Vec<String>) -> LintOptions {
    let mut p = ArgScan::new(args, "lint", LINT_USAGE);
    let mut opts = LintOptions {
        grammar: String::new(),
        grammar_format: GrammarFormat::Auto,
        json: false,
        deny_warnings: false,
        list: false,
    };
    while let Some(a) = p.next_arg() {
        match a.as_str() {
            "--help" | "-h" => p.help(),
            "--format" => match p.value("--format").as_str() {
                "text" => opts.json = false,
                "json" => opts.json = true,
                other => p.fail(&format!("`--format` is text or json, got `{other}`")),
            },
            "--grammar-format" => opts.grammar_format = p.grammar_format(),
            "--deny-warnings" => opts.deny_warnings = true,
            "--list" => opts.list = true,
            other if !other.starts_with('-') && opts.grammar.is_empty() => {
                opts.grammar = other.to_owned();
            }
            other => p.unknown(other),
        }
    }
    if opts.grammar.is_empty() && !opts.list {
        p.fail("no grammar file given");
    }
    opts
}

/// The `lalrcex lint` subcommand: run every static-analysis pass over the
/// grammar and print spanned diagnostics.
fn run_lint(args: Vec<String>) -> ExitCode {
    use lalrcex_lint::{render_json, render_text, worst_severity, Linter, Severity};

    let opts = parse_lint_args(args);
    if opts.list {
        for pass in Linter::new().passes() {
            println!(
                "{} {:<28} {}",
                pass.code().id,
                pass.code().name,
                pass.description()
            );
        }
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(&opts.grammar) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lalrcex: cannot read {}: {e}", opts.grammar);
            return ExitCode::from(2);
        }
    };
    let source = file_source(&opts.grammar, text, opts.grammar_format);
    let reply = match Session::new().lint(source) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lalrcex: {}: {e}", opts.grammar);
            return ExitCode::from(2);
        }
    };
    let diags = &reply.diagnostics;
    if opts.json {
        print!("{}", render_json(&opts.grammar, diags));
    } else {
        print!("{}", render_text(&opts.grammar, diags));
        if diags.is_empty() {
            eprintln!("{}: no lint findings", opts.grammar);
        }
    }
    let gate = if opts.deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    match worst_severity(diags) {
        Some(s) if s >= gate => ExitCode::from(1),
        _ => ExitCode::SUCCESS,
    }
}

// ---------------------------------------------------------------------------
// serve

const SERVE_USAGE: &str = "\
usage: lalrcex serve [OPTIONS]

Speaks the JSON-Lines analysis protocol (v1) on stdin/stdout: one request
object per line in, one response object per line out. Requests: analyze,
explain, lint, cancel, stats, health, shutdown. See DESIGN.md `Service
layer`.

  --workers N          worker-thread budget shared across in-flight
                       requests (default 0 = one per CPU)
  --cache-mb MB        engine-cache byte budget (default 256; 0 = unlimited)
  --max-line BYTES     maximum request-line length (default 4194304)
  --max-inflight N     admission cap on concurrent analyze/explain/lint
                       requests; excess submissions are shed with a
                       structured `overloaded` error and a retry_after_ms
                       hint (default 0 = unbounded)
  --max-grammar-bytes N
                       admission cap on one request's grammar size;
                       larger grammars are shed with a structured
                       `too_large` error (default 0 = unbounded)
  --default-deadline-ms MS
                       end-to-end deadline applied to requests that carry
                       no deadline_ms of their own; expiry degrades to a
                       partial report, never an error (default 0 = none)";

fn run_serve(args: Vec<String>) -> ExitCode {
    let mut p = ArgScan::new(args, "serve", SERVE_USAGE);
    let mut opts = ServeOptions::default();
    while let Some(a) = p.next_arg() {
        match a.as_str() {
            "--help" | "-h" => p.help(),
            "--workers" => opts.workers = p.num("--workers"),
            "--cache-mb" => opts.cache_mb = p.num("--cache-mb"),
            "--max-line" => opts.max_line_bytes = p.num("--max-line"),
            "--max-inflight" => opts.max_inflight = p.num("--max-inflight"),
            "--max-grammar-bytes" => opts.max_grammar_bytes = p.num("--max-grammar-bytes"),
            "--default-deadline-ms" => opts.default_deadline_ms = p.num("--default-deadline-ms"),
            other => p.unknown(other),
        }
    }
    // The serve loop handles peer hangups itself (cancel in-flight work,
    // drain, exit 0); dying on the first EPIPE would drop that work.
    sigint::ignore_sigpipe();
    let stdin = std::io::stdin();
    serve(stdin.lock(), std::io::stdout(), &opts);
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// batch

const BATCH_USAGE: &str = "\
usage: lalrcex batch [OPTIONS] MANIFEST

Analyzes every grammar listed in MANIFEST through one shared session (so
repeated texts hit the engine cache). Each manifest line is a grammar file
path, `corpus:NAME` for a bundled corpus grammar, or `corpus:*` for the
whole corpus; blank lines and `#` comments are skipped. A bad entry
(unreadable file, unknown corpus name, grammar parse error) is reported
and skipped — the rest of the run continues, an end-of-run summary counts
the failures, and the exit code is nonzero iff any entry failed.

  --format text|json   per-grammar report format (default text; json emits
                       one schema-v1 document per line)
  --grammar-format dsl|yacc|auto
                       frontend for file entries (default auto: extension
                       hint, then content sniffing; corpus entries are
                       always native DSL)
  --time-limit SECS    per-conflict unifying search budget (default 5)
  --total-limit SECS   cumulative unifying budget per grammar (default 120)
  --workers N          worker threads for each conflict fan-out
  --cache-mb MB        engine-cache byte budget (default 256; 0 = unlimited)
  --stats              per-grammar search counters, plus a final cache
                       summary on stderr";

fn run_batch(args: Vec<String>) -> ExitCode {
    let mut p = ArgScan::new(args, "batch", BATCH_USAGE);
    let mut opts = CexOptions::default();
    let mut manifest = String::new();
    let mut cache_mb = 256usize;
    while let Some(a) = p.next_arg() {
        match a.as_str() {
            "--help" | "-h" => p.help(),
            "--format" => match p.value("--format").as_str() {
                "text" => opts.json = false,
                "json" => opts.json = true,
                other => p.fail(&format!("`--format` is text or json, got `{other}`")),
            },
            "--grammar-format" => opts.grammar_format = p.grammar_format(),
            "--time-limit" => opts.time_limit = Duration::from_secs(p.num("--time-limit")),
            "--total-limit" => opts.total_limit = Duration::from_secs(p.num("--total-limit")),
            "--workers" => opts.workers = p.num("--workers"),
            "--cache-mb" => cache_mb = p.num("--cache-mb"),
            "--stats" => opts.stats = true,
            other if !other.starts_with('-') && manifest.is_empty() => {
                manifest = other.to_owned();
            }
            other => p.unknown(other),
        }
    }
    if manifest.is_empty() {
        p.fail("no manifest file given");
    }
    let listing = match std::fs::read_to_string(&manifest) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lalrcex: cannot read {manifest}: {e}");
            return ExitCode::from(2);
        }
    };

    // Resolve manifest lines to (label, grammar text or error) up front.
    // Per-entry failures are isolated: a bad entry is carried as an error,
    // reported in order, and counted — it never aborts the rest of the run.
    let mut items: Vec<(String, Result<GrammarSource, String>)> = Vec::new();
    for line in listing.lines() {
        let entry = line.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        if entry == "corpus:*" {
            for e in lalrcex_corpus::all() {
                items.push((
                    format!("corpus:{}", e.name),
                    Ok(GrammarSource::dsl(e.text().to_owned())),
                ));
            }
        } else if let Some(name) = entry.strip_prefix("corpus:") {
            match lalrcex_corpus::by_name(name) {
                Some(e) => items.push((
                    entry.to_owned(),
                    Ok(GrammarSource::dsl(e.text().to_owned())),
                )),
                None => items.push((
                    entry.to_owned(),
                    Err(format!("unknown corpus grammar `{name}`")),
                )),
            }
        } else {
            match std::fs::read_to_string(entry) {
                Ok(t) => items.push((
                    entry.to_owned(),
                    Ok(file_source(entry, t, opts.grammar_format)),
                )),
                Err(e) => items.push((entry.to_owned(), Err(format!("cannot read: {e}")))),
            }
        }
    }

    let session = Session::with_cache_mb(cache_mb);
    let cancel = interruptible_token();
    let total = items.len();
    let mut analyzed = 0usize;
    let mut failed = 0usize;
    let mut worst = 0u8;
    let summary = |analyzed: usize, failed: usize| {
        eprintln!("lalrcex batch: {analyzed}/{total} entries analyzed, {failed} failed");
    };
    for (label, source) in items {
        let source = match source {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("lalrcex: {label}: {msg}");
                failed += 1;
                worst = worst.max(2);
                continue;
            }
        };
        let request = analysis_request(source, &label, &opts, &cancel);
        let reply = match session.analyze(&request) {
            Ok(r) => r,
            Err(Error::Grammar(e) | Error::YaccParse(e)) => {
                eprintln!("lalrcex: {label}: {e}");
                failed += 1;
                worst = worst.max(2);
                continue;
            }
            Err(e) => {
                eprintln!("lalrcex: {label}: {e}");
                failed += 1;
                worst = worst.max(3);
                continue;
            }
        };
        analyzed += 1;
        if opts.json {
            println!("{}", reply.to_json());
        } else {
            print_text_report(
                &label,
                reply.grammar(),
                reply.engine(),
                &reply.report,
                &opts,
            );
        }
        let code = report_exit(cancel.is_hard_cancelled(), &reply.report);
        if code == 130 {
            // Interrupted: report what finished, skip the rest.
            summary(analyzed, failed);
            return ExitCode::from(130);
        }
        worst = worst.max(code);
    }
    summary(analyzed, failed);
    if opts.stats {
        let c = session.cache_stats();
        eprintln!(
            "engine cache: {} hits / {} misses / {} evictions, {} entries, {} bytes live",
            c.hits, c.misses, c.evictions, c.entries, c.live_bytes
        );
    }
    ExitCode::from(worst)
}

// ---------------------------------------------------------------------------

fn main() -> ExitCode {
    sigint::default_sigpipe();
    // Chaos testing only: with the `failpoints` feature compiled in,
    // `LALRCEX_FAULT_PLAN` installs a deterministic fault plan (it applies
    // to every subcommand, serve included).
    #[cfg(feature = "failpoints")]
    let _fault_guard = lalrcex_core::faultpoint::install_from_env();

    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("cex") => run_cex(args.split_off(1)),
        Some("explain") => run_explain(args.split_off(1)),
        Some("lint") => run_lint(args.split_off(1)),
        Some("serve") => run_serve(args.split_off(1)),
        Some("batch") => run_batch(args.split_off(1)),
        Some("--help" | "-h") => {
            println!("{GLOBAL_USAGE}");
            ExitCode::SUCCESS
        }
        // Legacy spelling: `lalrcex GRAMMAR.y [OPTIONS]` is implicit cex.
        Some(_) => run_cex(args),
        None => {
            eprintln!("{GLOBAL_USAGE}");
            ExitCode::from(2)
        }
    }
}
