//! A Yacc/Bison grammar frontend.
//!
//! Parses the POSIX-yacc subset that real-world `.y` files rely on into
//! the same [`GrammarBuilder`] the native DSL feeds, with 1-based source
//! lines preserved on every token declaration, precedence level, and
//! production — so lints and provenance chains point at real `.y` lines:
//!
//! * `%token`/`%term`, `%left`/`%right`/`%nonassoc`/`%precedence`,
//!   `%start`, `%prec`, `|` alternatives, `%empty` and bare epsilon rules;
//! * literal tokens (`'+'`, `"<="`), token numbers (`%token NUM 257`,
//!   ignored), and `<type>` tags (ignored);
//! * `%{ ... %}` prologue blocks, `{ ... }` semantic actions, and
//!   `%union { ... }` payload blocks, all stripped with
//!   brace/string/comment-aware scanning (the payload *semantics* — types,
//!   `$$`/`$n` — are ignored: conflict structure does not depend on them);
//! * `%%`-delimited sections; everything after the second `%%` (the C
//!   epilogue) is ignored;
//! * declaration-only directives (`%type`, `%expect`, `%define`, `%code`,
//!   `%parse-param`, …) accepted and ignored.
//!
//! Deliberately **rejected**, with structured errors naming the line:
//!
//! * **mid-rule actions** (`a : b { f(); } c ;`) — they desugar to an
//!   extra nonterminal in yacc and would silently change the automaton;
//!   refactor the action into its own rule;
//! * unknown `%` directives (typo safety, same policy as the DSL).
//!
//! Escape sequences in literals keep the raw character after the
//! backslash (`'\n'` names the terminal `n`), mirroring the DSL lexer so
//! a grammar and its DSL twin intern identical symbol names.
//!
//! [`looks_like_yacc`] is the content sniffer behind the API's `Auto`
//! format: it looks for markers that cannot appear in the DSL (a `%{`
//! block, an unquoted `{`, a second `%%`, a yacc-only directive, or
//! `%token <`), scanning outside comments and quoted literals.

#![forbid(unsafe_code)]

use std::fmt;

use lalrcex_grammar::{Assoc, Grammar, GrammarBuilder, GrammarError};

/// A structured yacc frontend error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum YaccError {
    /// The text is not well-formed yacc input.
    Syntax {
        /// 1-based source line.
        line: u32,
        /// What went wrong.
        msg: String,
    },
    /// A recognized yacc feature this frontend deliberately rejects.
    Unsupported {
        /// 1-based source line.
        line: u32,
        /// The rejected feature (e.g. `mid-rule action`).
        feature: String,
        /// How to rewrite the grammar without it.
        hint: &'static str,
    },
    /// The rules were well-formed yacc but semantically invalid as a
    /// grammar (a token on a left-hand side, a structural cap, …).
    Grammar(GrammarError),
}

impl fmt::Display for YaccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YaccError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            YaccError::Unsupported {
                line,
                feature,
                hint,
            } => write!(
                f,
                "line {line}: unsupported yacc feature: {feature} ({hint})"
            ),
            YaccError::Grammar(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for YaccError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            YaccError::Grammar(e) => Some(e),
            _ => None,
        }
    }
}

/// Collapses a [`YaccError`] into the grammar crate's error type, so the
/// yacc frontend can slot anywhere a DSL parse does (the engine cache, the
/// API facade). Syntax and unsupported-feature errors become
/// [`GrammarError::Parse`] with the yacc line; semantic errors pass
/// through unchanged.
impl From<YaccError> for GrammarError {
    fn from(e: YaccError) -> GrammarError {
        match e {
            YaccError::Syntax { line, msg } => GrammarError::Parse { line, msg },
            YaccError::Unsupported {
                line,
                feature,
                hint,
            } => GrammarError::Parse {
                line,
                msg: format!("unsupported yacc feature: {feature} ({hint})"),
            },
            YaccError::Grammar(e) => e,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    /// `'+'` or `"<="` — always a terminal.
    Literal(String),
    /// A bare integer (a token number in declarations; ignored).
    Number,
    /// `%name`.
    Directive(String),
    /// `<...>` — a `%union` member tag; ignored.
    TypeTag,
    /// `{ ... }` — a semantic action, content stripped.
    Action,
    Colon,
    Pipe,
    Semi,
    /// `%%`.
    Section,
}

/// Directives whose operands don't tokenize as grammar input (`=`, quoted
/// versions, dotted values): the lexer swallows the whole line.
const LINE_DIRECTIVES: &[&str] = &[
    "define",
    "name-prefix",
    "name_prefix",
    "output",
    "file-prefix",
    "language",
    "skeleton",
    "require",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    sections_seen: u8,
    /// Set after the second `%%`: the rest of the file is the C epilogue.
    done: bool,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            sections_seen: 0,
            done: false,
        }
    }

    fn err(&self, msg: impl Into<String>) -> YaccError {
        YaccError::Syntax {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn err_at(&self, line: u32, msg: impl Into<String>) -> YaccError {
        YaccError::Syntax {
            line,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
            }
        }
        c
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), YaccError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err_at(start, "unterminated /* comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Skips a quoted literal inside C code (strings and char constants in
    /// actions/prologues), tolerating a dangling backslash at EOF.
    fn skip_c_quote(&mut self, quote: u8) {
        while let Some(c) = self.bump() {
            match c {
                b'\\' => {
                    self.bump();
                }
                // A raw newline ends a (malformed) C literal: apostrophes
                // in prose comments must not swallow the rest of the file.
                c if c == quote || c == b'\n' => return,
                _ => {}
            }
        }
    }

    /// Consumes a brace-balanced `{ ... }` block (a semantic action or a
    /// `%union` payload), aware of C strings, char constants, and both
    /// comment styles. The opening `{` is already consumed.
    fn skip_braced(&mut self, start: u32) -> Result<(), YaccError> {
        let mut depth = 1usize;
        loop {
            match self.bump() {
                Some(b'{') => depth += 1,
                Some(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(q @ (b'"' | b'\'')) => self.skip_c_quote(q),
                Some(b'/') if self.peek() == Some(b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek() == Some(b'*') => {
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => {
                                return Err(self.err_at(start, "unterminated comment in action"))
                            }
                        }
                    }
                }
                Some(_) => {}
                None => return Err(self.err_at(start, "unterminated `{ ... }` block")),
            }
        }
    }

    /// Consumes a `%{ ... %}` prologue. The `%{` is already consumed.
    fn skip_prologue(&mut self, start: u32) -> Result<(), YaccError> {
        loop {
            match self.bump() {
                Some(b'%') if self.peek() == Some(b'}') => {
                    self.bump();
                    return Ok(());
                }
                Some(q @ (b'"' | b'\'')) => self.skip_c_quote(q),
                Some(b'/') if self.peek() == Some(b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek() == Some(b'*') => {
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => {
                                return Err(self.err_at(start, "unterminated comment in `%{` block"))
                            }
                        }
                    }
                }
                Some(_) => {}
                None => return Err(self.err_at(start, "unterminated `%{ ... %}` block")),
            }
        }
    }

    fn is_ident_start(c: u8) -> bool {
        c.is_ascii_alphabetic() || c == b'_'
    }

    /// Identifier continuation: yacc names plus the DSL's `-`/`.` so a
    /// grammar and its DSL twin intern identical symbol names.
    fn is_ident_byte(c: u8) -> bool {
        c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b'-')
    }

    fn next_tok(&mut self) -> Result<Option<(Tok, u32)>, YaccError> {
        loop {
            if self.done {
                return Ok(None);
            }
            self.skip_trivia()?;
            let line = self.line;
            let Some(c) = self.peek() else {
                return Ok(None);
            };
            let tok = match c {
                b':' => {
                    self.bump();
                    Tok::Colon
                }
                b'|' => {
                    self.bump();
                    Tok::Pipe
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b'{' => {
                    self.bump();
                    self.skip_braced(line)?;
                    Tok::Action
                }
                b'<' => {
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'>') => break,
                            Some(b'\n') | None => {
                                return Err(self.err_at(line, "unterminated `<type>` tag"))
                            }
                            Some(_) => {}
                        }
                    }
                    Tok::TypeTag
                }
                b'%' => {
                    self.bump();
                    match self.peek() {
                        Some(b'%') => {
                            self.bump();
                            self.sections_seen += 1;
                            if self.sections_seen >= 2 {
                                // The C epilogue: ignore the rest.
                                self.done = true;
                                return Ok(None);
                            }
                            Tok::Section
                        }
                        Some(b'{') => {
                            self.bump();
                            self.skip_prologue(line)?;
                            continue;
                        }
                        _ => {
                            let mut name = String::new();
                            while let Some(c) = self.peek() {
                                if c.is_ascii_alphanumeric() || c == b'-' || c == b'_' {
                                    self.bump();
                                    name.push(c as char);
                                } else {
                                    break;
                                }
                            }
                            if name.is_empty() {
                                return Err(self.err("expected directive name after `%`"));
                            }
                            if LINE_DIRECTIVES.contains(&name.as_str()) {
                                // Operands (`=`, strings, dotted values)
                                // don't tokenize; swallow the line.
                                while let Some(c) = self.bump() {
                                    if c == b'\n' {
                                        break;
                                    }
                                }
                                continue;
                            }
                            Tok::Directive(name)
                        }
                    }
                }
                b'\'' | b'"' => {
                    let quote = c;
                    self.bump();
                    let mut name = String::new();
                    loop {
                        match self.bump() {
                            Some(c) if c == quote => break,
                            // DSL-compatible escape handling: keep the raw
                            // character after the backslash.
                            Some(b'\\') => match self.bump() {
                                Some(c) => name.push(c as char),
                                None => return Err(self.err_at(line, "unterminated literal")),
                            },
                            Some(c) => name.push(c as char),
                            None => return Err(self.err_at(line, "unterminated literal")),
                        }
                    }
                    if name.is_empty() {
                        return Err(self.err_at(line, "empty literal"));
                    }
                    Tok::Literal(name)
                }
                c if c.is_ascii_digit() => {
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        self.bump();
                    }
                    Tok::Number
                }
                c if Self::is_ident_start(c) => {
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if Self::is_ident_byte(c) {
                            self.bump();
                            name.push(c as char);
                        } else {
                            break;
                        }
                    }
                    Tok::Ident(name)
                }
                other => {
                    return Err(self.err(format!(
                        "unexpected character `{}` (in yacc input, operator tokens \
                         are quoted: '{}')",
                        other as char, other as char
                    )))
                }
            };
            return Ok(Some((tok, line)));
        }
    }
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    /// Line of the *next* token (clamped to the last token at EOF).
    fn peek_line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> YaccError {
        YaccError::Syntax {
            line: self.peek_line(),
            msg: msg.into(),
        }
    }

    /// Consumes a run of names (idents and literals, `<type>` tags and
    /// token numbers skipped), calling `each(name, line, is_literal)`.
    fn name_run(&mut self, mut each: impl FnMut(String, u32, bool)) {
        loop {
            match self.peek() {
                Some(Tok::TypeTag | Tok::Number) => {
                    self.bump();
                }
                Some(Tok::Ident(_)) => {
                    let line = self.peek_line();
                    let Some(Tok::Ident(name)) = self.bump() else {
                        unreachable!("peeked Ident");
                    };
                    each(name, line, false);
                }
                Some(Tok::Literal(_)) => {
                    let line = self.peek_line();
                    let Some(Tok::Literal(name)) = self.bump() else {
                        unreachable!("peeked Literal");
                    };
                    each(name, line, true);
                }
                _ => return,
            }
        }
    }
}

/// Parses yacc text into a builder (exposed for tooling that wants to
/// post-process rules before building).
pub fn parse_into_builder(text: &str) -> Result<GrammarBuilder, YaccError> {
    let mut lex = Lexer::new(text);
    let mut toks = Vec::new();
    while let Some(t) = lex.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser { toks, pos: 0 };
    let mut b = GrammarBuilder::new();

    // Declarations.
    loop {
        match p.peek() {
            Some(Tok::Section) => {
                p.bump();
                break;
            }
            Some(Tok::Directive(_)) => {
                let decl_line = p.peek_line();
                let Some(Tok::Directive(d)) = p.bump() else {
                    unreachable!("peeked Directive");
                };
                match d.as_str() {
                    "token" | "term" => {
                        p.name_run(|name, line, _| {
                            b.token_at(&name, line);
                        });
                    }
                    "left" | "right" | "nonassoc" | "precedence" => {
                        // `%precedence` declares a level with no
                        // associativity; Nonassoc is the closest fit.
                        let assoc = match d.as_str() {
                            "left" => Assoc::Left,
                            "right" => Assoc::Right,
                            _ => Assoc::Nonassoc,
                        };
                        let mut names = Vec::new();
                        p.name_run(|name, _, _| names.push(name));
                        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                        b.prec_level_at(assoc, &refs, decl_line);
                    }
                    "start" => match p.bump() {
                        Some(Tok::Ident(name)) => {
                            b.start(&name);
                        }
                        other => {
                            return Err(p.err(format!(
                                "expected start symbol after `%start`, found {other:?}"
                            )))
                        }
                    },
                    // Type declarations: names acknowledged, types ignored.
                    "type" | "nterm" => p.name_run(|_, _, _| {}),
                    "union" => {
                        // Optional union name (bison), then the payload
                        // block — accepted, semantics ignored.
                        if matches!(p.peek(), Some(Tok::Ident(_))) {
                            p.bump();
                        }
                        match p.bump() {
                            Some(Tok::Action) => {}
                            other => {
                                return Err(p.err(format!(
                                    "expected `{{ ... }}` after `%union`, found {other:?}"
                                )))
                            }
                        }
                    }
                    "expect" | "expect-rr" => match p.bump() {
                        Some(Tok::Number) => {}
                        other => {
                            return Err(
                                p.err(format!("expected a number after `%{d}`, found {other:?}"))
                            )
                        }
                    },
                    "code" => {
                        if matches!(p.peek(), Some(Tok::Ident(_))) {
                            p.bump();
                        }
                        match p.bump() {
                            Some(Tok::Action) => {}
                            other => {
                                return Err(p.err(format!(
                                    "expected `{{ ... }}` after `%code`, found {other:?}"
                                )))
                            }
                        }
                    }
                    "parse-param" | "lex-param" | "param" | "initial-action" | "destructor"
                    | "printer" => {
                        match p.bump() {
                            Some(Tok::Action) => {}
                            other => {
                                return Err(p.err(format!(
                                    "expected `{{ ... }}` after `%{d}`, found {other:?}"
                                )))
                            }
                        }
                        // `%destructor { ... } <ty> sym` trailers.
                        p.name_run(|_, _, _| {});
                    }
                    "pure-parser" | "pure_parser" | "locations" | "debug" | "verbose"
                    | "defines" | "token-table" | "no-lines" | "error-verbose" | "glr-parser"
                    | "yacc" => {}
                    other => {
                        return Err(YaccError::Unsupported {
                            line: decl_line,
                            feature: format!("directive `%{other}`"),
                            hint: "remove it, or file the grammar as a frontend gap",
                        })
                    }
                }
            }
            Some(other) => {
                return Err(p.err(format!("expected declaration or `%%`, found {other:?}")))
            }
            None => return Err(p.err("missing `%%` separator")),
        }
    }

    // Rules.
    loop {
        let lhs_line = p.peek_line();
        let lhs = match p.peek() {
            None => break,
            Some(Tok::Ident(_)) => {
                let Some(Tok::Ident(lhs)) = p.bump() else {
                    unreachable!("peeked Ident");
                };
                lhs
            }
            Some(other) => return Err(p.err(format!("expected rule name, found {other:?}"))),
        };
        match p.bump() {
            Some(Tok::Colon) => {}
            other => return Err(p.err(format!("expected `:` after rule name, found {other:?}"))),
        }
        let mut first_alt = true;
        'alts: loop {
            // One alternative; its span is the line of its first token (the
            // rule head for the first alternative, matching the DSL).
            let alt_line = if first_alt { lhs_line } else { p.peek_line() };
            first_alt = false;
            let mut rhs: Vec<String> = Vec::new();
            let mut prec: Option<String> = None;
            let mut action_line: Option<u32> = None;
            let mut empty_line: Option<u32> = None;
            loop {
                // A trailing action is stripped; an action *followed by
                // more grammar symbols* is a mid-rule action, which yacc
                // desugars into a hidden nonterminal — reject it instead
                // of silently analyzing a different automaton.
                let mid_rule = |action_line: Option<u32>| {
                    action_line.map_or(Ok(()), |line| {
                        Err(YaccError::Unsupported {
                            line,
                            feature: "mid-rule action".to_owned(),
                            hint: "move the action to the end of the alternative, or split \
                                   the prefix into its own nonterminal",
                        })
                    })
                };
                let no_empty = |empty_line: Option<u32>, here: u32| {
                    empty_line.map_or(Ok(()), |line| {
                        Err(YaccError::Syntax {
                            line: line.max(here),
                            msg: "`%empty` must be the alternative's only content".into(),
                        })
                    })
                };
                match p.peek() {
                    // An identifier followed by `:` starts the next rule —
                    // yacc's optional-semicolon form.
                    Some(Tok::Ident(_)) if matches!(p.peek2(), Some(Tok::Colon)) => break,
                    Some(Tok::Ident(_)) => {
                        let here = p.peek_line();
                        mid_rule(action_line)?;
                        no_empty(empty_line, here)?;
                        let Some(Tok::Ident(s)) = p.bump() else {
                            unreachable!("peeked Ident");
                        };
                        rhs.push(s);
                    }
                    Some(Tok::Literal(_)) => {
                        let here = p.peek_line();
                        mid_rule(action_line)?;
                        no_empty(empty_line, here)?;
                        let Some(Tok::Literal(s)) = p.bump() else {
                            unreachable!("peeked Literal");
                        };
                        // Literals are always terminals; declaring them
                        // surfaces collisions with nonterminal names.
                        b.token_at(&s, here);
                        rhs.push(s);
                    }
                    Some(Tok::Directive(d)) if d == "empty" => {
                        let here = p.peek_line();
                        if !rhs.is_empty() {
                            return Err(YaccError::Syntax {
                                line: here,
                                msg: "`%empty` must be the alternative's only content".into(),
                            });
                        }
                        p.bump();
                        empty_line = Some(here);
                    }
                    Some(Tok::Directive(d)) if d == "prec" => {
                        p.bump();
                        prec = Some(match p.bump() {
                            Some(Tok::Ident(s) | Tok::Literal(s)) => s,
                            other => {
                                return Err(p.err(format!(
                                    "expected terminal after `%prec`, found {other:?}"
                                )))
                            }
                        });
                    }
                    Some(Tok::Action) => {
                        let here = p.peek_line();
                        if action_line.is_some() {
                            return Err(YaccError::Unsupported {
                                line: here,
                                feature: "mid-rule action".to_owned(),
                                hint: "an alternative takes a single trailing action",
                            });
                        }
                        p.bump();
                        action_line = Some(here);
                    }
                    Some(Tok::Number) => {
                        return Err(p.err("unexpected number in a rule body"));
                    }
                    Some(Tok::TypeTag) => {
                        return Err(p.err("unexpected `<type>` tag in a rule body"));
                    }
                    _ => break,
                }
            }
            let refs: Vec<&str> = rhs.iter().map(String::as_str).collect();
            match prec {
                Some(ps) => {
                    b.rule_prec_at(&lhs, &refs, &ps, alt_line);
                }
                None => {
                    b.rule_at(&lhs, &refs, alt_line);
                }
            }
            match p.peek() {
                Some(Tok::Pipe) => {
                    p.bump();
                }
                Some(Tok::Semi) => {
                    p.bump();
                    break 'alts;
                }
                // Optional semicolon: a new rule head or end of input
                // terminates the rule.
                None => break 'alts,
                Some(Tok::Ident(_)) if matches!(p.peek2(), Some(Tok::Colon)) => break 'alts,
                Some(other) => {
                    return Err(p.err(format!("expected `|` or `;` in rule, found {other:?}")))
                }
            }
        }
    }
    Ok(b)
}

/// Parses yacc/bison text into a [`Grammar`], with the full structured
/// error (see [`YaccError`]).
pub fn parse_detailed(text: &str) -> Result<Grammar, YaccError> {
    parse_into_builder(text)?
        .build()
        .map_err(YaccError::Grammar)
}

/// Parses yacc/bison text into a [`Grammar`], collapsing frontend errors
/// into [`GrammarError`] — the same signature as [`Grammar::parse`], so
/// the two frontends are interchangeable behind a parse function pointer.
pub fn parse(text: &str) -> Result<Grammar, GrammarError> {
    parse_detailed(text).map_err(GrammarError::from)
}

/// Directives that exist in yacc/bison but not in the DSL: seeing one
/// (outside comments and literals) marks the text as yacc.
const YACC_ONLY_DIRECTIVES: &[&str] = &[
    "union",
    "type",
    "nterm",
    "expect",
    "expect-rr",
    "define",
    "code",
    "parse-param",
    "lex-param",
    "param",
    "initial-action",
    "destructor",
    "printer",
    "pure-parser",
    "pure_parser",
    "locations",
    "token-table",
    "no-lines",
    "error-verbose",
    "glr-parser",
    "name-prefix",
    "name_prefix",
    "file-prefix",
    "output",
    "defines",
    "verbose",
    "require",
    "language",
    "skeleton",
    "debug",
    "precedence",
    "dprec",
    "merge",
    "yacc",
];

/// Content sniffing for the `Auto` grammar format: `true` when `text`
/// carries a marker that cannot appear in the DSL — a `%{ ... %}` block,
/// an unquoted `{` (semantic actions; the DSL only allows quoted brace
/// literals), a second `%%`, a yacc-only `%` directive, or `%token`
/// directly followed by a `<type>` tag. Markers are only counted outside
/// comments (all three styles) and quoted literals, so commented-out C
/// code cannot flip a DSL grammar.
#[must_use]
pub fn looks_like_yacc(text: &str) -> bool {
    let b = text.as_bytes();
    let mut i = 0usize;
    let mut sections = 0u32;
    while i < b.len() {
        match b[i] {
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i < b.len() && !(b[i] == b'*' && b.get(i + 1) == Some(&b'/')) {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            q @ (b'\'' | b'"') => {
                i += 1;
                while i < b.len() && b[i] != q {
                    i += if b[i] == b'\\' { 2 } else { 1 };
                }
                i += 1;
            }
            b'{' => return true,
            b'%' => {
                i += 1;
                match b.get(i) {
                    Some(b'{') => return true,
                    Some(b'%') => {
                        sections += 1;
                        if sections >= 2 {
                            return true;
                        }
                        i += 1;
                    }
                    _ => {
                        let start = i;
                        while i < b.len()
                            && (b[i].is_ascii_alphanumeric() || b[i] == b'-' || b[i] == b'_')
                        {
                            i += 1;
                        }
                        let word = &text[start..i];
                        if YACC_ONLY_DIRECTIVES.contains(&word) {
                            return true;
                        }
                        if word == "token" || word == "term" {
                            let mut j = i;
                            while j < b.len() && (b[j] == b' ' || b[j] == b'\t') {
                                j += 1;
                            }
                            if b.get(j) == Some(&b'<') {
                                return true;
                            }
                        }
                    }
                }
            }
            _ => i += 1,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const REAL_YACC: &str = r#"%{
#include <stdio.h>
/* a brace in a comment: { */
static const char *tag = "also a brace: {";
static void yyerror(const char *msg);
%}

%union {
    int num;
    char *str;
}

%token <num> NUM 257
%token IF THEN ELSE
%left '+' '-'
%left '*' '/'
%nonassoc UMINUS
%type <num> expr
%start stmt
%expect 1

%%

stmt : IF expr THEN stmt ELSE stmt { $$ = mk_if3($2, $4, $6); }
     | IF expr THEN stmt           { $$ = mk_if2($2, $4); }
     ;
expr : NUM                { $$ = $1; }
     | expr '+' expr      { $$ = $1 + $3; }
     | '-' expr %prec UMINUS { $$ = -$2; }
     | %empty             { $$ = 0; }
     ;

%%

static void yyerror(const char *msg) { fprintf(stderr, "%s\n", msg); }
int main(void) { return yyparse(); }
"#;

    #[test]
    fn parses_a_real_yacc_grammar() {
        let g = parse(REAL_YACC).unwrap();
        // 2 stmt + 4 expr + augmented start.
        assert_eq!(g.prod_count(), 7);
        assert!(g.is_terminal(g.symbol_named("NUM").unwrap()));
        assert!(g.is_terminal(g.symbol_named("+").unwrap()));
        let star = g.terminal_prec(g.symbol_named("*").unwrap()).unwrap();
        let plus = g.terminal_prec(g.symbol_named("+").unwrap()).unwrap();
        assert!(star.level > plus.level);
        assert_eq!(plus.assoc, Assoc::Left);
    }

    #[test]
    fn spans_point_at_real_source_lines() {
        let g = parse(REAL_YACC).unwrap();
        // `%token IF THEN ELSE` is on line 14 of the file above.
        assert_eq!(g.decl_line(g.symbol_named("IF").unwrap()), Some(14));
        assert_eq!(g.decl_line(g.symbol_named("+").unwrap()), Some(15));
        // The `stmt` rule head is on line 24; its second alternative on 25.
        let stmt = g.symbol_named("stmt").unwrap();
        let lines: Vec<Option<u32>> = g.prods_of(stmt).iter().map(|&p| g.prod(p).line()).collect();
        assert_eq!(lines, vec![Some(24), Some(25)]);
    }

    #[test]
    fn matches_its_dsl_twin_symbol_for_symbol() {
        let dsl = "%token IF THEN ELSE\n\
                   %left '+' '-'\n\
                   %left '*' '/'\n\
                   %nonassoc UMINUS\n\
                   %start stmt\n\
                   %%\n\
                   stmt : IF expr THEN stmt ELSE stmt | IF expr THEN stmt ;\n\
                   expr : NUM | expr '+' expr | '-' expr %prec UMINUS | %empty ;\n";
        let d = Grammar::parse(dsl).unwrap();
        let y = parse(REAL_YACC).unwrap();
        assert_eq!(d.prod_count() + 1, y.prod_count() + 1);
        for sym in ["stmt", "expr", "IF", "NUM", "+", "*", "UMINUS"] {
            assert!(y.symbol_named(sym).is_some(), "missing {sym}");
        }
    }

    #[test]
    fn mid_rule_action_is_a_structured_error() {
        let err = parse_detailed("%%\na : b { act(); } c ;\n").unwrap_err();
        match err {
            YaccError::Unsupported { line, feature, .. } => {
                assert_eq!(line, 2);
                assert_eq!(feature, "mid-rule action");
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // Through the GrammarError funnel the line survives.
        match parse("%%\na : b { act(); } c ;\n").unwrap_err() {
            GrammarError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("mid-rule action"), "{msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn unknown_directive_is_a_structured_error() {
        match parse_detailed("%frobnicate\n%% s : A ;").unwrap_err() {
            YaccError::Unsupported { line, feature, .. } => {
                assert_eq!(line, 1);
                assert!(feature.contains("frobnicate"));
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn trailing_action_with_prec_is_accepted() {
        let g = parse("%left '-'\n%nonassoc U\n%% e : '-' e %prec U { neg(); } | N ;").unwrap();
        assert_eq!(g.prod_count(), 3);
    }

    #[test]
    fn optional_semicolons_between_rules() {
        let g = parse("%%\na : b X\nb : Y\n").unwrap();
        assert_eq!(g.prod_count(), 3);
        assert!(g.symbol_named("a").is_some());
    }

    #[test]
    fn empty_must_stand_alone() {
        assert!(matches!(
            parse("%% s : %empty A ;"),
            Err(GrammarError::Parse { .. })
        ));
        assert!(matches!(
            parse("%% s : A %empty ;"),
            Err(GrammarError::Parse { .. })
        ));
        let g = parse("%% s : A s | %empty { $$ = nil(); } ;").unwrap();
        assert_eq!(g.prod_count(), 3);
    }

    #[test]
    fn epilogue_is_ignored() {
        let g = parse("%% s : A ;\n%%\nthis is ! not ? grammar @ at all").unwrap();
        assert_eq!(g.prod_count(), 2);
    }

    #[test]
    fn line_directives_are_swallowed() {
        let g = parse(
            "%define api.value.type {int}\n\
             %name-prefix \"calc_\"\n\
             %require \"3.2\"\n\
             %% s : A ;",
        )
        .unwrap();
        assert_eq!(g.prod_count(), 2);
    }

    #[test]
    fn bare_operators_are_rejected_with_a_hint() {
        match parse("%% e : e + e ;").unwrap_err() {
            GrammarError::Parse { msg, .. } => assert!(msg.contains("quoted"), "{msg}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn literal_escapes_mirror_the_dsl() {
        let y = parse("%% s : s '\\n' | '\\\\' ;").unwrap();
        let d = Grammar::parse("%% s : s '\\n' | '\\\\' ;").unwrap();
        assert!(y.symbol_named("n").is_some());
        assert!(d.symbol_named("n").is_some());
        assert!(y.symbol_named("\\").is_some());
        assert!(d.symbol_named("\\").is_some());
    }

    #[test]
    fn sniffer_classifies_the_corpus_dsl_as_dsl() {
        for dsl in [
            "%% e : e '+' e | NUM ;",
            "# comment with a { brace\n%token A\n%% s : A ;",
            "%start s\n// action-like comment: { $$ = 1; }\n%% s : 'if' s ;",
            "%left '+' '-'\n%prec-free : %empty ;",
            "%% e : e '{' e '}' | NUM ;",
        ] {
            assert!(!looks_like_yacc(dsl), "misclassified as yacc: {dsl:?}");
        }
    }

    #[test]
    fn sniffer_spots_yacc_markers() {
        for y in [
            REAL_YACC,
            "%{\nint x;\n%}\n%% s : A ;",
            "%% s : A { act(); } ;",
            "%union { int n; }\n%% s : A ;",
            "%token <num> NUM\n%% s : NUM ;",
            "%expect 1\n%% s : A ;",
            "%% s : A ;\n%%\nint main() {}",
        ] {
            assert!(looks_like_yacc(y), "missed yacc markers in: {y:?}");
        }
    }

    #[test]
    fn never_panics_on_garbage_prefixes() {
        // Deterministic cheap smoke (the workspace fuzzers go further).
        for cut in 0..REAL_YACC.len() {
            if REAL_YACC.is_char_boundary(cut) {
                let _ = parse(&REAL_YACC[..cut]);
                let _ = looks_like_yacc(&REAL_YACC[..cut]);
            }
        }
    }

    #[test]
    fn structural_caps_are_shared_with_the_dsl() {
        use lalrcex_grammar::MAX_RHS_SYMBOLS;
        let long_rhs = "A ".repeat(MAX_RHS_SYMBOLS + 1);
        let src = format!("%% s : {long_rhs};");
        match parse(&src) {
            Err(GrammarError::Limit { what, actual, .. }) => {
                assert_eq!(what, "right-hand-side length");
                assert_eq!(actual, MAX_RHS_SYMBOLS + 1);
            }
            other => panic!("expected Limit error, got {other:?}"),
        }
    }
}
