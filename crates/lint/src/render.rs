//! Deterministic renderers for lint diagnostics: a compiler-style text
//! format and a hand-rolled JSON format (no external dependencies).
//!
//! Both renderers are pure functions of their inputs, so output is
//! byte-identical across runs — a property the committed corpus snapshots
//! rely on.

use crate::Diagnostic;
use std::fmt::Write as _;

/// Renders diagnostics in a `file:line: severity[name/id] message` compiler
/// style, one primary line per diagnostic plus indented `note:` lines for
/// related locations.
///
/// Diagnostics without a span print `file:-:` so every line still starts
/// with the file name (grep-friendly).
pub fn render_text(file: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        match d.span {
            Some(s) => {
                let _ = write!(out, "{}:{}: ", file, s.line);
            }
            None => {
                let _ = write!(out, "{}:-: ", file);
            }
        }
        let _ = writeln!(
            out,
            "{}[{}/{}] {}",
            d.severity.label(),
            d.code.name,
            d.code.id,
            d.message
        );
        for r in &d.related {
            match r.span {
                Some(s) => {
                    let _ = writeln!(out, "    note: {} ({}:{})", r.message, file, s.line);
                }
                None => {
                    let _ = writeln!(out, "    note: {}", r.message);
                }
            }
        }
    }
    out
}

/// Renders diagnostics as a JSON document:
///
/// ```json
/// {"file":"g.y","diagnostics":[{"id":"L001","name":"...","severity":"warning",
///   "message":"...","line":3,"related":[{"message":"...","line":1}]}]}
/// ```
///
/// `line` is `null` when the grammar carries no source information. The
/// encoder is hand-rolled (the workspace is dependency-free); strings are
/// escaped per RFC 8259.
pub fn render_json(file: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\"file\":");
    json_string(&mut out, file);
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        json_string(&mut out, d.code.id);
        out.push_str(",\"name\":");
        json_string(&mut out, d.code.name);
        out.push_str(",\"severity\":");
        json_string(&mut out, d.severity.label());
        out.push_str(",\"message\":");
        json_string(&mut out, &d.message);
        out.push_str(",\"line\":");
        match d.span {
            Some(s) => {
                let _ = write!(out, "{}", s.line);
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"related\":[");
        for (j, r) in d.related.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"message\":");
            json_string(&mut out, &r.message);
            out.push_str(",\"line\":");
            match r.span {
                Some(s) => {
                    let _ = write!(out, "{}", s.line);
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Appends `s` to `out` as a JSON string literal (RFC 8259 escaping).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint;
    use lalrcex_grammar::Grammar;

    #[test]
    fn text_format_is_compiler_style() {
        let g = Grammar::parse("%% s : 'x' ;\ndead : 'y' ;\n").unwrap();
        let diags = lint(&g);
        let text = render_text("g.y", &diags);
        assert!(
            text.contains("g.y:2: warning[unreachable-nonterminal/L001]"),
            "got: {text}"
        );
    }

    #[test]
    fn json_is_wellformed() {
        let g = Grammar::parse("%% s : 'x' ;\ndead : 'y' ;\n").unwrap();
        let diags = lint(&g);
        let json = render_json("g.y", &diags);
        assert!(json.starts_with("{\"file\":\"g.y\",\"diagnostics\":["));
        assert!(json.ends_with("]}\n"));
        // Crude balance check: equal numbers of braces/brackets.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        let lb = json.matches('[').count();
        let rb = json.matches(']').count();
        assert_eq!(lb, rb);
    }

    #[test]
    fn json_strings_are_escaped() {
        use crate::{Diagnostic, LintCode, Severity};
        let d = Diagnostic {
            code: LintCode {
                id: "L999",
                name: "test",
            },
            severity: Severity::Info,
            message: "quote \" backslash \\ newline \n control \u{1}".into(),
            span: None,
            related: vec![],
        };
        let json = render_json("g\".y", std::slice::from_ref(&d));
        assert!(json.contains("\"file\":\"g\\\".y\""));
        assert!(json.contains("quote \\\" backslash \\\\ newline \\n control \\u0001"));
    }

    #[test]
    fn renderers_are_deterministic() {
        let g = Grammar::parse("%token A B\n%% s : 'x' ;\ndead : 'y' ;\n").unwrap();
        let d1 = lint(&g);
        let d2 = lint(&g);
        assert_eq!(render_text("g.y", &d1), render_text("g.y", &d2));
        assert_eq!(render_json("g.y", &d1), render_json("g.y", &d2));
    }

    #[test]
    fn spanless_diagnostics_render() {
        use crate::{Diagnostic, LintCode, Severity};
        let d = Diagnostic {
            code: LintCode {
                id: "L999",
                name: "test",
            },
            severity: Severity::Info,
            message: "no span".into(),
            span: None,
            related: vec![],
        };
        let text = render_text("g.y", std::slice::from_ref(&d));
        assert!(text.starts_with("g.y:-: info[test/L999] no span"));
        let json = render_json("g.y", std::slice::from_ref(&d));
        assert!(json.contains("\"line\":null"));
    }
}
