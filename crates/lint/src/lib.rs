//! Multi-pass grammar static analysis with spanned diagnostics.
//!
//! The conflict engine fires only *after* table construction finds a
//! conflict, but many grammar defects that cause (or silently mask)
//! conflicts are detectable by pure static analysis: unreachable and
//! unproductive symbols, duplicate productions, derivation cycles, hidden
//! left recursion behind nullable prefixes, nullable-repetition ambiguity
//! patterns, and precedence declarations that never tie-break — or worse,
//! that silenced a conflict the counterexample search can prove genuinely
//! ambiguous.
//!
//! Every pass runs over [`lalrcex_core::Facts`], the read-only bundle of
//! conflict-independent state the [`Engine`] builds exactly once per
//! grammar (nullable/FIRST/reachability, the LALR automaton, resolved
//! tables, the state-item graph). Linting a grammar whose conflicts were
//! already analyzed therefore costs no extra precomputation, and the
//! *conflict-masking* pass reuses the engine's memoized §4 spines when it
//! replays precedence-resolved conflicts through the §5 unifying search.
//!
//! Determinism: no pass consults the clock. The masking probe runs under a
//! node-count budget, so two lint runs of the same grammar are
//! byte-identical — a requirement for the committed corpus snapshots.
//!
//! # Quick start
//!
//! ```
//! use lalrcex_grammar::Grammar;
//! use lalrcex_lint::{lint, Severity};
//!
//! let g = Grammar::parse("%% s : 'x' ; dead : 'y' ;")?;
//! let diags = lint(&g);
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code.name, "unreachable-nonterminal");
//! assert_eq!(diags[0].severity, Severity::Warning);
//! assert!(diags[0].span.is_some(), "diagnostics carry source lines");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

use lalrcex_core::Engine;
use lalrcex_grammar::Grammar;

mod passes;
mod render;
pub mod snapshot;

pub use render::{render_json, render_text};

/// How bad a [`Diagnostic`] is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational — surfaced, never affects the exit code.
    Info,
    /// Suspicious pattern; exit code only with `--deny-warnings`.
    Warning,
    /// A defect (e.g. an unproductive nonterminal): nonzero exit code.
    Error,
}

impl Severity {
    /// Lower-case label used by both the text and JSON renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A stable identifier for a lint pass: a short numeric id (`L00x`) plus a
/// kebab-case name, both printed in reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LintCode {
    /// Stable short id, e.g. `"L001"`.
    pub id: &'static str,
    /// Human-readable kebab-case name, e.g. `"unreachable-nonterminal"`.
    pub name: &'static str,
}

/// A source location in the grammar DSL (1-based line).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
}

/// A secondary location attached to a [`Diagnostic`] (e.g. "first defined
/// here" for a duplicate production).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Related {
    /// What this location contributes.
    pub message: String,
    /// Where, when known.
    pub span: Option<Span>,
}

/// One finding of a lint pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Which pass produced it.
    pub code: LintCode,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Primary source location, when the grammar carries line info.
    pub span: Option<Span>,
    /// Secondary locations.
    pub related: Vec<Related>,
}

/// Tunables for the lint run.
#[derive(Clone, Copy, Debug)]
pub struct LintConfig {
    /// Deterministic node budget for each conflict-masking probe (the §5
    /// search is bounded by explored configurations, *not* wall clock, so
    /// lint output is byte-identical across runs and machines).
    ///
    /// The probe deliberately has no wall-clock limit; its worst case is
    /// bounded by this together with the engine's per-configuration cost
    /// cap, which keeps derivations shallow on adversarial grammars. The
    /// default finds every masked ambiguity in the Table 1 corpus with
    /// plenty of headroom.
    pub masking_max_configs: usize,
    /// Cap on masking probes per grammar (one representative resolution is
    /// probed per silenced reduce production; this bounds the worst case).
    pub masking_max_probes: usize,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            masking_max_configs: 1 << 16,
            masking_max_probes: 256,
        }
    }
}

/// Everything a pass may look at: the engine's shared facts plus the
/// engine itself (for the masking pass's spine-memoized probes) and the
/// lint configuration.
pub struct LintContext<'e> {
    /// The conflict-independent facts (grammar, analysis, automaton,
    /// tables, state-item graph), built once by the engine.
    pub facts: lalrcex_core::Facts<'e>,
    /// The engine, for passes that replay searches.
    pub engine: &'e Engine<'e>,
    /// Tunables.
    pub cfg: &'e LintConfig,
}

/// A single analysis pass over the grammar facts.
pub trait LintPass {
    /// The stable code of this pass.
    fn code(&self) -> LintCode;
    /// One-line description (shown by `lalrcex lint --list`).
    fn description(&self) -> &'static str;
    /// Appends this pass's findings to `out`.
    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The pass registry: an ordered set of [`LintPass`]es plus a
/// [`LintConfig`].
pub struct Linter {
    passes: Vec<Box<dyn LintPass>>,
    cfg: LintConfig,
}

impl Default for Linter {
    fn default() -> Linter {
        Linter::new()
    }
}

impl Linter {
    /// A linter with every built-in pass registered, in code order.
    pub fn new() -> Linter {
        Linter::with_config(LintConfig::default())
    }

    /// [`Linter::new`] with explicit tunables.
    pub fn with_config(cfg: LintConfig) -> Linter {
        Linter {
            passes: passes::all_passes(),
            cfg,
        }
    }

    /// An empty registry (for tools that hand-pick passes).
    pub fn empty(cfg: LintConfig) -> Linter {
        Linter {
            passes: Vec::new(),
            cfg,
        }
    }

    /// Registers an additional pass.
    pub fn register(&mut self, pass: Box<dyn LintPass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// The registered passes.
    pub fn passes(&self) -> impl Iterator<Item = &dyn LintPass> {
        self.passes.iter().map(|p| p.as_ref())
    }

    /// Runs every pass over an existing engine's facts (the cheap path
    /// when conflict analysis already built one). Diagnostics are sorted
    /// by (line, code, message) for deterministic output.
    pub fn run(&self, engine: &Engine<'_>) -> Vec<Diagnostic> {
        let ctx = LintContext {
            facts: engine.facts(),
            engine,
            cfg: &self.cfg,
        };
        let mut out = Vec::new();
        for pass in &self.passes {
            pass.run(&ctx, &mut out);
        }
        out.sort_by(|a, b| {
            let ka = (a.span.map_or(0, |s| s.line), a.code.id, &a.message);
            let kb = (b.span.map_or(0, |s| s.line), b.code.id, &b.message);
            ka.cmp(&kb)
        });
        out
    }

    /// Builds an engine for `g` and runs every pass (the cold path).
    pub fn run_grammar(&self, g: &Grammar) -> Vec<Diagnostic> {
        self.run(&Engine::new(g))
    }
}

/// One-call convenience: lint `g` with every pass and default tunables.
pub fn lint(g: &Grammar) -> Vec<Diagnostic> {
    Linter::new().run_grammar(g)
}

/// The highest severity present, if any — drives CLI exit codes.
pub fn worst_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_reports_eleven_codes() {
        let l = Linter::new();
        let codes: Vec<&str> = l.passes().map(|p| p.code().id).collect();
        assert_eq!(codes.len(), 11);
        let mut dedup = codes.clone();
        dedup.dedup();
        assert_eq!(codes, dedup, "codes are unique and ordered");
        assert!(codes.len() >= 8, "ISSUE acceptance: >= 8 distinct codes");
    }

    #[test]
    fn clean_grammar_is_clean() {
        let g = Grammar::parse("%% s : s 'a' | 'a' ;").unwrap();
        assert!(lint(&g).is_empty());
    }

    #[test]
    fn worst_severity_orders() {
        let g = Grammar::parse("%% s : 'x' ; dead : loopy ; loopy : loopy 'y' ;").unwrap();
        let diags = lint(&g);
        assert_eq!(worst_severity(&diags), Some(Severity::Error));
        assert!(worst_severity(&[]).is_none());
    }

    #[test]
    fn diagnostics_are_sorted_and_deterministic() {
        let g =
            Grammar::parse("%token UNUSED1 UNUSED2\n%% s : 'x' ;\ndead1 : 'a' ;\ndead2 : 'b' ;\n")
                .unwrap();
        let a = lint(&g);
        let b = lint(&g);
        assert_eq!(a, b);
        let lines: Vec<u32> = a.iter().filter_map(|d| d.span.map(|s| s.line)).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
