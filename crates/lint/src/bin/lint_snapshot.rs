//! Corpus lint snapshot tool, wired into `scripts/check.sh`.
//!
//! ```text
//! lint-snapshot --check    # diff a fresh run against the committed file (exit 1 on drift)
//! lint-snapshot --update   # rewrite the committed file
//! lint-snapshot --table    # print the per-grammar diagnostic-count markdown table
//! ```

#![forbid(unsafe_code)]

use lalrcex_lint::snapshot::{corpus_counts, corpus_snapshot, snapshot_path};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "--check".into());
    match mode.as_str() {
        "--check" => {
            let fresh = corpus_snapshot();
            let path = snapshot_path();
            let committed = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lint-snapshot: cannot read {}: {e}", path.display());
                    eprintln!("lint-snapshot: run with --update to create it");
                    return ExitCode::from(1);
                }
            };
            if committed == fresh {
                println!("lint-snapshot: {} is current", path.display());
                ExitCode::SUCCESS
            } else {
                eprintln!("lint-snapshot: {} is stale", path.display());
                for (i, (a, b)) in committed.lines().zip(fresh.lines()).enumerate() {
                    if a != b {
                        eprintln!("  first diff at line {}:", i + 1);
                        eprintln!("  - {a}");
                        eprintln!("  + {b}");
                        break;
                    }
                }
                let (nc, nf) = (committed.lines().count(), fresh.lines().count());
                if nc != nf {
                    eprintln!("  line counts differ: committed {nc}, fresh {nf}");
                }
                eprintln!("lint-snapshot: regenerate with --update and review the diff");
                ExitCode::from(1)
            }
        }
        "--update" => {
            let fresh = corpus_snapshot();
            let path = snapshot_path();
            if let Err(e) = std::fs::write(&path, &fresh) {
                eprintln!("lint-snapshot: cannot write {}: {e}", path.display());
                return ExitCode::from(1);
            }
            println!("lint-snapshot: wrote {}", path.display());
            ExitCode::SUCCESS
        }
        "--table" => {
            // Markdown table for EXPERIMENTS.md: one row per Table 1
            // grammar, one column per diagnostic code that fires anywhere.
            let counts = corpus_counts();
            let mut codes: Vec<&str> = counts.iter().flat_map(|(_, m)| m.keys().copied()).collect();
            codes.sort_unstable();
            codes.dedup();
            print!("| grammar |");
            for c in &codes {
                print!(" {c} |");
            }
            println!(" total |");
            print!("|---|");
            for _ in &codes {
                print!("---|");
            }
            println!("---|");
            for (name, m) in &counts {
                print!("| {name} |");
                let mut total = 0;
                for c in &codes {
                    let n = m.get(c).copied().unwrap_or(0);
                    total += n;
                    print!(" {n} |");
                }
                println!(" {total} |");
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("lint-snapshot: unknown mode {other:?} (use --check, --update or --table)");
            ExitCode::from(2)
        }
    }
}
