//! The corpus-wide lint snapshot: every Table 1 grammar plus a set of
//! fixture grammars (one per lint code) linted with default tunables,
//! rendered as one deterministic text document.
//!
//! The document is committed at `crates/lint/snapshots/corpus.lint` and
//! checked by both the crate's snapshot test and `scripts/check.sh` (via
//! the `lint-snapshot` binary), so any change to a pass's findings shows
//! up as a reviewable diff rather than a silent behavior shift.
//!
//! Determinism: passes are clock-free (the masking probe is bounded by a
//! node budget, not wall time) and diagnostics are sorted, so the snapshot
//! is byte-identical across runs and machines.

use crate::{lint, Diagnostic};
use lalrcex_grammar::Grammar;
use std::collections::BTreeMap;

/// A fixture grammar: a small hand-built pathology exercising one pass.
pub struct Fixture {
    /// Short name (doubles as the rendered "file" name).
    pub name: &'static str,
    /// The lint code the fixture is designed to trigger.
    pub expect: &'static str,
    /// Grammar DSL text.
    pub text: &'static str,
}

/// The fixture set, one per diagnostic code L001–L011, in code order.
pub fn fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            name: "unreachable",
            expect: "L001",
            text: include_str!("../fixtures/unreachable.y"),
        },
        Fixture {
            name: "unproductive",
            expect: "L002",
            text: include_str!("../fixtures/unproductive.y"),
        },
        Fixture {
            name: "unused_terminal",
            expect: "L003",
            text: include_str!("../fixtures/unused_terminal.y"),
        },
        Fixture {
            name: "duplicate",
            expect: "L004",
            text: include_str!("../fixtures/duplicate.y"),
        },
        Fixture {
            name: "cycle",
            expect: "L005",
            text: include_str!("../fixtures/cycle.y"),
        },
        Fixture {
            name: "hidden_left",
            expect: "L006",
            text: include_str!("../fixtures/hidden_left.y"),
        },
        Fixture {
            name: "nullable_rep",
            expect: "L007",
            text: include_str!("../fixtures/nullable_rep.y"),
        },
        Fixture {
            name: "unused_prec",
            expect: "L008",
            text: include_str!("../fixtures/unused_prec.y"),
        },
        Fixture {
            name: "masked_ambiguity",
            expect: "L009",
            text: include_str!("../fixtures/masked_ambiguity.y"),
        },
        Fixture {
            name: "merge_artifact",
            expect: "L010",
            text: include_str!("../fixtures/merge_artifact.y"),
        },
        Fixture {
            name: "provenance",
            expect: "L011",
            text: include_str!("../fixtures/provenance.y"),
        },
    ]
}

/// Lints every fixture and every corpus grammar and renders the combined
/// snapshot document.
pub fn corpus_snapshot() -> String {
    let mut out = String::new();
    out.push_str("# lalrcex lint snapshot: fixtures + Table 1 corpus.\n");
    out.push_str("# Regenerate: cargo run -p lalrcex-lint --bin lint-snapshot -- --update\n");
    let mut totals: BTreeMap<&'static str, (String, usize)> = BTreeMap::new();
    for f in fixtures() {
        let g = Grammar::parse(f.text)
            .unwrap_or_else(|e| panic!("fixture {} fails to parse: {e}", f.name));
        let diags = lint(&g);
        push_section(&mut out, &format!("fixture:{}", f.name), &diags);
        tally(&mut totals, &diags);
    }
    for e in lalrcex_corpus::all() {
        let g = e
            .load()
            .unwrap_or_else(|err| panic!("corpus {} fails to parse: {err}", e.name));
        let diags = lint(&g);
        push_section(&mut out, &format!("corpus:{}", e.name), &diags);
        tally(&mut totals, &diags);
    }
    out.push_str("== totals ==\n");
    for (id, (name, n)) in &totals {
        out.push_str(&format!("{id} {name}: {n}\n"));
    }
    out
}

/// Per-grammar diagnostic counts over the corpus: `(name, counts-by-code)`.
/// Used by the `lint-snapshot --table` mode to produce the EXPERIMENTS.md
/// markdown table.
pub fn corpus_counts() -> Vec<(String, BTreeMap<&'static str, usize>)> {
    lalrcex_corpus::all()
        .iter()
        .map(|e| {
            let g = e.load().expect("corpus grammar parses");
            let mut counts = BTreeMap::new();
            for d in lint(&g) {
                *counts.entry(d.code.id).or_insert(0) += 1;
            }
            (e.name.to_owned(), counts)
        })
        .collect()
}

fn push_section(out: &mut String, name: &str, diags: &[Diagnostic]) {
    out.push_str(&format!("== {name} ==\n"));
    if diags.is_empty() {
        out.push_str("(clean)\n");
    } else {
        out.push_str(&crate::render_text(
            name.split(':').nth(1).unwrap_or(name),
            diags,
        ));
    }
}

fn tally(totals: &mut BTreeMap<&'static str, (String, usize)>, diags: &[Diagnostic]) {
    for d in diags {
        let e = totals
            .entry(d.code.id)
            .or_insert_with(|| (d.code.name.to_owned(), 0));
        e.1 += 1;
    }
}

/// Path of the committed snapshot file.
pub fn snapshot_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("snapshots/corpus.lint")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::OnceLock;

    /// One full corpus run shared by the tests below (the corpus includes
    /// the full C/Java grammars, so a run is not free in debug builds).
    fn cached() -> &'static str {
        static SNAP: OnceLock<String> = OnceLock::new();
        SNAP.get_or_init(corpus_snapshot)
    }

    /// The committed snapshot matches a fresh run. Regenerate with
    /// `UPDATE_LINT_SNAPSHOT=1 cargo test -p lalrcex-lint` or the
    /// `lint-snapshot --update` binary.
    #[test]
    fn committed_snapshot_is_current() {
        let fresh = cached();
        let path = snapshot_path();
        if std::env::var_os("UPDATE_LINT_SNAPSHOT").is_some() {
            std::fs::write(&path, fresh).expect("write snapshot");
            return;
        }
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {}: {e} (run with UPDATE_LINT_SNAPSHOT=1)",
                path.display()
            )
        });
        assert_eq!(
            committed, fresh,
            "snapshot drift; regenerate with UPDATE_LINT_SNAPSHOT=1"
        );
    }

    /// Every fixture triggers the code it was written for.
    #[test]
    fn fixtures_cover_every_code() {
        let mut seen = BTreeSet::new();
        for f in fixtures() {
            let g = Grammar::parse(f.text).unwrap();
            let diags = lint(&g);
            assert!(
                diags.iter().any(|d| d.code.id == f.expect),
                "fixture {} should trigger {}; got {:?}",
                f.name,
                f.expect,
                diags.iter().map(|d| d.code.id).collect::<Vec<_>>()
            );
            seen.insert(f.expect);
        }
        assert!(seen.len() >= 8, "acceptance: >= 8 distinct codes covered");
    }

    /// ISSUE acceptance: the masking pass flags at least one
    /// precedence-resolved genuine ambiguity in the Table 1 corpus.
    #[test]
    fn corpus_has_a_masked_ambiguity() {
        let snap = cached();
        let corpus_part = snap.split("== corpus:").skip(1).collect::<String>();
        assert!(
            corpus_part.contains("conflict-masking-resolution/L009"),
            "expected >= 1 L009 finding over the corpus"
        );
    }

    /// ISSUE acceptance: at least one Table 1 corpus conflict is an LALR
    /// merge artifact, pinned here with its merged-core provenance.
    #[test]
    fn corpus_has_a_merge_artifact() {
        let snap = cached();
        let corpus_part = snap.split("== corpus:").skip(1).collect::<String>();
        assert!(
            corpus_part.contains("lalr-merge-artifact/L010"),
            "expected >= 1 L010 finding over the corpus"
        );
        assert!(
            corpus_part.contains("canonical LR(1) variants"),
            "merge evidence (merged cores) rides in the message"
        );
    }

    /// Two full corpus snapshot runs are byte-identical (clock-free).
    #[test]
    fn snapshot_is_deterministic() {
        assert_eq!(corpus_snapshot(), cached());
    }
}
