//! The built-in lint passes.
//!
//! Each pass is a small pure function over [`lalrcex_core::Facts`]; the
//! only exception is the conflict-masking pass, which replays silenced
//! conflicts through the engine's deterministic, node-budgeted unifying
//! search (reusing its memoized spines).

use std::collections::{HashMap, HashSet};

use lalrcex_core::{render_chain_step, ChainStep, Classification, ResolutionProbe};
use lalrcex_grammar::{Grammar, ProdId, SymbolId};

use crate::{Diagnostic, LintCode, LintContext, LintPass, Related, Severity, Span};

/// Every built-in pass, in code order.
pub(crate) fn all_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(Unreachable),
        Box::new(Unproductive),
        Box::new(UnusedTerminal),
        Box::new(DuplicateProduction),
        Box::new(CyclicNonterminal),
        Box::new(HiddenLeftRecursion),
        Box::new(NullableRepetition),
        Box::new(UnusedPrecedence),
        Box::new(ConflictMasking),
        Box::new(MergeArtifactConflict),
        Box::new(ConflictProvenanceInfo),
    ]
}

fn sym_span(g: &Grammar, sym: SymbolId) -> Option<Span> {
    g.decl_line(sym).map(|line| Span { line })
}

fn prod_span(g: &Grammar, pid: ProdId) -> Option<Span> {
    g.prod(pid).line().map(|line| Span { line })
}

/// `L001` — nonterminals no sentential form of the start symbol contains.
struct Unreachable;

impl LintPass for Unreachable {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L001",
            name: "unreachable-nonterminal",
        }
    }

    fn description(&self) -> &'static str {
        "nonterminal unreachable from the start symbol"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        for i in 0..g.nonterminal_count() {
            let nt = g.nonterminal(i);
            if nt == g.accept() || ctx.facts.analysis.reachable(nt) {
                continue;
            }
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Warning,
                message: format!(
                    "nonterminal `{}` is unreachable from the start symbol `{}`",
                    g.display_name(nt),
                    g.display_name(g.start()),
                ),
                span: sym_span(g, nt),
                related: Vec::new(),
            });
        }
    }
}

/// `L002` — nonterminals that derive no terminal string at all.
struct Unproductive;

impl LintPass for Unproductive {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L002",
            name: "unproductive-nonterminal",
        }
    }

    fn description(&self) -> &'static str {
        "nonterminal cannot derive any terminal string"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        for i in 0..g.nonterminal_count() {
            let nt = g.nonterminal(i);
            if nt == g.accept() || ctx.facts.analysis.productive(nt) {
                continue;
            }
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Error,
                message: format!(
                    "nonterminal `{}` cannot derive any terminal string (every production loops)",
                    g.display_name(nt),
                ),
                span: sym_span(g, nt),
                related: Vec::new(),
            });
        }
    }
}

/// `L003` — declared terminals that appear in no right-hand side.
struct UnusedTerminal;

impl LintPass for UnusedTerminal {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L003",
            name: "unused-terminal",
        }
    }

    fn description(&self) -> &'static str {
        "declared terminal never used in any production"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        let mut used = vec![false; g.terminal_count()];
        for p in g.productions() {
            for &s in p.rhs() {
                if g.is_terminal(s) {
                    used[g.tindex(s)] = true;
                }
            }
        }
        for (t, &u) in used.iter().enumerate() {
            let sym = g.terminal(t);
            if u || sym == SymbolId::EOF {
                continue;
            }
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Warning,
                message: format!(
                    "terminal `{}` is declared but never used in any production",
                    g.display_name(sym),
                ),
                span: sym_span(g, sym),
                related: Vec::new(),
            });
        }
    }
}

/// `L004` — textually identical productions (a guaranteed reduce/reduce
/// conflict wherever the rule is reducible).
struct DuplicateProduction;

impl LintPass for DuplicateProduction {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L004",
            name: "duplicate-production",
        }
    }

    fn description(&self) -> &'static str {
        "identical production appears more than once"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        let mut first: HashMap<(SymbolId, &[SymbolId]), ProdId> = HashMap::new();
        for pid in g.prod_ids().skip(1) {
            let p = g.prod(pid);
            match first.entry((p.lhs(), p.rhs())) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(pid);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let orig = *e.get();
                    out.push(Diagnostic {
                        code: self.code(),
                        severity: Severity::Warning,
                        message: format!(
                            "duplicate production `{}` (guaranteed reduce/reduce ambiguity)",
                            g.format_prod(pid),
                        ),
                        span: prod_span(g, pid),
                        related: vec![Related {
                            message: "first defined here".to_owned(),
                            span: prod_span(g, orig),
                        }],
                    });
                }
            }
        }
    }
}

/// One reachability row (`Vec<bool>`) per nonterminal.
type ReachRows = Vec<Vec<bool>>;
/// Witness production per direct `A ⇒ B` edge, keyed by (from, to).
type EdgeWitness = HashMap<(usize, usize), ProdId>;

/// The ε-stepping nonterminal relation: `A ⇒ B` when some production
/// `A -> α B β` has every symbol of `α β` nullable. Returned as one
/// reachability bitset (Vec<bool> row) per nonterminal, with a witness
/// production per direct edge.
fn derives_closure(ctx: &LintContext<'_>) -> (ReachRows, EdgeWitness) {
    let g = ctx.facts.grammar;
    let a = ctx.facts.analysis;
    let n = g.nonterminal_count();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut witness: HashMap<(usize, usize), ProdId> = HashMap::new();
    for pid in g.prod_ids().skip(1) {
        let p = g.prod(pid);
        let lhs = g.ntindex(p.lhs());
        for (i, &s) in p.rhs().iter().enumerate() {
            if !g.is_nonterminal(s) {
                continue;
            }
            let others_nullable = p
                .rhs()
                .iter()
                .enumerate()
                .all(|(j, &r)| j == i || a.nullable(r));
            if others_nullable {
                let to = g.ntindex(s);
                witness.entry((lhs, to)).or_insert(pid);
                edges[lhs].push(to);
            }
        }
    }
    // BFS from every nonterminal (n is at most a few hundred).
    let mut reach = vec![vec![false; n]; n];
    for start in 0..n {
        let mut stack: Vec<usize> = edges[start].clone();
        while let Some(x) = stack.pop() {
            if reach[start][x] {
                continue;
            }
            reach[start][x] = true;
            stack.extend_from_slice(&edges[x]);
        }
    }
    (reach, witness)
}

/// `L005` — `A ⇒+ A`: the nonterminal derives itself, so every sentence it
/// yields has unboundedly many parse trees (when reachable and productive).
struct CyclicNonterminal;

impl LintPass for CyclicNonterminal {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L005",
            name: "cyclic-nonterminal",
        }
    }

    fn description(&self) -> &'static str {
        "nonterminal derives itself (A =>+ A)"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        let a = ctx.facts.analysis;
        let (reach, witness) = derives_closure(ctx);
        for (i, row) in reach.iter().enumerate() {
            if !row[i] {
                continue;
            }
            let nt = g.nonterminal(i);
            let live = a.reachable(nt) && a.productive(nt);
            let related = witness
                .iter()
                .filter(|((from, to), _)| *from == i && (reach[*to][i] || *to == i))
                .map(|(_, &pid)| pid)
                .min() // deterministic witness
                .map(|pid| Related {
                    message: format!("cycle steps through `{}`", g.format_prod(pid)),
                    span: prod_span(g, pid),
                })
                .into_iter()
                .collect();
            out.push(Diagnostic {
                code: self.code(),
                severity: if live {
                    Severity::Error
                } else {
                    Severity::Warning
                },
                message: format!(
                    "nonterminal `{nt}` derives itself ({nt} =>+ {nt}){}",
                    if live {
                        ": every sentence it yields has infinitely many parses"
                    } else {
                        ""
                    },
                    nt = g.display_name(nt),
                ),
                span: sym_span(g, nt),
                related,
            });
        }
    }
}

/// The nullable-left-corner relation: `X ⇒ δ Y …` with `δ ⇒* ε`.
fn left_corner_closure(ctx: &LintContext<'_>) -> Vec<Vec<bool>> {
    let g = ctx.facts.grammar;
    let a = ctx.facts.analysis;
    let n = g.nonterminal_count();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for pid in g.prod_ids().skip(1) {
        let p = g.prod(pid);
        let lhs = g.ntindex(p.lhs());
        for &s in p.rhs() {
            if g.is_nonterminal(s) {
                edges[lhs].push(g.ntindex(s));
            }
            if !a.nullable(s) {
                break;
            }
        }
    }
    let mut reach = vec![vec![false; n]; n];
    for start in 0..n {
        let mut stack: Vec<usize> = edges[start].clone();
        while let Some(x) = stack.pop() {
            if reach[start][x] {
                continue;
            }
            reach[start][x] = true;
            stack.extend_from_slice(&edges[x]);
        }
    }
    reach
}

/// `L006` — left recursion hiding behind a nonempty nullable prefix:
/// `A -> ν X β` with `ν ⇒* ε`, `ν` nonempty, and `X ⇒*lc A`.
struct HiddenLeftRecursion;

impl LintPass for HiddenLeftRecursion {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L006",
            name: "hidden-left-recursion",
        }
    }

    fn description(&self) -> &'static str {
        "left recursion behind a nullable prefix"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        let a = ctx.facts.analysis;
        let lc = left_corner_closure(ctx);
        for pid in g.prod_ids().skip(1) {
            let p = g.prod(pid);
            let lhs = g.ntindex(p.lhs());
            for (i, &s) in p.rhs().iter().enumerate() {
                if i >= 1 && g.is_nonterminal(s) {
                    let x = g.ntindex(s);
                    if x == lhs || lc[x][lhs] {
                        out.push(Diagnostic {
                            code: self.code(),
                            severity: Severity::Warning,
                            message: format!(
                                "hidden left recursion: in `{}`, the nullable prefix before \
                                 `{}` lets `{}` recurse at its own left edge",
                                g.format_prod(pid),
                                g.display_name(s),
                                g.display_name(p.lhs()),
                            ),
                            span: prod_span(g, pid),
                            related: Vec::new(),
                        });
                        break;
                    }
                }
                if !a.nullable(s) {
                    break;
                }
            }
        }
    }
}

/// `L007` — two occurrences of a nullable nonterminal separated only by
/// nullable symbols (the `X -> ε | X X` shape): any string one occurrence
/// derives can equally be derived by the other, with everything else ε.
struct NullableRepetition;

impl LintPass for NullableRepetition {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L007",
            name: "nullable-repetition",
        }
    }

    fn description(&self) -> &'static str {
        "repeated nullable symbol makes derivations interchangeable"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        let a = ctx.facts.analysis;
        'prods: for pid in g.prod_ids().skip(1) {
            let p = g.prod(pid);
            let rhs = p.rhs();
            for i in 0..rhs.len() {
                let b = rhs[i];
                if !g.is_nonterminal(b) || !a.nullable(b) || a.first(b).is_empty() {
                    continue;
                }
                for (gap, &other) in rhs.iter().enumerate().skip(i + 1) {
                    if other == b {
                        out.push(Diagnostic {
                            code: self.code(),
                            severity: Severity::Warning,
                            message: format!(
                                "nullable repetition in `{}`: `{}` occurs twice with only \
                                 nullable symbols between — a string it derives can sit at \
                                 either occurrence (ambiguous)",
                                g.format_prod(pid),
                                g.display_name(b),
                            ),
                            span: prod_span(g, pid),
                            related: Vec::new(),
                        });
                        continue 'prods;
                    }
                    if !a.nullable(rhs[gap]) {
                        break;
                    }
                }
            }
        }
    }
}

/// `L008` — precedence/associativity declarations that never tie-break a
/// conflict (bison's "useless precedence" warning).
struct UnusedPrecedence;

impl LintPass for UnusedPrecedence {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L008",
            name: "unused-precedence",
        }
    }

    fn description(&self) -> &'static str {
        "declared precedence never resolves a conflict"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        let mut used = vec![false; g.terminal_count()];
        for r in ctx.facts.tables.resolutions() {
            used[g.tindex(r.terminal)] = true;
            // Credit the terminal the reduce production inherited its
            // precedence from (the last terminal of its right-hand side);
            // for explicit `%prec` rules the source terminal is not stored,
            // so every terminal sharing the exact level/assoc is credited —
            // over-approximating "used" avoids false positives.
            let p = g.prod(r.reduce_prod);
            let Some(pp) = p.precedence() else { continue };
            let last_term = p.rhs().iter().rev().copied().find(|&s| g.is_terminal(s));
            match last_term {
                Some(t) if g.terminal_prec(t) == Some(pp) => used[g.tindex(t)] = true,
                _ => {
                    for (ti, slot) in used.iter_mut().enumerate() {
                        if g.terminal_prec(g.terminal(ti)) == Some(pp) {
                            *slot = true;
                        }
                    }
                }
            }
        }
        for (ti, &was_used) in used.iter().enumerate() {
            let sym = g.terminal(ti);
            if g.terminal_prec(sym).is_none() || was_used {
                continue;
            }
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Warning,
                message: format!(
                    "precedence/associativity declared for `{}` never resolves a conflict",
                    g.display_name(sym),
                ),
                span: sym_span(g, sym),
                related: Vec::new(),
            });
        }
    }
}

/// `L009` — precedence resolutions that silenced a conflict whose
/// counterexample search proves genuine ambiguity. One representative
/// resolution is probed per silenced reduce production, through the
/// engine's spine memo and a deterministic node budget.
struct ConflictMasking;

impl LintPass for ConflictMasking {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L009",
            name: "conflict-masking-resolution",
        }
    }

    fn description(&self) -> &'static str {
        "precedence resolution silences a provable ambiguity"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        let mut seen: HashSet<ProdId> = HashSet::new();
        let mut probes = 0usize;
        for r in ctx.facts.tables.resolutions() {
            if !seen.insert(r.reduce_prod) {
                continue;
            }
            if probes >= ctx.cfg.masking_max_probes {
                break;
            }
            probes += 1;
            let ResolutionProbe::Ambiguous(ex) =
                ctx.engine.probe_resolution(r, ctx.cfg.masking_max_configs)
            else {
                continue;
            };
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Warning,
                message: format!(
                    "precedence resolution (state #{}, shift/reduce on `{}`) silences a \
                     genuine ambiguity of `{}`: `{}` has two parses",
                    r.state.index(),
                    g.display_name(r.terminal),
                    g.display_name(ex.nonterminal),
                    ex.derivation1.flat(g),
                ),
                span: prod_span(g, r.reduce_prod),
                related: vec![Related {
                    message: format!(
                        "precedence of `{}` declared here",
                        g.display_name(r.terminal)
                    ),
                    span: sym_span(g, r.terminal),
                }],
            });
        }
    }
}

/// The span anchoring one provenance chain step (the production or symbol
/// declaration the step talks about).
fn step_span(g: &Grammar, step: &ChainStep) -> Option<Span> {
    match *step {
        ChainStep::Lookback { prod, .. } | ChainStep::Includes { via_prod: prod, .. } => {
            prod_span(g, prod)
        }
        ChainStep::Reads { nullable_nt, .. } => sym_span(g, nullable_nt),
        ChainStep::DirectRead { terminal, .. } => sym_span(g, terminal),
    }
}

/// `L010` — reduce/reduce conflicts that exist only because LALR merged
/// distinguishable LR(1) cores: an IELR/canonical generator (or manual
/// state splitting) fixes them; rewriting the grammar does not.
struct MergeArtifactConflict;

impl LintPass for MergeArtifactConflict {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L010",
            name: "lalr-merge-artifact",
        }
    }

    fn description(&self) -> &'static str {
        "conflict exists only because LALR merged distinguishable LR(1) states"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        let Ok(prov) = ctx.engine.provenance() else {
            // A contained provenance fault degrades this pass to silence;
            // the conflicts themselves are still reported by the engine.
            return;
        };
        for p in prov
            .conflicts
            .iter()
            .filter_map(|o| o.provenance())
            .filter(|p| p.classification == Classification::MergeArtifact)
        {
            let c = &p.conflict;
            let variants = p.merge.as_ref().map_or(0, |m| m.variant_count);
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Warning,
                message: format!(
                    "reduce/reduce conflict on `{}` (state #{}) is an LALR merge artifact: \
                     the state merges {} canonical LR(1) variants whose lookaheads distinguish \
                     `{}` from `{}` — splitting states fixes this, rewriting the grammar does not",
                    g.display_name(c.terminal),
                    c.state.index(),
                    variants,
                    g.format_prod(c.reduce_prod),
                    g.format_prod(c.other_item(g).prod()),
                ),
                span: prod_span(g, c.reduce_prod),
                related: vec![Related {
                    message: format!(
                        "competing reduction `{}` defined here",
                        g.format_prod(c.other_item(g).prod()),
                    ),
                    span: prod_span(g, c.other_item(g).prod()),
                }],
            });
        }
    }
}

/// `L011` — informational provenance for every unresolved conflict: its
/// classification and the concrete chain of `lookback`/`includes`/`reads`
/// edges that carried the conflict terminal into the lookahead.
struct ConflictProvenanceInfo;

impl LintPass for ConflictProvenanceInfo {
    fn code(&self) -> LintCode {
        LintCode {
            id: "L011",
            name: "conflict-provenance",
        }
    }

    fn description(&self) -> &'static str {
        "lookahead provenance attached to an unresolved conflict"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let g = ctx.facts.grammar;
        let Ok(prov) = ctx.engine.provenance() else {
            return;
        };
        for p in prov.conflicts.iter().filter_map(|o| o.provenance()) {
            let c = &p.conflict;
            let related = p
                .chain
                .iter()
                .map(|step| Related {
                    message: render_chain_step(g, step),
                    span: step_span(g, step),
                })
                .collect();
            out.push(Diagnostic {
                code: self.code(),
                severity: Severity::Info,
                message: format!(
                    "conflict on `{}` (state #{}) classified {}: lookahead `{}` reaches \
                     `{}` through {} relation step{}",
                    g.display_name(c.terminal),
                    c.state.index(),
                    p.classification.label(),
                    g.display_name(c.terminal),
                    g.format_prod(c.reduce_prod),
                    p.chain.len(),
                    if p.chain.len() == 1 { "" } else { "s" },
                ),
                span: prod_span(g, c.reduce_prod),
                related,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint;

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = diags.iter().map(|d| d.code.name).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn unreachable_and_unproductive() {
        let g = Grammar::parse("%% s : 'x' ;\ndead : 'd' ;\nloopy : loopy 'l' ;").unwrap();
        let d = lint(&g);
        assert!(codes_of(&d).contains(&"unreachable-nonterminal"));
        assert!(codes_of(&d).contains(&"unproductive-nonterminal"));
        let dead = d
            .iter()
            .find(|x| x.message.contains("`dead`"))
            .expect("dead diagnosed");
        assert_eq!(dead.span, Some(Span { line: 2 }));
        // `loopy` is both unreachable and unproductive.
        assert_eq!(
            d.iter().filter(|x| x.message.contains("`loopy`")).count(),
            2
        );
    }

    #[test]
    fn reachable_unproductive_is_error() {
        let g = Grammar::parse("%% s : loopy ; loopy : loopy 'l' ;").unwrap();
        let d = lint(&g);
        assert!(d
            .iter()
            .any(|x| x.code.name == "unproductive-nonterminal" && x.severity == Severity::Error));
    }

    #[test]
    fn unused_terminal_has_decl_span() {
        let g = Grammar::parse("%token GHOST\n%% s : 'x' ;").unwrap();
        let d = lint(&g);
        let ghost = d
            .iter()
            .find(|x| x.code.name == "unused-terminal")
            .expect("ghost flagged");
        assert!(ghost.message.contains("GHOST"));
        assert_eq!(ghost.span, Some(Span { line: 1 }));
    }

    #[test]
    fn duplicate_production_links_first_definition() {
        let g = Grammar::parse("%%\ns : a\n  | a\n  ;\na : 'x' ;").unwrap();
        let d = lint(&g);
        let dup = d
            .iter()
            .find(|x| x.code.name == "duplicate-production")
            .expect("duplicate flagged");
        assert_eq!(dup.span, Some(Span { line: 3 }));
        assert_eq!(dup.related.len(), 1);
        assert_eq!(dup.related[0].span, Some(Span { line: 2 }));
    }

    #[test]
    fn unit_cycle_is_error_when_live() {
        let g = Grammar::parse("%% s : a ; a : b | 'x' ; b : a ;").unwrap();
        let d = lint(&g);
        let cyc: Vec<_> = d
            .iter()
            .filter(|x| x.code.name == "cyclic-nonterminal")
            .collect();
        assert_eq!(cyc.len(), 2, "both a and b cycle: {d:?}");
        assert!(cyc.iter().all(|x| x.severity == Severity::Error));
        assert!(cyc[0].related[0].message.contains("cycle steps through"));
    }

    #[test]
    fn hidden_left_recursion_through_nullable_prefix() {
        let g = Grammar::parse("%% s : h ; opt : %empty | 'o' ; h : opt h 'z' | 'w' ;").unwrap();
        let d = lint(&g);
        assert!(
            d.iter().any(|x| x.code.name == "hidden-left-recursion"),
            "{d:?}"
        );
        // Plain left recursion must NOT be flagged.
        let g2 = Grammar::parse("%% s : s 'a' | 'a' ;").unwrap();
        assert!(lint(&g2)
            .iter()
            .all(|x| x.code.name != "hidden-left-recursion"));
    }

    #[test]
    fn hidden_left_recursion_indirect() {
        // h -> opt k …, k -> h … : recursion reaches h through k's left corner.
        let g = Grammar::parse("%% s : h ; opt : %empty | 'o' ; h : opt k 'z' | 'w' ; k : h 'q' ;")
            .unwrap();
        let d = lint(&g);
        assert!(
            d.iter().any(|x| x.code.name == "hidden-left-recursion"),
            "{d:?}"
        );
    }

    #[test]
    fn nullable_repetition_xx() {
        let g = Grammar::parse("%% x : %empty | x x | 'a' ;").unwrap();
        let d = lint(&g);
        assert!(
            d.iter().any(|x| x.code.name == "nullable-repetition"),
            "{d:?}"
        );
        // A non-nullable repetition is fine.
        let g2 = Grammar::parse("%% s : a a ; a : 'x' ;").unwrap();
        assert!(lint(&g2)
            .iter()
            .all(|x| x.code.name != "nullable-repetition"));
    }

    #[test]
    fn unused_precedence_flagged_used_precedence_not() {
        let g = Grammar::parse("%left '+'\n%left NEVER\n%% e : e '+' e | NUM 'n' NEVER ;").unwrap();
        let d = lint(&g);
        let unused: Vec<_> = d
            .iter()
            .filter(|x| x.code.name == "unused-precedence")
            .collect();
        assert_eq!(unused.len(), 1, "{d:?}");
        assert!(unused[0].message.contains("NEVER"));
        assert_eq!(unused[0].span, Some(Span { line: 2 }));
    }

    #[test]
    fn conflict_masking_flags_expression_grammar() {
        let g = Grammar::parse("%left '+'\n%%\ne : e '+' e | NUM ;").unwrap();
        let d = lint(&g);
        let mask = d
            .iter()
            .find(|x| x.code.name == "conflict-masking-resolution")
            .expect("masking flagged");
        assert!(mask.message.contains("two parses"), "{}", mask.message);
        assert_eq!(mask.span, Some(Span { line: 3 }), "points at e : e '+' e");
        assert_eq!(mask.related[0].span, Some(Span { line: 1 }));
    }

    #[test]
    fn merge_artifact_flagged_with_competing_reduction() {
        // The textbook LALR-but-not-LR(1) grammar: canonical LR(1) keeps
        // the post-'a' and post-'b' contexts apart; LALR merges them.
        let g = Grammar::parse(
            "%%\ns : 'a' x 'd' | 'b' y 'd' | 'a' y 'e' | 'b' x 'e' ;\nx : 'c' ;\ny : 'c' ;",
        )
        .unwrap();
        let d = lint(&g);
        let merge = d
            .iter()
            .find(|x| x.code.name == "lalr-merge-artifact")
            .expect("merge artifact flagged");
        assert_eq!(merge.severity, Severity::Warning);
        assert!(merge.message.contains("splitting states fixes this"));
        assert_eq!(merge.related.len(), 1);
        assert!(merge.related[0].message.contains("competing reduction"));
        // The dangling-else conflict is NOT a merge artifact.
        let g2 =
            Grammar::parse("%% s : 'if' e 'then' s 'else' s | 'if' e 'then' s | OTHER ; e : ID ;")
                .unwrap();
        assert!(lint(&g2)
            .iter()
            .all(|x| x.code.name != "lalr-merge-artifact"));
    }

    #[test]
    fn provenance_info_attached_to_every_conflict() {
        let g = Grammar::parse(
            "%%\ns : 'if' e 'then' s 'else' s | 'if' e 'then' s | OTHER ;\ne : ID ;",
        )
        .unwrap();
        let d = lint(&g);
        let prov: Vec<_> = d
            .iter()
            .filter(|x| x.code.name == "conflict-provenance")
            .collect();
        assert_eq!(prov.len(), 1, "one unresolved conflict: {d:?}");
        assert_eq!(prov[0].severity, Severity::Info);
        assert!(prov[0].message.contains("true-ambiguity-candidate"));
        assert!(
            !prov[0].related.is_empty(),
            "chain steps ride along as related spans"
        );
        assert!(prov[0]
            .related
            .last()
            .unwrap()
            .message
            .contains("shifts `else`"));
        // A conflict-free grammar gets no provenance diagnostics.
        let g2 = Grammar::parse("%% s : s 'a' | 'a' ;").unwrap();
        assert!(lint(&g2)
            .iter()
            .all(|x| x.code.name != "conflict-provenance"));
    }

    #[test]
    fn conflict_masking_silent_on_harmless_tiebreak() {
        // Figure 3 is unambiguous; resolving its conflict by (artificial)
        // precedence is a harmless tie-break — no masking diagnostic.
        let g = Grammar::parse(
            "%left 'a'\n%% S : T | S T ; T : X | Y ; X : 'a' %prec 'a' ; Y : 'a' 'a' 'b' ;",
        )
        .unwrap();
        let d = lint(&g);
        assert!(
            d.iter()
                .all(|x| x.code.name != "conflict-masking-resolution"),
            "{d:?}"
        );
    }
}
