// L007: `seq : seq seq` over a nullable `seq` -- the classic
// nullable-repetition pattern, ambiguous for every derivable string.
%%
s : seq 'x' ;
seq : seq seq | 'a' | %empty ;
