// L010: the textbook LALR-but-not-LR(1) grammar. Canonical LR(1) keeps
// the post-'a' context (x before 'd', y before 'e') apart from the
// post-'b' context (x before 'e', y before 'd'); LALR merges the two
// states with core {x : 'c' ., y : 'c' .} and the merged lookaheads
// collide -- a reduce/reduce conflict no grammar rewrite is needed for:
// splitting the states removes it.
%%
s : 'a' x 'd' | 'b' y 'd' | 'a' y 'e' | 'b' x 'e' ;
x : 'c' ;
y : 'c' ;
