// L003: GHOST is declared but appears in no production.
%token GHOST USED
%%
s : USED ;
