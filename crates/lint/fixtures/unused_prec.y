// L008: the precedence level for UNUSED_OP never tie-breaks anything
// (the grammar has no conflict involving it).
%left UNUSED_OP
%%
s : 'a' s 'b' | 'c' ;
