// L011: the dangling else. The provenance pass attaches to the conflict
// an informational chain explaining how `else` enters the lookahead of
// `s : 'if' e 'then' s .` -- a lookback to the goto on `s`, then the
// direct read of `else` after it.
%%
s : 'if' e 'then' s 'else' s
  | 'if' e 'then' s
  | OTHER
  ;
e : ID ;
