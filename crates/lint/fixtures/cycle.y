// L005: a <=> b is a derivation cycle (a => b => a with no terminals).
%%
s : a 'x' ;
a : b ;
b : a | 'y' ;
