// L001: `dead` is never reachable from the start symbol.
%%
s : 'x' ;
dead : 'y' ;
