// L009: %left '+' silences the shift/reduce conflict of `e : e '+' e`,
// but the grammar is genuinely ambiguous -- the counterexample search
// proves `NUM + NUM + NUM` has two parses. The resolution picks an
// association; it does not remove the ambiguity.
%left '+'
%%
e : e '+' e | NUM ;
