// L006: `e : opt e '+'` is left-recursive once the nullable `opt`
// vanishes -- hidden left recursion that surprises LL-style reasoning
// and produces tricky LALR conflicts.
%%
s : e ;
e : opt e '+' | 'n' ;
opt : 'o' | %empty ;
