// L002: `loop` derives no terminal string (every production recurses).
%%
s : 'x' | loop ;
loop : loop 'y' ;
