// L004: the second `s : 'a' 'b'` duplicates the first verbatim.
%%
s : 'a' 'b'
  | 'c'
  | 'a' 'b'
  ;
