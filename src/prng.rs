//! A tiny deterministic PRNG for tests and benchmarks.
//!
//! The repo builds in hermetic environments with no registry access, so
//! external crates (`rand`, `proptest`) are off the table. This xorshift*
//! generator is deterministic across platforms and good enough for
//! generating random grammars and shuffling work items; it is **not**
//! cryptographically secure and must never be used for anything
//! security-sensitive.

/// A xorshift64* pseudo-random number generator.
///
/// # Example
///
/// ```
/// use lalrcex::prng::XorShift;
/// let mut a = XorShift::new(42);
/// let mut b = XorShift::new(42);
/// assert_eq!(a.next_u64(), b.next_u64(), "deterministic per seed");
/// assert!(a.gen_range(10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator from a seed (zero is mapped to a fixed odd
    /// constant; xorshift has a fixed point at zero).
    pub fn new(seed: u64) -> XorShift {
        XorShift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range(0)");
        // Multiply-shift: unbiased enough for test generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.gen_range(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_well_spread() {
        let mut r = XorShift::new(7);
        let vals: Vec<usize> = (0..1000).map(|_| r.gen_range(4)).collect();
        for v in 0..4 {
            let count = vals.iter().filter(|&&x| x == v).count();
            assert!(count > 150, "bucket {v} has {count} of 1000");
        }
        let mut r2 = XorShift::new(7);
        let vals2: Vec<usize> = (0..1000).map(|_| r2.gen_range(4)).collect();
        assert_eq!(vals, vals2);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
