//! The long-lived analysis service behind `lalrcex serve` and
//! `lalrcex batch`: a versioned JSON-Lines request/response protocol over
//! any `BufRead`/`Write` pair (the CLI wires stdin/stdout; tests wire
//! in-memory channels). Hermetic — no sockets, no dependencies.
//!
//! # Protocol (version 1)
//!
//! One JSON object per line in, one JSON object per line out. Requests:
//!
//! ```text
//! {"op":"analyze","id":"r1","grammar":"%% ...","file":"g.y",
//!  "format":"auto","time_limit_ms":5000,"total_limit_ms":120000,
//!  "workers":0,"extended":false,"max_live_mb":0,"deadline_ms":0}
//! {"op":"explain","id":"r2","grammar":"%% ...","file":"g.y"}
//! {"op":"lint","id":"r3","grammar":"%% ...","file":"g.y"}
//! {"op":"cancel","id":"r4","target":"r1"}
//! {"op":"stats","id":"r5"}
//! {"op":"health","id":"r6"}
//! {"op":"shutdown","id":"r7"}
//! ```
//!
//! `analyze`, `explain`, and `lint` accept an optional `format` member
//! naming the grammar frontend — `"dsl"`, `"yacc"`, or `"auto"` (the
//! default when absent: content sniffing, see
//! [`crate::api::GrammarFormat`]). An unknown or non-string `format`
//! answers with a structured `unsupported_format` error that echoes the
//! offending value. The member is additive — version-1 clients that never
//! send it see byte-identical behavior — so the protocol stays at
//! version 1.
//!
//! Every response line carries `protocol:1`, the request `id` (`null`
//! when the request was too malformed to have one), and `ok`. `analyze`
//! responses embed the schema-v1 report document (see
//! [`crate::api::report_document`]); `explain` responses embed the same
//! document with a `provenance` classification block on every conflict
//! and resolution (see [`crate::api::explain_document`]); `lint`
//! responses embed the same diagnostic objects as
//! `lalrcex lint --format json`. The `stats` response lists per-cache-
//! entry byte breakdowns (total charge and the provenance-table share),
//! re-sampled at snapshot time so lazily built tables are visible, plus
//! the supervision counters; `health` is a cheap inline liveness probe
//! reporting `ok`/`shedding`/`draining` and the in-flight count.
//!
//! # Execution model
//!
//! `analyze`, `explain`, and `lint` requests run concurrently, each on
//! its own scoped thread; `cancel`, `stats`, `health`, and `shutdown`
//! are answered inline by the reader, so they can overtake long analyses
//! (that is what makes `cancel` useful and `health` honest under load).
//! Responses therefore arrive in *completion* order — match them to
//! requests by `id`.
//!
//! **Admission control.** Work is bounded *before* it starts: a grammar
//! larger than [`ServeOptions::max_grammar_bytes`] answers with a
//! structured `too_large` error, and a submission arriving while
//! [`ServeOptions::max_inflight`] requests are already running answers
//! with a structured `overloaded` error carrying a deterministic
//! `retry_after_ms` backoff hint. Shedding happens at admission only:
//! already-admitted requests keep their full budgets and complete
//! byte-identically to an unloaded run.
//!
//! **Deadlines.** A request's optional `deadline_ms` (or the server-wide
//! [`ServeOptions::default_deadline_ms`]) starts counting at *admission*,
//! so queue and spawn delay are charged to the request and a request
//! whose deadline lapses while queued expires before doing any search
//! work. Expiry is not an error: the remaining time clips the engine's
//! cumulative search budget, so an expired deadline lands on the
//! degradation ladder — unifying searches are skipped, nonunifying
//! fallbacks are still constructed — and the response reports
//! `deadline_expired:true` alongside a partial report.
//!
//! **Fault-retry supervision.** A contained engine fault is retried once
//! at the finest grain that can absorb it: a conflict slot that reported
//! an `Internal` outcome is re-run under its original fault-injection
//! scope (transient faults — e.g. one-shot injected ones — recover to a
//! completed outcome), and a whole-request fault first evicts the
//! grammar's cache entry so a possibly poisoned engine is never
//! re-served. Responses report `retried_slots`; `stats` and `health`
//! expose the cumulative retry/shed/expiry counters.
//!
//! **Fairness.** The service's worker budget (`ServeOptions::workers`,
//! default one per CPU) is divided evenly across in-flight requests: a
//! request's conflict fan-out gets `max(1, workers / in_flight)` threads.
//! Because the engine's reports are byte-identical for every worker
//! count, this scheduling freedom never changes payloads.
//!
//! **Isolation.** Each request runs inside a panic-containment boundary
//! (on top of the engine's own per-phase containment): a faulted request
//! answers with a structured `internal` error and the loop keeps serving.
//! Malformed and oversized request lines likewise answer with structured
//! errors. A request hard-cancelled via `cancel` answers with
//! `"cancelled":true` and stub conflict entries, mirroring Ctrl-C in the
//! CLI. A failed *response* write means the peer hung up: the loop
//! hard-cancels everything in flight, drains, and returns with
//! [`ServeSummary::hangup`] set rather than burning CPU for a dead
//! client.
//!
//! **Caching.** All requests share the session's grammar-keyed engine
//! cache: re-analyzing unchanged text skips automaton/table/state-graph
//! construction and returns a byte-identical `report`. The `stats` op
//! surfaces hit/miss/eviction counters.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use lalrcex_core::{contain, CancelReason, CancelToken};
use lalrcex_lint::{Diagnostic, Severity};

use crate::api::json::{self, obj, Json};
use crate::api::{AnalysisRequest, Error, GrammarFormat, GrammarSource, Session};

/// The protocol version stamped on every response line.
pub const PROTOCOL_VERSION: u32 = 1;

/// Tunables for one [`serve`] loop.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker-thread budget shared across in-flight requests
    /// (`0` = one per CPU).
    pub workers: usize,
    /// Engine-cache byte budget in MiB (`0` = unlimited).
    pub cache_mb: usize,
    /// Maximum accepted request-line length in bytes; longer lines are
    /// answered with a structured `budget` error and discarded.
    pub max_line_bytes: usize,
    /// Admission cap on concurrently in-flight analyze/explain/lint
    /// requests (`0` = unbounded). A submission arriving at the cap is
    /// shed with a structured `overloaded` error carrying a
    /// `retry_after_ms` hint; admitted requests are never shed.
    pub max_inflight: usize,
    /// Admission cap on one request's grammar size in bytes
    /// (`0` = unbounded); larger grammars are shed with a structured
    /// `too_large` error before any work is spent on them.
    pub max_grammar_bytes: usize,
    /// Server-wide default end-to-end deadline in milliseconds, applied
    /// to requests that carry no `deadline_ms` of their own (`0` = none).
    pub default_deadline_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 0,
            cache_mb: 256,
            max_line_bytes: 4 << 20,
            max_inflight: 0,
            max_grammar_bytes: 0,
            default_deadline_ms: 0,
        }
    }
}

/// What a finished [`serve`] loop did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests answered `ok:true`.
    pub served: u64,
    /// Error responses emitted (malformed, oversized, shed, faulted, …).
    pub errors: u64,
    /// `true` when the loop ended on a `shutdown` request (vs. EOF).
    pub shutdown: bool,
    /// `true` when a response write failed (peer hung up) and the loop
    /// cancelled its in-flight work and drained early.
    pub hangup: bool,
}

#[derive(Default)]
struct Counters {
    analyze: AtomicU64,
    explain: AtomicU64,
    lint: AtomicU64,
    cancel: AtomicU64,
    stats: AtomicU64,
    health: AtomicU64,
    served: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    too_large: AtomicU64,
    expired: AtomicU64,
    slot_retries: AtomicU64,
    request_retries: AtomicU64,
}

struct Shared<W: Write> {
    out: Mutex<W>,
    session: Session,
    inflight: Mutex<HashMap<String, CancelToken>>,
    peer_gone: AtomicBool,
    worker_budget: usize,
    max_inflight: usize,
    counters: Counters,
}

impl<W: Write> Shared<W> {
    fn lock_inflight(&self) -> MutexGuard<'_, HashMap<String, CancelToken>> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The number of requests currently in flight, from the map itself
    /// (the one source of truth, so `stats`/`health` snapshots and the
    /// admission decision can never disagree with it).
    fn inflight_len(&self) -> usize {
        self.lock_inflight().len()
    }

    /// Writes one response line (serialize + newline + flush) under the
    /// writer lock. A failed write means the peer hung up: flag the loop
    /// to stop admitting and hard-cancel everything in flight, so the
    /// drain is prompt instead of finishing analyses nobody will read.
    fn respond(&self, response: Json, ok: bool) {
        if ok {
            self.counters.served.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        let mut line = response.to_string();
        line.push('\n');
        let io = {
            let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
            out.write_all(line.as_bytes()).and_then(|()| out.flush())
        };
        if io.is_err() && !self.peer_gone.swap(true, Ordering::SeqCst) {
            for token in self.lock_inflight().values() {
                token.cancel(CancelReason::Signal);
            }
        }
    }

    /// The fair worker share for a newly started request.
    fn worker_share(&self) -> usize {
        (self.worker_budget / self.inflight_len().max(1)).max(1)
    }
}

/// Response-envelope helpers.
fn envelope(id: Option<&str>, ok: bool) -> json::ObjBuilder {
    obj()
        .push("protocol", Json::num(PROTOCOL_VERSION))
        .push("id", id.map_or(Json::Null, Json::str))
        .push("ok", Json::Bool(ok))
}

fn error_response(id: Option<&str>, kind: &str, message: &str) -> Json {
    envelope(id, false)
        .push(
            "error",
            obj()
                .push("kind", Json::str(kind))
                .push("message", Json::str(message))
                .build(),
        )
        .build()
}

/// The admission-control shed response: `overloaded`, with the caps and a
/// deterministic `retry_after_ms` backoff hint that scales with the load
/// the client just observed.
fn overloaded_response(id: &str, inflight: usize, limit: usize) -> Json {
    let retry_after_ms = 100 * inflight as u64;
    let err = Error::Overloaded {
        inflight,
        limit,
        retry_after_ms,
    };
    envelope(Some(id), false)
        .push(
            "error",
            obj()
                .push("kind", Json::str(err.kind()))
                .push("message", Json::str(err.to_string()))
                .push("inflight", Json::num(inflight as f64))
                .push("limit", Json::num(limit as f64))
                .push("retry_after_ms", Json::num(retry_after_ms as f64))
                .build(),
        )
        .build()
}

/// The admission-control shed response for an over-cap grammar.
fn too_large_response(id: &str, actual: usize, limit: usize) -> Json {
    let err = Error::TooLarge { limit, actual };
    envelope(Some(id), false)
        .push(
            "error",
            obj()
                .push("kind", Json::str(err.kind()))
                .push("message", Json::str(err.to_string()))
                .push("limit", Json::num(limit as f64))
                .push("actual", Json::num(actual as f64))
                .build(),
        )
        .build()
}

/// One lint diagnostic as JSON — the same member shape
/// `lalrcex lint --format json` emits.
fn diagnostic_json(d: &Diagnostic) -> Json {
    let mut b = obj()
        .push("id", Json::str(d.code.id))
        .push("name", Json::str(d.code.name))
        .push("severity", Json::str(d.severity.label()))
        .push("message", Json::str(&d.message))
        .push("line", d.span.map_or(Json::Null, |s| Json::num(s.line)));
    let related: Vec<Json> = d
        .related
        .iter()
        .map(|r| {
            obj()
                .push("message", Json::str(&r.message))
                .push("line", r.span.map_or(Json::Null, |s| Json::num(s.line)))
                .build()
        })
        .collect();
    b = b.push("related", Json::Arr(related));
    b.build()
}

/// How one bounded line read ended.
enum LineRead {
    /// End of stream (nothing buffered).
    Eof,
    /// A complete line is in the buffer (without the newline).
    Line,
    /// The line exceeded the cap; the excess was discarded up to the
    /// newline (or EOF).
    Oversized,
}

/// Reads one `\n`-terminated line into `buf`, never buffering more than
/// `max` bytes: an over-long line is drained and reported as
/// [`LineRead::Oversized`] instead of growing without bound.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<LineRead> {
    buf.clear();
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if oversized {
                LineRead::Oversized
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !oversized {
            if buf.len() + take <= max {
                buf.extend_from_slice(&chunk[..take]);
            } else {
                oversized = true;
            }
        }
        reader.consume(take + usize::from(newline.is_some()));
        if newline.is_some() {
            return Ok(if oversized {
                LineRead::Oversized
            } else {
                LineRead::Line
            });
        }
    }
}

/// Reads a request's optional `format` member: absent means `auto`;
/// an unknown name or a non-string value is an error carrying the
/// offending value's rendering (for the structured response).
fn request_format(req: &Json) -> Result<GrammarFormat, String> {
    match req.get("format") {
        None | Some(Json::Null) => Ok(GrammarFormat::Auto),
        Some(Json::Str(name)) => GrammarFormat::from_name(name).ok_or_else(|| name.clone()),
        Some(other) => Err(other.to_string()),
    }
}

/// The structured rejection for an unknown `format` member: kind
/// `unsupported_format`, echoing the offending value so clients can log
/// it without re-parsing their own request.
fn unsupported_format_response(id: Option<&str>, format: &str) -> Json {
    let err = Error::UnsupportedFormat {
        format: format.to_owned(),
    };
    envelope(id, false)
        .push(
            "error",
            obj()
                .push("kind", Json::str(err.kind()))
                .push("message", Json::str(err.to_string()))
                .push("format", Json::str(format))
                .build(),
        )
        .build()
}

/// Extracts the per-request analysis settings from a parsed request.
fn analysis_request(
    req: &Json,
    grammar: GrammarSource,
    workers_cap: usize,
    deadline: Option<Instant>,
) -> AnalysisRequest {
    let ms = |key: &str, default: u64| -> Duration {
        Duration::from_millis(req.get(key).and_then(Json::as_u64).unwrap_or(default))
    };
    let requested = req
        .get("workers")
        .and_then(Json::as_u64)
        .map(|w| w as usize)
        .unwrap_or(0);
    // `0` (or absent) takes the fair share; an explicit request is honored
    // up to the share, so one request cannot starve the others.
    let workers = if requested == 0 {
        workers_cap
    } else {
        requested.min(workers_cap)
    };
    let mut request = AnalysisRequest::new(grammar)
        .label(
            req.get("file")
                .and_then(Json::as_str)
                .unwrap_or("<memory>")
                .to_owned(),
        )
        .time_limit(ms("time_limit_ms", 5_000))
        .cumulative_limit(ms("total_limit_ms", 120_000))
        .workers(workers)
        .extended(req.get("extended").and_then(Json::as_bool).unwrap_or(false))
        .max_live_mb(req.get("max_live_mb").and_then(Json::as_u64).unwrap_or(0) as usize);
    if let Some(d) = deadline {
        request = request.deadline(d);
    }
    request
}

/// Marks a request's deadline as lapsed at response time and bumps the
/// expiry counter. Called once per admitted request, as it completes.
fn note_expiry<W: Write>(shared: &Shared<W>, deadline: Option<Instant>) -> bool {
    let expired = deadline.is_some_and(|d| Instant::now() >= d);
    if expired {
        shared.counters.expired.fetch_add(1, Ordering::Relaxed);
    }
    expired
}

fn handle_analyze<W: Write>(
    shared: &Shared<W>,
    id: &str,
    req: &Json,
    cancel: CancelToken,
    deadline: Option<Instant>,
) {
    shared.counters.analyze.fetch_add(1, Ordering::Relaxed);
    let Some(grammar) = req.get("grammar").and_then(Json::as_str) else {
        shared.respond(
            error_response(Some(id), "protocol", "analyze requires a `grammar` string"),
            false,
        );
        return;
    };
    let format = match request_format(req) {
        Ok(f) => f,
        Err(bad) => {
            shared.respond(unsupported_format_response(Some(id), &bad), false);
            return;
        }
    };
    let source = GrammarSource::new(grammar, format);
    let request =
        analysis_request(req, source, shared.worker_share(), deadline).cancel_token(cancel.clone());
    let started = Instant::now();
    // Containment on top of the engine's per-phase boundaries: whatever a
    // faulted request does, the serve loop answers and keeps going.
    let mut outcome = contain("serve.request", || {
        lalrcex_core::fail_point!("serve.request");
        shared.session.analyze(&request)
    });
    // Whole-request fault-retry supervision: a contained fault that hit
    // engine construction or escaped the per-slot boundaries may have
    // left poisoned state in the cache, so evict the grammar's entry
    // before the one supervised re-run — a possibly poisoned engine is
    // never re-served.
    if matches!(outcome, Ok(Err(Error::Engine(_))) | Err(_)) && !cancel.is_hard_cancelled() {
        shared.session.evict(request.source());
        shared
            .counters
            .request_retries
            .fetch_add(1, Ordering::Relaxed);
        outcome = contain("serve.request", || {
            lalrcex_core::fail_point!("serve.request");
            shared.session.analyze(&request)
        });
    }
    match outcome {
        Ok(Ok(mut reply)) => {
            // Slot-level supervision: re-run each contained `Internal`
            // conflict slot once; transient faults recover in place.
            let mut retried_slots = 0;
            if reply.report.internal_count() > 0 && !cancel.is_hard_cancelled() {
                retried_slots = shared.session.retry_internal_slots(&mut reply, &request);
                shared
                    .counters
                    .slot_retries
                    .fetch_add(retried_slots, Ordering::Relaxed);
            }
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            let expired = note_expiry(shared, deadline);
            let cancelled = cancel.is_hard_cancelled() || reply.report.cancelled_count() > 0;
            let response = envelope(Some(id), true)
                .push("op", Json::str("analyze"))
                .push(
                    "cache",
                    Json::str(if reply.cache_hit { "hit" } else { "miss" }),
                )
                .push("elapsed_ms", Json::Num(elapsed_ms))
                .push("cancelled", Json::Bool(cancelled))
                .push("deadline_expired", Json::Bool(expired))
                .push("retried_slots", Json::num(retried_slots as f64))
                .push(
                    "internal_count",
                    Json::num(reply.report.internal_count() as u32),
                )
                .push("report", reply.to_json())
                .build();
            shared.respond(response, true);
        }
        Ok(Err(e)) => {
            shared.respond(error_response(Some(id), e.kind(), &e.to_string()), false);
        }
        Err(e) => {
            shared.respond(
                error_response(Some(id), "internal", &Error::Engine(e).to_string()),
                false,
            );
        }
    }
}

fn handle_explain<W: Write>(
    shared: &Shared<W>,
    id: &str,
    req: &Json,
    cancel: CancelToken,
    deadline: Option<Instant>,
) {
    shared.counters.explain.fetch_add(1, Ordering::Relaxed);
    let Some(grammar) = req.get("grammar").and_then(Json::as_str) else {
        shared.respond(
            error_response(Some(id), "protocol", "explain requires a `grammar` string"),
            false,
        );
        return;
    };
    let format = match request_format(req) {
        Ok(f) => f,
        Err(bad) => {
            shared.respond(unsupported_format_response(Some(id), &bad), false);
            return;
        }
    };
    let source = GrammarSource::new(grammar, format);
    let request =
        analysis_request(req, source, shared.worker_share(), deadline).cancel_token(cancel.clone());
    let started = Instant::now();
    let mut outcome = contain("serve.request", || {
        lalrcex_core::fail_point!("serve.request");
        shared.session.explain(&request)
    });
    // Whole-request supervision also covers a faulted provenance build:
    // provenance errors are never memoized, and evicting the entry
    // guarantees the retry rebuilds every table from scratch.
    if matches!(outcome, Ok(Err(Error::Engine(_))) | Err(_)) && !cancel.is_hard_cancelled() {
        shared.session.evict(request.source());
        shared
            .counters
            .request_retries
            .fetch_add(1, Ordering::Relaxed);
        outcome = contain("serve.request", || {
            lalrcex_core::fail_point!("serve.request");
            shared.session.explain(&request)
        });
    }
    match outcome {
        Ok(Ok(mut reply)) => {
            let mut retried_slots = 0;
            if reply.report.internal_count() > 0 && !cancel.is_hard_cancelled() {
                retried_slots = shared
                    .session
                    .retry_internal_explain_slots(&mut reply, &request);
                shared
                    .counters
                    .slot_retries
                    .fetch_add(retried_slots, Ordering::Relaxed);
            }
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            let expired = note_expiry(shared, deadline);
            let cancelled = cancel.is_hard_cancelled() || reply.report.cancelled_count() > 0;
            let counts = reply.provenance.counts();
            let response = envelope(Some(id), true)
                .push("op", Json::str("explain"))
                .push(
                    "cache",
                    Json::str(if reply.cache_hit { "hit" } else { "miss" }),
                )
                .push("elapsed_ms", Json::Num(elapsed_ms))
                .push("cancelled", Json::Bool(cancelled))
                .push("deadline_expired", Json::Bool(expired))
                .push("retried_slots", Json::num(retried_slots as f64))
                .push(
                    "classification",
                    obj()
                        .push(
                            "true_ambiguity_candidates",
                            Json::num(counts.true_candidates as f64),
                        )
                        .push("merge_artifacts", Json::num(counts.merge_artifacts as f64))
                        .push(
                            "precedence_resolved",
                            Json::num(counts.precedence_resolved as f64),
                        )
                        .push("internal", Json::num(counts.internal as f64))
                        .build(),
                )
                .push("report", reply.to_json())
                .build();
            shared.respond(response, true);
        }
        Ok(Err(e)) => {
            shared.respond(error_response(Some(id), e.kind(), &e.to_string()), false);
        }
        Err(e) => {
            shared.respond(
                error_response(Some(id), "internal", &Error::Engine(e).to_string()),
                false,
            );
        }
    }
}

fn handle_lint<W: Write>(shared: &Shared<W>, id: &str, req: &Json, deadline: Option<Instant>) {
    shared.counters.lint.fetch_add(1, Ordering::Relaxed);
    let Some(grammar) = req.get("grammar").and_then(Json::as_str) else {
        shared.respond(
            error_response(Some(id), "protocol", "lint requires a `grammar` string"),
            false,
        );
        return;
    };
    let format = match request_format(req) {
        Ok(f) => f,
        Err(bad) => {
            shared.respond(unsupported_format_response(Some(id), &bad), false);
            return;
        }
    };
    let source = GrammarSource::new(grammar, format);
    let mut outcome = contain("serve.request", || {
        lalrcex_core::fail_point!("serve.request");
        shared.session.lint(&source)
    });
    if matches!(outcome, Ok(Err(Error::Engine(_))) | Err(_)) {
        shared.session.evict(&source);
        shared
            .counters
            .request_retries
            .fetch_add(1, Ordering::Relaxed);
        outcome = contain("serve.request", || {
            lalrcex_core::fail_point!("serve.request");
            shared.session.lint(&source)
        });
    }
    match outcome {
        Ok(Ok(reply)) => {
            let expired = note_expiry(shared, deadline);
            let worst = reply
                .diagnostics
                .iter()
                .map(|d| d.severity)
                .max()
                .map_or(Json::Null, |s: Severity| Json::str(s.label()));
            let response = envelope(Some(id), true)
                .push("op", Json::str("lint"))
                .push(
                    "cache",
                    Json::str(if reply.cache_hit { "hit" } else { "miss" }),
                )
                .push("deadline_expired", Json::Bool(expired))
                .push(
                    "diagnostics",
                    Json::Arr(reply.diagnostics.iter().map(diagnostic_json).collect()),
                )
                .push("worst", worst)
                .build();
            shared.respond(response, true);
        }
        Ok(Err(e)) => {
            shared.respond(error_response(Some(id), e.kind(), &e.to_string()), false);
        }
        Err(e) => {
            shared.respond(
                error_response(Some(id), "internal", &Error::Engine(e).to_string()),
                false,
            );
        }
    }
}

fn handle_stats<W: Write>(shared: &Shared<W>, id: &str) {
    shared.counters.stats.fetch_add(1, Ordering::Relaxed);
    // Per-entry breakdowns re-sample each engine's estimated bytes, so
    // provenance tables built since the entry's insertion show up both
    // here and in the cache's own eviction accounting. Sampled before the
    // counter snapshot so `live_bytes` agrees with the entries listed.
    let entries = Json::Arr(
        shared
            .session
            .cache_entry_stats()
            .iter()
            .map(|e| {
                obj()
                    .push("key", Json::str(format!("{:016x}", e.key)))
                    .push("text_bytes", Json::num(e.text_bytes as f64))
                    .push("bytes", Json::num(e.bytes as f64))
                    .push("provenance_bytes", Json::num(e.provenance_bytes as f64))
                    .build()
            })
            .collect(),
    );
    let cache = shared.session.cache_stats();
    let budget = if cache.budget_bytes == usize::MAX {
        Json::Null
    } else {
        Json::num(cache.budget_bytes as f64)
    };
    let count = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
    let response = envelope(Some(id), true)
        .push("op", Json::str("stats"))
        .push(
            "cache",
            obj()
                .push("hits", Json::num(cache.hits as f64))
                .push("misses", Json::num(cache.misses as f64))
                .push("evictions", Json::num(cache.evictions as f64))
                .push("entries", Json::num(cache.entries as f64))
                .push("live_bytes", Json::num(cache.live_bytes as f64))
                .push("budget_bytes", budget)
                .build(),
        )
        .push("entries", entries)
        .push(
            "requests",
            obj()
                .push("analyze", count(&shared.counters.analyze))
                .push("explain", count(&shared.counters.explain))
                .push("lint", count(&shared.counters.lint))
                .push("cancel", count(&shared.counters.cancel))
                .push("stats", count(&shared.counters.stats))
                .push("health", count(&shared.counters.health))
                .push("errors", count(&shared.counters.errors))
                .build(),
        )
        .push(
            "supervision",
            obj()
                .push("overloaded", count(&shared.counters.overloaded))
                .push("too_large", count(&shared.counters.too_large))
                .push("deadline_expired", count(&shared.counters.expired))
                .push("slot_retries", count(&shared.counters.slot_retries))
                .push("request_retries", count(&shared.counters.request_retries))
                .build(),
        )
        .push("inflight", Json::num(shared.inflight_len() as f64))
        .build();
    shared.respond(response, true);
}

fn handle_health<W: Write>(shared: &Shared<W>, id: &str) {
    shared.counters.health.fetch_add(1, Ordering::Relaxed);
    let inflight = shared.inflight_len();
    let status = if shared.peer_gone.load(Ordering::Relaxed) {
        "draining"
    } else if shared.max_inflight > 0 && inflight >= shared.max_inflight {
        "shedding"
    } else {
        "ok"
    };
    let count = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed) as f64);
    let response = envelope(Some(id), true)
        .push("op", Json::str("health"))
        .push("status", Json::str(status))
        .push("inflight", Json::num(inflight as f64))
        .push(
            "max_inflight",
            if shared.max_inflight == 0 {
                Json::Null
            } else {
                Json::num(shared.max_inflight as f64)
            },
        )
        .push(
            "counters",
            obj()
                .push("served", count(&shared.counters.served))
                .push("errors", count(&shared.counters.errors))
                .push("overloaded", count(&shared.counters.overloaded))
                .push("too_large", count(&shared.counters.too_large))
                .push("deadline_expired", count(&shared.counters.expired))
                .push("slot_retries", count(&shared.counters.slot_retries))
                .push("request_retries", count(&shared.counters.request_retries))
                .build(),
        )
        .build();
    shared.respond(response, true);
}

fn handle_cancel<W: Write>(shared: &Shared<W>, id: &str, req: &Json) {
    shared.counters.cancel.fetch_add(1, Ordering::Relaxed);
    let Some(target) = req.get("target").and_then(Json::as_str) else {
        shared.respond(
            error_response(Some(id), "protocol", "cancel requires a `target` id"),
            false,
        );
        return;
    };
    let token = shared.lock_inflight().get(target).cloned();
    let found = match token {
        Some(t) => {
            // Hard cancel, like the CLI's Ctrl-C: in-flight phases stop at
            // their next poll, unstarted conflicts get stub entries, and
            // the target's response reports `cancelled:true`.
            t.cancel(CancelReason::Signal);
            true
        }
        None => false,
    };
    let response = envelope(Some(id), true)
        .push("op", Json::str("cancel"))
        .push("target", Json::str(target))
        .push("found", Json::Bool(found))
        .build();
    shared.respond(response, true);
}

/// Runs the serve loop until EOF, a `shutdown` request, or a peer hangup
/// detected on a response write, answering every request line with
/// exactly one response line. In-flight requests are drained (never
/// dropped) before returning.
pub fn serve<R: BufRead, W: Write + Send>(
    mut reader: R,
    writer: W,
    opts: &ServeOptions,
) -> ServeSummary {
    let worker_budget = if opts.workers > 0 {
        opts.workers
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    let shared = Shared {
        out: Mutex::new(writer),
        session: Session::with_cache_mb(opts.cache_mb),
        inflight: Mutex::new(HashMap::new()),
        peer_gone: AtomicBool::new(false),
        worker_budget,
        max_inflight: opts.max_inflight,
        counters: Counters::default(),
    };
    let mut shutdown = false;
    let mut buf = Vec::new();

    std::thread::scope(|scope| {
        loop {
            // A failed response write means nobody is reading: stop
            // admitting and drain. (A peer that hangs up without sending
            // EOF on our input is only noticed at the next write; the
            // in-flight work it cancels is already spent either way.)
            if shared.peer_gone.load(Ordering::Relaxed) {
                break;
            }
            match read_line_bounded(&mut reader, &mut buf, opts.max_line_bytes) {
                Err(_) | Ok(LineRead::Eof) => break,
                Ok(LineRead::Oversized) => {
                    shared.respond(
                        error_response(
                            None,
                            "budget",
                            &format!(
                                "request line exceeds {} bytes; raise --max-line or split the request",
                                opts.max_line_bytes
                            ),
                        ),
                        false,
                    );
                    continue;
                }
                Ok(LineRead::Line) => {}
            }
            let line = match std::str::from_utf8(&buf) {
                Ok(l) => l.trim(),
                Err(_) => {
                    shared.respond(
                        error_response(None, "protocol", "request line is not UTF-8"),
                        false,
                    );
                    continue;
                }
            };
            if line.is_empty() {
                continue;
            }
            let req = match json::parse(line) {
                Ok(v) => v,
                Err(e) => {
                    shared.respond(
                        error_response(None, "protocol", &format!("malformed JSON: {e}")),
                        false,
                    );
                    continue;
                }
            };
            // A missing `protocol` member means "current version"; a present
            // one must match — silently serving v1 semantics to a client
            // that asked for something newer would be worse than an error.
            if let Some(v) = req.get("protocol") {
                if v.as_u64() != Some(u64::from(PROTOCOL_VERSION)) {
                    let id = req.get("id").and_then(Json::as_str);
                    shared.respond(
                        error_response(
                            id,
                            "protocol",
                            &format!(
                                "unsupported protocol version (server speaks {PROTOCOL_VERSION})"
                            ),
                        ),
                        false,
                    );
                    continue;
                }
            }
            let Some(op) = req.get("op").and_then(Json::as_str).map(str::to_owned) else {
                shared.respond(
                    error_response(None, "protocol", "request has no `op` string"),
                    false,
                );
                continue;
            };
            let Some(id) = req.get("id").and_then(Json::as_str).map(str::to_owned) else {
                shared.respond(
                    error_response(None, "protocol", "request has no `id` string"),
                    false,
                );
                continue;
            };
            match op.as_str() {
                "analyze" | "explain" | "lint" => {
                    // Admission tier 1: the per-request grammar-byte cap,
                    // checked before any work is spent. (A missing grammar
                    // still admits, so the handler can answer with its
                    // op-specific protocol error.)
                    if opts.max_grammar_bytes > 0 {
                        let size = req.get("grammar").and_then(Json::as_str).map(str::len);
                        if let Some(size) = size.filter(|&s| s > opts.max_grammar_bytes) {
                            shared.counters.too_large.fetch_add(1, Ordering::Relaxed);
                            shared.respond(
                                too_large_response(&id, size, opts.max_grammar_bytes),
                                false,
                            );
                            continue;
                        }
                    }
                    // The end-to-end deadline starts at admission, so
                    // queue and spawn delay count against it and a
                    // request that waits too long expires before doing
                    // any search work.
                    let deadline_ms = req
                        .get("deadline_ms")
                        .and_then(Json::as_u64)
                        .unwrap_or(opts.default_deadline_ms);
                    let deadline = (deadline_ms > 0)
                        .then(|| Instant::now() + Duration::from_millis(deadline_ms));
                    let cancel = CancelToken::new();
                    {
                        let mut inflight = shared.lock_inflight();
                        if inflight.contains_key(&id) {
                            drop(inflight);
                            shared.respond(
                                error_response(
                                    Some(&id),
                                    "protocol",
                                    "a request with this id is already in flight",
                                ),
                                false,
                            );
                            continue;
                        }
                        // Admission tier 2: shed at the in-flight cap,
                        // decided under the same lock that defines the
                        // count, so the decision and the snapshot agree.
                        if opts.max_inflight > 0 && inflight.len() >= opts.max_inflight {
                            let seen = inflight.len();
                            drop(inflight);
                            shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                            shared
                                .respond(overloaded_response(&id, seen, opts.max_inflight), false);
                            continue;
                        }
                        inflight.insert(id.clone(), cancel.clone());
                    }
                    let shared = &shared;
                    scope.spawn(move || {
                        match op.as_str() {
                            "analyze" => handle_analyze(shared, &id, &req, cancel, deadline),
                            "explain" => handle_explain(shared, &id, &req, cancel, deadline),
                            _ => handle_lint(shared, &id, &req, deadline),
                        }
                        shared.lock_inflight().remove(&id);
                    });
                }
                "cancel" => handle_cancel(&shared, &id, &req),
                "stats" => handle_stats(&shared, &id),
                "health" => handle_health(&shared, &id),
                "shutdown" => {
                    shared.respond(
                        envelope(Some(&id), true)
                            .push("op", Json::str("shutdown"))
                            .build(),
                        true,
                    );
                    shutdown = true;
                    break;
                }
                other => {
                    shared.respond(
                        error_response(
                            Some(&id),
                            "protocol",
                            &format!(
                                "unknown op `{other}` (expected analyze, explain, \
                                 lint, cancel, stats, health, or shutdown)"
                            ),
                        ),
                        false,
                    );
                }
            }
        }
        // Scope exit joins every in-flight request handler: the loop never
        // drops work on shutdown, EOF, or hangup.
    });

    ServeSummary {
        served: shared.counters.served.load(Ordering::Relaxed),
        errors: shared.counters.errors.load(Ordering::Relaxed),
        shutdown,
        hangup: shared.peer_gone.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_with(input: &str, opts: &ServeOptions) -> (Vec<Json>, ServeSummary) {
        let mut out = Vec::new();
        let summary = serve(Cursor::new(input.as_bytes()), &mut out, opts);
        let lines = String::from_utf8(out).unwrap();
        let responses = lines
            .lines()
            .map(|l| json::parse(l).expect("every response line is valid JSON"))
            .collect();
        (responses, summary)
    }

    fn run(input: &str) -> (Vec<Json>, ServeSummary) {
        run_with(input, &ServeOptions::default())
    }

    #[test]
    fn analyze_then_shutdown() {
        let (responses, summary) = run(concat!(
            r#"{"op":"analyze","id":"a","grammar":"%% e : e '+' e | NUM ;"}"#,
            "\n",
            r#"{"op":"shutdown","id":"z"}"#,
            "\n",
        ));
        assert_eq!(responses.len(), 2);
        assert!(summary.shutdown);
        assert!(!summary.hangup);
        assert_eq!(summary.served, 2);
        let analyze = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some("a"))
            .unwrap();
        assert_eq!(analyze.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(analyze.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(
            analyze.get("deadline_expired").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(analyze.get("retried_slots").and_then(Json::as_u64), Some(0));
        let report = analyze.get("report").unwrap();
        assert_eq!(report.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            report
                .get("conflicts")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn malformed_line_answers_and_loop_continues() {
        let (responses, summary) = run(concat!(
            "this is not json\n",
            r#"{"op":"stats","id":"s"}"#,
            "\n",
        ));
        assert_eq!(responses.len(), 2);
        assert!(!summary.shutdown, "EOF, not shutdown");
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(responses[0].get("id"), Some(&Json::Null));
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn cancel_of_unknown_target_reports_not_found() {
        let (responses, _) = run(concat!(r#"{"op":"cancel","id":"c","target":"nope"}"#, "\n"));
        assert_eq!(
            responses[0].get("found").and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn mismatched_protocol_version_is_rejected() {
        let (responses, summary) = run(concat!(
            r#"{"protocol":9,"op":"stats","id":"v9"}"#,
            "\n",
            r#"{"protocol":1,"op":"stats","id":"v1"}"#,
            "\n",
        ));
        assert_eq!(responses.len(), 2);
        assert_eq!(summary.errors, 1);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("v9"));
        let err = responses[0].get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("protocol"));
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn oversized_grammar_is_shed_at_admission() {
        let opts = ServeOptions {
            max_grammar_bytes: 8,
            ..ServeOptions::default()
        };
        let (responses, summary) = run_with(
            concat!(
                r#"{"op":"analyze","id":"big","grammar":"%% e : e '+' e | NUM ;"}"#,
                "\n",
            ),
            &opts,
        );
        assert_eq!(summary.errors, 1);
        let err = responses[0].get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("too_large"));
        assert_eq!(err.get("limit").and_then(Json::as_u64), Some(8));
        assert!(err.get("actual").and_then(Json::as_u64).unwrap() > 8);
    }

    #[test]
    fn health_reports_ok_when_idle() {
        let opts = ServeOptions {
            max_inflight: 3,
            ..ServeOptions::default()
        };
        let (responses, _) = run_with(concat!(r#"{"op":"health","id":"h"}"#, "\n"), &opts);
        let h = &responses[0];
        assert_eq!(h.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(h.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(h.get("inflight").and_then(Json::as_u64), Some(0));
        assert_eq!(h.get("max_inflight").and_then(Json::as_u64), Some(3));
        let counters = h.get("counters").unwrap();
        assert_eq!(counters.get("overloaded").and_then(Json::as_u64), Some(0));
    }
}
