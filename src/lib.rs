//! `lalrcex` — counterexamples for LALR parsing conflicts
//! (Isradisaikul & Myers, PLDI 2015).
//!
//! The supported programmatic surface is the [`api`] module: a cached,
//! builder-style session layer the CLI and the `lalrcex serve` service
//! are built on. Start there:
//!
//! ```
//! use lalrcex::{AnalysisRequest, Session};
//!
//! let session = Session::new();
//! let reply = session.analyze(&AnalysisRequest::new("%% e : e '+' e | NUM ;"))?;
//! assert_eq!(reply.report.unifying_count(), 1);
//! # Ok::<(), lalrcex::Error>(())
//! ```
//!
//! Grammars don't have to be written in the native DSL: the API's intake
//! is a [`GrammarSource`] (text + [`GrammarFormat`]), and existing
//! yacc/Bison files are parsed as-is — auto-detected or pinned with
//! `GrammarSource::yacc(..)`. For parser-generator build scripts,
//! [`build`] boils the detect-conflicts-and-fail-the-build workflow down
//! to one call ([`build::verify`]).
//!
//! [`service`] implements the JSON-Lines request/response protocol behind
//! `lalrcex serve` and `lalrcex batch`; [`prng`] is the workspace's small
//! deterministic PRNG (used by tests and benches).
//!
//! The individual engine crates (`grammar`, `lr`, `earley`, `core`,
//! `baselines`, `corpus`, `lint`) remain re-exported for research tooling
//! and the workspace's own tests, but are **not** part of the stable
//! surface: they are `#[doc(hidden)]` and excluded from the public-API
//! gate (`scripts/api_gate.sh`), and may change shape between releases.

#![forbid(unsafe_code)]

pub mod api;
pub mod build;
pub mod prng;
pub mod service;

pub use api::{
    AnalysisReply, AnalysisRequest, Error, GrammarFormat, GrammarSource, LintReply, Session,
};

#[doc(hidden)]
pub use lalrcex_baselines as baselines;
#[doc(hidden)]
pub use lalrcex_core as core;
#[doc(hidden)]
pub use lalrcex_corpus as corpus;
#[doc(hidden)]
pub use lalrcex_earley as earley;
#[doc(hidden)]
pub use lalrcex_grammar as grammar;
#[doc(hidden)]
pub use lalrcex_lint as lint;
#[doc(hidden)]
pub use lalrcex_lr as lr;
#[doc(hidden)]
pub use lalrcex_yacc as yacc;
