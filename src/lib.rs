//! Umbrella crate re-exporting the `lalrcex` toolkit.
//!
//! See the individual crates for details:
//! [`grammar`], [`lr`], [`earley`], [`core`], [`baselines`], [`corpus`],
//! [`lint`].

pub mod prng;

pub use lalrcex_baselines as baselines;
pub use lalrcex_core as core;
pub use lalrcex_corpus as corpus;
pub use lalrcex_earley as earley;
pub use lalrcex_grammar as grammar;
pub use lalrcex_lint as lint;
pub use lalrcex_lr as lr;
