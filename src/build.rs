//! Build-script conflict verification: fail the build with
//! counterexamples attached.
//!
//! Parser-generator projects keep reinventing this workflow by hand —
//! run the grammar through the generator in `build.rs`, scrape the
//! conflict list, pretty-print something, `panic!`. This module owns it:
//!
//! ```no_run
//! // build.rs
//! fn main() {
//!     lalrcex::build::verify("src/grammar.y").unwrap();
//! }
//! ```
//!
//! That's the whole integration. If the grammar has conflicts, `verify`
//! returns [`VerifyError::Conflicts`] carrying a [`ConflictsFound`] whose
//! `Display` (and `Debug`, so `unwrap` stays pretty) renders the full
//! counterexample report — the same bytes `lalrcex cex` prints — and the
//! failing build shows unifying/nonunifying derivations instead of a bare
//! "3 shift/reduce conflicts". The grammar format is auto-detected from
//! the extension and content, exactly like the CLI.
//!
//! For policy decisions — warn-only builds, `%expect`-style budgets,
//! custom sinks — use [`Verifier`] and its [`Verifier::on_conflicts`]
//! callback instead of treating the error as fatal.
//!
//! When run inside a real build script (detected by the `OUT_DIR`
//! environment variable Cargo sets), path-based verification emits
//! `cargo:rerun-if-changed=<path>` so the grammar is re-checked exactly
//! when it changes.

// The doctest above *is* a complete build.rs — the explicit `fn main`
// is the point of the example, not doctest boilerplate.
#![allow(clippy::needless_doctest_main)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::api::{AnalysisRequest, Error, GrammarFormat, GrammarSource, Session};

/// A conflict-free verification: the grammar builds a deterministic LALR
/// automaton.
#[derive(Clone, Debug)]
pub struct Verified {
    /// The report label (the path, for path-based verification).
    pub label: String,
    /// LALR automaton states.
    pub states: usize,
    /// Productions, including the augmented start.
    pub productions: usize,
}

/// The structured "your grammar has conflicts" outcome.
///
/// `Display` renders the failure the way a human wants to read it in a
/// build log: a one-line header, then the canonical per-conflict
/// counterexample blocks ([`crate::AnalysisReply::render_text`]), then a
/// pointer to the interactive tools. `Debug` forwards to `Display`, so
/// `verify(..).unwrap()` in a `build.rs` prints the report rather than a
/// struct dump.
#[derive(Clone)]
pub struct ConflictsFound {
    /// The report label (the path, for path-based verification).
    pub label: String,
    /// Total conflicts.
    pub conflicts: usize,
    /// Conflicts proven ambiguous by a unifying counterexample.
    pub unifying: usize,
    /// Conflicts with only a nonunifying counterexample (within budget).
    pub nonunifying: usize,
    /// Conflict slots that faulted internally (contained).
    pub internal: usize,
    /// The rendered counterexample report, byte-identical to what
    /// `lalrcex cex` prints for the same grammar and limits.
    pub report: String,
}

impl fmt::Display for ConflictsFound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} conflict(s): {} proven ambiguous (unifying), {} nonunifying, {} internal",
            self.label, self.conflicts, self.unifying, self.nonunifying, self.internal
        )?;
        writeln!(f)?;
        f.write_str(&self.report)?;
        write!(
            f,
            "help: run `lalrcex cex {}` to re-run interactively, or `lalrcex explain {}` \
             for the lookahead provenance of each conflict",
            self.label, self.label
        )
    }
}

impl fmt::Debug for ConflictsFound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Why a [`verify`] call did not come back clean.
pub enum VerifyError {
    /// The grammar file could not be read.
    Io {
        /// The path that failed.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// Parsing or analyzing the grammar failed (see [`Error`]).
    Analysis(Error),
    /// The grammar has conflicts; the payload carries the full report.
    Conflicts(ConflictsFound),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Io { path, error } => {
                write!(f, "cannot read grammar {}: {error}", path.display())
            }
            VerifyError::Analysis(e) => write!(f, "{e}"),
            VerifyError::Conflicts(c) => write!(f, "{c}"),
        }
    }
}

// `Debug` forwards to `Display` so the idiomatic three-line build script
// (`verify(..).unwrap()`) panics with the rendered counterexample report,
// not an escaped one-line struct dump.
impl fmt::Debug for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Io { error, .. } => Some(error),
            VerifyError::Analysis(e) => Some(e),
            VerifyError::Conflicts(_) => None,
        }
    }
}

impl From<Error> for VerifyError {
    fn from(e: Error) -> VerifyError {
        VerifyError::Analysis(e)
    }
}

/// Verifies that the grammar at `path` is conflict-free, with default
/// limits and auto-detected format — the three-line `build.rs`
/// integration. See the [module docs](self) and [`Verifier`] for the
/// configurable form.
///
/// # Errors
///
/// [`VerifyError::Conflicts`] when the grammar has conflicts (the payload
/// renders the full counterexample report), [`VerifyError::Io`] /
/// [`VerifyError::Analysis`] when it cannot be read or parsed.
pub fn verify(path: impl AsRef<Path>) -> Result<Verified, VerifyError> {
    Verifier::new().verify_path(path)
}

/// The observer callback registered with [`Verifier::on_conflicts`]:
/// called once with the full [`ConflictsFound`] before it is returned as
/// an error.
pub type ConflictCallback = Box<dyn FnMut(&ConflictsFound)>;

/// Configurable build-time verification: search limits, an explicit
/// format, and an observer callback for conflict reports.
#[derive(Default)]
pub struct Verifier {
    format: Option<GrammarFormat>,
    time_limit: Option<Duration>,
    total_limit: Option<Duration>,
    workers: Option<usize>,
    on_conflicts: Option<ConflictCallback>,
}

impl Verifier {
    /// A verifier with CLI-default limits and auto-detected format.
    #[must_use]
    pub fn new() -> Verifier {
        Verifier::default()
    }

    /// Pins the grammar format instead of auto-detecting it.
    #[must_use]
    pub fn format(mut self, format: GrammarFormat) -> Self {
        self.format = Some(format);
        self
    }

    /// Per-conflict unifying-search time limit.
    #[must_use]
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Cumulative search budget across all conflicts (build scripts that
    /// would rather fail fast than search deeply set this low; the
    /// nonunifying fallbacks still render).
    #[must_use]
    pub fn total_limit(mut self, limit: Duration) -> Self {
        self.total_limit = Some(limit);
        self
    }

    /// Worker threads for the conflict fan-out (`0` = one per CPU).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Registers a conflict observer, called once with the full
    /// [`ConflictsFound`] before it is returned as an error. This is the
    /// hook for warn-only policies (print and swallow the error), CI
    /// annotations, or conflict budgets.
    #[must_use]
    pub fn on_conflicts(mut self, callback: impl FnMut(&ConflictsFound) + 'static) -> Self {
        self.on_conflicts = Some(Box::new(callback));
        self
    }

    /// Verifies the grammar at `path` (format from the extension unless
    /// pinned; `cargo:rerun-if-changed` emitted under Cargo build
    /// scripts).
    ///
    /// # Errors
    ///
    /// See [`verify`].
    pub fn verify_path(mut self, path: impl AsRef<Path>) -> Result<Verified, VerifyError> {
        let path = path.as_ref();
        // Only a real build script (Cargo sets OUT_DIR) should emit build
        // directives; anywhere else they would just pollute stdout.
        if std::env::var_os("OUT_DIR").is_some() {
            println!("cargo:rerun-if-changed={}", path.display());
        }
        let text = std::fs::read_to_string(path).map_err(|error| VerifyError::Io {
            path: path.to_path_buf(),
            error,
        })?;
        let source = match self.format.take() {
            Some(f) => GrammarSource::new(text, f),
            None => GrammarSource::from_path_text(path, text),
        };
        self.run(source, &path.display().to_string())
    }

    /// Verifies an in-memory [`GrammarSource`] under `label`.
    ///
    /// # Errors
    ///
    /// See [`verify`] (minus the I/O case).
    pub fn verify_source(
        mut self,
        source: impl Into<GrammarSource>,
        label: &str,
    ) -> Result<Verified, VerifyError> {
        let mut source = source.into();
        if let Some(f) = self.format.take() {
            source = source.with_format(f);
        }
        self.run(source, label)
    }

    fn run(mut self, source: GrammarSource, label: &str) -> Result<Verified, VerifyError> {
        let mut req = AnalysisRequest::new(source).label(label);
        if let Some(d) = self.time_limit {
            req = req.time_limit(d);
        }
        if let Some(d) = self.total_limit {
            req = req.cumulative_limit(d);
        }
        if let Some(w) = self.workers {
            req = req.workers(w);
        }
        let reply = Session::new().analyze(&req)?;
        let verified = Verified {
            label: label.to_owned(),
            states: reply.engine().automaton().state_count(),
            productions: reply.grammar().prod_count(),
        };
        if reply.report.reports.is_empty() {
            return Ok(verified);
        }
        let internal = reply
            .report
            .reports
            .iter()
            .filter(|r| matches!(r.outcome, lalrcex_core::ConflictOutcome::Internal(_)))
            .count();
        let unifying = reply.report.unifying_count();
        let found = ConflictsFound {
            label: label.to_owned(),
            conflicts: reply.report.reports.len(),
            unifying,
            nonunifying: reply.report.reports.len() - unifying - internal,
            internal,
            report: reply.render_text(),
        };
        if let Some(cb) = self.on_conflicts.as_mut() {
            cb(&found);
        }
        Err(VerifyError::Conflicts(found))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AMBIG: &str = "%% e : e '+' e | NUM ;";
    const CLEAN: &str = "%token NUM\n%% e : e '+' NUM | NUM ;";
    const AMBIG_Y: &str = "%% e : e '+' e { $$ = $1 + $3; } | NUM { $$ = $1; } ;";

    #[test]
    fn clean_grammar_verifies() {
        let v = Verifier::new()
            .workers(1)
            .verify_source(CLEAN, "<clean>")
            .unwrap();
        assert_eq!(v.label, "<clean>");
        assert!(v.states > 0 && v.productions == 3);
    }

    #[test]
    fn conflicts_render_the_cex_report() {
        let err = Verifier::new()
            .workers(1)
            .verify_source(AMBIG, "<ambig>")
            .unwrap_err();
        let VerifyError::Conflicts(found) = &err else {
            panic!("expected Conflicts, got {err}");
        };
        assert_eq!((found.conflicts, found.unifying), (1, 1));
        let shown = format!("{err}");
        assert!(shown.contains("1 proven ambiguous"), "{shown}");
        assert!(shown.contains("Ambiguity detected"), "{shown}");
        // Debug is the same rendering, so `unwrap()` panics pretty.
        assert_eq!(format!("{err:?}"), shown);
    }

    #[test]
    fn dsl_and_yacc_sources_render_identical_reports() {
        let take = |src: GrammarSource| match Verifier::new().workers(1).verify_source(src, "<g>") {
            Err(VerifyError::Conflicts(f)) => f.report,
            other => panic!("expected conflicts, got {:?}", other.err()),
        };
        assert_eq!(
            take(GrammarSource::dsl(AMBIG)),
            take(GrammarSource::auto(AMBIG_Y))
        );
    }

    #[test]
    fn callback_sees_the_report_before_the_error() {
        use std::cell::Cell;
        use std::rc::Rc;
        let seen = Rc::new(Cell::new(0usize));
        let seen2 = Rc::clone(&seen);
        let err = Verifier::new()
            .workers(1)
            .on_conflicts(move |f| seen2.set(f.conflicts))
            .verify_source(AMBIG, "<cb>")
            .unwrap_err();
        assert!(matches!(err, VerifyError::Conflicts(_)));
        assert_eq!(seen.get(), 1);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = verify("definitely/not/a/real/path.y").unwrap_err();
        assert!(matches!(err, VerifyError::Io { .. }));
        assert!(format!("{err}").contains("cannot read grammar"));
    }
}
