//! Grammar intake: text plus the frontend that should parse it.
//!
//! Every entry point that accepts grammar text ([`crate::api::Session`],
//! the CLI, the serve protocol, [`crate::build`]) takes a
//! [`GrammarSource`]: the text paired with a [`GrammarFormat`]. The
//! default format is [`GrammarFormat::Auto`], which sniffs the content
//! (see [`lalrcex_yacc::looks_like_yacc`] for the exact markers), so
//! plain-text callers keep working unchanged — `"...".into()` or
//! `GrammarSource::auto(text)` — while `.y` files light up the yacc
//! frontend with no extra ceremony.

use lalrcex_grammar::{Grammar, GrammarError};

/// Which frontend parses a grammar's text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum GrammarFormat {
    /// The native DSL (`crates/grammar`).
    Dsl,
    /// The POSIX-yacc/Bison subset (`crates/yacc`).
    Yacc,
    /// Decide by content sniffing (the default): yacc when the text
    /// carries a marker the DSL cannot produce — a `%{ %}` block, an
    /// unquoted `{` action, a second `%%`, a yacc-only `%` directive, or
    /// `%token <type>` — and the DSL otherwise.
    #[default]
    Auto,
}

impl GrammarFormat {
    /// Parses a protocol/CLI format name. Stable names: `dsl`, `yacc`,
    /// `auto`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<GrammarFormat> {
        match name {
            "dsl" => Some(GrammarFormat::Dsl),
            "yacc" => Some(GrammarFormat::Yacc),
            "auto" => Some(GrammarFormat::Auto),
            _ => None,
        }
    }

    /// The stable protocol/CLI name (`from_name`'s inverse).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GrammarFormat::Dsl => "dsl",
            GrammarFormat::Yacc => "yacc",
            GrammarFormat::Auto => "auto",
        }
    }

    /// The format a file extension vouches for: `.y`/`.yacc`/`.yy`/`.ypp`
    /// → [`GrammarFormat::Yacc`], anything else → [`GrammarFormat::Auto`]
    /// (content sniffing still applies, so a `.y` grammar renamed to
    /// `.txt` keeps working).
    #[must_use]
    pub fn for_path(path: &std::path::Path) -> GrammarFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("y" | "yacc" | "yy" | "ypp") => GrammarFormat::Yacc,
            _ => GrammarFormat::Auto,
        }
    }
}

/// Grammar text paired with the frontend that should parse it — the
/// intake type of the whole API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrammarSource {
    text: String,
    format: GrammarFormat,
}

impl GrammarSource {
    /// A source with an explicit format.
    pub fn new(text: impl Into<String>, format: GrammarFormat) -> GrammarSource {
        GrammarSource {
            text: text.into(),
            format,
        }
    }

    /// Text in the native DSL.
    pub fn dsl(text: impl Into<String>) -> GrammarSource {
        GrammarSource::new(text, GrammarFormat::Dsl)
    }

    /// Text in the yacc/Bison subset.
    pub fn yacc(text: impl Into<String>) -> GrammarSource {
        GrammarSource::new(text, GrammarFormat::Yacc)
    }

    /// Text whose format is sniffed from its content.
    pub fn auto(text: impl Into<String>) -> GrammarSource {
        GrammarSource::new(text, GrammarFormat::Auto)
    }

    /// `text` tagged with the format its file extension vouches for
    /// (`.y` and friends → yacc, anything else → content sniffing).
    pub fn from_path_text(path: &std::path::Path, text: impl Into<String>) -> GrammarSource {
        GrammarSource::new(text, GrammarFormat::for_path(path))
    }

    /// The grammar text.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The declared format (possibly [`GrammarFormat::Auto`]; see
    /// [`GrammarSource::resolved_format`] for the sniffed answer).
    #[must_use]
    pub fn format(&self) -> GrammarFormat {
        self.format
    }

    /// The same text under a different format.
    #[must_use]
    pub fn with_format(mut self, format: GrammarFormat) -> GrammarSource {
        self.format = format;
        self
    }

    /// The concrete frontend after sniffing: never
    /// [`GrammarFormat::Auto`].
    #[must_use]
    pub fn resolved_format(&self) -> GrammarFormat {
        match self.format {
            GrammarFormat::Auto => {
                if lalrcex_yacc::looks_like_yacc(&self.text) {
                    GrammarFormat::Yacc
                } else {
                    GrammarFormat::Dsl
                }
            }
            f => f,
        }
    }

    /// The engine-cache frontend tag for the resolved format. The DSL is
    /// tag 0 so DSL cache keys (and warm entries) are identical to the
    /// pre-`GrammarSource` scheme.
    pub(crate) fn cache_tag(&self) -> u8 {
        match self.resolved_format() {
            GrammarFormat::Dsl => 0,
            GrammarFormat::Yacc => 1,
            GrammarFormat::Auto => unreachable!("resolved_format never returns Auto"),
        }
    }

    /// The resolved frontend's parse function.
    pub(crate) fn parse_fn(&self) -> fn(&str) -> Result<Grammar, GrammarError> {
        match self.resolved_format() {
            GrammarFormat::Dsl => Grammar::parse,
            GrammarFormat::Yacc => lalrcex_yacc::parse,
            GrammarFormat::Auto => unreachable!("resolved_format never returns Auto"),
        }
    }
}

// Plain text flows in as `Auto`: existing `AnalysisRequest::new("...")`
// call sites keep compiling and — because the sniffer only fires on
// markers the DSL cannot produce — keep meaning the DSL.
impl From<&str> for GrammarSource {
    fn from(text: &str) -> GrammarSource {
        GrammarSource::auto(text)
    }
}

impl From<String> for GrammarSource {
    fn from(text: String) -> GrammarSource {
        GrammarSource::auto(text)
    }
}

impl From<&String> for GrammarSource {
    fn from(text: &String) -> GrammarSource {
        GrammarSource::auto(text.clone())
    }
}

impl From<&GrammarSource> for GrammarSource {
    fn from(src: &GrammarSource) -> GrammarSource {
        src.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for f in [GrammarFormat::Dsl, GrammarFormat::Yacc, GrammarFormat::Auto] {
            assert_eq!(GrammarFormat::from_name(f.name()), Some(f));
        }
        assert_eq!(GrammarFormat::from_name("bison"), None);
    }

    #[test]
    fn extensions_vouch_for_yacc() {
        use std::path::Path;
        assert_eq!(
            GrammarFormat::for_path(Path::new("grammar.y")),
            GrammarFormat::Yacc
        );
        assert_eq!(
            GrammarFormat::for_path(Path::new("dir.y/grammar.cex")),
            GrammarFormat::Auto
        );
        assert_eq!(
            GrammarFormat::for_path(Path::new("grammar")),
            GrammarFormat::Auto
        );
    }

    #[test]
    fn auto_resolves_by_content() {
        assert_eq!(
            GrammarSource::auto("%% e : e '+' e | NUM ;").resolved_format(),
            GrammarFormat::Dsl
        );
        assert_eq!(
            GrammarSource::auto("%union { int n; }\n%% e : NUM ;").resolved_format(),
            GrammarFormat::Yacc
        );
        // Explicit formats are never second-guessed.
        assert_eq!(
            GrammarSource::dsl("%% anything").resolved_format(),
            GrammarFormat::Dsl
        );
    }

    #[test]
    fn dsl_cache_tag_is_the_legacy_tag() {
        assert_eq!(GrammarSource::dsl("%% e : A ;").cache_tag(), 0);
        assert_eq!(GrammarSource::yacc("%% e : A ;").cache_tag(), 1);
    }
}
