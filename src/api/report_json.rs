//! Stable JSON conflict-report schema, version 1.
//!
//! One document shape serves both surfaces: `lalrcex cex --format json`
//! prints it, and the serve protocol embeds it as the `report` member of
//! an `analyze` response. The schema is pinned by a committed golden file
//! (`snapshots/cex_report_v1.json`); widen it only by *adding* members,
//! and bump `schema_version` on any breaking change.
//!
//! Determinism contract: the document contains no wall-clock times, no
//! memo/cache hit flags, and no search counters — exactly the fields the
//! engine guarantees byte-identical across runs, worker counts, and warm
//! versus cold caches. Observability data lives in the serve `stats`
//! request and the CLI's `--stats` text output instead.

use lalrcex_core::{
    display_item_cup, render_chain_step, ChainStep, ConflictOutcome, ConflictReport, ExampleKind,
    GrammarProvenance, GrammarReport, ProvenanceOutcome,
};
use lalrcex_grammar::{Derivation, Grammar};
use lalrcex_lr::{ConflictKind, Item, Resolution};

use super::json::{obj, Json};

/// The current schema version emitted in every document.
pub const SCHEMA_VERSION: u32 = 1;

/// Builds the schema-v1 document for one grammar analysis.
///
/// `label` is the file name (or request-supplied label) echoed back in the
/// document; `states` is the automaton state count.
pub fn report_document(
    label: &str,
    g: &Grammar,
    states: usize,
    resolutions: &[Resolution],
    report: &GrammarReport,
) -> Json {
    document(label, g, states, resolutions, report, None)
}

/// [`report_document`] with the optional `provenance` block attached to
/// every conflict and resolution — the document `lalrcex explain` and the
/// serve `explain` op emit. Still schema version 1: the block is purely
/// additive, so consumers (and the committed golden) of the plain document
/// are unaffected.
pub fn explain_document(
    label: &str,
    g: &Grammar,
    states: usize,
    resolutions: &[Resolution],
    report: &GrammarReport,
    provenance: &GrammarProvenance,
) -> Json {
    document(label, g, states, resolutions, report, Some(provenance))
}

fn document(
    label: &str,
    g: &Grammar,
    states: usize,
    resolutions: &[Resolution],
    report: &GrammarReport,
    provenance: Option<&GrammarProvenance>,
) -> Json {
    let grammar = obj()
        .push("terminals", Json::num((g.terminal_count() - 1) as u32))
        .push(
            "nonterminals",
            Json::num((g.nonterminal_count() - 1) as u32),
        )
        .push("productions", Json::num(g.prod_count() as u32))
        .push("states", Json::num(states as u32))
        .push("conflicts", Json::num(report.reports.len() as u32))
        .build();
    let resolutions = Json::Arr(
        resolutions
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut b = obj()
                    .push("state", Json::num(r.state.index() as u32))
                    .push("terminal", Json::str(g.display_name(r.terminal)));
                if let Some(rp) = provenance.and_then(|p| p.resolutions.get(i)) {
                    b = b.push("provenance", resolution_provenance_document(g, rp));
                }
                b.build()
            })
            .collect(),
    );
    let conflicts = Json::Arr(
        report
            .reports
            .iter()
            .enumerate()
            .map(|(i, r)| conflict_document(g, r, provenance.and_then(|p| p.conflicts.get(i))))
            .collect(),
    );
    obj()
        .push("schema_version", Json::num(SCHEMA_VERSION))
        .push("file", Json::str(label))
        .push("grammar", grammar)
        .push("resolutions", resolutions)
        .push("conflicts", conflicts)
        .build()
}

/// The stable string for an outcome.
fn outcome_label(outcome: &ConflictOutcome) -> &'static str {
    match outcome {
        ConflictOutcome::Internal(_) => "internal",
        ConflictOutcome::Completed(ExampleKind::Unifying) => "unifying",
        ConflictOutcome::Completed(ExampleKind::NonunifyingExhausted) => "nonunifying-exhausted",
        ConflictOutcome::Completed(ExampleKind::NonunifyingTimeout) => "nonunifying-timeout",
        ConflictOutcome::Completed(ExampleKind::NonunifyingSkipped) => "nonunifying-skipped",
        ConflictOutcome::Completed(ExampleKind::Cancelled) => "cancelled",
    }
}

/// Renders a derivation's sentential form, hiding the `$accept` wrapper's
/// trailing end-of-input marker (mirrors the text report).
fn flat_top(g: &Grammar, d: &Derivation) -> String {
    let s = d.flat(g);
    s.strip_suffix(" $").unwrap_or(&s).to_owned()
}

/// Renders a derivation, hiding the `$accept` wrapper (mirrors the text
/// report).
fn pretty_top(g: &Grammar, d: &Derivation) -> String {
    match d {
        Derivation::Node(sym, children) if *sym == g.accept() => children
            .iter()
            .map(|c| c.pretty(g))
            .collect::<Vec<_>>()
            .join(" "),
        other => other.pretty(g),
    }
}

/// The stable string naming a chain step's relation.
fn step_kind(step: &ChainStep) -> &'static str {
    match step {
        ChainStep::Lookback { .. } => "lookback",
        ChainStep::Includes { .. } => "includes",
        ChainStep::Reads { .. } => "reads",
        ChainStep::DirectRead { .. } => "direct-read",
    }
}

/// Renders a provenance chain as an array of `{relation, text}` objects.
fn chain_document(g: &Grammar, chain: &[ChainStep]) -> Json {
    Json::Arr(
        chain
            .iter()
            .map(|s| {
                obj()
                    .push("relation", Json::str(step_kind(s)))
                    .push("text", Json::str(render_chain_step(g, s)))
                    .build()
            })
            .collect(),
    )
}

/// Renders a dense terminal-index set as an array of display names.
fn lookahead_document(g: &Grammar, tindices: &[usize]) -> Json {
    Json::Arr(
        tindices
            .iter()
            .map(|&t| Json::str(g.display_name(g.terminal(t))))
            .collect(),
    )
}

/// The optional `provenance` member of a conflict document.
///
/// `corroborated` is the §5 join: `true` when the search proved the
/// candidate genuinely ambiguous with a unifying example.
fn conflict_provenance_document(
    g: &Grammar,
    outcome: &ProvenanceOutcome,
    corroborated: bool,
) -> Json {
    let p = match outcome {
        ProvenanceOutcome::Classified(p) => p,
        ProvenanceOutcome::Internal(e) => {
            return obj()
                .push("classification", Json::Null)
                .push(
                    "internal",
                    obj()
                        .push("phase", Json::str(e.phase))
                        .push("message", Json::str(&e.message))
                        .build(),
                )
                .build();
        }
    };
    obj()
        .push("classification", Json::str(p.classification.label()))
        .push("lr1_checked", Json::Bool(p.lr1_checked))
        .push("corroborated", Json::Bool(corroborated))
        .push("chain", chain_document(g, &p.chain))
        .push(
            "merge",
            match &p.merge {
                Some(m) => obj()
                    .push("merged_state", Json::num(m.merged_state.index() as u32))
                    .push("variant_count", Json::num(m.variant_count as u32))
                    .push(
                        "variants",
                        Json::Arr(
                            m.variants
                                .iter()
                                .map(|v| {
                                    obj()
                                        .push(
                                            "reduce_lookahead",
                                            lookahead_document(g, &v.reduce_lookahead),
                                        )
                                        .push(
                                            "other_lookahead",
                                            lookahead_document(g, &v.other_lookahead),
                                        )
                                        .build()
                                })
                                .collect(),
                        ),
                    )
                    .build(),
                None => Json::Null,
            },
        )
        .build()
}

/// The `provenance` member of a resolution document.
fn resolution_provenance_document(g: &Grammar, rp: &lalrcex_core::ResolutionProvenance) -> Json {
    obj()
        .push("classification", Json::str(rp.classification.label()))
        .push("chain", chain_document(g, &rp.chain))
        .build()
}

fn conflict_document(g: &Grammar, r: &ConflictReport, prov: Option<&ProvenanceOutcome>) -> Json {
    let c = &r.conflict;
    let (kind, other_item) = match c.kind {
        ConflictKind::ShiftReduce { shift_item } => {
            ("shift-reduce", display_item_cup(g, shift_item))
        }
        ConflictKind::ReduceReduce { other_prod } => (
            "reduce-reduce",
            display_item_cup(g, Item::new(other_prod, g.prod(other_prod).rhs().len())),
        ),
    };
    let mut b = obj()
        .push("state", Json::num(c.state.index() as u32))
        .push("terminal", Json::str(g.display_name(c.terminal)))
        .push("kind", Json::str(kind))
        .push(
            "reduce_item",
            Json::str(display_item_cup(g, c.reduce_item(g))),
        )
        .push("other_item", Json::str(other_item))
        .push("outcome", Json::str(outcome_label(&r.outcome)));

    b = b.push(
        "internal",
        match &r.outcome {
            ConflictOutcome::Internal(e) => obj()
                .push("phase", Json::str(e.phase))
                .push("message", Json::str(&e.message))
                .push(
                    "location",
                    e.location.as_deref().map_or(Json::Null, Json::str),
                )
                .build(),
            ConflictOutcome::Completed(_) => Json::Null,
        },
    );

    b = b.push(
        "unifying",
        match &r.unifying {
            Some(u) => obj()
                .push("nonterminal", Json::str(g.display_name(u.nonterminal)))
                .push("sentence", Json::str(u.derivation1.flat(g)))
                .push("derivation_reduce", Json::str(u.derivation1.pretty(g)))
                .push("derivation_other", Json::str(u.derivation2.pretty(g)))
                .build(),
            None => Json::Null,
        },
    );

    b = b.push(
        "nonunifying",
        match &r.nonunifying {
            Some(n) => {
                let mut nb = obj()
                    .push(
                        "example_reduce",
                        Json::str(flat_top(g, &n.reduce_derivation)),
                    )
                    .push(
                        "derivation_reduce",
                        Json::str(pretty_top(g, &n.reduce_derivation)),
                    );
                nb = match &n.other_derivation {
                    Some(o) => nb
                        .push("example_other", Json::str(flat_top(g, o)))
                        .push("derivation_other", Json::str(pretty_top(g, o))),
                    None => nb
                        .push("example_other", Json::Null)
                        .push("derivation_other", Json::Null),
                };
                nb.build()
            }
            None => Json::Null,
        },
    );

    if let Some(outcome) = prov {
        b = b.push(
            "provenance",
            conflict_provenance_document(g, outcome, r.unifying.is_some()),
        );
    }

    b.build()
}
