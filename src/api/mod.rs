//! The deliberate public API of the `lalrcex` toolkit.
//!
//! This module is the supported programmatic surface — a builder-style
//! session layer over the engine crates, consumed by the CLI, the serve
//! service, and embedders alike:
//!
//! * [`Session`] — a long-lived handle owning a grammar-keyed
//!   [engine cache](lalrcex_core::cache::EngineCache): repeated analyses
//!   of the same grammar text skip automaton/table/state-graph
//!   construction entirely.
//! * [`GrammarSource`] — the intake type: grammar text paired with the
//!   [`GrammarFormat`] that should parse it (the native DSL, the
//!   yacc/Bison subset, or content-sniffed `Auto` — the default, so plain
//!   text keeps working unchanged).
//! * [`AnalysisRequest`] — one analysis, built up fluently (budgets,
//!   worker count, cancellation token).
//! * [`Error`] — a single `#[non_exhaustive]` error type unifying grammar
//!   parse errors (per frontend), contained engine faults, I/O, protocol,
//!   and budget violations.
//!
//! Everything else the crate re-exports (the `grammar`, `lr`, `core`, …
//! internals) is `#[doc(hidden)]` and *not* covered by the public-API
//! gate; reach into it only for research tooling, and expect it to move.
//!
//! # Quick start
//!
//! ```
//! use lalrcex::api::{AnalysisRequest, Session};
//!
//! let session = Session::new();
//! let reply = session.analyze(&AnalysisRequest::new("%% e : e '+' e | NUM ;"))?;
//! assert_eq!(reply.report.unifying_count(), 1);
//! assert!(!reply.cache_hit);
//! // Re-analyzing the same text skips engine construction.
//! let again = session.analyze(&AnalysisRequest::new("%% e : e '+' e | NUM ;"))?;
//! assert!(again.cache_hit);
//! # Ok::<(), lalrcex::api::Error>(())
//! ```
//!
//! An existing yacc/Bison grammar needs no conversion — hand the `.y`
//! text over as-is (auto-detected, or tagged explicitly):
//!
//! ```
//! use lalrcex::api::{AnalysisRequest, GrammarSource, Session};
//!
//! let y = "%% e : e '+' e { $$ = $1 + $3; } | NUM ;";
//! let reply = Session::new().analyze(&AnalysisRequest::new(GrammarSource::yacc(y)))?;
//! assert_eq!(reply.report.unifying_count(), 1);
//! # Ok::<(), lalrcex::api::Error>(())
//! ```

pub mod json;
mod report_json;
mod source;

pub use report_json::{explain_document, report_document, SCHEMA_VERSION};
pub use source::{GrammarFormat, GrammarSource};

use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lalrcex_core::cache::{BuildError, CacheEntryStats, CacheStats, CachedEngine, EngineCache};
use lalrcex_core::{
    format_provenance, CancelToken, CexConfig, EngineError, GrammarProvenance, GrammarReport,
    ProvenanceOutcome,
};
use lalrcex_grammar::GrammarError;
use lalrcex_lint::{Diagnostic, Linter};

/// The unified error type of the public API.
#[non_exhaustive]
#[derive(Debug)]
pub enum Error {
    /// The grammar text did not parse (native-DSL frontend).
    Grammar(GrammarError),
    /// The grammar text did not parse (yacc/Bison frontend). Kept apart
    /// from [`Error::Grammar`] so protocol clients and build scripts can
    /// tell "your `.y` file is bad" from "your DSL is bad" — the two
    /// frontends reject different things (e.g. mid-rule actions).
    YaccParse(GrammarError),
    /// A request named a grammar format this build does not understand.
    UnsupportedFormat {
        /// The offending format name, verbatim.
        format: String,
    },
    /// A contained engine fault (panic caught at a phase boundary, or a
    /// structured engine error).
    Engine(EngineError),
    /// An I/O failure (reading a grammar file, writing a response).
    Io(std::io::Error),
    /// A malformed request on the serve protocol or batch manifest.
    Protocol(String),
    /// A request exceeded a structural budget (e.g. the serve protocol's
    /// maximum line length).
    Budget {
        /// Which budget.
        what: &'static str,
        /// The enforced cap.
        limit: usize,
        /// The offending value.
        actual: usize,
    },
    /// The service shed the request at admission: too many already in
    /// flight (the admission-control tier of the degradation ladder).
    /// Already-admitted requests are unaffected and complete
    /// byte-identically to an unloaded run.
    Overloaded {
        /// Requests in flight when this one was shed.
        inflight: usize,
        /// The configured admission cap.
        limit: usize,
        /// Deterministic hint: how long the client should wait before
        /// resubmitting, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's grammar text exceeds the service's per-request
    /// admission cap (checked before any work is spent on it).
    TooLarge {
        /// The enforced cap in bytes.
        limit: usize,
        /// The submitted grammar's size in bytes.
        actual: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Grammar(e) => write!(f, "{e}"),
            Error::YaccParse(e) => write!(f, "yacc: {e}"),
            Error::UnsupportedFormat { format } => write!(
                f,
                "unsupported grammar format {format:?} (expected dsl, yacc, or auto)"
            ),
            Error::Engine(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "{e}"),
            Error::Protocol(msg) => write!(f, "protocol error: {msg}"),
            Error::Budget {
                what,
                limit,
                actual,
            } => write!(f, "budget exceeded: {what} {actual} > limit {limit}"),
            Error::Overloaded {
                inflight,
                limit,
                retry_after_ms,
            } => write!(
                f,
                "overloaded: {inflight} request(s) in flight (admission cap {limit}); \
                 retry in {retry_after_ms} ms"
            ),
            Error::TooLarge { limit, actual } => write!(
                f,
                "grammar too large: {actual} bytes > admission cap {limit}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Grammar(e) | Error::YaccParse(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GrammarError> for Error {
    fn from(e: GrammarError) -> Error {
        Error::Grammar(e)
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Error {
        Error::Engine(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Error {
        match e {
            BuildError::Grammar(g) => Error::Grammar(g),
            BuildError::Engine(g) => Error::Engine(g),
        }
    }
}

impl Error {
    /// A stable short tag for the protocol's error responses.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Grammar(_) => "grammar",
            Error::YaccParse(_) => "yacc_parse",
            Error::UnsupportedFormat { .. } => "unsupported_format",
            Error::Engine(_) => "internal",
            Error::Io(_) => "io",
            Error::Protocol(_) => "protocol",
            Error::Budget { .. } => "budget",
            Error::Overloaded { .. } => "overloaded",
            Error::TooLarge { .. } => "too_large",
        }
    }
}

/// One conflict analysis, built fluently. Defaults mirror the CLI: 5 s
/// per-conflict limit, 120 s cumulative, one worker per CPU.
#[derive(Clone, Debug)]
pub struct AnalysisRequest {
    source: GrammarSource,
    label: String,
    cfg: CexConfig,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
}

impl AnalysisRequest {
    /// A request to analyze `grammar` with default limits. Accepts
    /// anything that converts to a [`GrammarSource`]: plain text flows in
    /// as the content-sniffed `Auto` format, so pre-`GrammarSource` call
    /// sites are unchanged; pass `GrammarSource::yacc(..)` /
    /// `GrammarSource::dsl(..)` to pin the frontend.
    pub fn new(grammar: impl Into<GrammarSource>) -> AnalysisRequest {
        AnalysisRequest {
            source: grammar.into(),
            label: "<memory>".to_owned(),
            cfg: CexConfig::default(),
            cancel: None,
            deadline: None,
        }
    }

    /// The label (file name) echoed in reports. Defaults to `<memory>`.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Per-conflict unifying-search time limit.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.cfg.search.time_limit = limit;
        self
    }

    /// Cumulative unifying-search budget across all conflicts.
    pub fn cumulative_limit(mut self, limit: Duration) -> Self {
        self.cfg.cumulative_limit = limit;
        self
    }

    /// Worker threads for the conflict fan-out (`0` = one per CPU).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Full unifying search without the shortest-path pruning.
    pub fn extended(mut self, extended: bool) -> Self {
        self.cfg.search.extended = extended;
        self
    }

    /// Soft limit on estimated live search memory, in MiB (`0` = off).
    pub fn max_live_mb(mut self, mb: usize) -> Self {
        self.cfg.max_live_mb = mb;
        self
    }

    /// An external cancellation token (e.g. the serve protocol's
    /// per-request token, or a Ctrl-C handler's).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// An absolute end-to-end deadline for the whole analysis. The
    /// effective search budget becomes `min(cumulative_limit, time
    /// remaining)`, so expiry rides the engine's degradation ladder —
    /// skipped unifying searches with their nonunifying fallbacks still
    /// constructed — and an already-expired deadline yields an immediate
    /// partial report, never an error.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Escape hatch: a full [`CexConfig`].
    pub fn config(mut self, cfg: CexConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The grammar source (text + format).
    pub fn source(&self) -> &GrammarSource {
        &self.source
    }

    /// The grammar text (compatibility shim predating
    /// [`AnalysisRequest::source`]).
    pub fn grammar_text(&self) -> &str {
        self.source.text()
    }

    /// The report label.
    pub fn label_str(&self) -> &str {
        &self.label
    }

    /// The effective engine configuration.
    pub fn effective_config(&self) -> &CexConfig {
        &self.cfg
    }

    /// The configured end-to-end deadline, if any.
    pub fn deadline_instant(&self) -> Option<Instant> {
        self.deadline
    }

    /// The cumulative search budget left once the deadline is applied.
    fn effective_budget(&self) -> Duration {
        match self.deadline {
            Some(d) => self
                .cfg
                .cumulative_limit
                .min(d.saturating_duration_since(Instant::now())),
            None => self.cfg.cumulative_limit,
        }
    }
}

/// The result of [`Session::analyze`]: the grammar report plus a handle on
/// the (possibly shared) engine that produced it.
pub struct AnalysisReply {
    cached: Arc<CachedEngine>,
    /// One report per conflict, plus grammar-wide stats (including the
    /// session's cumulative engine-cache counters).
    pub report: GrammarReport,
    /// Whether the engine came from the session cache.
    pub cache_hit: bool,
    label: String,
}

impl AnalysisReply {
    /// The parsed grammar.
    pub fn grammar(&self) -> &lalrcex_grammar::Grammar {
        self.cached.grammar()
    }

    /// The engine (automaton, tables, state-item graph, spine memo).
    pub fn engine(&self) -> &lalrcex_core::Engine<'_> {
        self.cached.engine()
    }

    /// The schema-v1 JSON report document (see [`report_document`]).
    pub fn to_json(&self) -> json::Json {
        report_document(
            &self.label,
            self.grammar(),
            self.engine().automaton().state_count(),
            self.engine().tables().resolutions(),
            &self.report,
        )
    }

    /// Renders the canonical per-conflict text blocks — the same rendering
    /// the CLI prints and [`crate::build`] embeds in build failures.
    ///
    /// Deterministic and byte-identical across runs, worker counts, cache
    /// temperature, and (for structurally identical grammars) frontends:
    /// nothing rendered depends on source spans or wall clocks.
    pub fn render_text(&self) -> String {
        let g = self.grammar();
        let mut out = String::new();
        for r in &self.report.reports {
            let _ = writeln!(out, "{}", lalrcex_core::format_report(g, r));
        }
        out
    }
}

/// The result of [`Session::explain`]: the full analysis reply plus the
/// lookahead-provenance classification of every conflict and resolution.
pub struct ExplainReply {
    cached: Arc<CachedEngine>,
    /// Per-grammar provenance: one classified (or contained-fault) slot per
    /// conflict, one record per silenced resolution, exploration counters.
    pub provenance: Arc<GrammarProvenance>,
    /// The §5 report the classifications are corroborated against.
    pub report: GrammarReport,
    /// Whether the engine came from the session cache.
    pub cache_hit: bool,
    label: String,
}

impl ExplainReply {
    /// The parsed grammar.
    pub fn grammar(&self) -> &lalrcex_grammar::Grammar {
        self.cached.grammar()
    }

    /// The engine (automaton, tables, state-item graph, spine memo).
    pub fn engine(&self) -> &lalrcex_core::Engine<'_> {
        self.cached.engine()
    }

    /// Whether the §5 search corroborated conflict `i` with a unifying
    /// example (a proof the candidate is genuinely ambiguous).
    pub fn corroborated(&self, i: usize) -> bool {
        self.report
            .reports
            .get(i)
            .is_some_and(|r| r.unifying.is_some())
    }

    /// The schema-v1 JSON document with the `provenance` block attached to
    /// every conflict and resolution (see [`explain_document`]).
    pub fn to_json(&self) -> json::Json {
        explain_document(
            &self.label,
            self.grammar(),
            self.engine().automaton().state_count(),
            self.engine().tables().resolutions(),
            &self.report,
            &self.provenance,
        )
    }

    /// Renders the deterministic text explanation, optionally restricted to
    /// one conflict index (`lalrcex explain --conflict N`).
    ///
    /// Byte-identical across runs, worker counts, and cache temperature:
    /// everything rendered comes from the clock-free provenance tables and
    /// the deterministic report.
    pub fn render_text(&self, only: Option<usize>) -> String {
        let g = self.grammar();
        let counts = self.provenance.counts();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} conflict(s): {} true-ambiguity-candidate, {} merge-artifact, \
             {} internal; {} precedence-resolved resolution(s)",
            self.label,
            self.provenance.conflicts.len(),
            counts.true_candidates,
            counts.merge_artifacts,
            counts.internal,
            counts.precedence_resolved,
        );
        for (i, outcome) in self.provenance.conflicts.iter().enumerate() {
            if only.is_some_and(|n| n != i) {
                continue;
            }
            let _ = writeln!(out, "\n== conflict #{i} ==");
            match outcome {
                ProvenanceOutcome::Classified(p) => {
                    out.push_str(&format_provenance(g, p));
                    if self.corroborated(i) {
                        out.push_str(
                            "Corroborated: the counterexample search found a unifying \
                             example, proving the ambiguity is real.\n",
                        );
                    }
                }
                ProvenanceOutcome::Internal(e) => {
                    let _ = writeln!(out, "classification failed (contained fault): {e}");
                }
            }
        }
        if only.is_none() && !self.provenance.resolutions.is_empty() {
            let _ = writeln!(
                out,
                "\n{} conflict(s) silenced by precedence/associativity \
                 (see lint L009 for masking analysis)",
                self.provenance.resolutions.len()
            );
        }
        out
    }
}

/// The result of [`Session::lint`].
pub struct LintReply {
    cached: Arc<CachedEngine>,
    /// Sorted, deterministic diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the engine came from the session cache.
    pub cache_hit: bool,
}

impl LintReply {
    /// The parsed grammar.
    pub fn grammar(&self) -> &lalrcex_grammar::Grammar {
        self.cached.grammar()
    }
}

/// A long-lived analysis session: a grammar-keyed engine cache plus the
/// entry points the CLI, the serve service, and embedders share.
///
/// Cloning is cheap and shares the cache.
#[derive(Clone)]
pub struct Session {
    cache: Arc<EngineCache>,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A session with the default 256 MiB engine-cache budget.
    pub fn new() -> Session {
        Session::with_cache_mb(256)
    }

    /// A session with an explicit cache budget in MiB (`0` = unlimited).
    pub fn with_cache_mb(mb: usize) -> Session {
        Session {
            cache: Arc::new(EngineCache::with_budget_mb(mb)),
        }
    }

    /// A session with an explicit cache budget in bytes.
    pub fn with_cache_bytes(bytes: usize) -> Session {
        Session {
            cache: Arc::new(EngineCache::with_budget_bytes(bytes)),
        }
    }

    /// A snapshot of the engine-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Per-cache-entry byte breakdowns, most recently used first, with each
    /// entry's charge re-sampled so lazily built tables (the spine memo,
    /// the provenance tables) are accounted for.
    pub fn cache_entry_stats(&self) -> Vec<CacheEntryStats> {
        self.cache.entry_stats()
    }

    /// Builds (or fetches) the engine for a grammar source. The cache is
    /// keyed by (frontend, text): the same bytes analyzed as DSL and as
    /// yacc are distinct entries, and a warm hit is only served to the
    /// frontend that built it.
    fn engine_for(&self, source: &GrammarSource) -> Result<(Arc<CachedEngine>, bool), Error> {
        self.cache
            .get_or_build_with(source.cache_tag(), source.text(), source.parse_fn())
            .map_err(|e| match e {
                BuildError::Grammar(g) if source.resolved_format() == GrammarFormat::Yacc => {
                    Error::YaccParse(g)
                }
                other => other.into(),
            })
    }

    /// Analyzes every conflict of the request's grammar. The engine comes
    /// from the session cache when the same source was analyzed before
    /// (byte-identical reports either way).
    pub fn analyze(&self, req: &AnalysisRequest) -> Result<AnalysisReply, Error> {
        let (cached, cache_hit) = self.engine_for(&req.source)?;
        let fallback = CancelToken::new();
        let cancel = req.cancel.as_ref().unwrap_or(&fallback);
        let mut report =
            cached
                .engine()
                .analyze_all_cancellable(&req.cfg, req.effective_budget(), cancel);
        let cache = self.cache.stats();
        report.stats.cache_hits = cache.hits;
        report.stats.cache_misses = cache.misses;
        report.stats.cache_evictions = cache.evictions;
        Ok(AnalysisReply {
            cached,
            report,
            cache_hit,
            label: req.label.clone(),
        })
    }

    /// Classifies every conflict of the request's grammar (true-ambiguity
    /// candidate / LALR merge artifact / precedence-resolved) and runs the
    /// §5 search to corroborate candidates with unifying examples.
    ///
    /// The provenance tables are computed once per cached engine and shared
    /// by later `explain` calls on the same grammar text.
    pub fn explain(&self, req: &AnalysisRequest) -> Result<ExplainReply, Error> {
        let (cached, cache_hit) = self.engine_for(&req.source)?;
        let provenance = cached.engine().provenance()?;
        let fallback = CancelToken::new();
        let cancel = req.cancel.as_ref().unwrap_or(&fallback);
        let mut report =
            cached
                .engine()
                .analyze_all_cancellable(&req.cfg, req.effective_budget(), cancel);
        let cache = self.cache.stats();
        report.stats.cache_hits = cache.hits;
        report.stats.cache_misses = cache.misses;
        report.stats.cache_evictions = cache.evictions;
        report.stats.record_provenance(&provenance);
        Ok(ExplainReply {
            cached,
            provenance,
            report,
            cache_hit,
            label: req.label.clone(),
        })
    }

    /// Drops the cached engine for exactly this source — same text *and*
    /// same resolved frontend — if resident.
    ///
    /// The fault-retry supervision hook: after a contained fault that may
    /// have hit an engine's precomputation or lazily built state, evicting
    /// guarantees the retry rebuilds from scratch — a possibly poisoned
    /// engine is never re-served. Returns `true` when an entry was dropped.
    pub fn evict(&self, grammar: impl Into<GrammarSource>) -> bool {
        let source = grammar.into();
        self.cache
            .evict_text_with(source.cache_tag(), source.text())
    }

    /// Fault-retry supervision over an [`AnalysisReply`]: re-runs, once,
    /// every conflict slot whose outcome is a contained
    /// [`lalrcex_core::ConflictOutcome::Internal`] fault, replacing the
    /// slot's report with the re-run's. Retries run under the original
    /// slot's fault-injection scope, so a one-shot injected fault — its
    /// trigger already spent on the first run — recovers to a `Completed`
    /// outcome; a persistent fault stays `Internal`. Returns the number of
    /// slots retried; the grammar-wide stats record retries and recoveries.
    pub fn retry_internal_slots(&self, reply: &mut AnalysisReply, req: &AnalysisRequest) -> u64 {
        retry_slots(&reply.cached, &mut reply.report, req)
    }

    /// [`Session::retry_internal_slots`] for an [`ExplainReply`]. Only the
    /// §5 search slots are retried; a faulted provenance *build* already
    /// surfaces as an error from [`Session::explain`] (never memoized), so
    /// the caller's whole-request retry path covers it.
    pub fn retry_internal_explain_slots(
        &self,
        reply: &mut ExplainReply,
        req: &AnalysisRequest,
    ) -> u64 {
        retry_slots(&reply.cached, &mut reply.report, req)
    }

    /// Runs every lint pass over the grammar, reusing a cached engine (and
    /// its memoized spines) when one exists. Lints on a yacc source report
    /// spans pointing at the real `.y` lines.
    pub fn lint(&self, grammar: impl Into<GrammarSource>) -> Result<LintReply, Error> {
        let source = grammar.into();
        let (cached, cache_hit) = self.engine_for(&source)?;
        let diagnostics = Linter::new().run(cached.engine());
        Ok(LintReply {
            cached,
            diagnostics,
            cache_hit,
        })
    }
}

/// Shared body of the [`Session`] fault-retry supervision: re-runs every
/// `Internal` slot of `report` once, in slot order, under the slot's
/// original fault-injection scope.
fn retry_slots(cached: &CachedEngine, report: &mut GrammarReport, req: &AnalysisRequest) -> u64 {
    use lalrcex_core::{ConflictOutcome, MemoryGovernor, SearchSession};
    let engine = cached.engine();
    let conflicts = engine.tables().conflicts().to_vec();
    let fallback = CancelToken::new();
    let cancel = req.cancel.as_ref().unwrap_or(&fallback);
    let governor = MemoryGovernor::with_limit_mb(req.cfg.max_live_mb);
    // Retries are one-at-a-time cleanup work; no shard budget.
    let session = SearchSession {
        cancel,
        governor: &governor,
        shards: None,
    };
    let mut retried = 0;
    for (i, slot) in report.reports.iter_mut().enumerate() {
        if !matches!(slot.outcome, ConflictOutcome::Internal(_)) || cancel.is_hard_cancelled() {
            continue;
        }
        // One per-slot search budget, further clipped by any request
        // deadline so a retry never outlives the request it serves.
        let budget = req.cfg.search.time_limit.min(match req.deadline {
            Some(d) => d.saturating_duration_since(Instant::now()),
            None => req.cfg.search.time_limit,
        });
        // Same slot scope as the original run: a one-shot fault plan has
        // already spent its trigger there, so the retry runs clean.
        let mut fresh = lalrcex_core::faultpoint::with_scope(i as u64, || {
            engine.analyze_conflict_cancellable(
                &conflicts[i],
                &req.cfg,
                Instant::now() + budget,
                &session,
            )
        });
        retried += 1;
        report.stats.slot_retries += 1;
        if matches!(fresh.outcome, ConflictOutcome::Completed(_)) {
            report.stats.slots_recovered += 1;
        }
        report.stats.search.merge(&fresh.stats.search);
        report.stats.cpu_time +=
            fresh.stats.time_spine + fresh.stats.time_unifying + fresh.stats.time_nonunifying;
        fresh.stats.retries = slot.stats.retries + 1;
        *slot = fresh;
    }
    retried
}
